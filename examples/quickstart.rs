//! Quickstart: write a GPU kernel with the assembler DSL, run it on both
//! engines, and inject one fault at each abstraction layer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_reliability::prelude::*;
use vgpu_sim::{ArenaPlanner, SwInjector, UarchInjector};

fn main() {
    // ---- 1. Write a kernel: out[i] = in[i] * in[i] ---------------------
    let n: u32 = 1024;
    let mut a = KernelBuilder::new("square");
    let (gid, tmp, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    a.linear_tid(gid, tmp);
    a.isetp(p, gid, n, CmpOp::Lt, true);
    a.if_then(p, false, |a| {
        a.mov(addr, a.param(0));
        a.iscadd(addr, gid, Operand::Reg(addr), 2);
        a.ld(v, MemSpace::Global, addr, 0);
        a.fmul(v, v, Operand::Reg(v));
        a.mov(addr, a.param(1));
        a.iscadd(addr, gid, Operand::Reg(addr), 2);
        a.st(MemSpace::Global, addr, 0, v);
    });
    let kernel = a.build().expect("kernel validates");
    println!("{}", kernel.disassemble());

    // ---- 2. Allocate device memory and launch (timed engine) ----------
    let mut planner = ArenaPlanner::new();
    let inp = planner.alloc(n * 4);
    let out = planner.alloc(n * 4);
    let mut mem = planner.build();
    for i in 0..n {
        mem.write_u32(inp + i * 4, (i as f32).to_bits());
    }
    let mut gpu = Gpu::new(GpuConfig::default(), mem, Mode::Timed);
    let lc = LaunchConfig::new(n / 128, 128, vec![inp, out, n]);
    let stats = gpu
        .launch(&kernel, &lc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    assert_eq!(gpu.host_read_f32(out + 5 * 4), 25.0);
    println!(
        "timed run: {} cycles, {} warp instrs, occupancy {:.1}%, L1D miss rate {:.1}%",
        stats.cycles,
        stats.warp_instrs,
        stats.occupancy() * 100.0,
        stats.l1d.miss_rate() * 100.0
    );

    // ---- 3. Microarchitecture fault: flip one register-file bit --------
    let build = |mode| {
        let mut planner = ArenaPlanner::new();
        let inp = planner.alloc(n * 4);
        let out = planner.alloc(n * 4);
        let mut mem = planner.build();
        for i in 0..n {
            mem.write_u32(inp + i * 4, (i as f32).to_bits());
        }
        (
            Gpu::new(GpuConfig::default(), mem, mode),
            LaunchConfig::new(n / 128, 128, vec![inp, out, n]),
            out,
        )
    };
    let (mut gpu, lc, out) = build(Mode::Timed);
    let mut inj = UarchInjector::new(UarchFault {
        cycle: stats.cycles / 2,
        structure: HwStructure::RegFile,
        loc_pick: 0xDEAD_BEEF_1234,
        bit: 30,
        pattern: vgpu_sim::FaultPattern::SingleBit,
    });
    let budget = Budget {
        cycles: stats.cycles * 10,
        instrs: u64::MAX / 2,
    };
    match gpu.launch(&kernel, &lc, FaultPlan::Uarch(&mut inj), &budget) {
        Ok(_) => {
            let corrupted = (0..n)
                .filter(|&i| gpu.host_read_f32(out + i * 4) != (i * i) as f32)
                .count();
            println!(
                "uarch RF fault (population {} regs): {corrupted} corrupted outputs",
                inj.population
            );
        }
        Err(abort) => println!("uarch RF fault crashed the kernel: {abort}"),
    }

    // ---- 4. Software-level fault: flip a destination-register value ----
    let (mut gpu, lc, out) = build(Mode::Functional);
    let mut inj = SwInjector::new(SwFault {
        kind: SwFaultKind::DestValue,
        target: 2000,
        bit: 28,
        loc_pick: 0,
        pattern: vgpu_sim::FaultPattern::SingleBit,
    });
    match gpu.launch(&kernel, &lc, FaultPlan::Sw(&mut inj), &Budget::unlimited()) {
        Ok(_) => {
            let corrupted = (0..n)
                .filter(|&i| gpu.host_read_f32(out + i * 4) != (i * i) as f32)
                .count();
            println!("software fault at dynamic instruction 2000: {corrupted} corrupted outputs");
        }
        Err(abort) => println!("software fault crashed the kernel: {abort}"),
    }
}
