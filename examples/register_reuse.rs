//! The register-reuse analyzer of Section V-B (Figure 12): why
//! "instantaneous" source-operand fault models underestimate
//! vulnerability, and how reuse analysis fixes them.
//!
//! ```sh
//! cargo run --release --example register_reuse
//! ```

use gpu_reliability::prelude::*;
use kernels::apps::va::Va;
use kernels::golden_run;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relia::reuse::{figure12_kernel, readers_until_redef};
use relia::ClassCounts;
use vgpu_arch::Reg;

fn main() {
    // The paper's exact example.
    let k = figure12_kernel();
    println!("{}", k.disassemble());
    let readers = readers_until_redef(&k, 3, Reg(0));
    println!(
        "a fault in R0 of #4 must be replicated to: {}",
        readers
            .iter()
            .map(|&i| format!("#{}", i + 1))
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert_eq!(readers, vec![4, 6], "the paper's red circles: #5 and #7");

    // Quantify: transient (single-instruction) source faults vs
    // persistent (reuse-replicated) ones on a real benchmark.
    let gpu = GpuConfig::default();
    let variant = Variant {
        mode: Mode::Functional,
        hardened: false,
    };
    let golden = golden_run(&Va, &gpu, variant);
    let elig = golden.records[0].stats.src_reg_instrs;
    let mut rng = SmallRng::seed_from_u64(99);
    let mut fr = [0.0f64; 2];
    for (mi, kind) in [SwFaultKind::SrcTransient, SwFaultKind::SrcPersistent]
        .into_iter()
        .enumerate()
    {
        let mut counts = ClassCounts::default();
        for _ in 0..200 {
            let fault = PlannedFault::Sw(SwFault {
                kind,
                target: rng.gen_range(0..elig),
                bit: rng.gen_range(0..32),
                loc_pick: 0,
                pattern: vgpu_sim::FaultPattern::SingleBit,
            });
            counts.record(faulty_run(&Va, &gpu, variant, &golden, 0, fault).outcome);
        }
        fr[mi] = counts.failure_rate();
    }
    println!(
        "\nVA source-register injection, 200 samples each:\n\
         transient (typical SVF tooling) FR = {:.1}%\n\
         persistent (reuse-replicating)  FR = {:.1}%\n\
         → the instantaneous model misses downstream readers of the\n\
         corrupted register, underestimating vulnerability.",
        fr[0] * 100.0,
        fr[1] * 100.0
    );
}
