//! Thread-level TMR hardening (Section IV / Figure 6): triple the grid,
//! vote on the GPU, and measure what each assessment layer thinks of the
//! protection.
//!
//! ```sh
//! cargo run --release --example tmr_hardening [-- <injections>]
//! ```

use gpu_reliability::prelude::*;
use kernels::apps::scp::Scp;
use kernels::golden_run;
use vgpu_sim::GpuConfig;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let cfg = CampaignCfg::new(n, n, 7);
    let gpu = GpuConfig::default();

    // The transform itself: same application, hardened harness.
    let plain = golden_run(&Scp, &gpu, Variant::TIMED);
    let tmr = golden_run(&Scp, &gpu, Variant::TIMED_TMR);
    assert_eq!(
        plain.output, tmr.output,
        "TMR must not change fault-free results"
    );
    println!(
        "SCP fault-free: {} cycles unprotected, {} cycles with TMR ({:.2}x; the paper's ~3x cost)",
        plain.total_cost,
        tmr.total_cost,
        tmr.total_cost as f64 / plain.total_cost as f64
    );
    let votes = tmr.records.iter().filter(|r| r.is_vote).count();
    println!("TMR inserted {votes} on-GPU majority-vote launches\n");

    // Both layers, both variants.
    let avf_base = run_uarch_campaign(&Scp, &cfg, false);
    let avf_tmr = run_uarch_campaign(&Scp, &cfg, true);
    let svf_base = run_sw_campaign(&Scp, &cfg, false);
    let svf_tmr = run_sw_campaign(&Scp, &cfg, true);

    let (ab, at) = (avf_base.app_avf(&gpu), avf_tmr.app_avf(&gpu));
    let (sb, st) = (svf_base.app_svf(), svf_tmr.app_svf());
    println!("                 unprotected   TMR-hardened");
    println!(
        "AVF  total       {:>9.4}%   {:>9.4}%",
        ab.total() * 100.0,
        at.total() * 100.0
    );
    println!(
        "AVF  SDC         {:>9.4}%   {:>9.4}%",
        ab.sdc * 100.0,
        at.sdc * 100.0
    );
    println!(
        "AVF  DUE         {:>9.4}%   {:>9.4}%",
        ab.due * 100.0,
        at.due * 100.0
    );
    println!(
        "SVF  total       {:>9.2}%   {:>9.2}%",
        sb.total() * 100.0,
        st.total() * 100.0
    );
    println!(
        "SVF  SDC         {:>9.2}%   {:>9.2}%",
        sb.sdc * 100.0,
        st.sdc * 100.0
    );
    println!(
        "SVF  DUE         {:>9.2}%   {:>9.2}%",
        sb.due * 100.0,
        st.due * 100.0
    );
    println!(
        "\nInsight #5 of the paper: the software-level view declares SDCs\n\
         eliminated, while the cross-layer view still finds some (faults in\n\
         output-bound cache lines and in the vote itself), and DUEs rise\n\
         with the tripled resource usage."
    );
}
