//! Statistical fault-injection campaign on one benchmark: the AVF vs SVF
//! comparison of the paper, in miniature.
//!
//! ```sh
//! cargo run --release --example fault_injection [-- <injections>]
//! ```

use gpu_reliability::prelude::*;
use kernels::apps::hotspot::HotSpot;
use relia::error_margin;
use relia::Confidence;
use vgpu_sim::HwStructure;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let cfg = CampaignCfg::new(n, n, 42);
    println!(
        "{n} injections per target → ±{:.2}% at 99% confidence (paper: 3000 → ±2.35%)\n",
        error_margin(n, Confidence::C99) * 100.0
    );

    // Cross-layer AVF: bit flips in the five hardware structures of the
    // cycle-level simulator, derated and size-weighted (Section II-B).
    let avf = run_uarch_campaign(&HotSpot, &cfg, false);
    println!("HotSpot, microarchitecture level (gpuFI-4 model):");
    for k in &avf.kernels {
        for &h in &HwStructure::ALL {
            let r = k.avf(h);
            println!(
                "  {} {:<4}  FR={:>6.2}%  DF={:<6.4}  AVF={:>7.4}%  (sdc {:.4}%, to {:.4}%, due {:.4}%)",
                k.kernel,
                h.label(),
                k.counts_of(h).counts.failure_rate() * 100.0,
                k.df_of(h),
                r.total() * 100.0,
                r.sdc * 100.0,
                r.timeout * 100.0,
                r.due * 100.0
            );
        }
    }
    let a = avf.app_avf(&cfg.gpu);
    println!(
        "  chip AVF (size-weighted, cycle-weighted) = {:.4}%\n",
        a.total() * 100.0
    );

    // Software level: destination-register value flips in the dynamic
    // instruction stream (Section II-C).
    let svf = run_sw_campaign(&HotSpot, &cfg, false);
    for k in &svf.kernels {
        let s = k.svf();
        println!(
            "HotSpot {} software level (NVBitFI model): SVF = {:.2}% (sdc {:.2}%, to {:.2}%, due {:.2}%), SVF-LD = {:.2}%",
            k.kernel,
            s.total() * 100.0,
            s.sdc * 100.0,
            s.timeout * 100.0,
            s.due * 100.0,
            k.svf_ld().total() * 100.0
        );
    }
    println!(
        "\nThe gap ({}x) is the paper's core point: software-level injection\n\
         sees only live destination values and no hardware masking, so its\n\
         absolute vulnerabilities — and often its *rankings* — diverge from\n\
         the cross-layer ground truth.",
        (svf.app_svf().total() / avf.app_avf(&cfg.gpu).total().max(1e-9)) as u32
    );
}
