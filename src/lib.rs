//! # gpu-reliability — cross-layer GPU reliability assessment
//!
//! A from-scratch Rust reproduction of *"GPU Reliability Assessment:
//! Insights Across the Abstraction Layers"* (IEEE CLUSTER 2024): a
//! Volta-class SIMT GPU simulator, microarchitecture-level (gpuFI-4 model)
//! and software-level (NVBitFI model) statistical fault injection, the
//! 11-application / 23-kernel CUDA-SDK + Rodinia mini benchmark suite,
//! thread-level TMR hardening, and the AVF/SVF analyses of the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`arch`] ([`vgpu_arch`]) — the SASS-like ISA and assembler DSL;
//! * [`sim`] ([`vgpu_sim`]) — the cycle-level simulator with bit-level
//!   fault hooks and the functional engine;
//! * [`suite`] ([`kernels`]) — the benchmarks, the application harness,
//!   and the TMR transform;
//! * [`assess`] ([`relia`]) — campaigns, AVF/SVF math, trends, profiling,
//!   hardening evaluation, and the register-reuse analyzer.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `bench` crate's binaries for regenerating every figure and table of
//! the paper's evaluation section.

pub use kernels as suite;
pub use relia as assess;
pub use vgpu_arch as arch;
pub use vgpu_sim as sim;

/// Convenient glob import for examples and quick experiments.
pub mod prelude {
    pub use kernels::{
        all_benchmarks, faulty_run, golden_run, Benchmark, Outcome, PlannedFault, Variant,
    };
    pub use relia::{
        assemble_sw, assemble_uarch, execute_shard, prepare_sw_campaign, prepare_uarch_campaign,
        run_sw_campaign, run_uarch_campaign, CampaignCfg, ClassRates, EngineCfg, EngineError,
        Table, TrendItem, Watchdog,
    };
    pub use vgpu_arch::{CmpOp, Kernel, KernelBuilder, LaunchConfig, MemSpace, Operand};
    pub use vgpu_sim::{
        Budget, FaultPlan, Gpu, GpuConfig, HwStructure, Mode, SwFault, SwFaultKind, UarchFault,
    };
}
