//! `gpu-reliability` — command-line front end for the reproduction.
//!
//! ```text
//! gpu-reliability list
//! gpu-reliability golden   --app VA [--tmr] [--functional] [--sms N]
//! gpu-reliability campaign --app VA --layer avf|svf|pvf [-n N] [--tmr] [--seed S]
//! ```

use gpu_reliability::prelude::*;
use relia::{error_margin, run_pvf_campaign, Confidence};
use vgpu_sim::HwStructure;

fn usage() -> ! {
    eprintln!(
        "usage:\n  gpu-reliability list\n  gpu-reliability golden --app <NAME> [--tmr] [--functional] [--sms N]\n  gpu-reliability campaign --app <NAME> --layer avf|svf|pvf [-n N] [--tmr] [--seed S] [--sms N]"
    );
    std::process::exit(2)
}

struct Opts {
    app: Option<String>,
    layer: String,
    n: usize,
    seed: u64,
    tmr: bool,
    functional: bool,
    sms: u32,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        app: None,
        layer: "avf".into(),
        n: 200,
        seed: 0xC0FFEE,
        tmr: false,
        functional: false,
        sms: 4,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                o.app = Some(args.get(i + 1).unwrap_or_else(|| usage()).clone());
                i += 2;
            }
            "--layer" => {
                o.layer = args.get(i + 1).unwrap_or_else(|| usage()).clone();
                i += 2;
            }
            "-n" => {
                o.n = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                o.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--sms" => {
                o.sms = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--tmr" => {
                o.tmr = true;
                i += 1;
            }
            "--functional" => {
                o.functional = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    o
}

fn find_app(name: &str) -> Box<dyn Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown app {name:?}; try `gpu-reliability list`");
            std::process::exit(2)
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            println!("{:<12} kernels", "app");
            for b in all_benchmarks() {
                println!("{:<12} {}", b.name(), b.kernels().join(" "));
            }
        }
        "golden" => {
            let o = parse(&args[1..]);
            let app = find_app(o.app.as_deref().unwrap_or_else(|| usage()));
            let mode = if o.functional {
                Mode::Functional
            } else {
                Mode::Timed
            };
            let mut cfg = GpuConfig::volta_scaled(o.sms);
            cfg.num_sms = o.sms;
            let g = kernels::golden_run(
                app.as_ref(),
                &cfg,
                Variant {
                    mode,
                    hardened: o.tmr,
                },
            );
            println!(
                "{} golden ({}{}): total cost {} ({}), {} launches, output {} words",
                app.name(),
                if o.functional { "functional" } else { "timed" },
                if o.tmr { ", TMR" } else { "" },
                g.total_cost,
                if o.functional { "instrs" } else { "cycles" },
                g.records.len(),
                g.output.len()
            );
            for (i, r) in g.records.iter().enumerate() {
                let s = &r.stats;
                println!(
                    "  #{i:<3} {}{}  cycles={:<8} warp_instrs={:<8} thr_instrs={:<9} occ={:>5.1}% l1d_mr={:>5.1}% l2_mr={:>5.1}%",
                    app.kernels()[r.kernel_idx],
                    if r.is_vote { "(vote)" } else { "" },
                    s.cycles,
                    s.warp_instrs,
                    s.thread_instrs,
                    s.occupancy() * 100.0,
                    s.l1d.miss_rate() * 100.0,
                    s.l2.miss_rate() * 100.0
                );
            }
        }
        "campaign" => {
            let o = parse(&args[1..]);
            let app = find_app(o.app.as_deref().unwrap_or_else(|| usage()));
            let mut cfg = CampaignCfg::new(o.n, o.n, o.seed);
            cfg.gpu = GpuConfig::volta_scaled(o.sms);
            eprintln!(
                "{} injections/target (±{:.2}% @99%)",
                o.n,
                error_margin(o.n, Confidence::C99) * 100.0
            );
            match o.layer.as_str() {
                "avf" => {
                    let r = relia::run_uarch_campaign(app.as_ref(), &cfg, o.tmr);
                    for k in &r.kernels {
                        let c = k.chip_avf(&cfg.gpu);
                        print!(
                            "{} {}: chip AVF {:.4}% (sdc {:.4}, to {:.4}, due {:.4})  per-structure:",
                            r.app, k.kernel, c.total() * 100.0,
                            c.sdc * 100.0, c.timeout * 100.0, c.due * 100.0
                        );
                        for h in HwStructure::ALL {
                            print!(" {}={:.4}%", h.label(), k.avf(h).total() * 100.0);
                        }
                        println!();
                    }
                    println!("app AVF = {:.4}%", r.app_avf(&cfg.gpu).total() * 100.0);
                }
                "svf" => {
                    let r = relia::run_sw_campaign(app.as_ref(), &cfg, o.tmr);
                    for k in &r.kernels {
                        let s = k.svf();
                        println!(
                            "{} {}: SVF {:.2}% (sdc {:.2}, to {:.2}, due {:.2})  SVF-LD {:.2}%",
                            r.app,
                            k.kernel,
                            s.total() * 100.0,
                            s.sdc * 100.0,
                            s.timeout * 100.0,
                            s.due * 100.0,
                            k.svf_ld().total() * 100.0
                        );
                    }
                    println!("app SVF = {:.2}%", r.app_svf().total() * 100.0);
                }
                "pvf" => {
                    let r = run_pvf_campaign(app.as_ref(), &cfg, o.tmr);
                    for k in &r.kernels {
                        let s = k.pvf();
                        println!(
                            "{} {}: PVF {:.2}% (sdc {:.2}, to {:.2}, due {:.2})",
                            r.app,
                            k.kernel,
                            s.total() * 100.0,
                            s.sdc * 100.0,
                            s.timeout * 100.0,
                            s.due * 100.0
                        );
                    }
                    println!("app PVF = {:.2}%", r.app_pvf().total() * 100.0);
                }
                _ => usage(),
            }
        }
        _ => usage(),
    }
}
