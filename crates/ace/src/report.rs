//! Comparison and summary tables for the ACE estimator (the
//! `fig_ace_vs_avf` figure data).

use relia::report::{pct4, Table};
use vgpu_sim::{GpuConfig, HwStructure};

use crate::corr::{mean_abs_error, spearman};
use crate::estimate::AceAppEstimate;

/// One (kernel, structure) point of the estimator-vs-injection
/// cross-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    pub app: String,
    pub kernel: String,
    pub structure: HwStructure,
    /// Analytic ACE estimate (fraction).
    pub analytic: f64,
    /// Recorded injection AVF (fraction, derated unsafe total).
    pub injected: f64,
}

/// Per-kernel analytic AVF, one column per requested structure plus the
/// size-weighted chip AVF (all values in percent).
pub fn structure_table(
    estimates: &[AceAppEstimate],
    gpu: &GpuConfig,
    structures: &[HwStructure],
) -> Table {
    let mut headers = vec!["app", "kernel", "cycles"];
    headers.extend(structures.iter().map(|h| h.label()));
    headers.push("chip");
    let mut t = Table::new("ACE analytic AVF per kernel (%)", &headers);
    for est in estimates {
        for k in &est.kernels {
            let mut cells = vec![est.app.clone(), k.kernel.clone(), k.cycles.to_string()];
            cells.extend(structures.iter().map(|&h| pct4(k.avf(gpu, h))));
            cells.push(pct4(k.chip_avf(gpu)));
            t.row(cells);
        }
    }
    t
}

/// App-level analytic AVF from the final totals (includes the L2
/// end-of-application residual).
pub fn app_table(estimates: &[AceAppEstimate], gpu: &GpuConfig) -> Table {
    let mut headers = vec!["app", "cycles", "events"];
    headers.extend(HwStructure::ALL.iter().map(|h| h.label()));
    headers.push("chip");
    let mut t = Table::new("ACE analytic AVF per app (%)", &headers);
    for est in estimates {
        let mut cells = vec![
            est.app.clone(),
            est.total_cycles.to_string(),
            est.events.to_string(),
        ];
        cells.extend(
            HwStructure::ALL
                .iter()
                .map(|&h| pct4(est.app_avf_structure(gpu, h))),
        );
        cells.push(pct4(est.app_avf(gpu)));
        t.row(cells);
    }
    t
}

/// The cross-validation table: one row per (kernel, structure) point with
/// both estimates and the absolute error, followed by per-structure and
/// overall summary rows carrying Spearman rank correlation and mean
/// absolute error. This is the `fig_ace_vs_avf.csv` payload.
pub fn comparison_table(rows: &[CompareRow]) -> Table {
    let mut t = Table::new(
        "ACE analytic AVF vs injection AVF",
        &[
            "app",
            "kernel",
            "structure",
            "ace_avf_pct",
            "inj_avf_pct",
            "abs_err_pct",
            "spearman",
        ],
    );
    for r in rows {
        t.row(vec![
            r.app.clone(),
            r.kernel.clone(),
            r.structure.label().to_string(),
            pct4(r.analytic),
            pct4(r.injected),
            pct4((r.analytic - r.injected).abs()),
            String::new(),
        ]);
    }
    let summary = |t: &mut Table, tag: &str, pts: &[&CompareRow]| {
        let xs: Vec<f64> = pts.iter().map(|r| r.analytic).collect();
        let ys: Vec<f64> = pts.iter().map(|r| r.injected).collect();
        let rho = spearman(&xs, &ys).map_or_else(|| "n/a".into(), |v| format!("{v:.4}"));
        t.row(vec![
            "SUMMARY".into(),
            "-".into(),
            tag.into(),
            "-".into(),
            "-".into(),
            pct4(mean_abs_error(&xs, &ys)),
            rho,
        ]);
    };
    for &h in &HwStructure::ALL {
        let pts: Vec<&CompareRow> = rows.iter().filter(|r| r.structure == h).collect();
        if !pts.is_empty() {
            summary(&mut t, h.label(), &pts);
        }
    }
    let all: Vec<&CompareRow> = rows.iter().collect();
    if !all.is_empty() {
        summary(&mut t, "ALL", &all);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: &str, h: HwStructure, a: f64, i: f64) -> CompareRow {
        CompareRow {
            app: "App".into(),
            kernel: k.into(),
            structure: h,
            analytic: a,
            injected: i,
        }
    }

    #[test]
    fn comparison_table_appends_summaries() {
        let rows = vec![
            row("K1", HwStructure::RegFile, 0.10, 0.08),
            row("K2", HwStructure::RegFile, 0.30, 0.25),
            row("K3", HwStructure::RegFile, 0.05, 0.04),
            row("K1", HwStructure::L2, 0.01, 0.02),
        ];
        let t = comparison_table(&rows);
        // 4 data rows + RF summary + L2 summary + ALL summary.
        assert_eq!(t.rows.len(), 7);
        let rf = t
            .rows
            .iter()
            .find(|r| r[0] == "SUMMARY" && r[2] == "RF")
            .unwrap();
        // Perfect rank agreement on the three RF points.
        assert_eq!(rf[6], "1.0000");
        assert!(t.rows.iter().any(|r| r[2] == "ALL"));
    }

    #[test]
    fn structure_and_app_tables_have_matching_arity() {
        let gpu = GpuConfig::volta_scaled(2);
        let est = AceAppEstimate {
            app: "VA".into(),
            kernels: vec![crate::estimate::AceKernelEstimate {
                kernel: "K1".into(),
                cycles: 10,
                ace_word_cycles: [5, 0, 0, 0, 0],
            }],
            totals: [5, 0, 0, 0, 0],
            total_cycles: 10,
            events: 7,
        };
        let t = structure_table(&[est.clone()], &gpu, &HwStructure::ALL);
        assert_eq!(t.headers.len(), 3 + 5 + 1);
        assert_eq!(t.rows.len(), 1);
        let a = app_table(&[est], &gpu);
        assert_eq!(a.headers.len(), 3 + 5 + 1);
    }
}
