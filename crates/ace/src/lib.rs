//! ACE-style analytical vulnerability estimation.
//!
//! The injection campaigns in [`relia`] measure AVF statistically:
//! hundreds of full faulty simulations per structure per kernel. This
//! crate implements the classic analytical alternative (Mukherjee et
//! al.'s ACE analysis, and the analytic half of Hari et al.'s two-level
//! hybrid): a *single* fault-free timed run, instrumented by
//! [`vgpu_sim::lifetime::LifetimeTracker`], records how long each word of
//! each hardware structure holds a value that is still Architecturally
//! Correct Execution-critical — written and later read (or written back
//! to DRAM) rather than overwritten or dropped. Folding those intervals
//! into per-structure totals gives an analytic AVF estimate
//!
//! ```text
//! AVF_ACE(h) = ACE-bit-cycles(h) / (bits(h) × cycles)
//! ```
//!
//! with the same size-weighted chip aggregation and cycle-weighted
//! multi-kernel aggregation as `relia::metrics`. The estimate is an
//! upper bound on the masked-complement (every live interval is assumed
//! critical) and carries no SDC/DUE split — its value is *screening*:
//! rank kernels and structures cheaply, then spend the injection budget
//! where the analytic estimate is high or uncertain.
//!
//! [`estimate_app`] runs the instrumented simulation under the
//! `obs::Phase::AceRun` span so its cost is visible next to the campaign
//! phases; [`corr::spearman`] quantifies agreement with recorded
//! injection AVF; [`report`] renders the comparison tables behind
//! `results/fig_ace_vs_avf.csv`.

pub mod corr;
pub mod estimate;
pub mod report;

pub use corr::{mean_abs_error, pearson, ranks, spearman};
pub use estimate::{estimate_app, estimate_suite, AceAppEstimate, AceKernelEstimate};
pub use report::{app_table, comparison_table, structure_table, CompareRow};
