//! Rank correlation and error metrics for the estimator-vs-injection
//! cross-validation.

/// Tie-averaged ranks (1-based): equal values share the mean of the
/// rank positions they occupy.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) hold equal values; mean 1-based rank.
        let mean = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = mean;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation; `None` when fewer than two points or either
/// series has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson over tie-averaged ranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    pearson(&ranks(xs), &ranks(ys))
}

/// Mean absolute error between two series.
pub fn mean_abs_error(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().zip(ys).map(|(x, y)| (x - y).abs()).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn spearman_detects_monotone_agreement() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 4.0, 9.0, 16.0, 25.0]; // monotone, nonlinear
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = y.iter().rev().copied().collect();
        assert!((spearman(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_series_yield_none() {
        assert_eq!(spearman(&[1.0], &[2.0]), None);
        assert_eq!(spearman(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn mean_abs_error_basics() {
        assert_eq!(mean_abs_error(&[], &[]), 0.0);
        assert!((mean_abs_error(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-12);
    }
}
