//! Fold lifetime-tracker totals into analytic AVF estimates.

use kernels::{golden_run_ace, Benchmark};
use obs::Phase;
use vgpu_sim::{GpuConfig, HwStructure};

/// Analytic per-kernel estimate from the single instrumented run.
#[derive(Debug, Clone, PartialEq)]
pub struct AceKernelEstimate {
    /// Kernel display name ("K1", ...).
    pub kernel: String,
    /// Golden cycles attributed to this kernel's launches.
    pub cycles: u64,
    /// ACE word-cycles per structure (`HwStructure::ALL` order),
    /// attributed from per-launch tracker deltas.
    pub ace_word_cycles: [u64; 5],
}

impl AceKernelEstimate {
    fn idx(h: HwStructure) -> usize {
        HwStructure::ALL.iter().position(|&x| x == h).unwrap()
    }

    /// Analytic AVF of one structure:
    /// `ACE-bit-cycles / (structure_bits × kernel_cycles)`, clamped to 1
    /// (word-granular accounting can over-approximate short overlaps).
    pub fn avf(&self, gpu: &GpuConfig, h: HwStructure) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let ace_bits = self.ace_word_cycles[Self::idx(h)] as f64 * 32.0;
        let denom = gpu.structure_bits(h) as f64 * self.cycles as f64;
        (ace_bits / denom).min(1.0)
    }

    /// Size-weighted analytic AVF over a set of structures (mirrors
    /// `UarchKernelResult::avf_over`).
    pub fn avf_over(&self, gpu: &GpuConfig, set: &[HwStructure]) -> f64 {
        let total_bits: u64 = set.iter().map(|&h| gpu.structure_bits(h)).sum();
        set.iter()
            .map(|&h| self.avf(gpu, h) * gpu.structure_bits(h) as f64 / total_bits as f64)
            .sum()
    }

    /// Full-chip analytic AVF (all five structures, size-weighted).
    pub fn chip_avf(&self, gpu: &GpuConfig) -> f64 {
        self.avf_over(gpu, &HwStructure::ALL)
    }
}

/// Analytic estimate for a whole application.
#[derive(Debug, Clone, PartialEq)]
pub struct AceAppEstimate {
    pub app: String,
    pub kernels: Vec<AceKernelEstimate>,
    /// Final per-structure ACE word-cycle totals, including the L2
    /// intervals only closed at end of application (dirty lines written
    /// back count live; clean residents count dead).
    pub totals: [u64; 5],
    /// Total golden cycles of the application.
    pub total_cycles: u64,
    /// Lifetime events the tracker recorded (instrumentation volume).
    pub events: u64,
}

impl AceAppEstimate {
    /// App-level analytic AVF of one structure, computed from the final
    /// totals — unlike the cycle-weighted kernel mean, this includes the
    /// end-of-application L2 residual (output data awaiting writeback).
    pub fn app_avf_structure(&self, gpu: &GpuConfig, h: HwStructure) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let i = AceKernelEstimate::idx(h);
        let ace_bits = self.totals[i] as f64 * 32.0;
        (ace_bits / (gpu.structure_bits(h) as f64 * self.total_cycles as f64)).min(1.0)
    }

    /// App-level full-chip analytic AVF (size-weighted over structures).
    pub fn app_avf(&self, gpu: &GpuConfig) -> f64 {
        let total_bits = gpu.total_bits();
        HwStructure::ALL
            .iter()
            .map(|&h| {
                self.app_avf_structure(gpu, h) * gpu.structure_bits(h) as f64 / total_bits as f64
            })
            .sum()
    }
}

/// Run `bench` once, fault-free, with the lifetime tracker attached, and
/// fold the intervals into per-kernel and app-level analytic AVF. The
/// whole instrumented simulation is attributed to [`Phase::AceRun`] so
/// `obs` phase timings directly compare estimator cost against the
/// campaign's `faulty_run` cost.
pub fn estimate_app(bench: &dyn Benchmark, cfg: &GpuConfig) -> AceAppEstimate {
    obs::time_phase(Phase::AceRun, || {
        let ace = golden_run_ace(bench, cfg);
        let names = bench.kernels();
        let mut kernels: Vec<AceKernelEstimate> = names
            .iter()
            .map(|&n| AceKernelEstimate {
                kernel: n.to_string(),
                cycles: 0,
                ace_word_cycles: [0; 5],
            })
            .collect();
        for (r, delta) in ace.golden.records.iter().zip(&ace.per_launch) {
            let k = &mut kernels[r.kernel_idx];
            k.cycles += r.stats.cycles;
            for (acc, d) in k.ace_word_cycles.iter_mut().zip(delta) {
                *acc += d;
            }
        }
        obs::counter_add("ace_runs_total", &[("app", bench.name())], 1);
        obs::counter_add(
            "ace_lifetime_events_total",
            &[("app", bench.name())],
            ace.events,
        );
        AceAppEstimate {
            app: bench.name().to_string(),
            kernels,
            totals: ace.totals,
            total_cycles: ace.golden.total_cost,
            events: ace.events,
        }
    })
}

/// [`estimate_app`] over a benchmark list.
pub fn estimate_suite(benches: &[Box<dyn Benchmark>], cfg: &GpuConfig) -> Vec<AceAppEstimate> {
    benches
        .iter()
        .map(|b| estimate_app(b.as_ref(), cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(gpu: &GpuConfig) -> AceKernelEstimate {
        // Fill exactly half the RF bit-cycles for 100 cycles.
        let rf_words = gpu.structure_bits(HwStructure::RegFile) / 32;
        AceKernelEstimate {
            kernel: "K1".into(),
            cycles: 100,
            ace_word_cycles: [rf_words * 50, 0, 0, 0, 0],
        }
    }

    #[test]
    fn avf_is_ace_share_of_bit_cycles() {
        let gpu = GpuConfig::volta_scaled(2);
        let k = synthetic(&gpu);
        assert!((k.avf(&gpu, HwStructure::RegFile) - 0.5).abs() < 1e-12);
        assert_eq!(k.avf(&gpu, HwStructure::L2), 0.0);
        // Chip AVF is the size-weighted mix.
        let w = gpu.structure_bits(HwStructure::RegFile) as f64 / gpu.total_bits() as f64;
        assert!((k.chip_avf(&gpu) - 0.5 * w).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_and_overflow_are_guarded() {
        let gpu = GpuConfig::volta_scaled(2);
        let mut k = synthetic(&gpu);
        k.cycles = 0;
        assert_eq!(k.avf(&gpu, HwStructure::RegFile), 0.0);
        k.cycles = 1;
        k.ace_word_cycles[0] = u64::MAX / 64; // way past bits×cycles
        assert_eq!(k.avf(&gpu, HwStructure::RegFile), 1.0);
    }

    #[test]
    fn estimate_app_attributes_all_kernel_cycles() {
        let gpu = GpuConfig::volta_scaled(2);
        let bench = kernels::apps::va::Va;
        let est = estimate_app(&bench, &gpu);
        assert_eq!(est.kernels.len(), 1);
        assert_eq!(
            est.kernels.iter().map(|k| k.cycles).sum::<u64>(),
            est.total_cycles
        );
        assert!(est.kernels[0].avf(&gpu, HwStructure::RegFile) > 0.0);
        // Deterministic across reruns.
        let again = estimate_app(&bench, &gpu);
        assert_eq!(est, again);
    }
}
