//! Tracker on/off differential: attaching the ACE lifetime tracker must
//! be invisible — byte-identical functional outputs, identical cycle
//! counts and statistics, and unchanged injection-campaign outcomes.

use kernels::{all_benchmarks, golden_run, golden_run_ace, Variant};
use relia::{execute_shard, prepare_uarch_campaign, records_fingerprint, CampaignCfg, EngineCfg};
use vgpu_sim::GpuConfig;

#[test]
fn tracker_is_invisible_to_every_golden_run() {
    let cfg = GpuConfig::volta_scaled(4);
    for b in all_benchmarks() {
        let plain = golden_run(b.as_ref(), &cfg, Variant::TIMED);
        let ace = golden_run_ace(b.as_ref(), &cfg);
        assert_eq!(plain.output, ace.golden.output, "{} output", b.name());
        assert_eq!(
            plain.total_cost,
            ace.golden.total_cost,
            "{} total cycles",
            b.name()
        );
        assert_eq!(plain.records.len(), ace.golden.records.len());
        for (p, a) in plain.records.iter().zip(&ace.golden.records) {
            assert_eq!(p.stats, a.stats, "{} per-launch stats", b.name());
        }
        // The instrumentation itself did run.
        assert!(ace.events > 0, "{} recorded no lifetime events", b.name());
    }
}

#[test]
fn ace_runs_do_not_perturb_injection_campaigns() {
    let cfg = CampaignCfg::new(6, 6, 0xD1FF);
    let bench = kernels::apps::va::Va;
    let prep = prepare_uarch_campaign(&bench, &cfg, false);
    let before = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();

    // An instrumented run in between must not leak any state into a
    // fresh campaign: same plan fingerprint, byte-identical records.
    let est = ace::estimate_app(&bench, &cfg.gpu);
    assert!(est.events > 0);

    let prep2 = prepare_uarch_campaign(&bench, &cfg, false);
    assert_eq!(prep.plan.fingerprint(), prep2.plan.fingerprint());
    let after = execute_shard(&prep2, &EngineCfg::single_shot()).unwrap();
    assert_eq!(records_fingerprint(&before), records_fingerprint(&after));
    assert_eq!(before, after);
}
