//! Property tests for the statistics engine: the Wilson interval's
//! containment/shrinkage laws, seed-determinism of the bootstrap, and
//! the stratified-vs-pooled consistency of the two-level propagation.

use proptest::prelude::*;
use relia::Confidence;
use stat::{bootstrap_weighted_ci, weighted_rate, wilson, StratumStats, WeightedStratum};

fn confs() -> [Confidence; 3] {
    [Confidence::C90, Confidence::C95, Confidence::C99]
}

proptest! {
    /// The Wilson interval always contains the point estimate, stays
    /// inside [0, 1], and is properly ordered — for any (successes, n).
    #[test]
    fn wilson_contains_the_point_estimate(n in 0u64..4000, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac).round() as u64;
        for conf in confs() {
            let i = wilson(k, n, conf);
            prop_assert!(i.lo.is_finite() && i.hi.is_finite());
            prop_assert!((0.0..=1.0).contains(&i.lo) && (0.0..=1.0).contains(&i.hi));
            prop_assert!(i.lo <= i.hi);
            if n > 0 {
                prop_assert!(i.contains(k as f64 / n as f64), "{i:?} vs {k}/{n}");
            } else {
                prop_assert_eq!(i, stat::Interval::FULL);
            }
        }
    }

    /// More trials at the same observed rate ⇒ a strictly narrower
    /// interval: quadrupling (successes, n) keeps p̂ fixed and must
    /// shrink the half-width.
    #[test]
    fn wilson_narrows_with_more_evidence(n in 1u64..1000, k_frac in 0.0f64..1.0) {
        let k = ((n as f64) * k_frac).round() as u64;
        for conf in confs() {
            let small = wilson(k, n, conf);
            let big = wilson(4 * k, 4 * n, conf);
            prop_assert!(
                big.half_width() < small.half_width(),
                "4x evidence must narrow: {small:?} -> {big:?} (k={k}, n={n})"
            );
        }
    }

    /// Higher confidence ⇒ wider interval, at every sample size.
    #[test]
    fn wilson_widens_with_confidence(n in 1u64..2000, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac).round() as u64;
        let w90 = wilson(k, n, Confidence::C90).half_width();
        let w95 = wilson(k, n, Confidence::C95).half_width();
        let w99 = wilson(k, n, Confidence::C99).half_width();
        prop_assert!(w90 <= w95 && w95 <= w99, "{w90} {w95} {w99}");
    }

    /// The bootstrap is a pure function of (strata, reps, seed, conf):
    /// identical inputs replay the identical interval, and the interval
    /// is ordered and inside [0, 1].
    #[test]
    fn bootstrap_is_deterministic_under_a_fixed_seed(
        strata in prop::collection::vec((0u64..60, 0u64..60, 0.0f64..1.0), 1..8),
        seed in any::<u64>(),
    ) {
        let strata: Vec<WeightedStratum> = strata
            .into_iter()
            .map(|(a, b, w)| WeightedStratum {
                failures: a.min(b),
                n: b,
                weight: w,
            })
            .collect();
        let x = bootstrap_weighted_ci(&strata, 120, seed, Confidence::C95);
        let y = bootstrap_weighted_ci(&strata, 120, seed, Confidence::C95);
        prop_assert_eq!(x, y, "seeded bootstrap must replay exactly");
        prop_assert!(x.lo <= x.hi);
        prop_assert!((0.0..=1.0).contains(&x.lo) && (0.0..=1.0).contains(&x.hi));
    }

    /// When every stratum observes the same rate, the stratified estimate
    /// collapses to the pooled one — stratification must never bias the
    /// point estimate, only its variance.
    #[test]
    fn stratified_equals_pooled_under_a_shared_rate(
        k in 0u64..40,
        extra in 0u64..40,
        weights in prop::collection::vec(0.01f64..1.0, 1..10),
        scales in prop::collection::vec(1u64..6, 1..10),
    ) {
        let n = k + extra + 1;
        let total_w: f64 = weights.iter().sum();
        let strata: Vec<WeightedStratum> = weights
            .iter()
            .zip(scales.iter().cycle())
            .map(|(&w, &m)| WeightedStratum {
                // Same p̂ = k/n in every stratum, at different sizes.
                failures: k * m,
                n: n * m,
                weight: w / total_w,
            })
            .collect();
        let pooled = k as f64 / n as f64;
        prop_assert!(
            (weighted_rate(&strata) - pooled).abs() < 1e-9,
            "stratified {} vs pooled {}",
            weighted_rate(&strata),
            pooled
        );
    }

    /// StratumStats never emits NaN for any outcome sequence, including
    /// the empty and single-trial ones, and its CI obeys the Wilson laws.
    #[test]
    fn stratum_stats_are_total(outs in prop::collection::vec(0u8..4, 0..50)) {
        let mut s = StratumStats::default();
        for &o in &outs {
            s.record(match o {
                0 => kernels::Outcome::Masked,
                1 => kernels::Outcome::Sdc,
                2 => kernels::Outcome::Timeout,
                _ => kernels::Outcome::Due,
            });
        }
        prop_assert!(s.failure_rate().is_finite());
        prop_assert!(s.sdc_rate().is_finite());
        prop_assert!(s.failure_variance().is_finite());
        prop_assert!(s.failure_variance() >= 0.0);
        let ci = s.failure_ci(Confidence::C95);
        prop_assert!(ci.lo.is_finite() && ci.hi.is_finite() && ci.lo <= ci.hi);
        prop_assert!(ci.contains(s.failure_rate()));
        prop_assert_eq!(s.n() as usize, outs.len());
    }
}
