//! Confidence intervals for campaign rates: Wilson score intervals for
//! per-stratum binomial rates and a seeded bootstrap for weighted
//! combinations of strata (the propagated two-level estimate).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relia::Confidence;

/// A closed interval `[lo, hi] ⊆ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    /// The degenerate no-information interval.
    pub const FULL: Interval = Interval { lo: 0.0, hi: 1.0 };

    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// Wilson score interval for a binomial rate: `successes` out of `n`
/// trials at confidence `conf`. Unlike the Wald interval it never leaves
/// `[0, 1]` and stays honest at the extremes (`p̂ = 0` or `1`), which is
/// exactly where injection strata live (most faults are masked). With
/// `n = 0` there is no information and the interval collapses to
/// `[0, 1]` — NaN-free by construction, so empty adaptive strata cannot
/// poison a merge fold.
pub fn wilson(successes: u64, n: u64, conf: Confidence) -> Interval {
    debug_assert!(successes <= n, "successes {successes} > n {n}");
    if n == 0 {
        return Interval::FULL;
    }
    let n = n as f64;
    let p = successes as f64 / n;
    let z = conf.z();
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let hw = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Interval {
        lo: (center - hw).max(0.0),
        hi: (center + hw).min(1.0),
    }
}

/// One stratum of a weighted rate estimate: `failures` out of `n` trials,
/// contributing `weight × rate` to the combined estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedStratum {
    pub failures: u64,
    pub n: u64,
    pub weight: f64,
}

impl WeightedStratum {
    /// This stratum's contribution to the point estimate (`0` when it
    /// holds no trials — an empty stratum carries no evidence, not NaN).
    pub fn contribution(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.weight * self.failures as f64 / self.n as f64
        }
    }
}

/// Point estimate of a weighted combination of strata: `Σ wᵢ · p̂ᵢ`.
pub fn weighted_rate(strata: &[WeightedStratum]) -> f64 {
    strata.iter().map(WeightedStratum::contribution).sum()
}

/// Percentile-bootstrap confidence interval for [`weighted_rate`]: each
/// replicate resamples every stratum's failure count from
/// `Binomial(nᵢ, p̂ᵢ)` and recomputes the weighted sum; the interval is
/// the centred `conf` percentile span of the replicates. Deterministic
/// under a fixed `seed` (the replicate RNG is a seeded [`SmallRng`] and
/// strata are resampled in order), so the propagated CI is as
/// reproducible as the campaign itself.
pub fn bootstrap_weighted_ci(
    strata: &[WeightedStratum],
    reps: usize,
    seed: u64,
    conf: Confidence,
) -> Interval {
    if reps == 0 || strata.iter().all(|s| s.n == 0) {
        return Interval::FULL;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut total = 0.0;
        for s in strata {
            if s.n == 0 {
                continue;
            }
            let p = s.failures as f64 / s.n as f64;
            // Binomial(n, p) as n Bernoulli draws: campaign strata are
            // small (tens to hundreds of trials), so this stays cheap and
            // avoids approximation error near p = 0, where strata live.
            let mut k = 0u64;
            for _ in 0..s.n {
                if rng.gen::<f64>() < p {
                    k += 1;
                }
            }
            total += s.weight * k as f64 / s.n as f64;
        }
        samples.push(total);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap samples are finite"));
    let tail = match conf {
        Confidence::C90 => 0.05,
        Confidence::C95 => 0.025,
        Confidence::C99 => 0.005,
    };
    let at = |q: f64| -> f64 {
        let i = ((reps - 1) as f64 * q).round() as usize;
        samples[i.min(reps - 1)]
    };
    // clamp (not one-sided max/min) so the interval stays ordered even
    // for weight vectors that push replicates outside [0, 1].
    Interval {
        lo: at(tail).clamp(0.0, 1.0),
        hi: at(1.0 - tail).clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_degenerate_and_extremes() {
        assert_eq!(wilson(0, 0, Confidence::C95), Interval::FULL);
        let z = wilson(0, 50, Confidence::C95);
        assert_eq!(z.lo, 0.0);
        assert!(z.hi > 0.0 && z.hi < 0.2, "p=0 upper bound {z:?}");
        let o = wilson(50, 50, Confidence::C95);
        assert_eq!(o.hi, 1.0);
        assert!(o.lo > 0.8, "p=1 lower bound {o:?}");
        // Single-trial strata stay finite and in [0, 1].
        for k in [0, 1] {
            let i = wilson(k, 1, Confidence::C99);
            assert!(i.lo.is_finite() && i.hi.is_finite());
            assert!(i.lo >= 0.0 && i.hi <= 1.0 && i.lo <= i.hi);
        }
    }

    #[test]
    fn wilson_matches_textbook_value() {
        // 15/100 at 95%: the standard worked example lands near
        // [0.093, 0.233].
        let i = wilson(15, 100, Confidence::C95);
        assert!((i.lo - 0.0932).abs() < 2e-3, "{i:?}");
        assert!((i.hi - 0.2327).abs() < 2e-3, "{i:?}");
    }

    #[test]
    fn bootstrap_is_seed_deterministic_and_covers_point() {
        let strata = [
            WeightedStratum {
                failures: 5,
                n: 40,
                weight: 0.6,
            },
            WeightedStratum {
                failures: 1,
                n: 25,
                weight: 0.4,
            },
        ];
        let a = bootstrap_weighted_ci(&strata, 500, 42, Confidence::C95);
        let b = bootstrap_weighted_ci(&strata, 500, 42, Confidence::C95);
        assert_eq!(a, b, "same seed, same interval");
        let p = weighted_rate(&strata);
        assert!(a.contains(p), "CI {a:?} covers the point estimate {p}");
    }

    #[test]
    fn bootstrap_of_empty_strata_is_full() {
        let empty = [WeightedStratum {
            failures: 0,
            n: 0,
            weight: 1.0,
        }];
        assert_eq!(
            bootstrap_weighted_ci(&empty, 100, 1, Confidence::C95),
            Interval::FULL
        );
        assert_eq!(weighted_rate(&empty), 0.0);
    }
}
