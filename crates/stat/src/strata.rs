//! NaN-hardened per-stratum aggregation for adaptive campaigns.
//!
//! Adaptive waves routinely produce strata with zero or one trial (a
//! stratum that converged in wave 0, or whose eligible population is
//! empty). Every statistic here is total: means and variances of empty
//! or single-trial strata are `0.0`, never NaN, and the confidence
//! interval of an empty stratum collapses to `[0, 1]` — so folding such
//! strata into a merge can never poison the aggregate.

use relia::{ClassCounts, Confidence};

use crate::ci::{wilson, Interval};

/// Outcome statistics of one (kernel, target) stratum, safe to fold at
/// any trial count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StratumStats {
    pub counts: ClassCounts,
}

impl StratumStats {
    /// Trials recorded so far.
    pub fn n(&self) -> u64 {
        self.counts.total() as u64
    }

    /// Non-masked outcomes (the binomial "successes" of the failure-rate
    /// estimate).
    pub fn failures(&self) -> u64 {
        (self.counts.sdc + self.counts.timeout + self.counts.due) as u64
    }

    /// Failure-rate point estimate; `0.0` (not NaN) when empty.
    pub fn failure_rate(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.failures() as f64 / self.n() as f64
        }
    }

    /// SDC-rate point estimate; `0.0` (not NaN) when empty.
    pub fn sdc_rate(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.counts.sdc as f64 / self.n() as f64
        }
    }

    /// Unbiased sample variance of the per-trial failure indicator:
    /// `n·p̂(1−p̂)/(n−1)`. Zero-trial and single-trial strata have no
    /// dispersion information; both return `0.0`, never NaN.
    pub fn failure_variance(&self) -> f64 {
        let n = self.n();
        if n <= 1 {
            return 0.0;
        }
        let p = self.failure_rate();
        n as f64 * p * (1.0 - p) / (n - 1) as f64
    }

    /// Wilson CI of the failure rate; `[0, 1]` when empty.
    pub fn failure_ci(&self, conf: Confidence) -> Interval {
        wilson(self.failures(), self.n(), conf)
    }

    /// Wilson CI of the SDC rate; `[0, 1]` when empty.
    pub fn sdc_ci(&self, conf: Confidence) -> Interval {
        wilson(self.counts.sdc as u64, self.n(), conf)
    }

    /// Fold another stratum's counts in (the shard/wave merge fold).
    pub fn merge(&mut self, o: &StratumStats) {
        self.counts.add(&o.counts);
    }

    pub fn record(&mut self, outcome: kernels::Outcome) {
        self.counts.record(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::Outcome;

    #[test]
    fn empty_stratum_is_nan_free_and_degenerate() {
        let s = StratumStats::default();
        assert_eq!(s.n(), 0);
        assert_eq!(s.failure_rate(), 0.0);
        assert_eq!(s.sdc_rate(), 0.0);
        assert_eq!(s.failure_variance(), 0.0);
        assert!(s.failure_rate().is_finite() && s.failure_variance().is_finite());
        assert_eq!(s.failure_ci(Confidence::C95), Interval::FULL);
        assert_eq!(s.sdc_ci(Confidence::C99), Interval::FULL);
    }

    #[test]
    fn single_trial_stratum_is_finite() {
        for o in [Outcome::Masked, Outcome::Sdc] {
            let mut s = StratumStats::default();
            s.record(o);
            assert_eq!(s.n(), 1);
            assert!(s.failure_rate().is_finite());
            assert_eq!(s.failure_variance(), 0.0, "n=1 has no dispersion");
            let ci = s.failure_ci(Confidence::C95);
            assert!(ci.lo.is_finite() && ci.hi.is_finite());
            assert!(ci.half_width() < 0.5, "one trial is evidence: {ci:?}");
        }
    }

    #[test]
    fn merging_empty_strata_never_poisons_the_fold() {
        let mut acc = StratumStats::default();
        let mut live = StratumStats::default();
        for _ in 0..7 {
            live.record(Outcome::Masked);
        }
        for _ in 0..3 {
            live.record(Outcome::Sdc);
        }
        acc.merge(&StratumStats::default());
        acc.merge(&live);
        acc.merge(&StratumStats::default());
        assert_eq!(acc.n(), 10);
        assert!((acc.failure_rate() - 0.3).abs() < 1e-12);
        assert!((acc.sdc_rate() - 0.3).abs() < 1e-12);
        assert!(acc.failure_variance() > 0.0);
        // Merge is commutative on counts: fold order cannot matter.
        let mut rev = StratumStats::default();
        rev.merge(&live);
        rev.merge(&StratumStats::default());
        assert_eq!(acc, rev);
    }

    #[test]
    fn variance_matches_bernoulli_formula() {
        let mut s = StratumStats::default();
        for _ in 0..6 {
            s.record(Outcome::Masked);
        }
        for _ in 0..4 {
            s.record(Outcome::Due);
        }
        // n=10, p=0.4: 10·0.24/9
        assert!((s.failure_variance() - 10.0 * 0.24 / 9.0).abs() < 1e-12);
    }
}
