//! The two-level statistical SDC estimator (the Hari et al. relyzer
//! family of models, Section II-C of the paper's related work): instead
//! of injecting blindly into the whole dynamic instruction stream, the
//! stream is partitioned into instruction classes, a small stratified
//! sample is injected per class, and the class-level failure rates are
//! propagated back up through the class population shares to a
//! kernel-level and application-level estimate — with honest confidence
//! intervals at every level (Wilson per class, percentile bootstrap for
//! the propagated estimate).
//!
//! The class strata reuse the deterministic plan/execute engine end to
//! end: a two-level campaign is an ordinary [`prepare_sw_kinds`] plan
//! over [`SwFaultKind::DestClass`] sub-campaigns, so checkpoints, shard
//! merges, and dispatch leases all work unchanged.

use kernels::Benchmark;
use relia::{
    assemble_sw_counts, execute_shard, prepare_sw_kinds, sw_seed_tag, CampaignCfg, ClassCounts,
    Confidence, EngineCfg, EngineError, PreparedCampaign, TrialRecord,
};
use vgpu_arch::InstrClass;
use vgpu_sim::SwFaultKind;

use crate::ci::{bootstrap_weighted_ci, weighted_rate, wilson, Interval, WeightedStratum};

/// The per-class sub-campaigns of a two-level plan, in the stable
/// [`InstrClass::ALL`] order, with their frozen seed-derivation tags.
pub fn class_kinds() -> Vec<(SwFaultKind, u64)> {
    InstrClass::ALL
        .iter()
        .map(|&c| {
            let k = SwFaultKind::DestClass(c);
            (k, sw_seed_tag(k))
        })
        .collect()
}

/// Bootstrap replicates used by the top-level estimate unless the caller
/// picks a different budget.
pub const DEFAULT_BOOTSTRAP_REPS: usize = 1000;

/// One instruction-class stratum of one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEstimate {
    pub class: InstrClass,
    /// This class's share of the kernel's register-writing dynamic
    /// instructions (the propagation weight; shares sum to 1 over a
    /// kernel unless the kernel writes no registers at all).
    pub share: f64,
    pub counts: ClassCounts,
    /// Wilson interval of the class SDC rate.
    pub sdc_ci: Interval,
    /// Wilson interval of the class failure (non-masked) rate.
    pub failure_ci: Interval,
}

impl ClassEstimate {
    pub fn sdc_rate(&self) -> f64 {
        let t = self.counts.total();
        if t == 0 {
            0.0
        } else {
            self.counts.sdc as f64 / t as f64
        }
    }
}

/// Two-level estimate for one kernel: class rates propagated through
/// class shares.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEstimate {
    pub kernel: String,
    /// Dynamic thread instructions (the application-weighting metric,
    /// same rule as the SVF assembly).
    pub instrs: u64,
    /// Register-writing dynamic instructions (the class-share
    /// denominator).
    pub gp_dest_instrs: u64,
    pub classes: Vec<ClassEstimate>,
}

impl KernelEstimate {
    /// Kernel SDC estimate: `Σ share_c · SDC-rate_c`.
    pub fn sdc(&self) -> f64 {
        self.classes.iter().map(|c| c.share * c.sdc_rate()).sum()
    }

    /// Kernel failure estimate: `Σ share_c · FR_c`.
    pub fn failure(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.share * c.counts.failure_rate())
            .sum()
    }
}

/// The propagated application-level two-level estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelEstimate {
    pub app: String,
    pub kernels: Vec<KernelEstimate>,
    /// Application SDC point estimate (instruction-weighted kernel SDC).
    pub sdc: f64,
    /// Application failure-rate point estimate.
    pub failure: f64,
    /// Bootstrap CI of the propagated application SDC estimate.
    pub sdc_ci: Interval,
    /// Bootstrap CI of the propagated application failure estimate.
    pub failure_ci: Interval,
    /// Planned trials (all strata, including empty-population ones).
    pub planned: usize,
    /// Trials that actually resolved to an injection (non-trivial).
    pub injected: usize,
}

/// Flatten the (kernel, class) strata into weighted bootstrap strata.
/// `pick` selects the per-stratum success count (SDC-only or any
/// failure). Kernel weight is the instruction share; within a kernel the
/// class weight is its population share — exactly the propagation rule
/// of the point estimate, so `weighted_rate` of these strata *is* the
/// point estimate.
fn bootstrap_strata(
    kernels: &[KernelEstimate],
    pick: impl Fn(&ClassCounts) -> u64,
) -> Vec<WeightedStratum> {
    let total_instrs: u64 = kernels.iter().map(|k| k.instrs).sum();
    let mut out = Vec::new();
    for k in kernels {
        let kw = k.instrs as f64 / total_instrs.max(1) as f64;
        for c in &k.classes {
            out.push(WeightedStratum {
                failures: pick(&c.counts),
                n: c.counts.total() as u64,
                weight: kw * c.share,
            });
        }
    }
    out
}

/// Fold a complete two-level record set into the propagated estimate.
/// `prep` must be a plan over [`class_kinds`] (any subset order works —
/// classes are resolved by kind, not position). Deterministic: the
/// bootstrap seed is derived from the campaign seed.
pub fn assemble_two_level(
    prep: &PreparedCampaign,
    records: &[TrialRecord],
    conf: Confidence,
    reps: usize,
) -> Result<TwoLevelEstimate, EngineError> {
    let counts = assemble_sw_counts(prep, records)?;
    let kinds = &prep.plan.sw_kinds;
    let kernels: Vec<KernelEstimate> = prep
        .bench
        .kernels()
        .iter()
        .enumerate()
        .map(|(k_idx, k_name)| {
            let stats = prep.golden.kernel_stats(k_idx);
            let classes = kinds
                .iter()
                .enumerate()
                .filter_map(|(pos, &(kind, _))| {
                    let SwFaultKind::DestClass(class) = kind else {
                        return None;
                    };
                    let pop = class
                        .index()
                        .map(|i| stats.class_dest_instrs[i])
                        .unwrap_or(0);
                    let share = if stats.gp_dest_instrs == 0 {
                        0.0
                    } else {
                        pop as f64 / stats.gp_dest_instrs as f64
                    };
                    let c = counts[k_idx][pos];
                    // An empty class population contributes weight 0; its
                    // trivially masked trials carry no evidence and must
                    // not narrow the propagated CI, so drop its sample.
                    let c = if pop == 0 { ClassCounts::default() } else { c };
                    Some(ClassEstimate {
                        class,
                        share,
                        counts: c,
                        sdc_ci: wilson(c.sdc as u64, c.total() as u64, conf),
                        failure_ci: wilson(
                            (c.sdc + c.timeout + c.due) as u64,
                            c.total() as u64,
                            conf,
                        ),
                    })
                })
                .collect();
            KernelEstimate {
                kernel: k_name.to_string(),
                instrs: stats.thread_instrs,
                gp_dest_instrs: stats.gp_dest_instrs,
                classes,
            }
        })
        .collect();

    let sdc_strata = bootstrap_strata(&kernels, |c| c.sdc as u64);
    let fail_strata = bootstrap_strata(&kernels, |c| (c.sdc + c.timeout + c.due) as u64);
    let boot_seed = prep.plan.seed ^ 0x7701_e7e1u64.rotate_left(13);
    Ok(TwoLevelEstimate {
        app: prep.plan.app.clone(),
        sdc: weighted_rate(&sdc_strata),
        failure: weighted_rate(&fail_strata),
        sdc_ci: bootstrap_weighted_ci(&sdc_strata, reps, boot_seed, conf),
        failure_ci: bootstrap_weighted_ci(&fail_strata, reps, boot_seed ^ 1, conf),
        planned: prep.plan.len(),
        injected: prep
            .plan
            .trials
            .iter()
            .filter(|t| t.fault.is_some())
            .count(),
        kernels,
    })
}

/// Plan, execute (single shard), and assemble the two-level estimate for
/// one application. `cfg.n_sw` is the per-(kernel, class) sample size —
/// the whole point of the model is that it can be small.
pub fn estimate_two_level(
    bench: &dyn Benchmark,
    cfg: &CampaignCfg,
    conf: Confidence,
    reps: usize,
) -> TwoLevelEstimate {
    let prep = prepare_sw_kinds(bench, cfg, false, &class_kinds());
    let records = execute_shard(&prep, &EngineCfg::single_shot())
        .expect("single-shot execution performs no checkpoint I/O");
    assemble_two_level(&prep, &records, conf, reps).expect("a single shard covers the whole plan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::apps::va::Va;

    #[test]
    fn class_kinds_cover_all_classes_with_stable_tags() {
        let kinds = class_kinds();
        assert_eq!(kinds.len(), InstrClass::COUNT);
        for (i, &(kind, tag)) in kinds.iter().enumerate() {
            assert_eq!(kind, SwFaultKind::DestClass(InstrClass::ALL[i]));
            assert_eq!(tag, 20 + i as u64);
        }
    }

    #[test]
    fn two_level_estimate_is_deterministic_and_coherent() {
        let cfg = CampaignCfg::new(4, 6, 0xA11CE);
        let a = estimate_two_level(&Va, &cfg, Confidence::C95, 200);
        let b = estimate_two_level(&Va, &cfg, Confidence::C95, 200);
        assert_eq!(a, b, "same seed, same estimate");
        assert!(a.sdc.is_finite() && a.failure.is_finite());
        assert!(a.sdc <= a.failure + 1e-12, "SDC is a subset of failures");
        assert!(a.sdc_ci.contains(a.sdc), "CI covers the point estimate");
        assert!(a.failure_ci.contains(a.failure));
        assert!(a.injected <= a.planned);
        for k in &a.kernels {
            let share_sum: f64 = k.classes.iter().map(|c| c.share).sum();
            assert!(
                share_sum <= 1.0 + 1e-9,
                "class shares over-cover: {share_sum}"
            );
            if k.gp_dest_instrs > 0 {
                assert!(
                    (share_sum - 1.0).abs() < 1e-9,
                    "classes partition the register-writing stream: {share_sum}"
                );
            }
        }
    }

    #[test]
    fn propagated_point_equals_instr_weighted_kernel_estimates() {
        let cfg = CampaignCfg::new(4, 5, 0xBEE);
        let e = estimate_two_level(&Va, &cfg, Confidence::C95, 50);
        let total: u64 = e.kernels.iter().map(|k| k.instrs).sum();
        let by_hand: f64 = e
            .kernels
            .iter()
            .map(|k| k.sdc() * k.instrs as f64 / total.max(1) as f64)
            .sum();
        assert!((e.sdc - by_hand).abs() < 1e-12);
    }
}
