//! Adaptive, CI-driven campaign sizing: instead of a fixed `n` per
//! (kernel, target) stratum, trials are dispatched in deterministic
//! *waves* and each stratum stops as soon as its derated failure-rate
//! confidence interval is tight enough. Low-vulnerability strata (and
//! empty-population strata) converge after the first wave; only the
//! genuinely uncertain ones keep sampling — the trial-count savings the
//! paper's Section II-A sizing rule leaves on the table.
//!
//! Determinism contract: the trials of wave `w` depend only on
//! (seed, app, strata specs) — never on *how* earlier waves were
//! executed — because [`prepare_adaptive_wave`] derives per-trial seeds
//! from the same (kernel, target, ordinal) streams as the fixed-n
//! planners. Convergence decisions are pure functions of complete wave
//! record sets. So an adaptive campaign run single-shot, sharded,
//! killed-and-resumed, or farmed out over dispatch workers produces
//! byte-identical wave plans, records, and final intervals.

use kernels::Benchmark;
use relia::{
    assemble_uarch, dedupe_records, execute_shard, prepare_adaptive_wave, records_fingerprint,
    CampaignCfg, Confidence, EngineCfg, EngineError, Layer, PreparedCampaign, StratumSpec,
    TrialRecord, TrialTarget,
};
use vgpu_sim::{HwStructure, SwFaultKind};

use crate::strata::StratumStats;
use crate::twolevel::class_kinds;

/// How an adaptive campaign decides it is done.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveCfg {
    /// Target half-width of each stratum's *derated* failure-rate CI.
    pub ci_target: f64,
    /// Trials added to each unconverged stratum per wave.
    pub wave_size: usize,
    /// Hard per-stratum trial cap (a stratum stopping here is `capped`,
    /// not converged).
    pub max_per_stratum: usize,
    pub conf: Confidence,
}

impl AdaptiveCfg {
    pub fn new(ci_target: f64, wave_size: usize, max_per_stratum: usize) -> Self {
        AdaptiveCfg {
            ci_target,
            wave_size,
            max_per_stratum,
            conf: Confidence::C95,
        }
    }

    /// `Err(reason)` when the configuration cannot drive a terminating
    /// campaign (CLI layers surface this as a usage error).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.ci_target > 0.0 && self.ci_target < 1.0) {
            return Err(format!(
                "ci-target must be in (0, 1), got {}",
                self.ci_target
            ));
        }
        if self.wave_size == 0 {
            return Err("wave-size must be >= 1".into());
        }
        if self.max_per_stratum < self.wave_size {
            return Err(format!(
                "max-trials ({}) must be >= wave-size ({})",
                self.max_per_stratum, self.wave_size
            ));
        }
        Ok(())
    }
}

/// One (kernel, target) stratum of an adaptive campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveStratum {
    pub kernel_idx: usize,
    pub target: TrialTarget,
    pub stats: StratumStats,
    /// Trials executed (= the ordinal the next wave would start at).
    pub n: usize,
    /// CI derating: the structure's derating factor for uarch strata,
    /// `1.0` for software strata. Multiplies the raw Wilson half-width —
    /// a stratum whose failures are derated away needs no tight raw CI.
    pub derate: f64,
    /// The target population is empty (every planned trial is trivially
    /// masked); the true rate is exactly 0 and the stratum converges
    /// after its first wave regardless of the interval.
    pub empty: bool,
    /// Wave after which the stratum converged; `None` means it hit
    /// `max_per_stratum` without reaching the CI target.
    pub converged_wave: Option<u64>,
}

impl AdaptiveStratum {
    /// The stratum's current derated CI half-width (what the target is
    /// compared against).
    pub fn derated_halfwidth(&self, conf: Confidence) -> f64 {
        if self.empty {
            return 0.0;
        }
        self.derate * self.stats.failure_ci(conf).half_width()
    }

    fn converged(&self, acfg: &AdaptiveCfg) -> bool {
        self.n > 0 && (self.empty || self.derated_halfwidth(acfg.conf) <= acfg.ci_target)
    }
}

/// Outcome of one adaptive campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    pub app: String,
    pub layer: Layer,
    pub strata: Vec<AdaptiveStratum>,
    /// Waves executed.
    pub waves: u64,
    /// Order-sensitive digest of all wave-plan fingerprints.
    pub plans_fp: u64,
    /// Order-sensitive digest of all per-wave record fingerprints —
    /// byte-identical across single-shot / sharded / resumed / dispatched
    /// executions of the same campaign.
    pub records_fp: u64,
}

impl AdaptiveResult {
    /// Trials executed across all strata.
    pub fn total_trials(&self) -> usize {
        self.strata.iter().map(|s| s.n).sum()
    }

    /// Trials a uniform fixed-n design would need for the same guarantee:
    /// every stratum sized at the worst stratum's trial count.
    pub fn uniform_equivalent(&self) -> usize {
        let max_n = self.strata.iter().map(|s| s.n).max().unwrap_or(0);
        max_n * self.strata.len()
    }

    /// Trial-count savings factor vs the uniform design (`>= 1.0`).
    pub fn savings(&self) -> f64 {
        let t = self.total_trials();
        if t == 0 {
            1.0
        } else {
            self.uniform_equivalent() as f64 / t as f64
        }
    }

    pub fn all_converged(&self) -> bool {
        self.strata.iter().all(|s| s.converged_wave.is_some())
    }

    /// Worst derated CI half-width over the non-empty strata.
    pub fn max_halfwidth(&self, conf: Confidence) -> f64 {
        self.strata
            .iter()
            .map(|s| s.derated_halfwidth(conf))
            .fold(0.0, f64::max)
    }
}

/// The standard uarch stratification: every kernel × storage structure.
pub fn uarch_targets() -> Vec<TrialTarget> {
    HwStructure::ALL
        .iter()
        .map(|&h| TrialTarget::Structure(h))
        .collect()
}

/// The two-level software stratification: every kernel × instruction
/// class ([`class_kinds`]).
pub fn class_targets() -> Vec<TrialTarget> {
    class_kinds()
        .into_iter()
        .map(|(k, _)| TrialTarget::Fault(k))
        .collect()
}

/// The standard software stratification (dest-value + dest-value-load).
pub fn sw_targets() -> Vec<TrialTarget> {
    vec![
        TrialTarget::Fault(SwFaultKind::DestValue),
        TrialTarget::Fault(SwFaultKind::DestValueLoad),
    ]
}

fn fold_fp(acc: u64, x: u64) -> u64 {
    acc.rotate_left(7) ^ x
}

/// Validate that `records` exactly cover a wave plan (indices `0..len`,
/// no gaps; duplicates must agree) and return them in plan order.
fn complete_wave(
    plan_len: usize,
    records: &[TrialRecord],
) -> Result<Vec<TrialRecord>, EngineError> {
    let recs = dedupe_records(records)?;
    if let Some(r) = recs.iter().find(|r| r.idx >= plan_len) {
        return Err(EngineError::ForeignTrial { idx: r.idx });
    }
    if recs.len() < plan_len {
        return Err(EngineError::IncompleteCover {
            missing: plan_len - recs.len(),
            total: plan_len,
        });
    }
    Ok(recs)
}

/// Run an adaptive campaign, delegating each wave's execution to `exec`.
///
/// `exec` receives the prepared wave and its index and must return a
/// record set covering the wave plan (in any order; benign duplicates
/// from at-least-once execution are folded). [`execute_shard`] with any
/// `EngineCfg`, a merge of shard outputs, or a dispatch coordinator all
/// satisfy the contract — the decision loop is identical for every
/// execution strategy, which is what makes adaptive runs differentially
/// testable.
///
/// Strata are `targets × kernels`; all targets must belong to `layer`.
pub fn run_adaptive<E>(
    bench: &dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
    layer: Layer,
    targets: &[TrialTarget],
    acfg: &AdaptiveCfg,
    mut exec: E,
) -> Result<AdaptiveResult, EngineError>
where
    E: FnMut(&PreparedCampaign, u64) -> Result<Vec<TrialRecord>, EngineError>,
{
    assert!(
        acfg.validate().is_ok(),
        "invalid adaptive config: {:?}",
        acfg.validate()
    );
    let n_kernels = bench.kernels().len();
    let mut strata: Vec<AdaptiveStratum> = (0..n_kernels)
        .flat_map(|k_idx| {
            targets.iter().map(move |&target| AdaptiveStratum {
                kernel_idx: k_idx,
                target,
                stats: StratumStats::default(),
                n: 0,
                derate: 1.0,
                empty: false,
                converged_wave: None,
            })
        })
        .collect();

    let mut wave = 0u64;
    let mut plans_fp = 0u64;
    let mut records_fp = 0u64;
    loop {
        let pending: Vec<usize> = strata
            .iter()
            .enumerate()
            .filter(|(_, s)| s.converged_wave.is_none() && s.n < acfg.max_per_stratum)
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        let specs: Vec<StratumSpec> = pending
            .iter()
            .map(|&i| {
                let s = &strata[i];
                StratumSpec {
                    kernel_idx: s.kernel_idx,
                    target: s.target,
                    start: s.n,
                    count: acfg.wave_size.min(acfg.max_per_stratum - s.n),
                }
            })
            .collect();
        let prep = prepare_adaptive_wave(bench, cfg, hardened, layer, &specs, wave);
        plans_fp = fold_fp(plans_fp, prep.plan.fingerprint());
        let records = complete_wave(prep.plan.len(), &exec(&prep, wave)?)?;
        records_fp = fold_fp(records_fp, records_fingerprint(&records));

        // Wave 0 covers every stratum, so it is the one place to harvest
        // structure derating factors (uarch) and detect empty populations
        // (a stratum whose trials all resolved to no fault).
        if wave == 0 {
            let df = if layer == Layer::Uarch {
                Some(assemble_uarch(&prep, &records)?)
            } else {
                None
            };
            for &i in &pending {
                let s = &mut strata[i];
                if let (Some(app), TrialTarget::Structure(h)) = (&df, s.target) {
                    s.derate = app.kernels[s.kernel_idx].df_of(h);
                }
                s.empty = prep
                    .plan
                    .trials
                    .iter()
                    .filter(|t| t.kernel_idx == s.kernel_idx && t.target == s.target)
                    .all(|t| t.fault.is_none());
            }
        }

        for r in &records {
            let t = &prep.plan.trials[r.idx];
            let s = strata
                .iter_mut()
                .find(|s| s.kernel_idx == t.kernel_idx && s.target == t.target)
                .expect("wave trial belongs to a known stratum");
            s.stats.record(r.outcome);
        }
        for sp in &specs {
            let s = strata
                .iter_mut()
                .find(|s| s.kernel_idx == sp.kernel_idx && s.target == sp.target)
                .unwrap();
            s.n += sp.count;
            if s.converged(acfg) {
                s.converged_wave = Some(wave);
            }
        }

        let still_pending = strata
            .iter()
            .filter(|s| s.converged_wave.is_none() && s.n < acfg.max_per_stratum)
            .count() as u64;
        let max_hw = strata
            .iter()
            .filter(|s| s.converged_wave.is_none())
            .map(|s| s.derated_halfwidth(acfg.conf))
            .fold(0.0, f64::max);
        let app = bench.name();
        let layer_label = layer.label();
        obs::counter_add(
            "adaptive_waves_total",
            &[("app", app), ("layer", layer_label)],
            1,
        );
        obs::gauge_set(
            "adaptive_ci_halfwidth_micros",
            &[("app", app), ("layer", layer_label)],
            (max_hw * 1e6) as u64,
        );
        obs::gauge_set(
            "adaptive_pending_strata",
            &[("app", app), ("layer", layer_label)],
            still_pending,
        );
        obs::emit_wave(&obs::WaveEvent {
            app,
            layer: layer_label,
            wave,
            trials: prep.plan.len() as u64,
            pending: still_pending,
            strata: strata.len() as u64,
            max_halfwidth_micros: (max_hw * 1e6) as u64,
        });
        wave += 1;
    }

    Ok(AdaptiveResult {
        app: bench.name().to_string(),
        layer,
        strata,
        waves: wave,
        plans_fp,
        records_fp,
    })
}

/// [`run_adaptive`] with plain single-shot in-process wave execution.
pub fn run_adaptive_single(
    bench: &dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
    layer: Layer,
    targets: &[TrialTarget],
    acfg: &AdaptiveCfg,
) -> Result<AdaptiveResult, EngineError> {
    run_adaptive(bench, cfg, hardened, layer, targets, acfg, |prep, _| {
        execute_shard(prep, &EngineCfg::single_shot())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::apps::va::Va;

    fn acfg() -> AdaptiveCfg {
        AdaptiveCfg::new(0.12, 8, 64)
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(AdaptiveCfg::new(0.1, 4, 16).validate().is_ok());
        assert!(AdaptiveCfg::new(0.0, 4, 16).validate().is_err());
        assert!(AdaptiveCfg::new(1.5, 4, 16).validate().is_err());
        assert!(AdaptiveCfg::new(0.1, 0, 16).validate().is_err());
        assert!(AdaptiveCfg::new(0.1, 8, 4).validate().is_err());
    }

    #[test]
    fn adaptive_uarch_terminates_and_is_deterministic() {
        let cfg = CampaignCfg::new(0, 0, 0xD0_0D);
        let a =
            run_adaptive_single(&Va, &cfg, false, Layer::Uarch, &uarch_targets(), &acfg()).unwrap();
        let b =
            run_adaptive_single(&Va, &cfg, false, Layer::Uarch, &uarch_targets(), &acfg()).unwrap();
        assert_eq!(a, b, "same seed, same campaign");
        assert!(a.waves >= 1);
        assert!(a.total_trials() > 0);
        for s in &a.strata {
            assert!(s.n <= 64, "cap respected: {}", s.n);
            if let Some(w) = s.converged_wave {
                assert!(w < a.waves);
            }
        }
        // Converged strata actually meet the target (or are empty/capped).
        for s in a.strata.iter().filter(|s| s.converged_wave.is_some()) {
            assert!(s.empty || s.derated_halfwidth(Confidence::C95) <= 0.12 + 1e-12);
        }
    }

    #[test]
    fn adaptive_matches_sharded_execution_byte_for_byte() {
        let cfg = CampaignCfg::new(0, 0, 0xD0_0D);
        let single =
            run_adaptive_single(&Va, &cfg, false, Layer::Uarch, &uarch_targets(), &acfg()).unwrap();
        let sharded = run_adaptive(
            &Va,
            &cfg,
            false,
            Layer::Uarch,
            &uarch_targets(),
            &acfg(),
            |prep, _| {
                let mut recs = Vec::new();
                for i in 0..3 {
                    recs.extend(execute_shard(prep, &EngineCfg::sharded(3, i))?);
                }
                Ok(recs)
            },
        )
        .unwrap();
        assert_eq!(single, sharded);
        assert_eq!(single.records_fp, sharded.records_fp);
        assert_eq!(single.plans_fp, sharded.plans_fp);
    }

    #[test]
    fn adaptive_sw_class_strata_converge_with_savings_structure() {
        let cfg = CampaignCfg::new(0, 0, 0x5EED);
        let r = run_adaptive_single(
            &Va,
            &cfg,
            false,
            Layer::Sw,
            &class_targets(),
            &AdaptiveCfg::new(0.2, 6, 48),
        )
        .unwrap();
        assert!(r.all_converged() || r.strata.iter().any(|s| s.n == 48));
        // Va has kernels with empty instruction classes: those strata
        // must converge after wave 0 with rate 0.
        let empties: Vec<_> = r.strata.iter().filter(|s| s.empty).collect();
        assert!(!empties.is_empty(), "Va has empty class strata");
        for s in &empties {
            assert_eq!(s.converged_wave, Some(0));
            assert_eq!(s.stats.failures(), 0);
        }
        assert!(r.savings() >= 1.0);
        assert_eq!(r.total_trials(), r.strata.iter().map(|s| s.n).sum());
    }
}
