//! Statistics engine for injection campaigns (docs/TWOLEVEL.md).
//!
//! Three layers, bottom-up:
//!
//! - [`ci`] — the interval machinery: Wilson score intervals for
//!   per-stratum binomial rates and a seeded percentile bootstrap for
//!   weighted combinations of strata. NaN-free by construction.
//! - [`twolevel`] — the two-level SDC estimator: the dynamic instruction
//!   stream is stratified into [`vgpu_arch::InstrClass`] classes, small
//!   per-class samples are injected through the ordinary plan/execute
//!   engine, and class rates propagate through population shares to
//!   kernel- and application-level estimates with bootstrap CIs.
//! - [`adaptive`] — CI-driven campaign sizing: deterministic trial waves
//!   per (kernel, target) stratum until every stratum's derated CI
//!   half-width meets the target, with per-wave plan fingerprints so
//!   checkpoints, shard merges, and dispatch leases stay byte-identical
//!   and resumable across execution strategies.

pub mod adaptive;
pub mod ci;
pub mod strata;
pub mod twolevel;

pub use adaptive::{
    class_targets, run_adaptive, run_adaptive_single, sw_targets, uarch_targets, AdaptiveCfg,
    AdaptiveResult, AdaptiveStratum,
};
pub use ci::{bootstrap_weighted_ci, weighted_rate, wilson, Interval, WeightedStratum};
pub use strata::StratumStats;
pub use twolevel::{
    assemble_two_level, class_kinds, estimate_two_level, ClassEstimate, KernelEstimate,
    TwoLevelEstimate, DEFAULT_BOOTSTRAP_REPS,
};
