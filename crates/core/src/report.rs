//! Plain-text and CSV report formatting for the figure/table generators.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table that also serializes to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// CSV serialization (quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to the other experiment outputs.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (c, &width) in cells.iter().zip(&w) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}")?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a fraction as a percentage with two decimals ("12.34").
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Format a fraction as a percentage with four decimals (small AVFs).
pub fn pct4(x: f64) -> String {
    format!("{:.4}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "20,5".into()]);
        let text = t.to_string();
        assert!(text.contains("== demo =="));
        assert!(text.contains("alpha"));
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"20,5\""), "comma cell quoted: {csv}");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.12345), "12.35");
        assert_eq!(pct4(0.0000123), "0.0012");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("relia_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        let p = dir.join("sub").join("t.csv");
        t.write_csv(&p).unwrap();
        assert!(std::fs::read_to_string(&p).unwrap().contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
