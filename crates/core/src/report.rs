//! Plain-text and CSV report formatting for the figure/table generators.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Row/header arity mismatch, reported by [`Table::try_row`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowArityError {
    pub table: String,
    pub expected: usize,
    pub got: usize,
}

impl fmt::Display for RowArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "table '{}': row has {} cells, header has {}",
            self.table, self.got, self.expected
        )
    }
}

impl std::error::Error for RowArityError {}

/// A simple column-aligned table that also serializes to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row whose arity must match the header.
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<(), RowArityError> {
        if cells.len() != self.headers.len() {
            return Err(RowArityError {
                table: self.title.clone(),
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Append a row, panicking on arity mismatch — the figure generators
    /// build rows from fixed-size literals, so a mismatch is a bug.
    pub fn row(&mut self, cells: Vec<String>) {
        self.try_row(cells).unwrap();
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// CSV serialization (RFC 4180: cells containing commas, quotes, or
    /// line breaks are quoted, with embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to the other experiment outputs.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (c, &width) in cells.iter().zip(&w) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}")?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Render an obs registry snapshot as report tables: one for counters,
/// one for gauges, one summarizing histograms (count / mean / p50 / p99).
/// Empty sections are omitted; the `BTreeMap`-backed snapshot keeps the
/// ordering deterministic.
pub fn metrics_tables(snap: &obs::Snapshot) -> Vec<Table> {
    let mut out = Vec::new();
    if !snap.counters.is_empty() {
        let mut t = Table::new("metrics: counters", &["counter", "value"]);
        for (k, v) in &snap.counters {
            t.row(vec![k.clone(), v.to_string()]);
        }
        out.push(t);
    }
    if !snap.gauges.is_empty() {
        let mut t = Table::new("metrics: gauges", &["gauge", "value"]);
        for (k, v) in &snap.gauges {
            t.row(vec![k.clone(), v.to_string()]);
        }
        out.push(t);
    }
    if !snap.histograms.is_empty() {
        let mut t = Table::new(
            "metrics: histograms",
            &["histogram", "count", "mean", "p50", "p99"],
        );
        let bound = |b: Option<u64>| b.map_or("inf".to_string(), |v| v.to_string());
        for (k, h) in &snap.histograms {
            t.row(vec![
                k.clone(),
                h.count.to_string(),
                format!("{:.1}", h.mean()),
                bound(h.quantile_bound(0.5)),
                bound(h.quantile_bound(0.99)),
            ]);
        }
        out.push(t);
    }
    out
}

/// Render the campaign phase profile (golden run / fault setup / faulty
/// run / classify) as a table. Phases that never ran are omitted.
pub fn phase_table(phases: &[obs::PhaseSnapshot]) -> Table {
    let mut t = Table::new("phase profile", &["phase", "calls", "total ms", "mean µs"]);
    for p in phases.iter().filter(|p| p.calls > 0) {
        t.row(vec![
            p.phase.label().to_string(),
            p.calls.to_string(),
            format!("{:.1}", p.total_ms()),
            format!("{:.1}", p.mean_us()),
        ]);
    }
    t
}

/// Format a fraction as a percentage with two decimals ("12.34").
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Format a fraction as a percentage with four decimals (small AVFs).
pub fn pct4(x: f64) -> String {
    format!("{:.4}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "20,5".into()]);
        let text = t.to_string();
        assert!(text.contains("== demo =="));
        assert!(text.contains("alpha"));
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"20,5\""), "comma cell quoted: {csv}");
    }

    #[test]
    fn csv_escapes_newlines_and_quotes() {
        let mut t = Table::new("esc", &["a", "b"]);
        t.row(vec!["line1\nline2".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"line1\nline2\""), "{csv}");
        assert!(csv.contains("\"say \"\"hi\"\"\""), "{csv}");
    }

    #[test]
    fn try_row_rejects_arity_mismatch() {
        let mut t = Table::new("demo", &["a", "b"]);
        assert!(t.try_row(vec!["1".into(), "2".into()]).is_ok());
        let err = t.try_row(vec!["only-one".into()]).unwrap_err();
        assert_eq!(err.expected, 2);
        assert_eq!(err.got, 1);
        assert!(err.to_string().contains("demo"));
        assert_eq!(t.rows.len(), 1, "bad row not appended");
    }

    #[test]
    fn metrics_and_phase_tables_render() {
        let r = obs::Registry::new();
        r.counter_add("inj", &[("app", "VA")], 3);
        r.gauge_set("workers", &[], 8);
        r.histogram_observe("wall", &[], &[10, 100], 7);
        let tables = metrics_tables(&r.snapshot());
        assert_eq!(tables.len(), 3);
        let text: String = tables.iter().map(|t| t.to_string()).collect();
        assert!(text.contains("inj{app=VA}"));
        assert!(text.contains("workers"));
        assert!(text.contains("wall"));
        assert!(metrics_tables(&obs::Registry::new().snapshot()).is_empty());

        let phases = vec![
            obs::PhaseSnapshot {
                phase: obs::Phase::GoldenRun,
                calls: 2,
                total_ns: 4_000_000,
            },
            obs::PhaseSnapshot {
                phase: obs::Phase::FaultyRun,
                calls: 0,
                total_ns: 0,
            },
        ];
        let t = phase_table(&phases);
        assert_eq!(t.rows.len(), 1, "idle phases omitted");
        assert_eq!(t.rows[0][0], "golden_run");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.12345), "12.35");
        assert_eq!(pct4(0.0000123), "0.0012");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("relia_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        let p = dir.join("sub").join("t.csv");
        t.write_csv(&p).unwrap();
        assert!(std::fs::read_to_string(&p).unwrap().contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
