//! Fault-effect bookkeeping and statistical-FI confidence machinery
//! (Section II-A of the paper).

use kernels::Outcome;

/// Outcome counts of one injection campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    pub masked: u32,
    pub sdc: u32,
    pub timeout: u32,
    pub due: u32,
}

impl ClassCounts {
    pub fn record(&mut self, o: Outcome) {
        match o {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Due => self.due += 1,
        }
    }

    pub fn total(&self) -> u32 {
        self.masked + self.sdc + self.timeout + self.due
    }

    /// Failure rate: the probability of any non-masked outcome —
    /// `FR = Pct(SDC) + Pct(Timeout) + Pct(DUE)`.
    pub fn failure_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.sdc + self.timeout + self.due) as f64 / t as f64
        }
    }

    /// Per-class fractions of all injections.
    pub fn rates(&self) -> ClassRates {
        let t = self.total().max(1) as f64;
        ClassRates {
            sdc: self.sdc as f64 / t,
            timeout: self.timeout as f64 / t,
            due: self.due as f64 / t,
        }
    }

    pub fn add(&mut self, o: &ClassCounts) {
        self.masked += o.masked;
        self.sdc += o.sdc;
        self.timeout += o.timeout;
        self.due += o.due;
    }
}

/// Non-masked class fractions (the stacked bars of the paper's figures).
/// Values may be derated/weighted and therefore do not need to sum to a
/// per-campaign fraction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassRates {
    pub sdc: f64,
    pub timeout: f64,
    pub due: f64,
}

impl ClassRates {
    /// The scalar vulnerability factor (SDC + Timeout + DUE).
    pub fn total(&self) -> f64 {
        self.sdc + self.timeout + self.due
    }

    pub fn scale(&self, f: f64) -> ClassRates {
        ClassRates {
            sdc: self.sdc * f,
            timeout: self.timeout * f,
            due: self.due * f,
        }
    }

    pub fn add(&mut self, o: &ClassRates) {
        self.sdc += o.sdc;
        self.timeout += o.timeout;
        self.due += o.due;
    }
}

/// Confidence level for the statistical-FI error margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    C90,
    C95,
    C99,
}

impl Confidence {
    /// Two-sided normal quantile of this confidence level (used by the
    /// worst-case margin below and by the Wilson/bootstrap intervals of
    /// the `stat` crate).
    pub fn z(&self) -> f64 {
        match self {
            Confidence::C90 => 1.6449,
            Confidence::C95 => 1.9600,
            Confidence::C99 => 2.5758,
        }
    }
}

/// Worst-case (p = 0.5) error margin of a statistical fault-injection
/// campaign with `n` samples (Leveugle et al., the paper's sizing rule:
/// 3,000 injections → 99% confidence, ±2.35%).
pub fn error_margin(n: usize, conf: Confidence) -> f64 {
    if n == 0 {
        return 1.0;
    }
    conf.z() * 0.5 / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_record_and_rates() {
        let mut c = ClassCounts::default();
        for _ in 0..70 {
            c.record(Outcome::Masked);
        }
        for _ in 0..20 {
            c.record(Outcome::Sdc);
        }
        for _ in 0..6 {
            c.record(Outcome::Timeout);
        }
        for _ in 0..4 {
            c.record(Outcome::Due);
        }
        assert_eq!(c.total(), 100);
        assert!((c.failure_rate() - 0.30).abs() < 1e-12);
        let r = c.rates();
        assert!((r.sdc - 0.20).abs() < 1e-12);
        assert!((r.timeout - 0.06).abs() < 1e-12);
        assert!((r.due - 0.04).abs() < 1e-12);
        assert!((r.total() - 0.30).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_are_safe() {
        let c = ClassCounts::default();
        assert_eq!(c.failure_rate(), 0.0);
        assert_eq!(c.rates().total(), 0.0);
    }

    #[test]
    fn paper_margin_reproduced() {
        // 3,000 injections at 99% confidence → ±2.35% (Section II-A).
        let m = error_margin(3000, Confidence::C99);
        assert!((m - 0.0235).abs() < 2e-4, "margin {m}");
        assert!(error_margin(0, Confidence::C99) >= 1.0);
        assert!(error_margin(100, Confidence::C90) < error_margin(100, Confidence::C99));
    }

    #[test]
    fn rates_scale_and_add() {
        let r = ClassRates {
            sdc: 0.2,
            timeout: 0.1,
            due: 0.1,
        };
        let s = r.scale(0.5);
        assert!((s.total() - 0.2).abs() < 1e-12);
        let mut acc = ClassRates::default();
        acc.add(&s);
        acc.add(&s);
        assert!((acc.sdc - 0.2).abs() < 1e-12);
    }
}
