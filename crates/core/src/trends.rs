//! Relative-vulnerability trend analysis (Table I of the paper).
//!
//! For every pair of workloads, the two methodologies agree (a
//! **consistent** trend) when they rank the pair's vulnerabilities the same
//! way, and disagree (an **opposite** trend) when the ranking flips.

/// Trend agreement between two metrics over all workload pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrendCount {
    pub consistent: usize,
    pub opposite: usize,
}

impl TrendCount {
    pub fn total(&self) -> usize {
        self.consistent + self.opposite
    }

    pub fn consistent_pct(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.consistent as f64 / self.total() as f64 * 100.0
        }
    }

    pub fn opposite_pct(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.opposite as f64 / self.total() as f64 * 100.0
        }
    }
}

/// A named workload with its two vulnerability estimates.
#[derive(Debug, Clone)]
pub struct TrendItem {
    pub name: String,
    pub a: f64,
    pub b: f64,
}

/// Count consistent/opposite ranking trends over all `C(n,2)` pairs.
/// Ties in either metric count as consistent (the rankings do not
/// contradict each other).
pub fn compare_pairs(items: &[TrendItem]) -> TrendCount {
    let mut t = TrendCount::default();
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let da = items[i].a - items[j].a;
            let db = items[i].b - items[j].b;
            if da * db >= 0.0 {
                t.consistent += 1;
            } else {
                t.opposite += 1;
            }
        }
    }
    t
}

/// The pairs that flip ranking, for diagnostics and the per-pair listings.
pub fn opposite_pairs(items: &[TrendItem]) -> Vec<(String, String)> {
    let mut v = Vec::new();
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let da = items[i].a - items[j].a;
            let db = items[i].b - items[j].b;
            if da * db < 0.0 {
                v.push((items[i].name.clone(), items[j].name.clone()));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(name: &str, a: f64, b: f64) -> TrendItem {
        TrendItem {
            name: name.into(),
            a,
            b,
        }
    }

    #[test]
    fn counts_pairs_correctly() {
        // a ranks: x < y < z ; b ranks: x < z < y → (y,z) flips.
        let items = vec![
            item("x", 1.0, 1.0),
            item("y", 2.0, 3.0),
            item("z", 3.0, 2.0),
        ];
        let t = compare_pairs(&items);
        assert_eq!(t.total(), 3);
        assert_eq!(t.consistent, 2);
        assert_eq!(t.opposite, 1);
        assert_eq!(
            opposite_pairs(&items),
            vec![("y".to_string(), "z".to_string())]
        );
    }

    #[test]
    fn ties_are_consistent() {
        let items = vec![item("x", 1.0, 5.0), item("y", 1.0, 9.0)];
        let t = compare_pairs(&items);
        assert_eq!(t.consistent, 1);
        assert_eq!(t.opposite, 0);
    }

    #[test]
    fn pair_count_matches_paper_sizes() {
        // 11 applications → 55 pairs; 23 kernels → 253 pairs.
        let apps: Vec<TrendItem> = (0..11)
            .map(|i| item(&format!("a{i}"), i as f64, 0.0))
            .collect();
        assert_eq!(compare_pairs(&apps).total(), 55);
        let kers: Vec<TrendItem> = (0..23)
            .map(|i| item(&format!("k{i}"), i as f64, 0.0))
            .collect();
        assert_eq!(compare_pairs(&kers).total(), 253);
    }

    #[test]
    fn percentages() {
        let t = TrendCount {
            consistent: 32,
            opposite: 23,
        };
        assert!((t.consistent_pct() - 58.18).abs() < 0.01);
        assert!((t.opposite_pct() - 41.81).abs() < 0.01);
        assert_eq!(TrendCount::default().consistent_pct(), 0.0);
    }
}
