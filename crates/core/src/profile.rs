//! Fault-free resource-utilization profiling — the Figure 3 metric set.

use kernels::GoldenRun;
use vgpu_sim::{GpuConfig, HwStructure};

/// The utilization metrics the paper correlates with vulnerability trends
/// (Figure 3's bar labels, in order).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UtilMetrics {
    pub occupancy: f64,
    pub rf_derating: f64,
    pub smem_derating: f64,
    pub l1d_accesses: f64,
    pub l1d_miss_rate: f64,
    pub l1d_misses: f64,
    pub l2_accesses: f64,
    pub l2_miss_rate: f64,
    pub l2_misses: f64,
    pub l2_pending_hits: f64,
    pub l2_reserv_fails: f64,
    pub load_instrs: f64,
    pub smem_instrs: f64,
    pub store_instrs: f64,
    pub mem_reads: f64,
    pub mem_writes: f64,
}

/// Metric labels, matching the field order of [`UtilMetrics::values`].
pub const METRIC_LABELS: [&str; 16] = [
    "Occupancy",
    "RF Derat. Factor",
    "SMEM Derat. Factor",
    "L1D Accesses",
    "L1D Miss Rate",
    "L1D Misses",
    "L2 Accesses",
    "L2 Miss Rate",
    "L2 Misses",
    "L2 Pending Hits",
    "L2 Reserv. Fails",
    "Load Instructions",
    "SMEM Instructions",
    "Store Instructions",
    "Memory Read",
    "Memory Write",
];

impl UtilMetrics {
    pub fn values(&self) -> [f64; 16] {
        [
            self.occupancy,
            self.rf_derating,
            self.smem_derating,
            self.l1d_accesses,
            self.l1d_miss_rate,
            self.l1d_misses,
            self.l2_accesses,
            self.l2_miss_rate,
            self.l2_misses,
            self.l2_pending_hits,
            self.l2_reserv_fails,
            self.load_instrs,
            self.smem_instrs,
            self.store_instrs,
            self.mem_reads,
            self.mem_writes,
        ]
    }
}

/// Extract the Figure-3 metrics for one kernel from a timed golden run.
pub fn kernel_metrics(golden: &GoldenRun, kernel_idx: usize, gpu: &GpuConfig) -> UtilMetrics {
    let s = golden.kernel_stats(kernel_idx);
    let mut rf_bits = 0.0f64;
    let mut smem_bits = 0.0f64;
    let mut cycles = 0u64;
    for r in golden.records.iter().filter(|r| r.kernel_idx == kernel_idx) {
        rf_bits += (r.num_regs as u64 * 32 * r.threads) as f64 * r.stats.cycles as f64;
        smem_bits += (r.smem_bytes as u64 * 8 * r.ctas) as f64 * r.stats.cycles as f64;
        cycles += r.stats.cycles;
    }
    let c = cycles.max(1) as f64;
    UtilMetrics {
        occupancy: s.occupancy(),
        rf_derating: (rf_bits / c / gpu.structure_bits(HwStructure::RegFile) as f64).min(1.0),
        smem_derating: (smem_bits / c / gpu.structure_bits(HwStructure::Smem) as f64).min(1.0),
        l1d_accesses: s.l1d.accesses as f64,
        l1d_miss_rate: s.l1d.miss_rate(),
        l1d_misses: s.l1d.misses as f64,
        l2_accesses: s.l2.accesses as f64,
        l2_miss_rate: s.l2.miss_rate(),
        l2_misses: s.l2.misses as f64,
        l2_pending_hits: s.l2.pending_hits as f64,
        l2_reserv_fails: s.l2.reservation_fails as f64,
        load_instrs: s.load_instrs as f64,
        smem_instrs: s.smem_instrs as f64,
        store_instrs: s.store_instrs as f64,
        mem_reads: s.mem_reads as f64,
        mem_writes: s.mem_writes as f64,
    }
}

/// Figure 3's pairwise normalization: each metric of kernel 1 as a share
/// of the pair's sum (50% = equal). Returns `(label, share1, share2)`
/// per metric, in percent.
pub fn normalized_pair(m1: &UtilMetrics, m2: &UtilMetrics) -> Vec<(&'static str, f64, f64)> {
    METRIC_LABELS
        .iter()
        .zip(m1.values().iter().zip(m2.values().iter()))
        .map(|(&label, (&a, &b))| {
            let sum = a + b;
            if sum == 0.0 {
                (label, 50.0, 50.0)
            } else {
                (label, a / sum * 100.0, b / sum * 100.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_shares_sum_to_100() {
        let m1 = UtilMetrics {
            occupancy: 0.75,
            l1d_accesses: 300.0,
            ..Default::default()
        };
        let m2 = UtilMetrics {
            occupancy: 0.25,
            l1d_accesses: 100.0,
            ..Default::default()
        };
        let rows = normalized_pair(&m1, &m2);
        assert_eq!(rows.len(), 16);
        for (label, a, b) in &rows {
            assert!((a + b - 100.0).abs() < 1e-9, "{label}");
        }
        assert_eq!(rows[0].0, "Occupancy");
        assert!((rows[0].1 - 75.0).abs() < 1e-9);
        assert!((rows[3].1 - 75.0).abs() < 1e-9);
        // Both-zero metrics show as the 50/50 neutral bar.
        assert_eq!(rows[4], ("L1D Miss Rate", 50.0, 50.0));
    }

    #[test]
    fn labels_align_with_values() {
        assert_eq!(METRIC_LABELS.len(), UtilMetrics::default().values().len());
    }
}
