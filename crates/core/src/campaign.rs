//! Statistical fault-injection campaigns at both abstraction layers.
//!
//! * [`run_uarch_campaign`] — the gpuFI-4 side: uniform single-bit flips
//!   over (cycle × hardware-structure location), one campaign of
//!   `n_uarch` injections per (kernel, structure), derating factors, and
//!   the AVF math of Section II-B.
//! * [`run_sw_campaign`] — the NVBitFI side: uniform single-bit flips over
//!   the dynamic destination-register value stream (plus the load-only
//!   SVF-LD variant) and the SVF math of Section II-C.
//!
//! Campaigns are embarrassingly parallel: each injection is an independent
//! end-to-end application run, distributed over cores with rayon. All
//! randomness derives from splitmix-style hashing of (seed, app, kernel,
//! structure, trial), so campaigns are bit-reproducible at any thread
//! count.

use std::time::Instant;

use obs::Phase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use kernels::{faulty_run, golden_run, Benchmark, GoldenRun, Outcome, PlannedFault, Variant};
use vgpu_sim::{GpuConfig, HwStructure, Mode, SwFault, SwFaultKind, UarchFault};

use crate::metrics::{ClassCounts, ClassRates};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignCfg {
    pub gpu: GpuConfig,
    /// Injections per (kernel, hardware structure) in AVF campaigns.
    pub n_uarch: usize,
    /// Injections per kernel (per fault kind) in SVF campaigns.
    pub n_sw: usize,
    pub seed: u64,
}

impl CampaignCfg {
    pub fn new(n_uarch: usize, n_sw: usize, seed: u64) -> Self {
        CampaignCfg {
            gpu: GpuConfig::default(),
            n_uarch,
            n_sw,
            seed,
        }
    }
}

/// Deterministic per-trial seed derivation.
fn derive_seed(base: u64, tags: &[u64]) -> u64 {
    let mut x = base ^ 0x9e37_79b9_7f4a_7c15;
    for &t in tags {
        x ^= t
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(x << 6)
            .wrapping_add(x >> 2);
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
    }
    x
}

fn str_tag(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Map a campaign outcome onto the obs reporting enum.
fn outcome_class(o: Outcome) -> obs::OutcomeClass {
    match o {
        Outcome::Masked => obs::OutcomeClass::Masked,
        Outcome::Sdc => obs::OutcomeClass::Sdc,
        Outcome::Timeout => obs::OutcomeClass::Timeout,
        Outcome::Due => obs::OutcomeClass::Due,
    }
}

/// Whether any observability sink wants per-trial data. Hoisted out of
/// the hot loop so disabled campaigns pay nothing per trial.
fn observing() -> bool {
    obs::enabled() || obs::events_enabled() || obs::progress::progress_enabled()
}

/// Record one finished injection everywhere observability wants it:
/// outcome counters, wall-time histogram, JSONL event, progress line.
/// Callers gate on [`observing`]; nothing here touches RNG streams, so
/// campaign results are identical with observability on or off.
#[allow(clippy::too_many_arguments)]
fn observe_trial(
    app: &str,
    kernel: &str,
    layer: &'static str,
    target: &'static str,
    trial: u64,
    seed: u64,
    bit: u8,
    cycle: u64,
    outcome: Outcome,
    started: Instant,
) {
    let class = outcome_class(outcome);
    let out_label = class.label();
    let wall_us = started.elapsed().as_micros() as u64;
    obs::time_phase(Phase::Classify, || {
        obs::counter_add(
            "injections_total",
            &[
                ("app", app),
                ("kernel", kernel),
                ("layer", layer),
                ("target", target),
                ("outcome", out_label),
            ],
            1,
        );
        // Coarse per-structure rollup for the end-of-run summary table.
        obs::counter_add(
            "outcomes_total",
            &[("layer", layer), ("target", target), ("outcome", out_label)],
            1,
        );
        obs::histogram_observe(
            "injection_wall_us",
            &[("app", app), ("layer", layer)],
            &obs::WALL_US_BUCKETS,
            wall_us,
        );
        obs::emit(&obs::InjectionEvent {
            seed,
            app,
            kernel,
            layer,
            target,
            trial,
            bit,
            cycle,
            outcome: out_label,
            wall_us,
        });
    });
    obs::progress::record(class);
}

/// Pick an index from `weights` proportionally.
fn pick_weighted(rng: &mut SmallRng, weights: &[(usize, u64)]) -> Option<(usize, u64)> {
    let total: u64 = weights.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return None;
    }
    let mut x = rng.gen_range(0..total);
    for &(idx, w) in weights {
        if x < w {
            return Some((idx, w));
        }
        x -= w;
    }
    unreachable!("weighted pick ran past total");
}

// ---------------------------------------------------------------------
// Microarchitecture level (AVF)
// ---------------------------------------------------------------------

/// Per-(kernel, structure) campaign outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct StructureCampaign {
    pub counts: ClassCounts,
    /// Masked runs whose total cycle count differs from golden — the
    /// control-path proxy of Figure 11.
    pub ctrl_affected_masked: u32,
}

/// Everything measured about one kernel at the microarchitecture level.
#[derive(Debug, Clone)]
pub struct UarchKernelResult {
    /// Kernel display name ("K1", ...).
    pub kernel: String,
    pub per_structure: Vec<(HwStructure, StructureCampaign)>,
    /// Derating factors (Section II-B): live-allocation share for RF and
    /// SMEM, 1.0 for the always-whole-array cache structures.
    pub df: Vec<(HwStructure, f64)>,
    /// Golden cycles attributed to this kernel (AVF weighting).
    pub cycles: u64,
    /// Injections per structure (for error margins).
    pub n_per_structure: usize,
}

impl UarchKernelResult {
    pub fn df_of(&self, h: HwStructure) -> f64 {
        self.df
            .iter()
            .find(|&&(s, _)| s == h)
            .map_or(1.0, |&(_, d)| d)
    }

    pub fn counts_of(&self, h: HwStructure) -> &StructureCampaign {
        &self
            .per_structure
            .iter()
            .find(|&&(s, _)| s == h)
            .expect("structure present")
            .1
    }

    /// AVF of one structure: per-class failure fractions × derating factor.
    pub fn avf(&self, h: HwStructure) -> ClassRates {
        self.counts_of(h).counts.rates().scale(self.df_of(h))
    }

    /// Size-weighted AVF over a set of structures — the chip AVF when
    /// `set` is [`HwStructure::ALL`], the AVF-Cache sub-metric when it is
    /// [`HwStructure::CACHES`].
    pub fn avf_over(&self, gpu: &GpuConfig, set: &[HwStructure]) -> ClassRates {
        let total_bits: u64 = set.iter().map(|&h| gpu.structure_bits(h)).sum();
        let mut acc = ClassRates::default();
        for &h in set {
            let w = gpu.structure_bits(h) as f64 / total_bits as f64;
            acc.add(&self.avf(h).scale(w));
        }
        acc
    }

    /// Full-chip AVF (all five structures, size-weighted).
    pub fn chip_avf(&self, gpu: &GpuConfig) -> ClassRates {
        self.avf_over(gpu, &HwStructure::ALL)
    }

    /// Fraction of all injections that were masked with a disturbed cycle
    /// count (Figure 11).
    pub fn ctrl_affected_fraction(&self) -> f64 {
        let total: u32 = self
            .per_structure
            .iter()
            .map(|(_, c)| c.counts.total())
            .sum();
        if total == 0 {
            return 0.0;
        }
        let ctrl: u32 = self
            .per_structure
            .iter()
            .map(|(_, c)| c.ctrl_affected_masked)
            .sum();
        ctrl as f64 / total as f64
    }
}

/// Microarchitecture-level results for a whole application.
#[derive(Debug, Clone)]
pub struct UarchAppResult {
    pub app: String,
    pub kernels: Vec<UarchKernelResult>,
}

impl UarchAppResult {
    fn cycle_weighted(&self, f: impl Fn(&UarchKernelResult) -> ClassRates) -> ClassRates {
        let total: u64 = self.kernels.iter().map(|k| k.cycles).sum();
        let mut acc = ClassRates::default();
        for k in &self.kernels {
            acc.add(&f(k).scale(k.cycles as f64 / total.max(1) as f64));
        }
        acc
    }

    /// Application AVF: kernel chip-AVF weighted by kernel cycles
    /// (Section II-B's multi-kernel rule).
    pub fn app_avf(&self, gpu: &GpuConfig) -> ClassRates {
        self.cycle_weighted(|k| k.chip_avf(gpu))
    }

    /// Application AVF restricted to one structure (AVF-RF of Figure 4).
    pub fn app_avf_structure(&self, h: HwStructure) -> ClassRates {
        self.cycle_weighted(|k| k.avf(h))
    }

    /// Application AVF over the cache structures (Figure 5).
    pub fn app_avf_cache(&self, gpu: &GpuConfig) -> ClassRates {
        self.cycle_weighted(|k| k.avf_over(gpu, &HwStructure::CACHES))
    }
}

/// Derating factor of one kernel for RF or SMEM, cycle-weighted over its
/// launches (Section II-B):
/// `DF = size_per_thread × num_threads / system_size`
/// (per-CTA for shared memory), clamped to 1.
fn derating_factor(golden: &GoldenRun, kernel_idx: usize, gpu: &GpuConfig, h: HwStructure) -> f64 {
    let mut weighted = 0.0f64;
    let mut cycles = 0u64;
    for r in golden.records.iter().filter(|r| r.kernel_idx == kernel_idx) {
        let live_bits = match h {
            HwStructure::RegFile => r.num_regs as u64 * 32 * r.threads,
            HwStructure::Smem => r.smem_bytes as u64 * 8 * r.ctas,
            _ => return 1.0,
        };
        let df = (live_bits as f64 / gpu.structure_bits(h) as f64).min(1.0);
        weighted += df * r.stats.cycles as f64;
        cycles += r.stats.cycles;
    }
    if cycles == 0 {
        0.0
    } else {
        weighted / cycles as f64
    }
}

/// Run the cross-layer (gpuFI-4 model) campaign for one application.
pub fn run_uarch_campaign(
    bench: &dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
) -> UarchAppResult {
    let variant = Variant {
        mode: Mode::Timed,
        hardened,
    };
    let golden = obs::time_phase(Phase::GoldenRun, || golden_run(bench, &cfg.gpu, variant));
    let app_tag = str_tag(bench.name());
    let app_name = bench.name();
    let obs_on = observing();
    let mut kernels = Vec::new();
    for (k_idx, k_name) in bench.kernels().iter().enumerate() {
        let windows: Vec<(usize, u64)> = golden
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kernel_idx == k_idx && r.stats.cycles > 0)
            .map(|(o, r)| (o, r.stats.cycles))
            .collect();
        let cycles: u64 = windows.iter().map(|&(_, c)| c).sum();
        let mut per_structure = Vec::new();
        for &h in &HwStructure::ALL {
            if obs::progress::progress_enabled() {
                obs::progress::add_total(cfg.n_uarch as u64);
            }
            let camp = (0..cfg.n_uarch)
                .into_par_iter()
                .map(|trial| {
                    let t0 = obs_on.then(Instant::now);
                    let s = derive_seed(
                        cfg.seed,
                        &[app_tag, k_idx as u64, h as u64, trial as u64, 1],
                    );
                    let planned = obs::time_phase(Phase::FaultSetup, || {
                        let mut rng = SmallRng::seed_from_u64(s);
                        pick_weighted(&mut rng, &windows).map(|(ordinal, launch_cycles)| {
                            (
                                ordinal,
                                UarchFault {
                                    cycle: rng.gen_range(0..launch_cycles),
                                    structure: h,
                                    loc_pick: rng.gen(),
                                    bit: rng.gen_range(0..32),
                                },
                            )
                        })
                    });
                    let Some((ordinal, uf)) = planned else {
                        // No eligible launch window: trivially masked.
                        if let Some(t0) = t0 {
                            observe_trial(
                                app_name,
                                k_name,
                                "uarch",
                                h.label(),
                                trial as u64,
                                s,
                                0,
                                0,
                                Outcome::Masked,
                                t0,
                            );
                        }
                        return StructureCampaign {
                            counts: {
                                let mut c = ClassCounts::default();
                                c.record(Outcome::Masked);
                                c
                            },
                            ctrl_affected_masked: 0,
                        };
                    };
                    let res = obs::time_phase(Phase::FaultyRun, || {
                        faulty_run(
                            bench,
                            &cfg.gpu,
                            variant,
                            &golden,
                            ordinal,
                            PlannedFault::Uarch(uf),
                        )
                    });
                    if let Some(t0) = t0 {
                        observe_trial(
                            app_name,
                            k_name,
                            "uarch",
                            h.label(),
                            trial as u64,
                            s,
                            uf.bit,
                            uf.cycle,
                            res.outcome,
                            t0,
                        );
                    }
                    let mut counts = ClassCounts::default();
                    counts.record(res.outcome);
                    StructureCampaign {
                        counts,
                        ctrl_affected_masked: (res.outcome == Outcome::Masked
                            && res.total_cost != golden.total_cost)
                            as u32,
                    }
                })
                .reduce(StructureCampaign::default, |mut a, b| {
                    a.counts.add(&b.counts);
                    a.ctrl_affected_masked += b.ctrl_affected_masked;
                    a
                });
            per_structure.push((h, camp));
        }
        let df = HwStructure::ALL
            .iter()
            .map(|&h| (h, derating_factor(&golden, k_idx, &cfg.gpu, h)))
            .collect();
        kernels.push(UarchKernelResult {
            kernel: k_name.to_string(),
            per_structure,
            df,
            cycles,
            n_per_structure: cfg.n_uarch,
        });
    }
    UarchAppResult {
        app: bench.name().to_string(),
        kernels,
    }
}

// ---------------------------------------------------------------------
// Software level (SVF)
// ---------------------------------------------------------------------

/// Software-level results for one kernel.
#[derive(Debug, Clone)]
pub struct SvfKernelResult {
    pub kernel: String,
    /// Destination-value injections (NVBitFI default).
    pub counts: ClassCounts,
    /// Load-destination injections (SVF-LD of Figure 5).
    pub counts_ld: ClassCounts,
    /// Dynamic thread instructions (the SVF application-weighting metric).
    pub instrs: u64,
}

impl SvfKernelResult {
    /// `SVF(ker) = FR(ker)` per class.
    pub fn svf(&self) -> ClassRates {
        self.counts.rates()
    }

    pub fn svf_ld(&self) -> ClassRates {
        self.counts_ld.rates()
    }
}

/// Software-level results for a whole application.
#[derive(Debug, Clone)]
pub struct SvfAppResult {
    pub app: String,
    pub kernels: Vec<SvfKernelResult>,
}

impl SvfAppResult {
    fn instr_weighted(&self, f: impl Fn(&SvfKernelResult) -> ClassRates) -> ClassRates {
        let total: u64 = self.kernels.iter().map(|k| k.instrs).sum();
        let mut acc = ClassRates::default();
        for k in &self.kernels {
            acc.add(&f(k).scale(k.instrs as f64 / total.max(1) as f64));
        }
        acc
    }

    /// Application SVF: kernel SVF weighted by executed instructions
    /// (Section II-C's multi-kernel rule).
    pub fn app_svf(&self) -> ClassRates {
        self.instr_weighted(|k| k.svf())
    }

    pub fn app_svf_ld(&self) -> ClassRates {
        self.instr_weighted(|k| k.svf_ld())
    }
}

/// One SVF sub-campaign over a kernel with a given eligibility.
pub(crate) fn sw_subcampaign(
    bench: &dyn Benchmark,
    cfg: &CampaignCfg,
    variant: Variant,
    golden: &GoldenRun,
    k_idx: usize,
    k_name: &str,
    kind: SwFaultKind,
    tag: u64,
) -> ClassCounts {
    let windows: Vec<(usize, u64)> = golden
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.kernel_idx == k_idx)
        .map(|(o, r)| {
            let w = match kind {
                SwFaultKind::DestValue => r.stats.gp_dest_instrs,
                SwFaultKind::SrcPersistent | SwFaultKind::SrcTransient => r.stats.src_reg_instrs,
                SwFaultKind::DestValueLoad => r.stats.ld_dest_instrs,
                SwFaultKind::ArchState => r.stats.thread_instrs,
            };
            (o, w)
        })
        .filter(|&(_, w)| w > 0)
        .collect();
    let app_tag = str_tag(bench.name());
    let app_name = bench.name();
    let obs_on = observing();
    if obs::progress::progress_enabled() {
        obs::progress::add_total(cfg.n_sw as u64);
    }
    (0..cfg.n_sw)
        .into_par_iter()
        .map(|trial| {
            let t0 = obs_on.then(Instant::now);
            let s = derive_seed(cfg.seed, &[app_tag, k_idx as u64, tag, trial as u64, 2]);
            let mut counts = ClassCounts::default();
            let planned = obs::time_phase(Phase::FaultSetup, || {
                let mut rng = SmallRng::seed_from_u64(s);
                pick_weighted(&mut rng, &windows).map(|(ordinal, weight)| {
                    (
                        ordinal,
                        SwFault {
                            kind,
                            target: rng.gen_range(0..weight),
                            bit: rng.gen_range(0..32),
                            loc_pick: rng.gen(),
                        },
                    )
                })
            });
            let Some((ordinal, sf)) = planned else {
                // No eligible instruction stream: trivially masked.
                if let Some(t0) = t0 {
                    observe_trial(
                        app_name,
                        k_name,
                        "sw",
                        kind.label(),
                        trial as u64,
                        s,
                        0,
                        0,
                        Outcome::Masked,
                        t0,
                    );
                }
                counts.record(Outcome::Masked);
                return counts;
            };
            let res = obs::time_phase(Phase::FaultyRun, || {
                faulty_run(
                    bench,
                    &cfg.gpu,
                    variant,
                    golden,
                    ordinal,
                    PlannedFault::Sw(sf),
                )
            });
            if let Some(t0) = t0 {
                observe_trial(
                    app_name,
                    k_name,
                    "sw",
                    kind.label(),
                    trial as u64,
                    s,
                    sf.bit,
                    sf.target,
                    res.outcome,
                    t0,
                );
            }
            counts.record(res.outcome);
            counts
        })
        .reduce(ClassCounts::default, |mut a, b| {
            a.add(&b);
            a
        })
}

/// Run the software-level (NVBitFI model) campaign for one application:
/// destination-value injections plus the load-only SVF-LD variant.
pub fn run_sw_campaign(bench: &dyn Benchmark, cfg: &CampaignCfg, hardened: bool) -> SvfAppResult {
    let variant = Variant {
        mode: Mode::Functional,
        hardened,
    };
    let golden = obs::time_phase(Phase::GoldenRun, || golden_run(bench, &cfg.gpu, variant));
    let kernels = bench
        .kernels()
        .iter()
        .enumerate()
        .map(|(k_idx, k_name)| {
            let counts = sw_subcampaign(
                bench,
                cfg,
                variant,
                &golden,
                k_idx,
                k_name,
                SwFaultKind::DestValue,
                10,
            );
            let counts_ld = sw_subcampaign(
                bench,
                cfg,
                variant,
                &golden,
                k_idx,
                k_name,
                SwFaultKind::DestValueLoad,
                11,
            );
            let instrs = golden.kernel_stats(k_idx).thread_instrs;
            SvfKernelResult {
                kernel: k_name.to_string(),
                counts,
                counts_ld,
                instrs,
            }
        })
        .collect();
    SvfAppResult {
        app: bench.name().to_string(),
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_spread() {
        let a = derive_seed(1, &[2, 3, 4]);
        assert_eq!(a, derive_seed(1, &[2, 3, 4]));
        assert_ne!(a, derive_seed(1, &[2, 3, 5]));
        assert_ne!(a, derive_seed(2, &[2, 3, 4]));
        assert_ne!(str_tag("VA"), str_tag("NW"));
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(7);
        let weights = vec![(0usize, 0u64), (1, 90), (2, 10)];
        let mut hits = [0u32; 3];
        for _ in 0..1000 {
            let (idx, _) = pick_weighted(&mut rng, &weights).unwrap();
            hits[idx] += 1;
        }
        assert_eq!(hits[0], 0, "zero-weight never picked");
        assert!(hits[1] > 800, "{hits:?}");
        assert!(pick_weighted(&mut rng, &[(0, 0)]).is_none());
    }
}
