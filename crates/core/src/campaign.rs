//! Statistical fault-injection campaigns at both abstraction layers,
//! executed by a resumable, shardable engine.
//!
//! The campaign machinery is split into three stages:
//!
//! 1. **Plan** ([`crate::plan`]) — a golden run plus the deterministic
//!    expansion of the configuration into an explicit trial list (seed →
//!    (kernel, structure/instruction, bit, cycle) for every injection).
//! 2. **Execute** ([`execute_shard`]) — run any strided shard of the plan
//!    in parallel, optionally journaling every classified trial to a
//!    JSONL checkpoint ([`crate::checkpoint`]) and skipping trials an
//!    interrupted run already finished (`resume`). A per-injection
//!    [`Watchdog`] bounds pathological trials.
//! 3. **Assemble** ([`assemble_uarch`] / [`assemble_sw`]) — fold any
//!    complete set of trial records (one shard's worth at a time, or a
//!    merge of many) into the AVF/SVF result types. Because outcome
//!    counts are integer sums and every trial's fault is fixed at plan
//!    time, merged shard outputs are identical to a single-shot run.
//!
//! [`run_uarch_campaign`] and [`run_sw_campaign`] — the gpuFI-4 (AVF) and
//! NVBitFI (SVF) methodologies of Sections II-B/II-C — are now thin
//! wrappers: prepare, execute the whole plan as one shard, assemble.
//! All randomness still derives from splitmix-style hashing of
//! (seed, app, kernel, structure, trial), so campaigns are
//! bit-reproducible at any thread count *and any shard count*.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use obs::Phase;
use rayon::prelude::*;

use kernels::{
    faulty_run, faulty_run_ff, AppSnapshots, Benchmark, Outcome, PlannedFault, RunResult,
};
use trace::Verdict;
use vgpu_sim::{FaultPattern, GpuConfig, HwStructure, SwFaultKind};

use crate::checkpoint::{
    load_checkpoint, CheckpointError, CheckpointHeader, CheckpointWriter, TrialRecord,
    DEFAULT_CHECKPOINT_EVERY,
};
use crate::metrics::{ClassCounts, ClassRates};
use crate::plan::{
    derive_seed, prepare_sw_campaign, prepare_uarch_campaign, shard_trials, CampaignPlan, Layer,
    PreparedCampaign, TrialTarget,
};

/// Per-injection watchdog: bounds how long one pathological trial can
/// hold a shard hostage. All limits are off by default so watchdog-free
/// campaigns stay bit-reproducible; see docs/CAMPAIGNS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Wall-clock budget per injection in microseconds; a trial that
    /// finishes over budget is reclassified as Timeout. `None` disables.
    pub wall_us_limit: Option<u64>,
    /// Cycle (timed) / instruction (functional) budget per injection on
    /// top of the harness's golden-derived budgets; a trial whose total
    /// cost exceeds it is reclassified as Timeout. `None` disables.
    pub cycle_limit: Option<u64>,
    /// Retry a trial once if the harness panics; a second panic
    /// classifies the trial as Timeout instead of wedging the shard.
    pub retry_on_panic: bool,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            wall_us_limit: None,
            cycle_limit: None,
            retry_on_panic: true,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignCfg {
    pub gpu: GpuConfig,
    /// Injections per (kernel, hardware structure) in AVF campaigns.
    pub n_uarch: usize,
    /// Injections per kernel (per fault kind) in SVF campaigns.
    pub n_sw: usize,
    pub seed: u64,
    pub watchdog: Watchdog,
    /// Fault pattern applied by every trial (docs/FAULT_MODELS.md).
    /// Defaults to the paper's single-bit model; the pattern never feeds
    /// seed derivation, so changing it re-uses the exact same injection
    /// coordinates.
    pub pattern: FaultPattern,
}

impl CampaignCfg {
    pub fn new(n_uarch: usize, n_sw: usize, seed: u64) -> Self {
        CampaignCfg {
            gpu: GpuConfig::default(),
            n_uarch,
            n_sw,
            seed,
            watchdog: Watchdog::default(),
            pattern: FaultPattern::SingleBit,
        }
    }
}

/// Map a campaign outcome onto the obs reporting enum.
fn outcome_class(o: Outcome) -> obs::OutcomeClass {
    match o {
        Outcome::Masked => obs::OutcomeClass::Masked,
        Outcome::Sdc => obs::OutcomeClass::Sdc,
        Outcome::Timeout => obs::OutcomeClass::Timeout,
        Outcome::Due => obs::OutcomeClass::Due,
    }
}

/// Whether any observability sink wants per-trial data. Hoisted out of
/// the hot loop so disabled campaigns pay nothing per trial.
fn observing() -> bool {
    obs::enabled() || obs::events_enabled() || obs::progress::progress_enabled()
}

/// Record one finished injection everywhere observability wants it:
/// outcome counters, wall-time histogram, JSONL event, progress line.
/// Callers gate on [`observing`]; nothing here touches RNG streams, so
/// campaign results are identical with observability on or off.
#[allow(clippy::too_many_arguments)]
fn observe_trial(
    app: &str,
    kernel: &str,
    layer: &'static str,
    target: &'static str,
    trial: u64,
    seed: u64,
    bit: u8,
    cycle: u64,
    outcome: Outcome,
    started: Instant,
) {
    let class = outcome_class(outcome);
    let out_label = class.label();
    let wall_us = started.elapsed().as_micros() as u64;
    obs::time_phase(Phase::Classify, || {
        obs::counter_add(
            "injections_total",
            &[
                ("app", app),
                ("kernel", kernel),
                ("layer", layer),
                ("target", target),
                ("outcome", out_label),
            ],
            1,
        );
        // Coarse per-structure rollup for the end-of-run summary table.
        obs::counter_add(
            "outcomes_total",
            &[("layer", layer), ("target", target), ("outcome", out_label)],
            1,
        );
        obs::histogram_observe(
            "injection_wall_us",
            &[("app", app), ("layer", layer)],
            &obs::WALL_US_BUCKETS,
            wall_us,
        );
        obs::emit(&obs::InjectionEvent {
            seed,
            app,
            kernel,
            layer,
            target,
            trial,
            bit,
            cycle,
            outcome: out_label,
            wall_us,
        });
    });
    obs::progress::record(class);
}

// ---------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------

/// Which simulation backend executes the trials of a campaign.
///
/// `Replay` is a pure throughput knob, like fast-forward: trials whose
/// fault footprint is provably dead in the recorded golden access trace
/// synthesize their (masked) record without simulating; everything else
/// re-executes on the timed engine. Classification is byte-identical
/// either way (differential-tested). Campaigns replay cannot serve —
/// software layer, functional variant, hardened apps — degrade
/// gracefully to `Timed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineBackend {
    /// Simulate every trial cycle-by-cycle (with optional golden-prefix
    /// fast-forward).
    #[default]
    Timed,
    /// Trace-driven replay: adjudicate deadness first, simulate only the
    /// trials that need it.
    Replay,
}

impl EngineBackend {
    pub const ALL: [EngineBackend; 2] = [EngineBackend::Timed, EngineBackend::Replay];

    /// Stable CLI / wire label.
    pub fn label(&self) -> &'static str {
        match self {
            EngineBackend::Timed => "timed",
            EngineBackend::Replay => "replay",
        }
    }

    /// Parse a CLI / wire label.
    pub fn from_label(s: &str) -> Option<EngineBackend> {
        EngineBackend::ALL.into_iter().find(|b| b.label() == s)
    }
}

/// How to execute a prepared campaign: which shard of the plan, where to
/// checkpoint, what to resume from.
#[derive(Debug, Clone)]
pub struct EngineCfg {
    /// Total shards the plan is partitioned into (>= 1).
    pub shards: usize,
    /// This process's shard (0-based, < `shards`).
    pub shard_index: usize,
    /// Journal every classified trial to this JSONL file (truncated).
    pub checkpoint: Option<PathBuf>,
    /// Classified trials between checkpoint flushes.
    pub checkpoint_every: usize,
    /// Resume from (and keep appending to) this checkpoint file,
    /// skipping trials it already classifies. Wins over `checkpoint`.
    pub resume: Option<PathBuf>,
    /// Stop after this many *newly executed* trials, leaving a resumable
    /// checkpoint behind — interruption simulation and incremental runs.
    pub trial_limit: Option<usize>,
    /// Golden-prefix fast-forward: execute timed uarch trials from
    /// snapshots of one instrumented golden pass instead of re-simulating
    /// the fault-free prefix, and exit early once the disturbed machine
    /// provably re-converges to golden. Bit-identical results either way
    /// (differential-tested); this is purely a throughput knob.
    pub fast_forward: bool,
    /// Mid-launch snapshots per launch for the fast-forward pass.
    pub snapshots: usize,
    /// Simulation backend ([`EngineBackend::Replay`] adjudicates trials
    /// against a recorded golden access trace before simulating).
    pub backend: EngineBackend,
}

/// Default mid-launch snapshots per launch (`EngineCfg::snapshots`).
pub const DEFAULT_SNAPSHOTS: usize = 8;

impl EngineCfg {
    /// One shard covering the whole plan, no files.
    pub fn single_shot() -> Self {
        EngineCfg {
            shards: 1,
            shard_index: 0,
            checkpoint: None,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            resume: None,
            trial_limit: None,
            fast_forward: true,
            snapshots: DEFAULT_SNAPSHOTS,
            backend: EngineBackend::Timed,
        }
    }

    /// Shard `index` of `shards`, no files.
    pub fn sharded(shards: usize, index: usize) -> Self {
        EngineCfg {
            shards,
            shard_index: index,
            ..EngineCfg::single_shot()
        }
    }
}

impl Default for EngineCfg {
    fn default() -> Self {
        EngineCfg::single_shot()
    }
}

/// Why the engine refused to execute or assemble.
#[derive(Debug)]
pub enum EngineError {
    Io(std::io::Error),
    Checkpoint(CheckpointError),
    /// A checkpoint/shard header does not match the plan being executed
    /// (different seed, app, GPU config, shard slice, or code revision).
    PlanMismatch(String),
    /// The resumed checkpoint already classifies every trial of its shard.
    AlreadyComplete {
        done: usize,
    },
    /// A record's plan index is outside the plan or this shard's slice.
    ForeignTrial {
        idx: usize,
    },
    /// Two records claim the same plan index.
    DuplicateTrial {
        idx: usize,
    },
    /// Two records claim the same plan index with *different*
    /// classifications — impossible for deterministic trials, so it means
    /// corruption or a plan/code mismatch, and no dedupe may paper over it.
    ConflictingDuplicate {
        idx: usize,
    },
    /// The record set does not cover the plan.
    IncompleteCover {
        missing: usize,
        total: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "campaign I/O error: {e}"),
            EngineError::Checkpoint(e) => write!(f, "{e}"),
            EngineError::PlanMismatch(why) => write!(f, "plan mismatch: {why}"),
            EngineError::AlreadyComplete { done } => {
                write!(f, "checkpoint already complete ({done} trials classified)")
            }
            EngineError::ForeignTrial { idx } => {
                write!(f, "trial record {idx} does not belong to this plan/shard")
            }
            EngineError::DuplicateTrial { idx } => {
                write!(f, "duplicate record for trial {idx}")
            }
            EngineError::ConflictingDuplicate { idx } => {
                write!(
                    f,
                    "records for trial {idx} disagree on the outcome — \
                     corrupt input or mismatched plans"
                )
            }
            EngineError::IncompleteCover { missing, total } => {
                write!(f, "records cover only {}/{total} trials", total - missing)
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

/// Replay-backend context for one trial batch: the recorded golden
/// access trace plus the fast-forward policy fallbacks should use.
struct ReplayCtx<'a> {
    trace: &'a trace::AppTrace,
    ff: FastForward,
}

/// Run one planned trial end to end: faulty run under the watchdog,
/// observability, classification. With `snaps` set, timed uarch trials
/// take the fast-forward path ([`faulty_run_ff`]) — classification is
/// bit-identical to the slow path (differential-tested). With `replay`
/// set, uarch trials are first adjudicated against the recorded trace:
/// provably-dead footprints synthesize the masked record outright (the
/// faulty execution would be bit-identical to golden), everything else
/// falls back to full execution, capturing the snapshot set lazily on
/// first use. Returns the record plus the cycles actually simulated
/// (throughput accounting).
fn run_one_trial(
    prep: &PreparedCampaign,
    t: &crate::plan::PlannedTrial,
    snaps: Option<&Arc<AppSnapshots>>,
    replay: Option<&ReplayCtx<'_>>,
) -> (TrialRecord, u64) {
    let wd = prep.cfg.watchdog;
    let layer = prep.plan.layer.label();
    let app = prep.plan.app.as_str();
    let obs_on = observing();
    let t0 = (obs_on || wd.wall_us_limit.is_some()).then(Instant::now);
    let mut sim_cost = 0u64;
    let (mut outcome, cost_differs) = match &t.fault {
        // No eligible fault population: trivially masked.
        None => (Outcome::Masked, false),
        Some((ordinal, pf)) => {
            let mut snaps = snaps;
            // Replay adjudication: a provably-dead footprint means the
            // faulty run is bit-identical to golden, so its result is
            // synthesized without simulating. The synthesized record
            // flows through the same watchdog/ctrl/observe logic below.
            let adjudged: Option<RunResult> = match (replay, pf) {
                (Some(rc), PlannedFault::Uarch(u)) => {
                    match rc.trace.adjudicate(&prep.cfg.gpu, *ordinal, u) {
                        Verdict::Dead { population } => {
                            obs::counter_add("trace_replay_dead_total", &[("app", app)], 1);
                            Some(RunResult {
                                outcome: Outcome::Masked,
                                total_cost: prep.golden.total_cost,
                                simulated_cost: 0,
                                resumed_at: None,
                                converged: true,
                                applied: population > 0,
                                corrupted_words: 0,
                            })
                        }
                        Verdict::Fallback { reason, warps } => {
                            obs::counter_add(
                                "trace_fallback_full_total",
                                &[("app", app), ("reason", reason.label())],
                                1,
                            );
                            obs::counter_add(
                                "trace_replay_warps_reexecuted_total",
                                &[("app", app)],
                                warps,
                            );
                            // Lazy snapshot capture: replay campaigns only
                            // pay for the fast-forward pass once a trial
                            // actually needs re-execution.
                            if rc.ff.enabled {
                                snaps = prep.snapshots(rc.ff.snapshots);
                            }
                            None
                        }
                    }
                }
                _ => None,
            };
            let attempt = || {
                obs::time_phase(Phase::FaultyRun, || match (snaps, pf) {
                    (Some(s), PlannedFault::Uarch(_)) => {
                        faulty_run_ff(prep.bench, &prep.cfg.gpu, &prep.golden, s, *ordinal, *pf)
                    }
                    _ => faulty_run(
                        prep.bench,
                        &prep.cfg.gpu,
                        prep.variant,
                        &prep.golden,
                        *ordinal,
                        *pf,
                    ),
                })
            };
            let mut res = match adjudged {
                some @ Some(_) => some,
                None => catch_unwind(AssertUnwindSafe(attempt)).ok(),
            };
            if res.is_none() && wd.retry_on_panic {
                obs::counter_add("watchdog_retries_total", &[("layer", layer)], 1);
                res = catch_unwind(AssertUnwindSafe(attempt)).ok();
            }
            match res {
                None => {
                    obs::counter_add("watchdog_panic_timeouts_total", &[("layer", layer)], 1);
                    (Outcome::Timeout, false)
                }
                Some(r) => {
                    sim_cost = r.simulated_cost;
                    let mut o = r.outcome;
                    // The cycle budget checks *architectural* cost: the
                    // slow and fast-forward paths must classify every
                    // trial identically, and `simulated_cost` is a
                    // scheduling artifact that differs between them (a
                    // resumed trial simulates only its suffix). Persistent
                    // stuck-at trials in particular run to the harness
                    // budget with convergence exit disabled, and must land
                    // on Timeout on both paths, not just the slow one.
                    if wd.cycle_limit.is_some_and(|l| r.total_cost > l) && o != Outcome::Timeout {
                        obs::counter_add("watchdog_cycle_timeouts_total", &[("layer", layer)], 1);
                        o = Outcome::Timeout;
                    }
                    if snaps.is_some() && obs_on {
                        obs::counter_add(
                            "campaign_cycles_skipped_total",
                            &[("app", app), ("layer", layer)],
                            r.total_cost - r.simulated_cost,
                        );
                        if r.resumed_at.is_some() {
                            obs::counter_add(
                                "snapshot_hits_total",
                                &[("app", app), ("kind", "resume")],
                                1,
                            );
                        }
                        if r.converged {
                            obs::counter_add(
                                "snapshot_hits_total",
                                &[("app", app), ("kind", "converged")],
                                1,
                            );
                        }
                    }
                    (o, r.total_cost != prep.golden.total_cost)
                }
            }
        }
    };
    let wall_us = t0.map_or(0, |i| i.elapsed().as_micros() as u64);
    if wd.wall_us_limit.is_some_and(|l| wall_us > l) && outcome != Outcome::Timeout {
        obs::counter_add("watchdog_wall_timeouts_total", &[("layer", layer)], 1);
        outcome = Outcome::Timeout;
    }
    if let (true, Some(t0)) = (obs_on, t0) {
        let (bit, cycle) = match &t.fault {
            None => (0, 0),
            Some((_, PlannedFault::Uarch(u))) => (u.bit, u.cycle),
            Some((_, PlannedFault::Sw(s))) => (s.bit, s.target),
        };
        observe_trial(
            &prep.plan.app,
            prep.bench.kernels()[t.kernel_idx],
            layer,
            t.target.label(),
            t.trial as u64,
            t.seed,
            bit,
            cycle,
            outcome,
            t0,
        );
    }
    let rec = TrialRecord {
        idx: t.index,
        outcome,
        // The Figure-11 control-path proxy: a masked run whose total cost
        // differs from golden had its control path disturbed.
        ctrl: outcome == Outcome::Masked && cost_differs,
        wall_us,
    };
    (rec, sim_cost)
}

/// Fast-forward policy for [`execute_trials_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastForward {
    /// Use golden-prefix snapshots where the campaign supports them.
    pub enabled: bool,
    /// Mid-launch snapshots per launch for the capture pass.
    pub snapshots: usize,
    /// Simulation backend for the trials themselves.
    pub backend: EngineBackend,
}

impl Default for FastForward {
    fn default() -> Self {
        FastForward {
            enabled: true,
            snapshots: DEFAULT_SNAPSHOTS,
            backend: EngineBackend::Timed,
        }
    }
}

impl FastForward {
    /// Fast-forward off: every trial simulates its whole application.
    pub fn disabled() -> Self {
        FastForward {
            enabled: false,
            snapshots: 0,
            backend: EngineBackend::Timed,
        }
    }

    /// The policy an [`EngineCfg`] asks for.
    pub fn from_engine(eng: &EngineCfg) -> Self {
        FastForward {
            enabled: eng.fast_forward,
            snapshots: eng.snapshots,
            backend: eng.backend,
        }
    }
}

/// Scheduling key for snapshot locality: trials of the same launch,
/// ordered by injection cycle, reuse the same golden prefix and nearby
/// resume snapshots. Population-empty trials sort first.
fn trial_sort_key(t: &crate::plan::PlannedTrial) -> (u64, u64) {
    match &t.fault {
        None => (0, 0),
        Some((ordinal, PlannedFault::Uarch(u))) => (*ordinal as u64 + 1, u.cycle),
        Some((ordinal, PlannedFault::Sw(s))) => (*ordinal as u64 + 1, s.target),
    }
}

/// Refresh the engine-side throughput gauges consumed by `/metrics` and
/// the telemetry `/status` documents. Rates are stored in milli-units
/// (gauges are integers): `campaign_trial_rate_milli` is trials/s ×
/// 1000; `campaign_eta_ms` is the projected time to finish the current
/// trial set at the observed rate.
fn record_trial_rate(done: u64, total: u64, sim_cycles: u64, t0: Instant) {
    obs::gauge_set("campaign_trials_done", &[], done);
    obs::gauge_set("campaign_trials_planned", &[], total);
    // Simulated-cost throughput: under replay (and fast-forward) the
    // wall cost of a trial varies by orders of magnitude, so trial
    // counts alone make ETA/rate projections meaningless; status
    // surfaces should prefer these when nonzero.
    obs::gauge_set("campaign_sim_cycles_done", &[], sim_cycles);
    let secs = t0.elapsed().as_secs_f64();
    if secs > 0.0 {
        let rate = done as f64 / secs;
        obs::gauge_set("campaign_trial_rate_milli", &[], (rate * 1e3) as u64);
        obs::gauge_set(
            "campaign_sim_cycle_rate_milli",
            &[],
            (sim_cycles as f64 / secs * 1e3) as u64,
        );
        if rate > 0.0 && total >= done {
            obs::gauge_set(
                "campaign_eta_ms",
                &[],
                ((total - done) as f64 / rate * 1e3) as u64,
            );
        }
    }
}

/// Execute an explicit set of plan indices in parallel, streaming every
/// classified trial into `sink` as it finishes (in completion order, not
/// plan order — records are self-describing via [`TrialRecord::idx`]).
/// Runs with the default fast-forward policy (on, where applicable).
///
/// This is the primitive under both [`execute_shard`] (sink = checkpoint
/// file) and the dispatch worker daemon (sink = TCP connection to the
/// coordinator). A sink error aborts the run; trials already in flight on
/// other workers may still call the sink before the abort propagates,
/// which is safe because every consumer dedupes by plan index.
pub fn execute_trials<F>(
    prep: &PreparedCampaign,
    idxs: &[usize],
    sink: F,
) -> Result<Vec<TrialRecord>, std::io::Error>
where
    F: Fn(&TrialRecord) -> std::io::Result<()> + Sync,
{
    execute_trials_with(prep, FastForward::default(), idxs, sink)
}

/// [`execute_trials`] with an explicit fast-forward policy. When the
/// policy applies (timed uarch plan, `enabled`, `snapshots > 0`), the
/// snapshot set is captured once up front and the trial list is run in
/// (launch, injection-cycle) order so neighbouring trials share resume
/// snapshots; records are self-describing, so the reordering is invisible
/// to every consumer.
pub fn execute_trials_with<F>(
    prep: &PreparedCampaign,
    ff: FastForward,
    idxs: &[usize],
    sink: F,
) -> Result<Vec<TrialRecord>, std::io::Error>
where
    F: Fn(&TrialRecord) -> std::io::Result<()> + Sync,
{
    // The replay backend records the golden access trace up front (one
    // traced golden pass) and defers snapshot capture until some trial
    // actually falls back; campaigns replay cannot serve return no trace
    // and degrade to the timed backend transparently.
    let replay = if ff.backend == EngineBackend::Replay {
        prep.trace().map(|tr| ReplayCtx {
            trace: tr.as_ref(),
            ff,
        })
    } else {
        None
    };
    let snaps = if ff.enabled && replay.is_none() {
        prep.snapshots(ff.snapshots)
    } else {
        None
    };
    let mut order: Vec<usize> = idxs.to_vec();
    // Launch/cycle-sorted execution keeps snapshot locality for the
    // fast-forward path and for replay fallbacks alike.
    let sorted = snaps.is_some() || replay.is_some();
    if sorted {
        order.sort_by_key(|&i| trial_sort_key(&prep.plan.trials[i]));
    }
    // Fleet telemetry: progress / throughput / ETA gauges for the local
    // `/metrics` endpoint, and per-trial trace contexts. Pure
    // observation — nothing here touches the seeded RNG streams.
    let telem = observing();
    if telem {
        obs::trace::set_campaign_fp(prep.plan.fingerprint());
    }
    let total = order.len() as u64;
    let done_ctr = std::sync::atomic::AtomicU64::new(0);
    let sim_ctr = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    let mut records: Vec<TrialRecord> = order
        .par_iter()
        .map(|&idx| -> Result<TrialRecord, std::io::Error> {
            let (rec, sim_cost) = obs::trace::with_ctx(idx as u64, || {
                run_one_trial(prep, &prep.plan.trials[idx], snaps, replay.as_ref())
            });
            if telem {
                let done = done_ctr.fetch_add(1, AtomicOrdering::Relaxed) + 1;
                let sim = sim_ctr.fetch_add(sim_cost, AtomicOrdering::Relaxed) + sim_cost;
                record_trial_rate(done, total, sim, t0);
            }
            sink(&rec)?;
            Ok(rec)
        })
        .collect::<Result<_, _>>()?;
    // Execution order is a scheduling detail; callers get records back in
    // the order they asked for, exactly as without fast-forward.
    if sorted {
        let pos: HashMap<usize, usize> = idxs.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        records.sort_by_key(|r| pos[&r.idx]);
    }
    Ok(records)
}

/// Execute one strided shard of a prepared campaign, in parallel.
///
/// Returns the shard's classified trials in plan order — records loaded
/// from a resumed checkpoint plus everything newly executed. With
/// `eng.checkpoint`/`eng.resume` set, every classified trial is journaled
/// so an interruption at any point (including mid-line) loses at most
/// `checkpoint_every` trials.
pub fn execute_shard(
    prep: &PreparedCampaign,
    eng: &EngineCfg,
) -> Result<Vec<TrialRecord>, EngineError> {
    let plan = &prep.plan;
    let my = shard_trials(plan.len(), eng.shards, eng.shard_index);
    obs::trace::set_shard(eng.shard_index as u64);
    let header = CheckpointHeader::for_plan(plan, eng.shards, eng.shard_index);
    let mut slots: Vec<Option<TrialRecord>> = vec![None; plan.len()];

    let mut writer: Option<CheckpointWriter> = None;
    if let Some(rp) = &eng.resume {
        let ck = load_checkpoint(rp)?;
        if ck.header != header {
            return Err(EngineError::PlanMismatch(format!(
                "checkpoint {} was written by a different campaign \
                 (fingerprint {:#x} vs plan {:#x}, shard {}/{} vs {}/{})",
                rp.display(),
                ck.header.fingerprint,
                header.fingerprint,
                ck.header.shard_index,
                ck.header.shards,
                header.shard_index,
                header.shards,
            )));
        }
        let mut done = 0usize;
        for r in &ck.records {
            if r.idx >= plan.len() || r.idx % eng.shards != eng.shard_index {
                return Err(EngineError::ForeignTrial { idx: r.idx });
            }
            if slots[r.idx].replace(*r).is_some() {
                return Err(EngineError::DuplicateTrial { idx: r.idx });
            }
            done += 1;
        }
        if done >= my.len() {
            return Err(EngineError::AlreadyComplete { done });
        }
        obs::counter_add(
            "campaign_resume_skipped_total",
            &[("layer", plan.layer.label())],
            done as u64,
        );
        obs::emit_campaign(&obs::CampaignEvent {
            kind: "resume",
            app: &plan.app,
            layer: plan.layer.label(),
            shard: eng.shard_index as u64,
            shards: eng.shards as u64,
            done: done as u64,
            total: my.len() as u64,
        });
        writer = Some(CheckpointWriter::recreate(rp, &ck, eng.checkpoint_every)?);
    } else if let Some(cp) = &eng.checkpoint {
        writer = Some(CheckpointWriter::create(cp, &header, eng.checkpoint_every)?);
    }

    let remaining: Vec<usize> = my.iter().copied().filter(|&i| slots[i].is_none()).collect();
    let todo = eng
        .trial_limit
        .map_or(remaining.len(), |l| l.min(remaining.len()));
    if obs::progress::progress_enabled() {
        obs::progress::add_total(todo as u64);
    }
    obs::emit_campaign(&obs::CampaignEvent {
        kind: "shard_start",
        app: &plan.app,
        layer: plan.layer.label(),
        shard: eng.shard_index as u64,
        shards: eng.shards as u64,
        done: (my.len() - remaining.len()) as u64,
        total: my.len() as u64,
    });

    let writer = Mutex::new(writer);
    let new_records = execute_trials_with(
        prep,
        FastForward::from_engine(eng),
        &remaining[..todo],
        |rec| {
            if let Some(w) = writer.lock().unwrap().as_mut() {
                w.record(rec)?;
            }
            Ok(())
        },
    )?;
    // Durable before the shard reports done: finish() fsyncs, so a crash
    // right after "shard complete" cannot lose the checkpoint tail.
    if let Some(w) = writer.into_inner().unwrap() {
        w.finish()?;
    }

    for r in new_records {
        slots[r.idx] = Some(r);
    }
    let out: Vec<TrialRecord> = my.iter().filter_map(|&i| slots[i]).collect();
    obs::emit_campaign(&obs::CampaignEvent {
        kind: "shard_done",
        app: &plan.app,
        layer: plan.layer.label(),
        shard: eng.shard_index as u64,
        shards: eng.shards as u64,
        done: out.len() as u64,
        total: my.len() as u64,
    });
    Ok(out)
}

/// Validate that `records` exactly cover `plan` (no gaps, no duplicates,
/// no foreign indices) and return them indexed by plan position.
fn complete_outcomes(
    plan: &CampaignPlan,
    records: &[TrialRecord],
) -> Result<Vec<TrialRecord>, EngineError> {
    let mut slots: Vec<Option<TrialRecord>> = vec![None; plan.len()];
    for &r in records {
        if r.idx >= plan.len() {
            return Err(EngineError::ForeignTrial { idx: r.idx });
        }
        if slots[r.idx].replace(r).is_some() {
            return Err(EngineError::DuplicateTrial { idx: r.idx });
        }
    }
    let missing = slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(EngineError::IncompleteCover {
            missing,
            total: plan.len(),
        });
    }
    Ok(slots.into_iter().map(Option::unwrap).collect())
}

/// Order-insensitive digest of a record set — two runs that classified
/// the same trials the same way agree on it regardless of shard layout.
/// Used by the shard-merge smoke gate and printed by `campaign merge`.
pub fn records_fingerprint(records: &[TrialRecord]) -> u64 {
    let mut acc = 0u64;
    for r in records {
        // XOR-combine per-record hashes so ordering doesn't matter.
        acc ^= derive_seed(
            0x5ca1_ab1e,
            &[r.idx as u64, r.outcome as u64, r.ctrl as u64],
        );
    }
    acc
}

/// Collapse duplicate trial records into one record per plan index — the
/// at-least-once merge used when the same shard was executed more than
/// once (two dispatch workers racing on a reassigned lease, the same
/// checkpoint file supplied to `merge` twice).
///
/// Trials are deterministic, so every re-execution of a plan index must
/// classify identically; duplicates agreeing on `(outcome, ctrl)` are
/// folded to the first-seen record (`wall_us` is wall-clock noise and may
/// legitimately differ), while a disagreement is reported as
/// [`EngineError::ConflictingDuplicate`] — that can only mean corrupt
/// input or records from a different plan, and silently picking a winner
/// would fabricate science. Output is sorted by plan index.
pub fn dedupe_records(records: &[TrialRecord]) -> Result<Vec<TrialRecord>, EngineError> {
    let mut by_idx: std::collections::BTreeMap<usize, TrialRecord> =
        std::collections::BTreeMap::new();
    for r in records {
        match by_idx.get(&r.idx) {
            None => {
                by_idx.insert(r.idx, *r);
            }
            Some(first) => {
                if first.outcome != r.outcome || first.ctrl != r.ctrl {
                    return Err(EngineError::ConflictingDuplicate { idx: r.idx });
                }
            }
        }
    }
    Ok(by_idx.into_values().collect())
}

// ---------------------------------------------------------------------
// Microarchitecture level (AVF)
// ---------------------------------------------------------------------

/// Per-(kernel, structure) campaign outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructureCampaign {
    pub counts: ClassCounts,
    /// Masked runs whose total cycle count differs from golden — the
    /// control-path proxy of Figure 11.
    pub ctrl_affected_masked: u32,
}

/// Everything measured about one kernel at the microarchitecture level.
#[derive(Debug, Clone, PartialEq)]
pub struct UarchKernelResult {
    /// Kernel display name ("K1", ...).
    pub kernel: String,
    pub per_structure: Vec<(HwStructure, StructureCampaign)>,
    /// Derating factors (Section II-B): live-allocation share for RF and
    /// SMEM, 1.0 for the always-whole-array cache structures.
    pub df: Vec<(HwStructure, f64)>,
    /// Golden cycles attributed to this kernel (AVF weighting).
    pub cycles: u64,
    /// Injections per structure (for error margins).
    pub n_per_structure: usize,
}

impl UarchKernelResult {
    pub fn df_of(&self, h: HwStructure) -> f64 {
        self.df
            .iter()
            .find(|&&(s, _)| s == h)
            .map_or(1.0, |&(_, d)| d)
    }

    pub fn counts_of(&self, h: HwStructure) -> &StructureCampaign {
        &self
            .per_structure
            .iter()
            .find(|&&(s, _)| s == h)
            .expect("structure present")
            .1
    }

    /// AVF of one structure: per-class failure fractions × derating factor.
    pub fn avf(&self, h: HwStructure) -> ClassRates {
        self.counts_of(h).counts.rates().scale(self.df_of(h))
    }

    /// Size-weighted AVF over a set of structures — the chip AVF when
    /// `set` is [`HwStructure::ALL`], the AVF-Cache sub-metric when it is
    /// [`HwStructure::CACHES`].
    pub fn avf_over(&self, gpu: &GpuConfig, set: &[HwStructure]) -> ClassRates {
        let total_bits: u64 = set.iter().map(|&h| gpu.structure_bits(h)).sum();
        let mut acc = ClassRates::default();
        for &h in set {
            let w = gpu.structure_bits(h) as f64 / total_bits as f64;
            acc.add(&self.avf(h).scale(w));
        }
        acc
    }

    /// Full-chip AVF (all five structures, size-weighted).
    pub fn chip_avf(&self, gpu: &GpuConfig) -> ClassRates {
        self.avf_over(gpu, &HwStructure::ALL)
    }

    /// Fraction of all injections that were masked with a disturbed cycle
    /// count (Figure 11).
    pub fn ctrl_affected_fraction(&self) -> f64 {
        let total: u32 = self
            .per_structure
            .iter()
            .map(|(_, c)| c.counts.total())
            .sum();
        if total == 0 {
            return 0.0;
        }
        let ctrl: u32 = self
            .per_structure
            .iter()
            .map(|(_, c)| c.ctrl_affected_masked)
            .sum();
        ctrl as f64 / total as f64
    }
}

/// Microarchitecture-level results for a whole application.
#[derive(Debug, Clone, PartialEq)]
pub struct UarchAppResult {
    pub app: String,
    pub kernels: Vec<UarchKernelResult>,
}

impl UarchAppResult {
    fn cycle_weighted(&self, f: impl Fn(&UarchKernelResult) -> ClassRates) -> ClassRates {
        let total: u64 = self.kernels.iter().map(|k| k.cycles).sum();
        let mut acc = ClassRates::default();
        for k in &self.kernels {
            acc.add(&f(k).scale(k.cycles as f64 / total.max(1) as f64));
        }
        acc
    }

    /// Application AVF: kernel chip-AVF weighted by kernel cycles
    /// (Section II-B's multi-kernel rule).
    pub fn app_avf(&self, gpu: &GpuConfig) -> ClassRates {
        self.cycle_weighted(|k| k.chip_avf(gpu))
    }

    /// Application AVF restricted to one structure (AVF-RF of Figure 4).
    pub fn app_avf_structure(&self, h: HwStructure) -> ClassRates {
        self.cycle_weighted(|k| k.avf(h))
    }

    /// Application AVF over the cache structures (Figure 5).
    pub fn app_avf_cache(&self, gpu: &GpuConfig) -> ClassRates {
        self.cycle_weighted(|k| k.avf_over(gpu, &HwStructure::CACHES))
    }
}

/// Derating factor of one kernel for RF or SMEM, cycle-weighted over its
/// launches (Section II-B):
/// `DF = size_per_thread × num_threads / system_size`
/// (per-CTA for shared memory), clamped to 1.
fn derating_factor(
    golden: &kernels::GoldenRun,
    kernel_idx: usize,
    gpu: &GpuConfig,
    h: HwStructure,
) -> f64 {
    let mut weighted = 0.0f64;
    let mut cycles = 0u64;
    for r in golden.records.iter().filter(|r| r.kernel_idx == kernel_idx) {
        let live_bits = match h {
            HwStructure::RegFile => r.num_regs as u64 * 32 * r.threads,
            HwStructure::Smem => r.smem_bytes as u64 * 8 * r.ctas,
            _ => return 1.0,
        };
        let df = (live_bits as f64 / gpu.structure_bits(h) as f64).min(1.0);
        weighted += df * r.stats.cycles as f64;
        cycles += r.stats.cycles;
    }
    if cycles == 0 {
        0.0
    } else {
        weighted / cycles as f64
    }
}

/// Fold a complete record set into the microarchitecture-level result.
/// `records` may come from one single-shot run, a merge of disjoint
/// shards, or a resumed checkpoint — the result is identical.
pub fn assemble_uarch(
    prep: &PreparedCampaign,
    records: &[TrialRecord],
) -> Result<UarchAppResult, EngineError> {
    if prep.plan.layer != Layer::Uarch {
        return Err(EngineError::PlanMismatch(
            "assemble_uarch on a software-level plan".into(),
        ));
    }
    let outs = complete_outcomes(&prep.plan, records)?;
    let n_kernels = prep.bench.kernels().len();
    // Plans restricted to the storage structures keep the historical
    // five-row shape; only plans that actually target the SIMT stack or
    // the scheduler widen the result to the full injectable set.
    let structs: &[HwStructure] =
        if prep.plan.trials.iter().any(
            |t| matches!(t.target, TrialTarget::Structure(h) if !HwStructure::ALL.contains(&h)),
        ) {
            &HwStructure::INJECTABLE
        } else {
            &HwStructure::ALL
        };
    let mut acc = vec![vec![StructureCampaign::default(); structs.len()]; n_kernels];
    for (t, r) in prep.plan.trials.iter().zip(&outs) {
        let TrialTarget::Structure(h) = t.target else {
            unreachable!("uarch plans only target structures");
        };
        let pos = structs.iter().position(|&x| x == h).unwrap();
        let sc = &mut acc[t.kernel_idx][pos];
        sc.counts.record(r.outcome);
        sc.ctrl_affected_masked += r.ctrl as u32;
    }
    let kernels = prep
        .bench
        .kernels()
        .iter()
        .enumerate()
        .map(|(k_idx, k_name)| {
            let cycles: u64 = prep
                .golden
                .records
                .iter()
                .filter(|r| r.kernel_idx == k_idx)
                .map(|r| r.stats.cycles)
                .sum();
            let per_structure = structs
                .iter()
                .zip(&acc[k_idx])
                .map(|(&h, &c)| (h, c))
                .collect();
            let df = structs
                .iter()
                .map(|&h| (h, derating_factor(&prep.golden, k_idx, &prep.cfg.gpu, h)))
                .collect();
            UarchKernelResult {
                kernel: k_name.to_string(),
                per_structure,
                df,
                cycles,
                n_per_structure: prep.cfg.n_uarch,
            }
        })
        .collect();
    Ok(UarchAppResult {
        app: prep.plan.app.clone(),
        kernels,
    })
}

/// Run the cross-layer (gpuFI-4 model) campaign for one application:
/// plan, execute as a single shard, assemble.
pub fn run_uarch_campaign(
    bench: &dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
) -> UarchAppResult {
    run_uarch_campaign_with(bench, cfg, hardened, EngineBackend::Timed)
}

/// [`run_uarch_campaign`] with an explicit simulation backend — the
/// study binaries' `--backend` axis. Results are byte-identical across
/// backends (differential-tested); replay only changes the wall cost.
pub fn run_uarch_campaign_with(
    bench: &dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
    backend: EngineBackend,
) -> UarchAppResult {
    let prep = prepare_uarch_campaign(bench, cfg, hardened);
    let eng = EngineCfg {
        backend,
        ..EngineCfg::single_shot()
    };
    let records =
        execute_shard(&prep, &eng).expect("single-shot execution performs no checkpoint I/O");
    assemble_uarch(&prep, &records).expect("a single shard covers the whole plan")
}

// ---------------------------------------------------------------------
// Software level (SVF)
// ---------------------------------------------------------------------

/// Software-level results for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SvfKernelResult {
    pub kernel: String,
    /// Destination-value injections (NVBitFI default).
    pub counts: ClassCounts,
    /// Load-destination injections (SVF-LD of Figure 5).
    pub counts_ld: ClassCounts,
    /// Dynamic thread instructions (the SVF application-weighting metric).
    pub instrs: u64,
}

impl SvfKernelResult {
    /// `SVF(ker) = FR(ker)` per class.
    pub fn svf(&self) -> ClassRates {
        self.counts.rates()
    }

    pub fn svf_ld(&self) -> ClassRates {
        self.counts_ld.rates()
    }
}

/// Software-level results for a whole application.
#[derive(Debug, Clone, PartialEq)]
pub struct SvfAppResult {
    pub app: String,
    pub kernels: Vec<SvfKernelResult>,
}

impl SvfAppResult {
    fn instr_weighted(&self, f: impl Fn(&SvfKernelResult) -> ClassRates) -> ClassRates {
        let total: u64 = self.kernels.iter().map(|k| k.instrs).sum();
        let mut acc = ClassRates::default();
        for k in &self.kernels {
            acc.add(&f(k).scale(k.instrs as f64 / total.max(1) as f64));
        }
        acc
    }

    /// Application SVF: kernel SVF weighted by executed instructions
    /// (Section II-C's multi-kernel rule).
    pub fn app_svf(&self) -> ClassRates {
        self.instr_weighted(|k| k.svf())
    }

    pub fn app_svf_ld(&self) -> ClassRates {
        self.instr_weighted(|k| k.svf_ld())
    }
}

/// Fold a complete record set of any software-level plan into per-kernel,
/// per-sub-campaign outcome counts, indexed `[kernel][position in
/// plan.sw_kinds]`. The generic assembly behind [`assemble_sw`] and the
/// PVF campaign.
pub fn assemble_sw_counts(
    prep: &PreparedCampaign,
    records: &[TrialRecord],
) -> Result<Vec<Vec<ClassCounts>>, EngineError> {
    if prep.plan.layer != Layer::Sw {
        return Err(EngineError::PlanMismatch(
            "assemble_sw on a microarchitecture-level plan".into(),
        ));
    }
    let outs = complete_outcomes(&prep.plan, records)?;
    let kinds = &prep.plan.sw_kinds;
    let n_kernels = prep.bench.kernels().len();
    let mut acc = vec![vec![ClassCounts::default(); kinds.len()]; n_kernels];
    for (t, r) in prep.plan.trials.iter().zip(&outs) {
        let TrialTarget::Fault(kind) = t.target else {
            unreachable!("sw plans only target fault kinds");
        };
        let pos = kinds.iter().position(|&(k, _)| k == kind).unwrap();
        acc[t.kernel_idx][pos].record(r.outcome);
    }
    Ok(acc)
}

/// Fold a complete record set of the standard SVF plan (dest-value +
/// dest-value-load) into the software-level result.
pub fn assemble_sw(
    prep: &PreparedCampaign,
    records: &[TrialRecord],
) -> Result<SvfAppResult, EngineError> {
    let expected = [
        (SwFaultKind::DestValue, 10),
        (SwFaultKind::DestValueLoad, 11),
    ];
    if prep.plan.sw_kinds != expected {
        return Err(EngineError::PlanMismatch(
            "assemble_sw expects the standard dest-value + dest-value-ld plan".into(),
        ));
    }
    let counts = assemble_sw_counts(prep, records)?;
    let kernels = prep
        .bench
        .kernels()
        .iter()
        .enumerate()
        .map(|(k_idx, k_name)| SvfKernelResult {
            kernel: k_name.to_string(),
            counts: counts[k_idx][0],
            counts_ld: counts[k_idx][1],
            instrs: prep.golden.kernel_stats(k_idx).thread_instrs,
        })
        .collect();
    Ok(SvfAppResult {
        app: prep.plan.app.clone(),
        kernels,
    })
}

/// Run the software-level (NVBitFI model) campaign for one application:
/// destination-value injections plus the load-only SVF-LD variant.
pub fn run_sw_campaign(bench: &dyn Benchmark, cfg: &CampaignCfg, hardened: bool) -> SvfAppResult {
    let prep = prepare_sw_campaign(bench, cfg, hardened);
    let records = execute_shard(&prep, &EngineCfg::single_shot())
        .expect("single-shot execution performs no checkpoint I/O");
    assemble_sw(&prep, &records).expect("a single shard covers the whole plan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::apps::va::Va;

    #[test]
    fn single_shot_sharded_and_limited_runs_agree() {
        let cfg = CampaignCfg::new(10, 10, 0xFEED);
        let single = run_sw_campaign(&Va, &cfg, false);
        let prep = prepare_sw_campaign(&Va, &cfg, false);
        let mut recs = Vec::new();
        for i in 0..4 {
            recs.extend(execute_shard(&prep, &EngineCfg::sharded(4, i)).unwrap());
        }
        assert_eq!(assemble_sw(&prep, &recs).unwrap(), single);
        assert_eq!(
            records_fingerprint(&recs),
            records_fingerprint(&execute_shard(&prep, &EngineCfg::single_shot()).unwrap())
        );
    }

    #[test]
    fn assembly_rejects_gaps_and_duplicates() {
        let cfg = CampaignCfg::new(4, 4, 1);
        let prep = prepare_sw_campaign(&Va, &cfg, false);
        let recs = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
        assert!(matches!(
            assemble_sw(&prep, &recs[1..]),
            Err(EngineError::IncompleteCover { missing: 1, .. })
        ));
        let mut dup = recs.clone();
        dup.push(recs[0]);
        assert!(matches!(
            assemble_sw(&prep, &dup),
            Err(EngineError::DuplicateTrial { idx: 0 })
        ));
        let mut foreign = recs.clone();
        foreign[0].idx = prep.plan.len();
        assert!(matches!(
            assemble_sw(&prep, &foreign),
            Err(EngineError::ForeignTrial { .. })
        ));
    }

    #[test]
    fn checkpoint_flush_interval_edges_resume_identically() {
        // K=1 flushes every record; K far above the plan size only
        // flushes at finish. Both must leave a checkpoint that resumes
        // to the single-shot assembled result.
        let dir = std::env::temp_dir().join(format!("relia_ckpt_edges_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CampaignCfg::new(4, 4, 3);
        let prep = prepare_uarch_campaign(&Va, &cfg, false);
        let single = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
        let expect = assemble_uarch(&prep, &single).unwrap();
        for every in [1usize, 10 * prep.plan.len()] {
            let path = dir.join(format!("k{every}.jsonl"));
            let interrupted = EngineCfg {
                checkpoint: Some(path.clone()),
                checkpoint_every: every,
                trial_limit: Some(5),
                ..EngineCfg::single_shot()
            };
            assert_eq!(execute_shard(&prep, &interrupted).unwrap().len(), 5);
            let resumed = EngineCfg {
                checkpoint_every: every,
                resume: Some(path.clone()),
                ..EngineCfg::single_shot()
            };
            let records = execute_shard(&prep, &resumed).unwrap();
            assert_eq!(records.len(), prep.plan.len());
            assert_eq!(assemble_uarch(&prep, &records).unwrap(), expect);
            assert_eq!(records_fingerprint(&records), records_fingerprint(&single));
            // The finished checkpoint alone also carries the result.
            let ck = crate::checkpoint::load_checkpoint(&path).unwrap();
            assert_eq!(assemble_uarch(&prep, &ck.records).unwrap(), expect);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_shard_submissions_dedupe_to_single_shot() {
        // Execute shard 1 of 3 twice (as two racing workers would after a
        // lease reassignment); the concatenation has duplicates, dedupe
        // collapses them, and assembly equals the single-shot result even
        // though the re-execution's wall_us values differ.
        let cfg = CampaignCfg::new(6, 6, 0xD15);
        let prep = prepare_sw_campaign(&Va, &cfg, false);
        let single = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
        let mut all = Vec::new();
        for i in 0..3 {
            all.extend(execute_shard(&prep, &EngineCfg::sharded(3, i)).unwrap());
        }
        all.extend(execute_shard(&prep, &EngineCfg::sharded(3, 1)).unwrap());
        assert!(
            assemble_sw(&prep, &all).is_err(),
            "raw concat has duplicates"
        );
        let deduped = dedupe_records(&all).unwrap();
        assert_eq!(
            assemble_sw(&prep, &deduped).unwrap(),
            assemble_sw(&prep, &single).unwrap()
        );
        assert_eq!(records_fingerprint(&deduped), records_fingerprint(&single));

        // A conflicting duplicate is corruption, never silently merged.
        let mut bad = single.clone();
        let mut evil = bad[0];
        evil.outcome = match evil.outcome {
            Outcome::Masked => Outcome::Sdc,
            _ => Outcome::Masked,
        };
        bad.push(evil);
        assert!(matches!(
            dedupe_records(&bad),
            Err(EngineError::ConflictingDuplicate { idx }) if idx == bad[0].idx
        ));
    }

    #[test]
    fn execute_trials_streams_every_record_exactly_once() {
        let cfg = CampaignCfg::new(5, 5, 0x7E57);
        let prep = prepare_sw_campaign(&Va, &cfg, false);
        let idxs: Vec<usize> = (0..prep.plan.len()).step_by(2).collect();
        let streamed = Mutex::new(Vec::new());
        let got = execute_trials(&prep, &idxs, |r| {
            streamed.lock().unwrap().push(*r);
            Ok(())
        })
        .unwrap();
        let mut streamed = streamed.into_inner().unwrap();
        streamed.sort_by_key(|r| r.idx);
        let mut got_sorted = got.clone();
        got_sorted.sort_by_key(|r| r.idx);
        assert_eq!(
            streamed, got_sorted,
            "sink saw exactly the returned records"
        );
        assert_eq!(
            streamed.iter().map(|r| r.idx).collect::<Vec<_>>(),
            idxs,
            "every requested index classified once"
        );
        // A sink error aborts the run.
        let err = execute_trials(&prep, &idxs, |_| Err(std::io::Error::other("sink down")));
        assert!(err.is_err());
    }

    #[test]
    fn trial_limit_executes_exactly_that_many() {
        let cfg = CampaignCfg::new(4, 4, 2);
        let prep = prepare_sw_campaign(&Va, &cfg, false);
        let eng = EngineCfg {
            trial_limit: Some(3),
            ..EngineCfg::single_shot()
        };
        assert_eq!(execute_shard(&prep, &eng).unwrap().len(), 3);
    }
}
