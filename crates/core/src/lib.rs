//! # relia — cross-layer GPU reliability assessment
//!
//! The reproduction of the CLUSTER 2024 paper *"GPU Reliability
//! Assessment: Insights Across the Abstraction Layers"*: statistical
//! single-bit fault-injection campaigns at the microarchitecture level
//! (the gpuFI-4 / AVF methodology, against the cycle-level [`vgpu_sim`]
//! simulator) and at the software level (the NVBitFI / SVF methodology,
//! against hardware-agnostic functional execution), plus the analyses the
//! paper builds on top:
//!
//! * the AVF formulas of Section II-B — failure rates, derating factors,
//!   size-weighted chip AVF, cycle-weighted application AVF
//!   ([`campaign::UarchKernelResult`], [`campaign::UarchAppResult`]);
//! * the SVF formulas of Section II-C, including the load-only SVF-LD
//!   sub-metric ([`campaign::SvfAppResult`]);
//! * consistent/opposite relative-vulnerability trend counting — Table I
//!   ([`trends`]);
//! * the Figure-3 resource-utilization profile and pairwise normalization
//!   ([`profile`]);
//! * the Section-IV TMR hardening study ([`hardening`]);
//! * the Section-V-B register-reuse analyzer and the exact Figure-12
//!   example ([`reuse`]);
//! * statistical-FI confidence margins ([`metrics::error_margin`]).
//!
//! # Quick start
//!
//! ```no_run
//! use relia::{CampaignCfg, run_uarch_campaign, run_sw_campaign};
//!
//! let cfg = CampaignCfg::new(300, 300, 0xC0FFEE);
//! let bench = kernels::apps::va::Va;
//! let avf = run_uarch_campaign(&bench, &cfg, false);
//! let svf = run_sw_campaign(&bench, &cfg, false);
//! println!("VA chip AVF = {:.4}%", avf.app_avf(&cfg.gpu).total() * 100.0);
//! println!("VA SVF      = {:.2}%", svf.app_svf().total() * 100.0);
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod hardening;
pub mod metrics;
pub mod plan;
pub mod profile;
pub mod pvf;
pub mod report;
pub mod reuse;
pub mod trends;

pub use campaign::{
    assemble_sw, assemble_sw_counts, assemble_uarch, dedupe_records, execute_shard, execute_trials,
    execute_trials_with, records_fingerprint, run_sw_campaign, run_uarch_campaign,
    run_uarch_campaign_with, CampaignCfg, EngineBackend, EngineCfg, EngineError, FastForward,
    SvfAppResult, SvfKernelResult, UarchAppResult, UarchKernelResult, Watchdog, DEFAULT_SNAPSHOTS,
};
pub use checkpoint::{
    load_checkpoint, Checkpoint, CheckpointError, CheckpointHeader, CheckpointWriter, TrialRecord,
    DEFAULT_CHECKPOINT_EVERY,
};
pub use hardening::{evaluate_hardening, HardeningComparison};
pub use metrics::{error_margin, ClassCounts, ClassRates, Confidence};
pub use plan::{
    prepare_adaptive_wave, prepare_sw_campaign, prepare_sw_kinds, prepare_uarch_campaign,
    prepare_uarch_campaign_structures, shard_trials, sw_seed_tag, CampaignPlan, Layer,
    PlannedTrial, PreparedCampaign, StratumSpec, TrialTarget,
};
pub use profile::{kernel_metrics, normalized_pair, UtilMetrics, METRIC_LABELS};
pub use pvf::{run_pvf_campaign, PvfAppResult, PvfKernelResult};
pub use report::{metrics_tables, pct, pct4, phase_table, RowArityError, Table};
pub use trends::{compare_pairs, opposite_pairs, TrendCount, TrendItem};
