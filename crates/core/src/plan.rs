//! Deterministic injection plans: seed → explicit trial list.
//!
//! A [`CampaignPlan`] expands a campaign configuration into the complete,
//! ordered list of trials it will run — for each trial the derived seed,
//! the targeted launch, and the fully resolved fault (structure/
//! instruction, bit, cycle). Because every trial is fixed up front from
//! `(seed, app, kernel, target, trial)` alone, the plan is identical no
//! matter how execution is split: across rayon workers, across
//! `--shards M --shard-index i` processes, or across an interruption and
//! a `--resume`. [`shard_trials`] partitions a plan into disjoint strided
//! slices, and [`CampaignPlan::fingerprint`] condenses the whole trial
//! list into one u64 so checkpoints and shard outputs can prove they came
//! from the same plan before being merged.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use kernels::{
    golden_run, golden_run_snapshots, AppSnapshots, Benchmark, GoldenRun, PlannedFault, Variant,
};
use obs::Phase;
use vgpu_arch::InstrClass;
use vgpu_sim::{FaultPattern, HwStructure, Mode, SwFault, SwFaultKind, UarchFault};

use crate::campaign::CampaignCfg;

/// Abstraction layer of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Microarchitecture-level (gpuFI-4 model, AVF side).
    Uarch,
    /// Software-level (NVBitFI model, SVF/PVF side).
    Sw,
}

impl Layer {
    /// Stable identifier used in metric labels, events, and checkpoints.
    pub fn label(&self) -> &'static str {
        match self {
            Layer::Uarch => "uarch",
            Layer::Sw => "sw",
        }
    }

    pub fn from_label(s: &str) -> Option<Layer> {
        match s {
            "uarch" => Some(Layer::Uarch),
            "sw" => Some(Layer::Sw),
            _ => None,
        }
    }
}

/// What one trial targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialTarget {
    /// A hardware structure (uarch campaigns).
    Structure(HwStructure),
    /// A software fault kind (sw campaigns).
    Fault(SwFaultKind),
}

impl TrialTarget {
    pub fn label(&self) -> &'static str {
        match self {
            TrialTarget::Structure(h) => h.label(),
            TrialTarget::Fault(k) => k.label(),
        }
    }
}

/// One fully resolved injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedTrial {
    /// Global index into [`CampaignPlan::trials`] — the identity used by
    /// checkpoints and shard merging.
    pub index: usize,
    /// Index into [`Benchmark::kernels`].
    pub kernel_idx: usize,
    pub target: TrialTarget,
    /// Ordinal within its (kernel, target) sub-campaign.
    pub trial: usize,
    /// Per-trial derived seed (reproduces the trial exactly).
    pub seed: u64,
    /// Resolved fault: (golden launch ordinal, fault). `None` means the
    /// target population was empty and the trial is trivially masked.
    pub fault: Option<(usize, PlannedFault)>,
}

/// The complete, deterministic trial list of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    pub app: String,
    pub layer: Layer,
    pub seed: u64,
    pub hardened: bool,
    /// Fault pattern every trial of this plan applies. Pure payload: it
    /// never feeds the per-trial seed derivation, so the (cycle, location,
    /// bit) coordinates of a plan are identical across patterns and
    /// single-bit plans predate the field byte-for-byte.
    pub pattern: FaultPattern,
    /// Injections per (kernel, target) sub-campaign.
    pub n_per_target: usize,
    /// Software fault kinds with their seed-derivation tags, in
    /// sub-campaign order (empty for uarch plans).
    pub sw_kinds: Vec<(SwFaultKind, u64)>,
    /// Wave index for adaptive campaigns ([`prepare_adaptive_wave`]);
    /// `None` for classic fixed-n plans. Folded into the fingerprint so
    /// the checkpoints and dispatch leases of different waves can never
    /// be confused, while every fixed-plan fingerprint predates the
    /// field byte-for-byte.
    pub wave: Option<u64>,
    pub trials: Vec<PlannedTrial>,
}

impl CampaignPlan {
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Order-sensitive digest of the plan: campaign identity plus, for
    /// every trial, its derived seed and resolved fault coordinates. Two
    /// runs agree on this u64 exactly when they would execute the same
    /// injections in the same slots, so checkpoint resume and shard merge
    /// use it to reject outputs from a different seed, app, GPU
    /// configuration, or code revision of the planner.
    pub fn fingerprint(&self) -> u64 {
        let mut h = derive_seed(
            self.seed,
            &[
                str_tag(&self.app),
                str_tag(self.layer.label()),
                self.hardened as u64,
                self.n_per_target as u64,
                self.trials.len() as u64,
            ],
        );
        // Folded only for non-default patterns so every single-bit
        // fingerprint minted before the pattern axis existed stays valid
        // (checkpoints, shard outputs, dispatch handshakes).
        if self.pattern != FaultPattern::SingleBit {
            h = derive_seed(h, &[str_tag(self.pattern.label())]);
        }
        // Same back-compat rule for the adaptive wave index.
        if let Some(w) = self.wave {
            h = derive_seed(h, &[str_tag("wave"), w]);
        }
        for t in &self.trials {
            let (ord, a, b, c) = match &t.fault {
                None => (0, 0, 0, 0),
                Some((ordinal, PlannedFault::Uarch(u))) => {
                    (*ordinal as u64 + 1, u.cycle, u.loc_pick, u.bit as u64)
                }
                Some((ordinal, PlannedFault::Sw(s))) => {
                    (*ordinal as u64 + 1, s.target, s.loc_pick, s.bit as u64)
                }
            };
            h = derive_seed(h, &[t.seed, ord, a, b, c]);
        }
        h
    }
}

/// A plan bound to everything needed to execute it: the benchmark, the
/// campaign configuration, and the golden run its faults were resolved
/// against. Produced by [`prepare_uarch_campaign`] / [`prepare_sw_campaign`],
/// consumed by [`crate::campaign::execute_shard`] and the `assemble_*`
/// folds.
pub struct PreparedCampaign<'a> {
    pub bench: &'a dyn Benchmark,
    pub cfg: CampaignCfg,
    pub variant: Variant,
    pub golden: GoldenRun,
    pub plan: CampaignPlan,
    /// Lazily captured golden-prefix snapshot set for fast-forward trial
    /// execution, shared by every worker thread. `None` inside the cell
    /// means fast-forward does not apply to this campaign (software
    /// layer, hardened, or snapshots disabled).
    pub snaps: OnceLock<Option<Arc<AppSnapshots>>>,
    /// Lazily recorded golden access trace for the replay backend,
    /// shared by every worker thread. `None` inside the cell means
    /// replay does not apply (software layer or hardened variant).
    pub app_trace: OnceLock<Option<Arc<trace::AppTrace>>>,
}

impl PreparedCampaign<'_> {
    /// The fast-forward snapshot set, capturing it on first use (one
    /// instrumented golden pass with `k` mid-launch snapshots per
    /// launch). Returns `None` — and captures nothing — for campaigns
    /// fast-forward cannot serve: software-layer plans (functional
    /// engine), hardened variants, or `k == 0`.
    pub fn snapshots(&self, k: usize) -> Option<&Arc<AppSnapshots>> {
        self.snaps
            .get_or_init(|| {
                if self.plan.layer != Layer::Uarch
                    || self.variant != Variant::TIMED
                    || k == 0
                    || self.plan.trials.iter().all(|t| t.fault.is_none())
                {
                    return None;
                }
                let t0 = Instant::now();
                let snaps = obs::time_phase(Phase::SnapshotCapture, || {
                    golden_run_snapshots(self.bench, &self.cfg.gpu, &self.golden, k)
                });
                obs::gauge_set(
                    "snapshot_bytes",
                    &[("app", self.plan.app.as_str()), ("layer", "uarch")],
                    snaps.bytes,
                );
                obs::emit_snapshot(&obs::SnapshotEvent {
                    app: &self.plan.app,
                    layer: self.plan.layer.label(),
                    per_launch: k as u64,
                    count: snaps.count() as u64,
                    bytes: snaps.bytes,
                    wall_us: t0.elapsed().as_micros() as u64,
                });
                Some(Arc::new(snaps))
            })
            .as_ref()
    }

    /// The replay backend's recorded golden access trace, capturing it
    /// on first use (one traced golden pass, bit-identity asserted
    /// against the untraced baseline). Returns `None` — and records
    /// nothing — for campaigns replay cannot serve: software-layer
    /// plans, hardened variants, or all-empty fault populations.
    pub fn trace(&self) -> Option<&Arc<trace::AppTrace>> {
        self.app_trace
            .get_or_init(|| {
                if self.plan.layer != Layer::Uarch
                    || self.variant != Variant::TIMED
                    || self.plan.trials.iter().all(|t| t.fault.is_none())
                {
                    return None;
                }
                let tr = obs::time_phase(Phase::TraceCapture, || {
                    trace::record_app_trace(self.bench, &self.cfg.gpu, &self.golden)
                });
                obs::gauge_set(
                    "trace_bytes",
                    &[("app", self.plan.app.as_str()), ("layer", "uarch")],
                    tr.bytes,
                );
                Some(Arc::new(tr))
            })
            .as_ref()
    }
}

/// Strided shard partition: shard `index` of `shards` owns plan indices
/// `index, index + shards, index + 2·shards, …`. For any `(len, shards)`
/// the shards form a disjoint cover of `0..len` (guarded by a property
/// test), so merging all shard outputs reconstructs the whole campaign.
pub fn shard_trials(len: usize, shards: usize, index: usize) -> Vec<usize> {
    assert!(shards >= 1, "shards must be >= 1");
    assert!(
        index < shards,
        "shard index {index} out of range for {shards} shards"
    );
    (index..len).step_by(shards).collect()
}

/// Deterministic per-trial seed derivation (splitmix-style hashing).
pub(crate) fn derive_seed(base: u64, tags: &[u64]) -> u64 {
    let mut x = base ^ 0x9e37_79b9_7f4a_7c15;
    for &t in tags {
        x ^= t
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(x << 6)
            .wrapping_add(x >> 2);
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
    }
    x
}

pub(crate) fn str_tag(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Seed-derivation tag of a software fault kind. The historical
/// constants (10 = dest-value, 11 = dest-value-load, 12 = arch-state)
/// are frozen — results must stay comparable across versions — and the
/// per-class strata of the two-level model claim the 20+ range, keyed by
/// the stable [`vgpu_arch::InstrClass::index`] order.
pub fn sw_seed_tag(kind: SwFaultKind) -> u64 {
    match kind {
        SwFaultKind::DestValue => 10,
        SwFaultKind::DestValueLoad => 11,
        SwFaultKind::ArchState => 12,
        SwFaultKind::SrcTransient => 13,
        SwFaultKind::SrcPersistent => 14,
        SwFaultKind::DestClass(c) => 20 + c.index().unwrap_or(InstrClass::COUNT) as u64,
    }
}

/// Eligible-population weight of a software fault kind within one golden
/// launch — the window size the planner draws `SwFault::target` from.
fn sw_kind_weight(kind: SwFaultKind, stats: &vgpu_sim::Stats) -> u64 {
    match kind {
        SwFaultKind::DestValue => stats.gp_dest_instrs,
        SwFaultKind::SrcPersistent | SwFaultKind::SrcTransient => stats.src_reg_instrs,
        SwFaultKind::DestValueLoad => stats.ld_dest_instrs,
        SwFaultKind::ArchState => stats.thread_instrs,
        SwFaultKind::DestClass(c) => c.index().map(|i| stats.class_dest_instrs[i]).unwrap_or(0),
    }
}

/// Pick an index from `weights` proportionally.
pub(crate) fn pick_weighted(rng: &mut SmallRng, weights: &[(usize, u64)]) -> Option<(usize, u64)> {
    let total: u64 = weights.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return None;
    }
    let mut x = rng.gen_range(0..total);
    for &(idx, w) in weights {
        if x < w {
            return Some((idx, w));
        }
        x -= w;
    }
    unreachable!("weighted pick ran past total");
}

/// Run the golden execution and expand the microarchitecture-level (AVF)
/// campaign into its full trial list: every (kernel, structure) pair gets
/// `n_uarch` trials, each resolved to a (launch, cycle, location, bit)
/// flip by the same seed derivation the monolithic campaign loop used —
/// so executing the plan in any partition reproduces `run_uarch_campaign`
/// exactly.
pub fn prepare_uarch_campaign<'a>(
    bench: &'a dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
) -> PreparedCampaign<'a> {
    prepare_uarch_campaign_structures(bench, cfg, hardened, &HwStructure::ALL)
}

/// [`prepare_uarch_campaign`] restricted to a structure subset (the
/// `--structures` CLI filter). Per-trial seeds depend only on
/// (seed, app, kernel, structure, trial), so a subset plan injects
/// exactly the faults the full plan would inject into those structures.
pub fn prepare_uarch_campaign_structures<'a>(
    bench: &'a dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
    structures: &[HwStructure],
) -> PreparedCampaign<'a> {
    let variant = Variant {
        mode: Mode::Timed,
        hardened,
    };
    let golden = obs::time_phase(Phase::GoldenRun, || golden_run(bench, &cfg.gpu, variant));
    let app_tag = str_tag(bench.name());
    let n_kernels = bench.kernels().len();
    let mut trials = Vec::with_capacity(n_kernels * structures.len() * cfg.n_uarch);
    obs::time_phase(Phase::FaultSetup, || {
        for k_idx in 0..n_kernels {
            let windows: Vec<(usize, u64)> = golden
                .records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.kernel_idx == k_idx && r.stats.cycles > 0)
                .map(|(o, r)| (o, r.stats.cycles))
                .collect();
            for &h in structures {
                for trial in 0..cfg.n_uarch {
                    let s = derive_seed(
                        cfg.seed,
                        &[app_tag, k_idx as u64, h as u64, trial as u64, 1],
                    );
                    let mut rng = SmallRng::seed_from_u64(s);
                    let fault =
                        pick_weighted(&mut rng, &windows).map(|(ordinal, launch_cycles)| {
                            (
                                ordinal,
                                PlannedFault::Uarch(UarchFault {
                                    cycle: rng.gen_range(0..launch_cycles),
                                    structure: h,
                                    loc_pick: rng.gen(),
                                    bit: rng.gen_range(0..32),
                                    pattern: cfg.pattern,
                                }),
                            )
                        });
                    trials.push(PlannedTrial {
                        index: trials.len(),
                        kernel_idx: k_idx,
                        target: TrialTarget::Structure(h),
                        trial,
                        seed: s,
                        fault,
                    });
                }
            }
        }
    });
    PreparedCampaign {
        bench,
        cfg: cfg.clone(),
        variant,
        golden,
        snaps: OnceLock::new(),
        app_trace: OnceLock::new(),
        plan: CampaignPlan {
            app: bench.name().to_string(),
            layer: Layer::Uarch,
            seed: cfg.seed,
            hardened,
            pattern: cfg.pattern,
            n_per_target: cfg.n_uarch,
            sw_kinds: Vec::new(),
            wave: None,
            trials,
        },
    }
}

/// The standard software-level (SVF) campaign: destination-value
/// injections plus the load-only SVF-LD variant.
pub fn prepare_sw_campaign<'a>(
    bench: &'a dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
) -> PreparedCampaign<'a> {
    prepare_sw_kinds(
        bench,
        cfg,
        hardened,
        &[
            (SwFaultKind::DestValue, 10),
            (SwFaultKind::DestValueLoad, 11),
        ],
    )
}

/// Software-level plan over an explicit set of (fault kind, seed tag)
/// sub-campaigns — the generalization behind [`prepare_sw_campaign`] and
/// the PVF campaign. Tags feed the seed derivation and must match the
/// historical constants (10 = dest-value, 11 = dest-value-load,
/// 12 = arch-state) for results to stay comparable across versions.
pub fn prepare_sw_kinds<'a>(
    bench: &'a dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
    kinds: &[(SwFaultKind, u64)],
) -> PreparedCampaign<'a> {
    let variant = Variant {
        mode: Mode::Functional,
        hardened,
    };
    let golden = obs::time_phase(Phase::GoldenRun, || golden_run(bench, &cfg.gpu, variant));
    let app_tag = str_tag(bench.name());
    let n_kernels = bench.kernels().len();
    let mut trials = Vec::with_capacity(n_kernels * kinds.len() * cfg.n_sw);
    obs::time_phase(Phase::FaultSetup, || {
        for k_idx in 0..n_kernels {
            for &(kind, tag) in kinds {
                let windows: Vec<(usize, u64)> = golden
                    .records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.kernel_idx == k_idx)
                    .map(|(o, r)| (o, sw_kind_weight(kind, &r.stats)))
                    .filter(|&(_, w)| w > 0)
                    .collect();
                for trial in 0..cfg.n_sw {
                    let s = derive_seed(cfg.seed, &[app_tag, k_idx as u64, tag, trial as u64, 2]);
                    let mut rng = SmallRng::seed_from_u64(s);
                    let fault = pick_weighted(&mut rng, &windows).map(|(ordinal, weight)| {
                        (
                            ordinal,
                            PlannedFault::Sw(SwFault {
                                kind,
                                target: rng.gen_range(0..weight),
                                bit: rng.gen_range(0..32),
                                loc_pick: rng.gen(),
                                pattern: cfg.pattern,
                            }),
                        )
                    });
                    trials.push(PlannedTrial {
                        index: trials.len(),
                        kernel_idx: k_idx,
                        target: TrialTarget::Fault(kind),
                        trial,
                        seed: s,
                        fault,
                    });
                }
            }
        }
    });
    PreparedCampaign {
        bench,
        cfg: cfg.clone(),
        variant,
        golden,
        snaps: OnceLock::new(),
        app_trace: OnceLock::new(),
        plan: CampaignPlan {
            app: bench.name().to_string(),
            layer: Layer::Sw,
            seed: cfg.seed,
            hardened,
            pattern: cfg.pattern,
            n_per_target: cfg.n_sw,
            sw_kinds: kinds.to_vec(),
            wave: None,
            trials,
        },
    }
}

/// One (kernel, target) stratum slice of an adaptive wave: the trial
/// ordinals `start..start + count` of that stratum's seed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratumSpec {
    pub kernel_idx: usize,
    pub target: TrialTarget,
    /// First trial ordinal this wave executes in the stratum (= trials
    /// already executed by earlier waves).
    pub start: usize,
    /// Trials this wave adds to the stratum.
    pub count: usize,
}

/// Expand one adaptive wave into a plan: for each stratum, the trials
/// with ordinals `start..start + count` of that (kernel, target) seed
/// stream — derived *identically* to the fixed-n planners, so a wave is
/// a contiguous slice of the stratum a big-enough fixed plan would run.
/// Adaptive campaigns are therefore deterministic by construction: the
/// trials of wave `w` depend only on (seed, app, strata), never on how
/// earlier waves were executed, and each wave runs through the unchanged
/// engine (checkpoints, shards, dispatch leases) under its own
/// wave-tagged fingerprint.
///
/// All strata must belong to `layer`; sw strata may mix fault kinds.
pub fn prepare_adaptive_wave<'a>(
    bench: &'a dyn Benchmark,
    cfg: &CampaignCfg,
    hardened: bool,
    layer: Layer,
    strata: &[StratumSpec],
    wave: u64,
) -> PreparedCampaign<'a> {
    let variant = Variant {
        mode: match layer {
            Layer::Uarch => Mode::Timed,
            Layer::Sw => Mode::Functional,
        },
        hardened,
    };
    let golden = obs::time_phase(Phase::GoldenRun, || golden_run(bench, &cfg.gpu, variant));
    let app_tag = str_tag(bench.name());
    let mut trials = Vec::with_capacity(strata.iter().map(|s| s.count).sum());
    let mut sw_kinds: Vec<(SwFaultKind, u64)> = Vec::new();
    obs::time_phase(Phase::FaultSetup, || {
        for st in strata {
            let k_idx = st.kernel_idx;
            match st.target {
                TrialTarget::Structure(h) => {
                    assert_eq!(layer, Layer::Uarch, "structure stratum in a sw wave");
                    let windows: Vec<(usize, u64)> = golden
                        .records
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.kernel_idx == k_idx && r.stats.cycles > 0)
                        .map(|(o, r)| (o, r.stats.cycles))
                        .collect();
                    for trial in st.start..st.start + st.count {
                        let s = derive_seed(
                            cfg.seed,
                            &[app_tag, k_idx as u64, h as u64, trial as u64, 1],
                        );
                        let mut rng = SmallRng::seed_from_u64(s);
                        let fault =
                            pick_weighted(&mut rng, &windows).map(|(ordinal, launch_cycles)| {
                                (
                                    ordinal,
                                    PlannedFault::Uarch(UarchFault {
                                        cycle: rng.gen_range(0..launch_cycles),
                                        structure: h,
                                        loc_pick: rng.gen(),
                                        bit: rng.gen_range(0..32),
                                        pattern: cfg.pattern,
                                    }),
                                )
                            });
                        trials.push(PlannedTrial {
                            index: trials.len(),
                            kernel_idx: k_idx,
                            target: st.target,
                            trial,
                            seed: s,
                            fault,
                        });
                    }
                }
                TrialTarget::Fault(kind) => {
                    assert_eq!(layer, Layer::Sw, "fault-kind stratum in a uarch wave");
                    let tag = sw_seed_tag(kind);
                    if !sw_kinds.iter().any(|&(k, _)| k == kind) {
                        sw_kinds.push((kind, tag));
                    }
                    let windows: Vec<(usize, u64)> = golden
                        .records
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.kernel_idx == k_idx)
                        .map(|(o, r)| (o, sw_kind_weight(kind, &r.stats)))
                        .filter(|&(_, w)| w > 0)
                        .collect();
                    for trial in st.start..st.start + st.count {
                        let s =
                            derive_seed(cfg.seed, &[app_tag, k_idx as u64, tag, trial as u64, 2]);
                        let mut rng = SmallRng::seed_from_u64(s);
                        let fault = pick_weighted(&mut rng, &windows).map(|(ordinal, weight)| {
                            (
                                ordinal,
                                PlannedFault::Sw(SwFault {
                                    kind,
                                    target: rng.gen_range(0..weight),
                                    bit: rng.gen_range(0..32),
                                    loc_pick: rng.gen(),
                                    pattern: cfg.pattern,
                                }),
                            )
                        });
                        trials.push(PlannedTrial {
                            index: trials.len(),
                            kernel_idx: k_idx,
                            target: st.target,
                            trial,
                            seed: s,
                            fault,
                        });
                    }
                }
            }
        }
    });
    PreparedCampaign {
        bench,
        cfg: cfg.clone(),
        variant,
        golden,
        snaps: OnceLock::new(),
        app_trace: OnceLock::new(),
        plan: CampaignPlan {
            app: bench.name().to_string(),
            layer,
            seed: cfg.seed,
            hardened,
            pattern: cfg.pattern,
            n_per_target: 0,
            sw_kinds,
            wave: Some(wave),
            trials,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::apps::va::Va;

    #[test]
    fn seeds_are_deterministic_and_spread() {
        let a = derive_seed(1, &[2, 3, 4]);
        assert_eq!(a, derive_seed(1, &[2, 3, 4]));
        assert_ne!(a, derive_seed(1, &[2, 3, 5]));
        assert_ne!(a, derive_seed(2, &[2, 3, 4]));
        assert_ne!(str_tag("VA"), str_tag("NW"));
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(7);
        let weights = vec![(0usize, 0u64), (1, 90), (2, 10)];
        let mut hits = [0u32; 3];
        for _ in 0..1000 {
            let (idx, _) = pick_weighted(&mut rng, &weights).unwrap();
            hits[idx] += 1;
        }
        assert_eq!(hits[0], 0, "zero-weight never picked");
        assert!(hits[1] > 800, "{hits:?}");
        assert!(pick_weighted(&mut rng, &[(0, 0)]).is_none());
    }

    #[test]
    fn shard_partition_covers_small_cases() {
        assert_eq!(shard_trials(5, 2, 0), vec![0, 2, 4]);
        assert_eq!(shard_trials(5, 2, 1), vec![1, 3]);
        assert_eq!(shard_trials(0, 3, 2), Vec::<usize>::new());
        assert_eq!(shard_trials(4, 1, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn structure_subset_plans_inject_the_same_faults() {
        let cfg = CampaignCfg::new(8, 8, 0xACE);
        let full = prepare_uarch_campaign(&Va, &cfg, false);
        let subset = prepare_uarch_campaign_structures(
            &Va,
            &cfg,
            false,
            &[HwStructure::RegFile, HwStructure::L2],
        );
        assert_eq!(
            subset.plan.len(),
            Va.kernels().len() * 2 * cfg.n_uarch,
            "two structures only"
        );
        // Every subset trial matches the full plan's trial for the same
        // (kernel, structure, trial) triple — identical seed and fault.
        for t in &subset.plan.trials {
            let m = full
                .plan
                .trials
                .iter()
                .find(|f| {
                    f.kernel_idx == t.kernel_idx && f.target == t.target && f.trial == t.trial
                })
                .expect("triple present in full plan");
            assert_eq!(m.seed, t.seed);
            assert_eq!(m.fault, t.fault);
        }
        assert_ne!(full.plan.fingerprint(), subset.plan.fingerprint());
    }

    #[test]
    fn adaptive_waves_are_stratum_slices_of_fixed_plans() {
        // A wave asking for ordinals 3..8 of (kernel 0, RF) must mint
        // exactly the trials a fixed n>=8 plan holds at those ordinals —
        // identical seeds and fault coordinates.
        let cfg = CampaignCfg::new(8, 8, 0xADA7);
        let fixed = prepare_uarch_campaign(&Va, &cfg, false);
        let strata = [StratumSpec {
            kernel_idx: 0,
            target: TrialTarget::Structure(HwStructure::RegFile),
            start: 3,
            count: 5,
        }];
        let wave = prepare_adaptive_wave(&Va, &cfg, false, Layer::Uarch, &strata, 1);
        assert_eq!(wave.plan.len(), 5);
        for t in &wave.plan.trials {
            let m = fixed
                .plan
                .trials
                .iter()
                .find(|f| {
                    f.kernel_idx == t.kernel_idx && f.target == t.target && f.trial == t.trial
                })
                .expect("ordinal present in fixed plan");
            assert_eq!(m.seed, t.seed);
            assert_eq!(m.fault, t.fault);
        }
        // Same strata, different wave index → different fingerprint, so
        // per-wave checkpoints and dispatch leases can never be confused.
        let wave2 = prepare_adaptive_wave(&Va, &cfg, false, Layer::Uarch, &strata, 2);
        assert_ne!(wave.plan.fingerprint(), wave2.plan.fingerprint());
        assert_eq!(wave.plan.trials, wave2.plan.trials);

        // Sw class strata slice the per-class seed streams the same way.
        let class_strata = [StratumSpec {
            kernel_idx: 0,
            target: TrialTarget::Fault(SwFaultKind::DestClass(InstrClass::IntAlu)),
            start: 0,
            count: 4,
        }];
        let sw_wave = prepare_adaptive_wave(&Va, &cfg, false, Layer::Sw, &class_strata, 0);
        let sw_fixed = prepare_sw_kinds(
            &Va,
            &cfg,
            false,
            &[(
                SwFaultKind::DestClass(InstrClass::IntAlu),
                sw_seed_tag(SwFaultKind::DestClass(InstrClass::IntAlu)),
            )],
        );
        assert_eq!(
            sw_wave.plan.trials[..4]
                .iter()
                .map(|t| t.seed)
                .collect::<Vec<_>>(),
            sw_fixed.plan.trials[..4]
                .iter()
                .map(|t| t.seed)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn sw_seed_tags_are_frozen() {
        assert_eq!(sw_seed_tag(SwFaultKind::DestValue), 10);
        assert_eq!(sw_seed_tag(SwFaultKind::DestValueLoad), 11);
        assert_eq!(sw_seed_tag(SwFaultKind::ArchState), 12);
        // Per-class strata claim 20+, in InstrClass::ALL order.
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(sw_seed_tag(SwFaultKind::DestClass(*c)), 20 + i as u64);
        }
    }

    #[test]
    fn plans_are_reproducible_and_seed_sensitive() {
        let cfg = CampaignCfg::new(12, 12, 0xBEEF);
        let a = prepare_uarch_campaign(&Va, &cfg, false);
        let b = prepare_uarch_campaign(&Va, &cfg, false);
        assert_eq!(a.plan.trials, b.plan.trials);
        assert_eq!(a.plan.fingerprint(), b.plan.fingerprint());

        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 1;
        let c = prepare_uarch_campaign(&Va, &cfg2, false);
        assert_ne!(a.plan.fingerprint(), c.plan.fingerprint());

        let s = prepare_sw_campaign(&Va, &cfg, false);
        assert_ne!(a.plan.fingerprint(), s.plan.fingerprint());
        assert_eq!(
            s.plan.len(),
            Va.kernels().len() * 2 * cfg.n_sw,
            "dest-value and dest-value-ld sub-campaigns"
        );
    }
}
