//! Program Vulnerability Factor (PVF) — an *extension* beyond the paper's
//! two layers, implementing the third abstraction level of its related
//! work (Sridharan & Kaeli: the microarchitecture-independent,
//! architecturally-visible portion of AVF; the CPU-side three-layer
//! methodology of Papadimitriou & Gizopoulos that the paper builds on).
//!
//! The fault model sits between SVF and AVF: a bit flip in an **arbitrary
//! architectural register** (live program state, not just the destination
//! of the current instruction) at a uniformly chosen dynamic instruction,
//! still with no microarchitectural masking. Comparing
//! `SVF ≥ PVF ≥ chip AVF` per workload quantifies how much estimation
//! error comes from the *fault-origin population* (SVF→PVF) versus from
//! *hardware masking and derating* (PVF→AVF).

use kernels::Benchmark;
use vgpu_sim::SwFaultKind;

use crate::campaign::{assemble_sw_counts, execute_shard, CampaignCfg, EngineCfg};
use crate::metrics::{ClassCounts, ClassRates};
use crate::plan::prepare_sw_kinds;

/// PVF measurements for one kernel.
#[derive(Debug, Clone)]
pub struct PvfKernelResult {
    pub kernel: String,
    pub counts: ClassCounts,
    /// Dynamic thread instructions (application weighting).
    pub instrs: u64,
}

impl PvfKernelResult {
    pub fn pvf(&self) -> ClassRates {
        self.counts.rates()
    }
}

/// PVF measurements for a whole application.
#[derive(Debug, Clone)]
pub struct PvfAppResult {
    pub app: String,
    pub kernels: Vec<PvfKernelResult>,
}

impl PvfAppResult {
    /// Instruction-weighted application PVF (same weighting rule as SVF).
    pub fn app_pvf(&self) -> ClassRates {
        let total: u64 = self.kernels.iter().map(|k| k.instrs).sum();
        let mut acc = ClassRates::default();
        for k in &self.kernels {
            acc.add(&k.pvf().scale(k.instrs as f64 / total.max(1) as f64));
        }
        acc
    }
}

/// Run the architectural-state (PVF approximation) campaign through the
/// sharded engine — one single-shot shard of an ArchState-only plan.
pub fn run_pvf_campaign(bench: &dyn Benchmark, cfg: &CampaignCfg, hardened: bool) -> PvfAppResult {
    let prep = prepare_sw_kinds(bench, cfg, hardened, &[(SwFaultKind::ArchState, 12)]);
    let records = execute_shard(&prep, &EngineCfg::single_shot())
        .expect("single-shot execution performs no checkpoint I/O");
    let counts = assemble_sw_counts(&prep, &records).expect("a single shard covers the whole plan");
    let kernels = bench
        .kernels()
        .iter()
        .enumerate()
        .map(|(k_idx, k_name)| PvfKernelResult {
            kernel: k_name.to_string(),
            counts: counts[k_idx][0],
            instrs: prep.golden.kernel_stats(k_idx).thread_instrs,
        })
        .collect();
    PvfAppResult {
        app: bench.name().to_string(),
        kernels,
    }
}
