//! Hand-rolled JSONL checkpoint files for resumable campaigns.
//!
//! A checkpoint file records which trials of a [`crate::plan::CampaignPlan`]
//! shard have already been classified, so an interrupted shard can resume
//! without redoing finished injections and a `merge` can fold shard
//! outputs back into one result. The format follows the `obs::events`
//! record shape — one flat JSON object per line, written with the same
//! hand-rolled serializer conventions and read back with
//! [`obs::events::parse_line`]:
//!
//! ```text
//! {"record":"plan","app":"VA","layer":"uarch","seed":43981,"hardened":false,...}
//! {"record":"trial","idx":7,"outcome":"sdc","ctrl":false,"wall_us":123}
//! ```
//!
//! The first line identifies the plan (including its
//! [`fingerprint`](crate::plan::CampaignPlan::fingerprint) and the shard
//! slice); every following line is one classified trial. Writes are
//! append-only and flushed every K records, so the worst an interruption
//! can lose is K trials plus one torn line — [`parse_checkpoint`] drops an
//! unparseable *final* line as a torn write while still treating interior
//! garbage as corruption.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use kernels::Outcome;
use obs::events::{parse_line, push_json_str, JsonValue};

use crate::plan::{CampaignPlan, Layer};

/// Default flush interval: completed trials between checkpoint flushes.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 64;

/// Outcome class label as used in event logs and checkpoints.
pub fn outcome_label(o: Outcome) -> &'static str {
    match o {
        Outcome::Masked => "masked",
        Outcome::Sdc => "sdc",
        Outcome::Timeout => "timeout",
        Outcome::Due => "due",
    }
}

pub fn outcome_from_label(s: &str) -> Option<Outcome> {
    match s {
        "masked" => Some(Outcome::Masked),
        "sdc" => Some(Outcome::Sdc),
        "timeout" => Some(Outcome::Timeout),
        "due" => Some(Outcome::Due),
        _ => None,
    }
}

/// The identity line of a checkpoint file: which plan, which shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    pub app: String,
    pub layer: Layer,
    pub seed: u64,
    pub hardened: bool,
    /// Injections per (kernel, target) sub-campaign.
    pub n_per_target: usize,
    /// Total trials in the whole plan (all shards).
    pub trials: usize,
    pub shards: usize,
    pub shard_index: usize,
    pub fingerprint: u64,
}

impl CheckpointHeader {
    pub fn for_plan(plan: &CampaignPlan, shards: usize, shard_index: usize) -> Self {
        CheckpointHeader {
            app: plan.app.clone(),
            layer: plan.layer,
            seed: plan.seed,
            hardened: plan.hardened,
            n_per_target: plan.n_per_target,
            trials: plan.len(),
            shards,
            shard_index,
            fingerprint: plan.fingerprint(),
        }
    }

    /// Whether this header and `other` come from the same plan (any shard).
    pub fn same_plan(&self, other: &CheckpointHeader) -> bool {
        self.app == other.app
            && self.layer == other.layer
            && self.seed == other.seed
            && self.hardened == other.hardened
            && self.n_per_target == other.n_per_target
            && self.trials == other.trials
            && self.shards == other.shards
            && self.fingerprint == other.fingerprint
    }

    /// Serialize as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"record\":\"plan\",\"app\":");
        push_json_str(&mut s, &self.app);
        s.push_str(",\"layer\":");
        push_json_str(&mut s, self.layer.label());
        s.push_str(&format!(
            ",\"seed\":{},\"hardened\":{},\"n\":{},\"trials\":{},\"shards\":{},\"shard_index\":{},\"fingerprint\":{}}}",
            self.seed,
            self.hardened,
            self.n_per_target,
            self.trials,
            self.shards,
            self.shard_index,
            self.fingerprint
        ));
        s
    }
}

/// One classified trial, as recorded in a checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Global plan index ([`crate::plan::PlannedTrial::index`]).
    pub idx: usize,
    pub outcome: Outcome,
    /// Masked with a disturbed cycle count (the Figure-11 control-path
    /// proxy); always `false` for software-level trials.
    pub ctrl: bool,
    /// Wall-clock time of the trial in microseconds (0 when untimed).
    pub wall_us: u64,
}

impl TrialRecord {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"record\":\"trial\",\"idx\":{},\"outcome\":\"{}\",\"ctrl\":{},\"wall_us\":{}}}",
            self.idx,
            outcome_label(self.outcome),
            self.ctrl,
            self.wall_us
        )
    }
}

/// One parsed checkpoint line.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointLine {
    Header(CheckpointHeader),
    Trial(TrialRecord),
}

/// Parse one checkpoint line. `None` on malformed input or an unknown
/// record type.
pub fn parse_checkpoint_line(line: &str) -> Option<CheckpointLine> {
    let fields = parse_line(line)?;
    let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let num = |k: &str| get(k).and_then(JsonValue::as_u64);
    let boolean = |k: &str| match get(k)? {
        JsonValue::Bool(b) => Some(*b),
        _ => None,
    };
    match get("record")?.as_str()? {
        "plan" => Some(CheckpointLine::Header(CheckpointHeader {
            app: get("app")?.as_str()?.to_string(),
            layer: Layer::from_label(get("layer")?.as_str()?)?,
            seed: num("seed")?,
            hardened: boolean("hardened")?,
            n_per_target: num("n")? as usize,
            trials: num("trials")? as usize,
            shards: num("shards")? as usize,
            shard_index: num("shard_index")? as usize,
            fingerprint: num("fingerprint")?,
        })),
        "trial" => Some(CheckpointLine::Trial(TrialRecord {
            idx: num("idx")? as usize,
            outcome: outcome_from_label(get("outcome")?.as_str()?)?,
            ctrl: boolean("ctrl")?,
            wall_us: num("wall_us")?,
        })),
        _ => None,
    }
}

/// Why a checkpoint file could not be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    /// The file has no (complete) header line.
    MissingHeader,
    /// An interior line failed to parse — real corruption, not a torn
    /// final write.
    Corrupt {
        line_no: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::MissingHeader => {
                write!(f, "checkpoint has no complete plan header line")
            }
            CheckpointError::Corrupt { line_no } => {
                write!(f, "checkpoint corrupt at line {line_no}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A loaded checkpoint: plan identity plus all classified trials.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub header: CheckpointHeader,
    pub records: Vec<TrialRecord>,
}

/// Canonical serialization: header line then one line per record, each
/// newline-terminated. `parse_checkpoint(checkpoint_to_string(c)) == c`
/// and serialize∘parse∘serialize is a fixpoint (guarded by property
/// tests).
pub fn checkpoint_to_string(c: &Checkpoint) -> String {
    let mut s = c.header.to_json();
    s.push('\n');
    for r in &c.records {
        s.push_str(&r.to_json());
        s.push('\n');
    }
    s
}

/// Parse checkpoint text. The final line, if unparseable, is treated as a
/// torn write (the process died mid-line) and dropped; blank lines are
/// skipped; any other unparseable line is an error.
pub fn parse_checkpoint(text: &str) -> Result<Checkpoint, CheckpointError> {
    let lines: Vec<&str> = text.lines().collect();
    let last_nonblank = lines.iter().rposition(|l| !l.trim().is_empty());
    let mut header: Option<CheckpointHeader> = None;
    let mut records = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        match parse_checkpoint_line(raw) {
            Some(CheckpointLine::Header(h)) => {
                if header.is_some() {
                    return Err(CheckpointError::Corrupt { line_no: i + 1 });
                }
                header = Some(h);
            }
            Some(CheckpointLine::Trial(t)) => {
                if header.is_none() {
                    return Err(CheckpointError::MissingHeader);
                }
                records.push(t);
            }
            None => {
                if Some(i) == last_nonblank {
                    break; // torn final write
                }
                return Err(CheckpointError::Corrupt { line_no: i + 1 });
            }
        }
    }
    Ok(Checkpoint {
        header: header.ok_or(CheckpointError::MissingHeader)?,
        records,
    })
}

/// Load and parse a checkpoint file.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    parse_checkpoint(&std::fs::read_to_string(path)?)
}

/// Incremental checkpoint writer: appends one line per classified trial
/// and flushes every `every` records, so an interruption loses at most
/// `every` finished trials (plus one torn line, which the reader drops).
pub struct CheckpointWriter {
    w: BufWriter<File>,
    every: usize,
    pending: usize,
}

impl CheckpointWriter {
    /// Create (truncate) `path` and write the header, flushed immediately
    /// so even an instantly-killed shard leaves a resumable file behind.
    pub fn create(
        path: &Path,
        header: &CheckpointHeader,
        every: usize,
    ) -> std::io::Result<CheckpointWriter> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(header.to_json().as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()?;
        Ok(CheckpointWriter {
            w,
            every: every.max(1),
            pending: 0,
        })
    }

    /// Rewrite `path` with the canonical serialization of an existing
    /// checkpoint and keep it open for appending — the resume path. The
    /// rewrite truncates any torn final line the previous run left, so
    /// appends never land mid-record.
    pub fn recreate(
        path: &Path,
        existing: &Checkpoint,
        every: usize,
    ) -> std::io::Result<CheckpointWriter> {
        let mut cw = CheckpointWriter::create(path, &existing.header, every)?;
        for r in &existing.records {
            cw.w.write_all(r.to_json().as_bytes())?;
            cw.w.write_all(b"\n")?;
        }
        cw.w.flush()?;
        Ok(cw)
    }

    /// Append one classified trial, flushing every `every` records.
    pub fn record(&mut self, t: &TrialRecord) -> std::io::Result<()> {
        self.w.write_all(t.to_json().as_bytes())?;
        self.w.write_all(b"\n")?;
        self.pending += 1;
        if self.pending >= self.every {
            self.w.flush()?;
            self.pending = 0;
            obs::counter_add("campaign_checkpoint_flushes_total", &[], 1);
        }
        Ok(())
    }

    /// Flush buffered lines *and* fsync the file to stable storage.
    ///
    /// Used whenever completion is about to be acknowledged to someone
    /// else — a shard reporting "done" to its driver, the dispatch
    /// coordinator acking a shard to a worker — so a crash immediately
    /// after the acknowledgement cannot lose the tail of the journal.
    /// (A plain [`std::io::Write::flush`] only empties the userspace
    /// buffer; the data can still sit in the page cache when power goes.)
    pub fn flush_and_sync(&mut self) -> std::io::Result<()> {
        self.w.flush()?;
        self.w.get_ref().sync_all()?;
        self.pending = 0;
        Ok(())
    }

    /// Flush and fsync any buffered lines. Shard completion goes through
    /// here so the checkpoint is durable before the shard reports done.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.flush_and_sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            app: "VA".into(),
            layer: Layer::Uarch,
            seed: 0xDEAD_BEEF_1234_5678,
            hardened: false,
            n_per_target: 60,
            trials: 300,
            shards: 3,
            shard_index: 1,
            fingerprint: 0xFFFF_FFFF_FFFF_FFFE,
        }
    }

    fn records() -> Vec<TrialRecord> {
        vec![
            TrialRecord {
                idx: 1,
                outcome: Outcome::Masked,
                ctrl: false,
                wall_us: 12,
            },
            TrialRecord {
                idx: 4,
                outcome: Outcome::Sdc,
                ctrl: false,
                wall_us: 900,
            },
            TrialRecord {
                idx: 7,
                outcome: Outcome::Masked,
                ctrl: true,
                wall_us: 0,
            },
        ]
    }

    #[test]
    fn lines_round_trip() {
        let h = header();
        assert_eq!(
            parse_checkpoint_line(&h.to_json()),
            Some(CheckpointLine::Header(h))
        );
        for r in records() {
            assert_eq!(
                parse_checkpoint_line(&r.to_json()),
                Some(CheckpointLine::Trial(r))
            );
        }
        assert!(parse_checkpoint_line("{\"record\":\"unknown\"}").is_none());
        assert!(parse_checkpoint_line("not json").is_none());
    }

    #[test]
    fn text_round_trip_and_torn_tail() {
        let ck = Checkpoint {
            header: header(),
            records: records(),
        };
        let text = checkpoint_to_string(&ck);
        assert_eq!(parse_checkpoint(&text).unwrap(), ck);
        // serialize → parse → serialize fixpoint
        assert_eq!(
            checkpoint_to_string(&parse_checkpoint(&text).unwrap()),
            text
        );
        // A torn final line is dropped, not fatal.
        let torn = &text[..text.len() - 9];
        let recovered = parse_checkpoint(torn).unwrap();
        assert_eq!(recovered.records, ck.records[..2].to_vec());
        // Interior corruption is fatal.
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "garbage";
        let bad = lines.join("\n");
        assert!(matches!(
            parse_checkpoint(&bad),
            Err(CheckpointError::Corrupt { line_no: 2 })
        ));
        assert!(matches!(
            parse_checkpoint(""),
            Err(CheckpointError::MissingHeader)
        ));
    }

    #[test]
    fn flush_and_sync_makes_the_tail_durable_before_any_ack() {
        // With a huge flush interval nothing reaches the file until the
        // writer is told to sync; after flush_and_sync every record must
        // be readable even though the writer is still open (the state a
        // coordinator is in when it acks a shard and then crashes).
        let dir = std::env::temp_dir().join(format!("relia_ckpt_sync_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("shard.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(), 1_000_000).unwrap();
        for r in records() {
            w.record(&r).unwrap();
        }
        assert_eq!(
            load_checkpoint(&path).unwrap().records.len(),
            0,
            "records still buffered before the sync"
        );
        w.flush_and_sync().unwrap();
        assert_eq!(load_checkpoint(&path).unwrap().records, records());
        // The writer keeps appending normally afterwards.
        let extra = TrialRecord {
            idx: 11,
            outcome: Outcome::Sdc,
            ctrl: false,
            wall_us: 1,
        };
        w.record(&extra).unwrap();
        w.finish().unwrap();
        assert_eq!(load_checkpoint(&path).unwrap().records.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_create_record_recreate() {
        let dir = std::env::temp_dir().join("relia_ckpt_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("shard.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(), 2).unwrap();
        for r in records() {
            w.record(&r).unwrap();
        }
        w.finish().unwrap();
        let ck = load_checkpoint(&path).unwrap();
        assert_eq!(ck.header, header());
        assert_eq!(ck.records, records());

        // Simulate a torn write, then verify recreate truncates it away.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"record\":\"tri");
        std::fs::write(&path, &text).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        let mut w = CheckpointWriter::recreate(&path, &loaded, 2).unwrap();
        let extra = TrialRecord {
            idx: 10,
            outcome: Outcome::Due,
            ctrl: false,
            wall_us: 5,
        };
        w.record(&extra).unwrap();
        w.finish().unwrap();
        let after = load_checkpoint(&path).unwrap();
        assert_eq!(after.records.len(), 4);
        assert_eq!(after.records[3], extra);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
