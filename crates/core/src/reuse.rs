//! The register-reuse analyzer the paper proposes in Section V-B
//! (Figure 12): a fault in a source register should affect *every*
//! subsequent instruction that reads the register, until it is rewritten.
//!
//! Typical software-level injectors model a source-operand fault as
//! instantaneous (one dynamic instruction). The analyzer reconstructs the
//! reuse set so the fault can be replicated to all readers — equivalently,
//! flipping the stored register value persistently. Both behaviours exist
//! as injection modes in the simulator ([`vgpu_sim::SwFaultKind`]);
//! this module provides the static analysis and the paper's exact example.

use vgpu_arch::{Kernel, KernelBuilder, MemSpace, Op, Operand, Reg, SpecialReg};

/// Program counters (after `pc`) whose instructions read `reg` before it
/// is redefined — the red circles of Figure 12.
///
/// The analysis is basic-block scoped: it stops at the first control
/// transfer (`BRA`/`EXIT`) or at the first write to `reg`. A *guarded*
/// write is conservative: it also terminates the scan (the fault may or
/// may not survive it depending on the predicate).
pub fn readers_until_redef(kernel: &Kernel, pc: usize, reg: Reg) -> Vec<usize> {
    let mut readers = Vec::new();
    for (i, instr) in kernel.instrs.iter().enumerate().skip(pc + 1) {
        if instr.op.src_regs().contains(&reg) {
            readers.push(i);
        }
        if instr.op.dst_reg() == Some(reg) {
            break; // redefined (conservatively also for guarded writes)
        }
        if matches!(instr.op, Op::Bra { .. } | Op::Exit) {
            break; // end of the basic block
        }
    }
    readers
}

/// Dynamic variant: given a straight-line execution trace of (pc) values,
/// map a fault at trace position `at` in `reg` to the trace positions that
/// observe it.
pub fn dynamic_readers(kernel: &Kernel, trace: &[u32], at: usize, reg: Reg) -> Vec<usize> {
    let mut readers = Vec::new();
    for (i, &pc) in trace.iter().enumerate().skip(at + 1) {
        let instr = &kernel.instrs[pc as usize];
        if instr.op.src_regs().contains(&reg) {
            readers.push(i);
        }
        if instr.op.dst_reg() == Some(reg) {
            break;
        }
    }
    readers
}

/// The exact ten-instruction SASS snippet of Figure 12, transcribed into
/// the vGPU ISA (the `c[0x0][...]` kernel arguments become constant-bank
/// words; `R0` of instruction #4 is the register under study).
///
/// ```text
/// #1  S2R R0, SR_CTAID.X
/// #2  S2R R3, SR_TID.X
/// #3  IMAD R4, R0, c[0x0][0x14c], R3
/// #4  ISCADD R3, R0, c[0x0][0x140], 0x2   <- fault lands in source R0
/// #5  ISCADD R2, R0, c[0x0][0x144], 0x2   <- reads corrupted R0
/// #6  LD.CG R3, [R3]
/// #7  ISCADD R0, R0, c[0x0][0x148], 0x2   <- reads corrupted R0 (then redefines it)
/// #8  LD.CG R2, [R2]
/// #9  FADD R3, R0, R2
/// #10 ST [R0], R3
/// ```
pub fn figure12_kernel() -> Kernel {
    let mut a = KernelBuilder::new("figure12");
    let (r0, r2, r3, r4) = (Reg(0), Reg(2), Reg(3), Reg(4));
    a.s2r(r0, SpecialReg::CtaIdX); // #1 (index 0)
    a.s2r(r3, SpecialReg::TidX); // #2
    a.imad(r4, r0, Operand::Const(0x53), Operand::Reg(r3)); // #3
    a.iscadd(r3, r0, Operand::Const(0x50), 2); // #4
    a.iscadd(r2, r0, Operand::Const(0x51), 2); // #5
    a.ld(r3, MemSpace::Global, r3, 0); // #6
    a.iscadd(r0, r0, Operand::Const(0x52), 2); // #7
    a.ld(r2, MemSpace::Global, r2, 0); // #8
    a.fadd(r3, r0, Operand::Reg(r2)); // #9
    a.st(MemSpace::Global, r0, 0, r3); // #10
    a.build().expect("figure 12 snippet is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu_arch::CmpOp;

    #[test]
    fn figure12_reuse_set_is_5_and_7() {
        // Figure 12: a fault in R0 of #4 must affect #5 and #7 — and #7
        // rewrites R0, ending the reuse window before #9/#10.
        let k = figure12_kernel();
        // Our indices are 0-based: #4 is instruction index 3.
        let readers = readers_until_redef(&k, 3, Reg(0));
        assert_eq!(readers, vec![4, 6], "0-based #5 and #7");
    }

    #[test]
    fn scan_stops_at_redefinition() {
        let k = figure12_kernel();
        // R3 written at #4 (idx 3): readers afterwards = #6 (load addr);
        // and #6 redefines R3, so #9 is NOT in the reuse set.
        let readers = readers_until_redef(&k, 3, Reg(3));
        assert_eq!(readers, vec![5]);
    }

    #[test]
    fn scan_stops_at_control_flow() {
        let mut a = KernelBuilder::new("t");
        let r = a.reg();
        let p = a.pred();
        a.mov(r, 1u32); // 0
        a.isetp(p, r, 0u32, CmpOp::Gt, true); // 1 (reads r)
        a.if_then(p, false, |a| {
            a.iadd(r, r, 1u32); // 3 (inside branch)
        });
        let k = a.build().unwrap();
        // From the MOV: the ISETP reads r, then the BRA ends the block.
        assert_eq!(readers_until_redef(&k, 0, r), vec![1]);
    }

    #[test]
    fn dynamic_readers_follow_the_trace() {
        let k = figure12_kernel();
        let trace: Vec<u32> = (0..k.len() as u32).collect();
        assert_eq!(dynamic_readers(&k, &trace, 3, Reg(0)), vec![4, 6]);
        // A trace that revisits the reader (loop unrolled dynamically).
        let trace = vec![3, 4, 4, 4, 6];
        assert_eq!(dynamic_readers(&k, &trace, 0, Reg(0)), vec![1, 2, 3, 4]);
    }

    #[test]
    fn figure12_disassembles_like_the_paper() {
        let d = figure12_kernel().disassemble();
        assert!(d.contains("S2R R0, SR_CTAID.X"));
        assert!(d.contains("IMAD R4, R0"));
        assert!(d.contains("ISCADD R3, R0"));
        assert!(d.contains("FADD R3, R0, R2"));
    }
}
