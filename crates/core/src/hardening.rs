//! Hardening evaluation (Section IV): run both the unprotected and the
//! TMR-hardened variant of an application under both assessment layers
//! and pair the results for the Figure 7–10 comparisons.

use kernels::Benchmark;
use vgpu_sim::HwStructure;

use crate::campaign::{
    run_sw_campaign, run_uarch_campaign, CampaignCfg, SvfAppResult, UarchAppResult,
};
use crate::metrics::ClassRates;

/// Paired unprotected/TMR measurements for one application.
#[derive(Debug, Clone)]
pub struct HardeningComparison {
    pub app: String,
    pub base_avf: UarchAppResult,
    pub base_svf: SvfAppResult,
    pub tmr_avf: UarchAppResult,
    pub tmr_svf: SvfAppResult,
}

/// One kernel's before/after numbers for the hardened figures.
#[derive(Debug, Clone)]
pub struct KernelHardeningRow {
    pub kernel: String,
    pub avf_base: ClassRates,
    pub avf_tmr: ClassRates,
    pub svf_base: ClassRates,
    pub svf_tmr: ClassRates,
    /// Per-structure AVF before/after (Figure 10).
    pub structures: Vec<(HwStructure, ClassRates, ClassRates)>,
    /// Control-path-affected masked fraction before/after (Figure 11).
    pub ctrl_base: f64,
    pub ctrl_tmr: f64,
}

/// Run all four campaigns for one application.
pub fn evaluate_hardening(bench: &dyn Benchmark, cfg: &CampaignCfg) -> HardeningComparison {
    HardeningComparison {
        app: bench.name().to_string(),
        base_avf: run_uarch_campaign(bench, cfg, false),
        base_svf: run_sw_campaign(bench, cfg, false),
        tmr_avf: run_uarch_campaign(bench, cfg, true),
        tmr_svf: run_sw_campaign(bench, cfg, true),
    }
}

impl HardeningComparison {
    /// Flatten into per-kernel before/after rows.
    pub fn kernel_rows(&self, gpu: &vgpu_sim::GpuConfig) -> Vec<KernelHardeningRow> {
        self.base_avf
            .kernels
            .iter()
            .zip(&self.tmr_avf.kernels)
            .zip(self.base_svf.kernels.iter().zip(&self.tmr_svf.kernels))
            .map(|((ab, at), (sb, st))| KernelHardeningRow {
                kernel: ab.kernel.clone(),
                avf_base: ab.chip_avf(gpu),
                avf_tmr: at.chip_avf(gpu),
                svf_base: sb.svf(),
                svf_tmr: st.svf(),
                structures: HwStructure::ALL
                    .iter()
                    .map(|&h| (h, ab.avf(h), at.avf(h)))
                    .collect(),
                ctrl_base: ab.ctrl_affected_fraction(),
                ctrl_tmr: at.ctrl_affected_fraction(),
            })
            .collect()
    }
}
