//! Enabling observability must not change campaign results.
//!
//! All campaign randomness flows through `derive_seed`-seeded per-trial
//! RNGs; the event sink, metrics registry, and phase timers never touch
//! those streams. This test runs the same small campaign with everything
//! off and with everything on, and demands bit-identical outcome counts —
//! plus a parseable JSONL record for every injection.
//!
//! Kept as a single `#[test]` because the obs switches are process-global
//! and cargo runs tests of one binary concurrently.

use kernels::apps::va::Va;
use relia::{run_sw_campaign, run_uarch_campaign, CampaignCfg, SvfAppResult, UarchAppResult};

fn counts_fingerprint(u: &UarchAppResult, s: &SvfAppResult) -> String {
    let mut out = String::new();
    for k in &u.kernels {
        for (h, c) in &k.per_structure {
            out.push_str(&format!(
                "{} {:?} {:?} ctrl={}\n",
                k.kernel,
                h.label(),
                c.counts,
                c.ctrl_affected_masked
            ));
        }
    }
    for k in &s.kernels {
        out.push_str(&format!(
            "{} {:?} ld={:?}\n",
            k.kernel, k.counts, k.counts_ld
        ));
    }
    out
}

#[test]
fn event_sink_and_metrics_do_not_change_outcomes() {
    let cfg = CampaignCfg::new(4, 4, 0xAB5E_11E5);

    // Reference run: everything off (the seed-default configuration).
    obs::reset_for_test();
    let base_u = run_uarch_campaign(&Va, &cfg, false);
    let base_s = run_sw_campaign(&Va, &cfg, false);
    let baseline = counts_fingerprint(&base_u, &base_s);

    // Observed run: metrics + events + progress accounting all on.
    let dir = std::env::temp_dir().join("relia_obs_repro_test");
    let _ = std::fs::remove_dir_all(&dir);
    let events_path = dir.join("events.jsonl");
    obs::reset_for_test();
    obs::init_events(&events_path).unwrap();
    obs::set_enabled(true);
    obs::progress::enable();
    let obs_u = run_uarch_campaign(&Va, &cfg, false);
    let obs_s = run_sw_campaign(&Va, &cfg, false);
    let observed = counts_fingerprint(&obs_u, &obs_s);
    let snapshot = obs::global().snapshot();
    let phases = obs::phase_snapshot();
    obs::reset_for_test(); // flushes + closes the sink, switches off

    assert_eq!(
        baseline, observed,
        "observability changed campaign outcomes"
    );

    // One parseable JSONL record per injection, plus the campaign
    // lifecycle records the engine journals (shard_start + shard_done for
    // each of the two single-shot campaigns).
    let n_kernels = base_u.kernels.len();
    let expected =
        n_kernels * vgpu_sim::HwStructure::ALL.len() * cfg.n_uarch + n_kernels * 2 * cfg.n_sw;
    let text = std::fs::read_to_string(&events_path).unwrap();
    let mut lines = Vec::new();
    let mut campaign_lines = 0usize;
    let mut snapshot_lines = 0usize;
    for line in text.lines() {
        let fields = obs::events::parse_line(line)
            .unwrap_or_else(|| panic!("unparseable event line: {line}"));
        let record = fields
            .iter()
            .find(|(k, _)| k == "record")
            .and_then(|(_, v)| v.as_str());
        match record {
            Some("campaign") => campaign_lines += 1,
            Some("snapshot") => snapshot_lines += 1,
            _ => lines.push(line),
        }
    }
    assert_eq!(lines.len(), expected, "one event per injection");
    assert_eq!(campaign_lines, 4, "shard_start + shard_done per campaign");
    assert_eq!(
        snapshot_lines, 1,
        "one snapshot capture for the uarch campaign, none for sw"
    );
    let mut event_outcomes = std::collections::BTreeMap::new();
    for line in &lines {
        let fields = obs::events::parse_line(line)
            .unwrap_or_else(|| panic!("unparseable event line: {line}"));
        for key in [
            "seed", "app", "kernel", "layer", "target", "trial", "bit", "cycle", "outcome",
            "wall_us",
        ] {
            assert!(
                fields.iter().any(|(k, _)| k == key),
                "missing field {key}: {line}"
            );
        }
        let outcome = fields
            .iter()
            .find(|(k, _)| k == "outcome")
            .and_then(|(_, v)| v.as_str())
            .unwrap()
            .to_string();
        *event_outcomes.entry(outcome).or_insert(0u32) += 1;
    }

    // The event log and the metrics registry agree with the campaign's
    // own per-class totals.
    let mut campaign_outcomes: std::collections::BTreeMap<String, u32> = Default::default();
    let mut bump = |label: &str, n: u32| {
        if n > 0 {
            *campaign_outcomes.entry(label.to_string()).or_insert(0) += n;
        }
    };
    for k in &obs_u.kernels {
        for (_, c) in &k.per_structure {
            bump("masked", c.counts.masked);
            bump("sdc", c.counts.sdc);
            bump("timeout", c.counts.timeout);
            bump("due", c.counts.due);
        }
    }
    for k in &obs_s.kernels {
        for c in [&k.counts, &k.counts_ld] {
            bump("masked", c.masked);
            bump("sdc", c.sdc);
            bump("timeout", c.timeout);
            bump("due", c.due);
        }
    }
    assert_eq!(
        event_outcomes, campaign_outcomes,
        "event log vs campaign counts"
    );
    let metric_total: u64 = snapshot
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("outcomes_total{"))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(
        metric_total, expected as u64,
        "outcomes_total rollup covers every trial"
    );

    // Phase profile saw both campaign shapes.
    assert_eq!(
        phases[obs::Phase::GoldenRun as usize].calls,
        2,
        "one golden run per campaign"
    );
    assert_eq!(
        phases[obs::Phase::FaultyRun as usize].calls as usize,
        expected
    );
    assert_eq!(
        phases[obs::Phase::Classify as usize].calls as usize,
        expected
    );

    let _ = std::fs::remove_dir_all(&dir);
}
