//! The campaign-engine differential proof for golden-prefix fast-forward:
//! a uarch campaign executed with fast-forward (default) must produce the
//! same classified records — and the same assembled AVF result, derating
//! factors included — as `fast_forward: false`, whether run single-shot
//! or merged from shards.

use kernels::apps::{scp::Scp, va::Va};
use kernels::Benchmark;
use relia::{
    assemble_uarch, execute_shard, prepare_uarch_campaign, records_fingerprint, CampaignCfg,
    EngineCfg,
};

fn slow_engine() -> EngineCfg {
    EngineCfg {
        fast_forward: false,
        ..EngineCfg::single_shot()
    }
}

#[test]
fn ff_and_slow_paths_classify_identically() {
    for bench in [&Va as &dyn Benchmark, &Scp as &dyn Benchmark] {
        let cfg = CampaignCfg::new(6, 0, 0xFF_D1FF);
        let prep = prepare_uarch_campaign(bench, &cfg, false);

        let slow = execute_shard(&prep, &slow_engine()).unwrap();
        let fast = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
        assert_eq!(
            fast,
            slow,
            "{}: fast-forward changed a trial record",
            bench.name()
        );

        let assembled_slow = assemble_uarch(&prep, &slow).unwrap();
        let assembled_fast = assemble_uarch(&prep, &fast).unwrap();
        assert_eq!(
            assembled_fast,
            assembled_slow,
            "{}: fast-forward changed the assembled AVF result",
            bench.name()
        );

        // Sharded execution with fast-forward merges to the same result.
        let mut merged = Vec::new();
        for i in 0..3 {
            merged.extend(execute_shard(&prep, &EngineCfg::sharded(3, i)).unwrap());
        }
        assert_eq!(
            records_fingerprint(&merged),
            records_fingerprint(&slow),
            "{}: 3-shard fast-forward merge differs from slow single-shot",
            bench.name()
        );
        assert_eq!(assemble_uarch(&prep, &merged).unwrap(), assembled_slow);
    }
}
