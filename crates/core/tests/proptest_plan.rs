//! Property tests for the sharded campaign engine's two foundations:
//!
//! * strided shard partitioning is a *disjoint cover* of the plan for any
//!   (shard count, plan length) — no trial is dropped or run twice, which
//!   is what makes merged shard outputs equal the single-shot result;
//! * the JSONL checkpoint codec is a round-trip fixpoint, including
//!   recovery from a torn (interrupted mid-write) final line.

use proptest::prelude::*;
use relia::checkpoint::{
    checkpoint_to_string, parse_checkpoint, Checkpoint, CheckpointError, CheckpointHeader,
    TrialRecord,
};
use relia::plan::{shard_trials, Layer};

fn outcome_of(tag: u8) -> kernels::Outcome {
    match tag % 4 {
        0 => kernels::Outcome::Masked,
        1 => kernels::Outcome::Sdc,
        2 => kernels::Outcome::Timeout,
        _ => kernels::Outcome::Due,
    }
}

/// Build a structurally valid checkpoint from proptest-generated parts.
fn checkpoint(
    app: &str,
    layer_uarch: bool,
    seed: u64,
    hardened: bool,
    trials: Vec<(u32, u8, bool, u32)>,
) -> Checkpoint {
    let records: Vec<TrialRecord> = trials
        .iter()
        .map(|&(idx, out, ctrl, wall)| TrialRecord {
            idx: idx as usize,
            outcome: outcome_of(out),
            ctrl,
            wall_us: wall as u64,
        })
        .collect();
    Checkpoint {
        header: CheckpointHeader {
            app: app.to_string(),
            layer: if layer_uarch { Layer::Uarch } else { Layer::Sw },
            seed,
            hardened,
            n_per_target: records.len().max(1),
            trials: 1 + records.iter().map(|r| r.idx).max().unwrap_or(0),
            shards: 3,
            shard_index: 1,
            fingerprint: seed.rotate_left(17) ^ 0xFEED,
        },
        records,
    }
}

proptest! {
    /// For arbitrary (plan length, shard count), the shards partition
    /// 0..len exactly: disjoint, complete, each sorted and owned by the
    /// right shard.
    #[test]
    fn shard_partition_is_a_disjoint_cover(len in 0usize..400, shards in 1usize..17) {
        let mut seen = vec![0u32; len];
        for i in 0..shards {
            let mine = shard_trials(len, shards, i);
            let mut prev: Option<usize> = None;
            for &idx in &mine {
                prop_assert!(idx < len, "index {idx} out of plan");
                prop_assert_eq!(idx % shards, i, "index {} landed in wrong shard", idx);
                prop_assert!(prev.is_none_or(|p| p < idx), "shard slice must be ascending");
                prev = Some(idx);
                seen[idx] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "every trial exactly once: {seen:?}");
    }

    /// Shard sizes are balanced to within one trial — no shard can starve.
    #[test]
    fn shard_sizes_are_balanced(len in 0usize..400, shards in 1usize..17) {
        let sizes: Vec<usize> = (0..shards).map(|i| shard_trials(len, shards, i).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced shards: {sizes:?}");
        prop_assert_eq!(sizes.iter().sum::<usize>(), len);
    }

    /// serialize → parse → serialize is a fixpoint, for arbitrary header
    /// fields (including apps needing JSON string escaping) and records.
    #[test]
    fn checkpoint_roundtrip_is_a_fixpoint(
        // Printable ASCII, including `"` and `\` so escaping is exercised.
        app_bytes in prop::collection::vec(0x20u8..0x7f, 0..12),
        layer_uarch in any::<bool>(),
        seed in any::<u64>(),
        hardened in any::<bool>(),
        trials in prop::collection::vec((any::<u32>(), any::<u8>(), any::<bool>(), any::<u32>()), 0..40),
    ) {
        let app = String::from_utf8(app_bytes).unwrap();
        let ck = checkpoint(&app, layer_uarch, seed, hardened, trials);
        let text = checkpoint_to_string(&ck);
        let back = parse_checkpoint(&text).unwrap();
        prop_assert_eq!(&back, &ck, "parse must invert serialize");
        prop_assert_eq!(checkpoint_to_string(&back), text, "fixpoint");
    }

    /// Truncating a checkpoint anywhere — as a kill -9 mid-write would —
    /// either recovers an exact prefix of the records (torn final line
    /// dropped) or fails with MissingHeader when the cut beheaded the
    /// file. It never invents or corrupts a record.
    #[test]
    fn truncated_checkpoint_recovers_a_prefix(
        app_bytes in prop::collection::vec(b'a'..=b'z', 1..8),
        seed in any::<u64>(),
        trials in prop::collection::vec((any::<u32>(), any::<u8>(), any::<bool>(), any::<u32>()), 1..30),
        cut_frac in 0.0f64..1.0,
    ) {
        let app = String::from_utf8(app_bytes).unwrap();
        let ck = checkpoint(&app, true, seed, false, trials);
        let text = checkpoint_to_string(&ck);
        let cut = (text.len() as f64 * cut_frac) as usize;
        match parse_checkpoint(&text[..cut]) {
            Ok(rec) => {
                prop_assert_eq!(&rec.header, &ck.header, "header survives or parse fails");
                prop_assert!(rec.records.len() <= ck.records.len());
                prop_assert_eq!(
                    rec.records.as_slice(),
                    &ck.records[..rec.records.len()],
                    "recovered records are an exact prefix"
                );
            }
            Err(CheckpointError::MissingHeader) => {
                // Legal only when the cut happened inside the header line.
                let header_end = text.find('\n').unwrap() + 1;
                prop_assert!(cut < header_end, "complete header must parse (cut={cut})");
            }
            Err(e) => prop_assert!(false, "unexpected error on truncation: {e}"),
        }
    }
}

/// Golden pin for plan identity: the fingerprints of single-bit plans
/// must never move. They are persisted in checkpoints and spoken over the
/// dispatch wire, so a drift here silently orphans every recorded shard.
/// The `FaultPattern` axis was added *after* these values were minted —
/// the planner folds the pattern into the digest only for non-default
/// patterns precisely so this test keeps passing.
#[test]
fn single_bit_plan_fingerprints_are_pinned() {
    use kernels::apps::va::Va;
    use relia::{prepare_sw_campaign, prepare_uarch_campaign, CampaignCfg};

    let cfg = CampaignCfg::new(8, 8, 0xACE);
    let uarch = prepare_uarch_campaign(&Va, &cfg, false);
    assert_eq!(
        uarch.plan.fingerprint(),
        0x81A4_0DC8_FCA8_96FE,
        "uarch single-bit fingerprint drifted"
    );
    let sw = prepare_sw_campaign(&Va, &cfg, false);
    assert_eq!(
        sw.plan.fingerprint(),
        0x1CD0_306F_463B_E7A0,
        "sw single-bit fingerprint drifted"
    );
}

/// The pattern axis is pure payload: for every pattern, the planner must
/// emit byte-identical trial coordinates — same per-trial seeds, same
/// (cycle, location, bit) — and only non-default patterns may move the
/// plan fingerprint.
#[test]
fn patterns_never_perturb_trial_seeds_or_coordinates() {
    use kernels::apps::va::Va;
    use kernels::PlannedFault;
    use relia::{prepare_uarch_campaign, CampaignCfg};
    use vgpu_sim::FaultPattern;

    let base_cfg = CampaignCfg::new(6, 6, 0xBEEF);
    let base = prepare_uarch_campaign(&Va, &base_cfg, false);
    for pattern in FaultPattern::ALL {
        let mut cfg = base_cfg.clone();
        cfg.pattern = pattern;
        let prep = prepare_uarch_campaign(&Va, &cfg, false);
        assert_eq!(prep.plan.trials.len(), base.plan.trials.len());
        for (t, b) in prep.plan.trials.iter().zip(&base.plan.trials) {
            assert_eq!(t.seed, b.seed, "{}: trial seed moved", pattern.label());
            assert_eq!(t.index, b.index);
            assert_eq!(t.kernel_idx, b.kernel_idx);
            assert_eq!(t.target, b.target);
            assert_eq!(t.trial, b.trial);
            // Identical fault coordinates; only the pattern field differs.
            match (&t.fault, &b.fault) {
                (Some((ot, PlannedFault::Uarch(ft))), Some((ob, PlannedFault::Uarch(fb)))) => {
                    assert_eq!(ot, ob);
                    assert_eq!(ft.cycle, fb.cycle, "{}", pattern.label());
                    assert_eq!(ft.structure, fb.structure);
                    assert_eq!(ft.loc_pick, fb.loc_pick);
                    assert_eq!(ft.bit, fb.bit);
                    assert_eq!(ft.pattern, pattern);
                }
                (None, None) => {}
                (a, b) => panic!("{}: fault shape diverged: {a:?} vs {b:?}", pattern.label()),
            }
        }
        if pattern == FaultPattern::SingleBit {
            assert_eq!(prep.plan.fingerprint(), base.plan.fingerprint());
        } else {
            assert_ne!(
                prep.plan.fingerprint(),
                base.plan.fingerprint(),
                "{}: non-default patterns must not collide with the single-bit digest",
                pattern.label()
            );
        }
    }
}

#[test]
fn shard_cover_holds_at_awkward_exact_points() {
    // Deterministic spot checks at the boundaries proptest may skip.
    for (len, shards) in [(0, 1), (0, 5), (1, 1), (1, 4), (5, 5), (7, 3), (16, 16)] {
        let total: usize = (0..shards)
            .map(|i| shard_trials(len, shards, i).len())
            .sum();
        assert_eq!(total, len, "len={len} shards={shards}");
    }
}
