//! Small-campaign tests of the PVF extension and the hardening evaluator
//! (cheap app, low N — statistical shapes only).

use kernels::apps::va::Va;
use relia::{
    evaluate_hardening, run_pvf_campaign, run_sw_campaign, run_uarch_campaign, CampaignCfg,
};
use vgpu_sim::HwStructure;

fn cfg(n: usize) -> CampaignCfg {
    CampaignCfg::new(n, n, 0x50_46)
}

#[test]
fn pvf_sits_between_avf_and_svf() {
    let cfg = cfg(80);
    let svf = run_sw_campaign(&Va, &cfg, false).app_svf().total();
    let pvf = run_pvf_campaign(&Va, &cfg, false).app_pvf().total();
    let avf = run_uarch_campaign(&Va, &cfg, false)
        .app_avf(&cfg.gpu)
        .total();
    assert!(
        svf > pvf && pvf > avf,
        "expected SVF ({svf:.3}) > PVF ({pvf:.3}) > AVF ({avf:.4})"
    );
}

#[test]
fn pvf_campaign_is_deterministic() {
    let cfg = cfg(40);
    let a = run_pvf_campaign(&Va, &cfg, false);
    let b = run_pvf_campaign(&Va, &cfg, false);
    assert_eq!(a.kernels[0].counts, b.kernels[0].counts);
}

#[test]
fn hardening_comparison_has_full_shape() {
    let cfg = cfg(30);
    let cmp = evaluate_hardening(&Va, &cfg);
    let rows = cmp.kernel_rows(&cfg.gpu);
    assert_eq!(rows.len(), 1, "VA has one kernel");
    let row = &rows[0];
    assert_eq!(row.kernel, "K1");
    assert_eq!(row.structures.len(), HwStructure::ALL.len());
    // All rates are probabilities.
    for v in [
        row.avf_base.total(),
        row.avf_tmr.total(),
        row.svf_base.total(),
        row.svf_tmr.total(),
        row.ctrl_base,
        row.ctrl_tmr,
    ] {
        assert!((0.0..=1.0).contains(&v), "{v}");
    }
    // TMR slashes software-visible SDCs (Insight #5, software side).
    assert!(row.svf_tmr.sdc <= row.svf_base.sdc);
}
