//! The campaign-engine differential proof for the trace-replay backend:
//! a campaign executed with `EngineBackend::Replay` must produce the
//! same classified records — and the same assembled result, derating
//! factors included — as the timed backend, for every fault pattern,
//! whether run single-shot, merged from shards, or killed and resumed.
//! Replay is a pure throughput knob; any divergence here is a bug.

use kernels::apps::{scp::Scp, va::Va};
use kernels::Benchmark;
use relia::{
    assemble_sw, assemble_uarch, execute_shard, prepare_sw_campaign, prepare_uarch_campaign,
    records_fingerprint, CampaignCfg, EngineBackend, EngineCfg,
};
use vgpu_sim::FaultPattern;

fn replay_engine() -> EngineCfg {
    EngineCfg {
        backend: EngineBackend::Replay,
        ..EngineCfg::single_shot()
    }
}

#[test]
fn replay_and_timed_classify_identically() {
    for bench in [&Va as &dyn Benchmark, &Scp as &dyn Benchmark] {
        let cfg = CampaignCfg::new(6, 0, 0xFF_D1FF);
        let prep = prepare_uarch_campaign(bench, &cfg, false);

        let timed = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
        let replay = execute_shard(&prep, &replay_engine()).unwrap();
        assert_eq!(
            replay,
            timed,
            "{}: replay backend changed a trial record",
            bench.name()
        );

        let assembled_timed = assemble_uarch(&prep, &timed).unwrap();
        let assembled_replay = assemble_uarch(&prep, &replay).unwrap();
        assert_eq!(
            assembled_replay,
            assembled_timed,
            "{}: replay backend changed the assembled AVF result",
            bench.name()
        );

        // Sharded replay execution merges to the same result.
        let mut merged = Vec::new();
        for i in 0..3 {
            let eng = EngineCfg {
                backend: EngineBackend::Replay,
                ..EngineCfg::sharded(3, i)
            };
            merged.extend(execute_shard(&prep, &eng).unwrap());
        }
        assert_eq!(
            records_fingerprint(&merged),
            records_fingerprint(&timed),
            "{}: 3-shard replay merge differs from timed single-shot",
            bench.name()
        );
        assert_eq!(assemble_uarch(&prep, &merged).unwrap(), assembled_timed);
    }
}

#[test]
fn replay_matches_timed_for_every_fault_pattern() {
    for pattern in FaultPattern::ALL {
        let cfg = CampaignCfg {
            pattern,
            ..CampaignCfg::new(3, 0, 0x9A77)
        };
        let prep = prepare_uarch_campaign(&Va, &cfg, false);
        let timed = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
        let replay = execute_shard(&prep, &replay_engine()).unwrap();
        assert_eq!(replay, timed, "{pattern:?}: replay changed a record");
        assert_eq!(
            assemble_uarch(&prep, &replay).unwrap(),
            assemble_uarch(&prep, &timed).unwrap(),
            "{pattern:?}: replay changed the assembled result"
        );
    }
}

#[test]
fn replay_kill_and_resume_matches_timed() {
    let dir = std::env::temp_dir().join(format!("relia_replay_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = CampaignCfg::new(5, 0, 0x9E5E);
    let prep = prepare_uarch_campaign(&Va, &cfg, false);
    let timed = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();

    let path = dir.join("replay.jsonl");
    let interrupted = EngineCfg {
        checkpoint: Some(path.clone()),
        trial_limit: Some(7),
        ..replay_engine()
    };
    assert_eq!(execute_shard(&prep, &interrupted).unwrap().len(), 7);
    let resumed = EngineCfg {
        resume: Some(path.clone()),
        ..replay_engine()
    };
    let records = execute_shard(&prep, &resumed).unwrap();
    assert_eq!(records.len(), prep.plan.len());
    assert_eq!(records_fingerprint(&records), records_fingerprint(&timed));
    assert_eq!(
        assemble_uarch(&prep, &records).unwrap(),
        assemble_uarch(&prep, &timed).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_without_fast_forward_degrades_gracefully() {
    // The CLI rejects this combination (exit 2), but the programmatic
    // engine tolerates it: fallback trials take the slow full-execution
    // path and classification stays identical.
    let cfg = CampaignCfg::new(4, 0, 0x510);
    let prep = prepare_uarch_campaign(&Va, &cfg, false);
    let timed = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
    let eng = EngineCfg {
        backend: EngineBackend::Replay,
        fast_forward: false,
        ..EngineCfg::single_shot()
    };
    assert_eq!(execute_shard(&prep, &eng).unwrap(), timed);
}

#[test]
fn replay_on_sw_campaign_degrades_to_timed() {
    // The functional-variant software-fault layer has no access trace;
    // replay must silently behave exactly like the timed backend.
    let cfg = CampaignCfg::new(0, 8, 0x5_0FF);
    let prep = prepare_sw_campaign(&Va, &cfg, false);
    let timed = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
    let replay = execute_shard(&prep, &replay_engine()).unwrap();
    assert_eq!(replay, timed);
    assert_eq!(
        assemble_sw(&prep, &replay).unwrap(),
        assemble_sw(&prep, &timed).unwrap()
    );
}

#[test]
fn replay_on_hardened_app_degrades_to_timed() {
    let cfg = CampaignCfg::new(4, 0, 0x4A9D);
    let prep = prepare_uarch_campaign(&Va, &cfg, true);
    let timed = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
    assert_eq!(execute_shard(&prep, &replay_engine()).unwrap(), timed);
}
