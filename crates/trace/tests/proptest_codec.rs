//! Property tests for the trace blob codec:
//!
//! * encode → decode is the identity on arbitrary well-formed segments
//!   (round-trip fixpoint, `complete == true`);
//! * decoding any *prefix* of a valid blob never panics and yields a
//!   prefix of the original events (truncation recovery — the property
//!   that makes a torn trace artifact recoverable instead of fatal);
//! * decoding arbitrary garbage never panics;
//! * the blob fingerprint is deterministic and content-sensitive.

use proptest::prelude::*;
use trace::{decode_segment_lossy, encode_segment, fingerprint_blobs, TraceEvent, TraceGeometry};

/// Build a well-formed event list from proptest-generated raw parts:
/// times are made nondecreasing by accumulating the per-event deltas.
fn events_from(parts: Vec<((u8, u8, bool), (u32, u64, u32, u16))>) -> Vec<TraceEvent> {
    let mut t = 0u64;
    parts
        .into_iter()
        .map(|((op, h, write), (inst, word, len, dt))| {
            t += u64::from(dt);
            let h = h % 5;
            match op % 4 {
                0 => TraceEvent::Access {
                    h,
                    inst,
                    word,
                    t,
                    write,
                },
                1 => TraceEvent::Range {
                    h,
                    inst,
                    start: word,
                    len,
                    t,
                    write,
                },
                2 => TraceEvent::Slot {
                    sm: inst,
                    slot: len,
                    t,
                    fill: write,
                    // A free's `initial` flag is not encoded; normalise.
                    initial: write && word % 2 == 0,
                },
                _ => TraceEvent::HostRead { word },
            }
        })
        .collect()
}

/// `HostRead` carries no time, so the delta chain resumes at the *next*
/// timed event; drop generated sequences where that would regress time
/// (the recorder never produces them: host reads live in host segments
/// where every timed event has t == 0).
fn well_formed(events: &[TraceEvent]) -> bool {
    let mut last = 0u64;
    for ev in events {
        let t = match *ev {
            TraceEvent::Access { t, .. } | TraceEvent::Range { t, .. } => t,
            TraceEvent::Slot { t, .. } => t,
            TraceEvent::HostRead { .. } => continue,
        };
        if t < last {
            return false;
        }
        last = t;
    }
    true
}

fn arb_geom() -> impl Strategy<Value = TraceGeometry> {
    (1u32..64, 1u32..4096, 1u32..1024, 1u32..16, 1u32..512).prop_map(
        |(warps_per_cta, regs_per_cta, smem_words_per_cta, slots_per_sm, total_ctas)| {
            TraceGeometry {
                warps_per_cta,
                regs_per_cta,
                smem_words_per_cta,
                slots_per_sm,
                total_ctas,
            }
        },
    )
}

proptest! {
    /// Round trip: any well-formed host segment survives encode/decode.
    #[test]
    fn host_segment_round_trips(
        seg in 0u32..1_000_000,
        parts in prop::collection::vec(
            ((any::<u8>(), any::<u8>(), any::<bool>()),
             (0u32..65_536, 0u64..(1u64 << 40), 0u32..512, any::<u16>())),
            0..64,
        ),
    ) {
        let events = events_from(parts);
        prop_assert!(well_formed(&events));
        let blob = encode_segment(seg, None, &events);
        let dec = decode_segment_lossy(&blob).expect("valid blob decodes");
        prop_assert!(dec.complete);
        prop_assert_eq!(dec.seg, seg);
        prop_assert_eq!(dec.launch, None);
        prop_assert_eq!(dec.events, events);
    }

    /// Round trip for launch segments, including geometry and cycles.
    #[test]
    fn launch_segment_round_trips(
        seg in 0u32..1_000_000,
        g in arb_geom(),
        cycles in any::<u64>(),
        parts in prop::collection::vec(
            ((any::<u8>(), any::<u8>(), any::<bool>()),
             (0u32..65_536, 0u64..(1u64 << 40), 0u32..512, any::<u16>())),
            0..64,
        ),
    ) {
        let events = events_from(parts);
        let blob = encode_segment(seg, Some((&g, cycles)), &events);
        let dec = decode_segment_lossy(&blob).expect("valid blob decodes");
        prop_assert!(dec.complete);
        prop_assert_eq!(dec.launch, Some((g, cycles)));
        prop_assert_eq!(dec.events, events);
    }

    /// Truncation recovery: every prefix of a valid blob either fails
    /// header decode (None) or yields a clean *prefix* of the original
    /// events with `complete == false` — never a panic, never invented
    /// events.
    #[test]
    fn truncated_blob_decodes_to_event_prefix(
        seg in 0u32..4096,
        g in arb_geom(),
        cycles in 0u64..(1u64 << 40),
        parts in prop::collection::vec(
            ((any::<u8>(), any::<u8>(), any::<bool>()),
             (0u32..65_536, 0u64..(1u64 << 40), 0u32..512, any::<u16>())),
            1..48,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let events = events_from(parts);
        let blob = encode_segment(seg, Some((&g, cycles)), &events);
        let cut = ((blob.len() as f64) * cut_frac) as usize;
        if let Some(dec) = decode_segment_lossy(&blob[..cut.min(blob.len() - 1)]) {
            prop_assert!(!dec.complete);
            prop_assert!(dec.events.len() <= events.len());
            prop_assert_eq!(&events[..dec.events.len()], dec.events.as_slice());
        }
    }

    /// Fuzz: arbitrary bytes never panic the lossy decoder, and a valid
    /// magic+version prefix with garbage payload still never panics.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_segment_lossy(&bytes);
        let mut with_magic = b"vtrc\x01\x01".to_vec();
        with_magic.extend_from_slice(&bytes);
        let _ = decode_segment_lossy(&with_magic);
    }

    /// Fingerprint: deterministic, and any single-byte corruption of a
    /// blob changes it.
    #[test]
    fn fingerprint_detects_corruption(
        parts in prop::collection::vec(
            ((any::<u8>(), any::<u8>(), any::<bool>()),
             (0u32..65_536, 0u64..(1u64 << 40), 0u32..512, any::<u16>())),
            1..32,
        ),
        flip_at_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let events = events_from(parts);
        let blob = encode_segment(0, None, &events);
        let f = fingerprint_blobs(&[blob.clone()]);
        prop_assert_eq!(f, fingerprint_blobs(&[blob.clone()]));
        let mut corrupt = blob.clone();
        let at = ((corrupt.len() as f64) * flip_at_frac) as usize;
        let at = at.min(corrupt.len() - 1);
        corrupt[at] ^= 1 << flip_bit;
        prop_assert_ne!(f, fingerprint_blobs(&[corrupt]));
    }
}
