//! End-to-end soundness of trace-based deadness adjudication.
//!
//! The replay backend's correctness rests on one claim: when the
//! adjudicator says `Dead`, the real timed faulty run would have been
//! bit-identical to golden — outcome `Masked`, golden total cost, zero
//! corrupted words. This test records a real application trace and
//! cross-checks every `Dead` verdict against the actual simulator, over
//! all five storage structures, several fault cycles, and multiple
//! transient patterns. A single disagreement is an unsound trace index
//! and fails loudly.

use kernels::apps::va::Va;
use kernels::{faulty_run, golden_run, Benchmark, Outcome, PlannedFault, Variant};
use trace::{record_app_trace, FallbackReason, Verdict};
use vgpu_sim::{FaultPattern, GpuConfig, HwStructure, UarchFault};

fn probe_cycles(total: u64) -> Vec<u64> {
    vec![
        0,
        total / 3,
        total / 2,
        total * 9 / 10,
        total.saturating_sub(1),
    ]
}

#[test]
fn dead_verdicts_are_bit_identical_to_golden() {
    let b = Va;
    let cfg = GpuConfig::volta_scaled(2);
    let golden = golden_run(&b, &cfg, Variant::TIMED);
    let trace = record_app_trace(&b, &cfg, &golden);

    assert_eq!(trace.num_launches(), golden.records.len());
    for (k, rec) in golden.records.iter().enumerate() {
        let li = trace.launch(k).expect("launch recorded");
        assert_eq!(li.cycles, rec.stats.cycles, "launch {k} cycle mismatch");
        assert!(li.warps() > 0);
    }
    assert!(trace.bytes > 0);

    let patterns = [
        FaultPattern::SingleBit,
        FaultPattern::WholeEntry,
        FaultPattern::BurstRow,
    ];
    let mut dead = 0u32;
    let mut fell_back = 0u32;
    let mut checked = 0u32;
    for target in 0..golden.records.len() {
        let launch_cycles = golden.records[target].stats.cycles;
        for structure in HwStructure::ALL {
            let mut checked_here = 0u32;
            for (i, cycle) in probe_cycles(launch_cycles).into_iter().enumerate() {
                for pattern in patterns {
                    let fault = UarchFault {
                        cycle,
                        structure,
                        loc_pick: 0x9e37_79b9_7f4a_7c15u64
                            .wrapping_mul(i as u64 + 1)
                            .wrapping_add(pattern as u64),
                        bit: (i as u8 * 7) % 32,
                        pattern,
                    };
                    match trace.adjudicate(&cfg, target, &fault) {
                        Verdict::Dead { population } => {
                            dead += 1;
                            // Cross-checking every dead verdict against a
                            // full simulation would dominate test time;
                            // a few per structure catch systematic bugs.
                            if checked_here >= 4 {
                                continue;
                            }
                            checked_here += 1;
                            checked += 1;
                            let r = faulty_run(
                                &b,
                                &cfg,
                                Variant::TIMED,
                                &golden,
                                target,
                                PlannedFault::Uarch(fault),
                            );
                            let tag = format!(
                                "{} launch {target} {structure:?} cycle {cycle} {pattern:?}",
                                b.name()
                            );
                            assert_eq!(r.outcome, Outcome::Masked, "{tag}");
                            assert_eq!(r.total_cost, golden.total_cost, "{tag}");
                            assert_eq!(r.corrupted_words, 0, "{tag}");
                            assert_eq!(r.applied, population > 0, "{tag}");
                        }
                        Verdict::Fallback { reason, warps } => {
                            fell_back += 1;
                            assert_ne!(
                                reason,
                                FallbackReason::NoTrace,
                                "in-range fault must never be NoTrace"
                            );
                            assert!(warps > 0);
                        }
                    }
                }
            }
        }
    }
    // The speedup premise: a meaningful share of uniformly-probed
    // transient faults adjudicate dead without simulation.
    assert!(checked > 0, "no dead verdict was cross-checked");
    assert!(
        dead > 0 && fell_back > 0,
        "degenerate adjudication split: dead={dead} fallback={fell_back}"
    );
}
