//! # trace — trace-driven replay backend for injection campaigns
//!
//! The timed engine simulates every trial cycle-by-cycle, even though
//! the overwhelming majority of uarch faults — especially in the large
//! cache arrays — land on bits that are overwritten (or never touched)
//! before anything reads them. This crate removes that waste without
//! giving up a single bit of fidelity:
//!
//! 1. **Record** ([`recorder`]): the golden instrumented pass runs once
//!    per (app, config) with a probe sink attached, capturing every
//!    register-file, shared-memory, and cache word access as a compact
//!    delta/varint-encoded stream — one blob per segment (host glue /
//!    launch), content-fingerprinted like campaign plans.
//! 2. **Adjudicate** ([`replay`]): for each trial, mirror the
//!    injector's site selection exactly, expand the fault pattern's
//!    footprint, and look up the first recorded touch of every affected
//!    word at-or-after the fault position. If every word is written
//!    first (or never touched), the trial is *provably masked* and its
//!    record is synthesized in microseconds. Reads, persistent faults,
//!    control-state faults, and unindexable sites fall back to full
//!    timed re-execution — so replay output is byte-identical to the
//!    timed backend by construction, just an order of magnitude faster.
//!
//! The engine-facing surface lives in `relia::campaign` (backend
//! selection); this crate is deliberately free of campaign and
//! observability dependencies so it can be tested in isolation.

pub mod codec;
pub mod recorder;
pub mod replay;

pub use codec::{
    decode_segment_lossy, encode_segment, fingerprint_blobs, get_varint, put_varint, SegmentEvents,
    TraceEvent, TraceGeometry, MAGIC, VERSION,
};
pub use recorder::{record_app_trace, TraceBuilder};
pub use replay::{AppTrace, FallbackReason, LaunchInfo, Verdict};
