//! Replay-side trace representation and deadness adjudication.
//!
//! An [`AppTrace`] is the indexed form of one application's recorded
//! probe stream: the encoded per-segment blobs, per-launch occupancy
//! info, and a global first-touch index over every recorded access.
//!
//! The replay engine's core question, for one transient uarch fault, is:
//! *is every bit of the fault footprint provably dead?* A flipped word
//! is dead when the first recorded touch of that word at-or-after the
//! fault position is a **write** (the corruption is overwritten before
//! anything reads it) or when it is never touched again (nothing ever
//! consumes it, and final outputs are produced exclusively through
//! recorded host reads). In either case the faulty execution is
//! bit-identical to golden — outcome `Masked`, `total_cost` equal to
//! golden's — so the trial record can be synthesized without simulating
//! a single cycle. Anything else (a read reaches the corruption, a
//! persistent fault, control state, an unindexable site) falls back to
//! full re-execution, which is what keeps replay byte-identical to the
//! timed backend by construction.
//!
//! Position ordering is global: launch ordinal `k` is segment `2k + 1`
//! and host glue fills the even segments, so `(segment, cycle)`
//! lexicographic order is program order. The fault applies at the *top*
//! of its cycle, before issue, so touches at `t == cycle` count as
//! post-fault.

use std::io::{Error, ErrorKind, Result as IoResult};
use std::path::Path;

use rayon::prelude::*;
use vgpu_arch::WARP_SIZE;
use vgpu_sim::{pattern_footprint, GpuConfig, HwStructure, UarchFault};

use crate::codec::{decode_segment_lossy, fingerprint_blobs, TraceEvent, TraceGeometry};

const KEY_WORD_BITS: u32 = 40;
const KEY_INST_BITS: u32 = 16;
const POS_T_BITS: u32 = 40;

fn pack_key(h: u8, inst: u32, word: u64) -> Option<u64> {
    if word >> KEY_WORD_BITS != 0 || inst >> KEY_INST_BITS != 0 {
        return None;
    }
    Some(
        (u64::from(h) << (KEY_WORD_BITS + KEY_INST_BITS))
            | (u64::from(inst) << KEY_WORD_BITS)
            | word,
    )
}

/// Pack `(seg, t, write)` into one ordered u64. The write flag sits in
/// the LSB, so at equal `(seg, t)` reads sort *before* writes — which
/// makes the first-entry lookup conservatively report a read whenever a
/// read and a write hit the same word in the same cycle.
fn pack_pos(seg: u32, t: u64, write: bool) -> Option<u64> {
    if t >> POS_T_BITS != 0 || seg >> (63 - POS_T_BITS - 1) != 0 {
        return None;
    }
    Some((u64::from(seg) << (POS_T_BITS + 1)) | (t << 1) | u64::from(write))
}

/// One indexed word touch: `(key, pos)`, both packed.
#[derive(Clone, Copy)]
struct PointEntry {
    key: u64,
    pos: u64,
}

/// First-touch index over every recorded access, range events expanded
/// to their constituent words.
struct EventIndex {
    /// Sorted by `(key, pos)`.
    points: Vec<PointEntry>,
    /// Set when some event exceeded the packing limits; adjudication
    /// then refuses to trust the index and always falls back.
    unindexable: bool,
}

impl EventIndex {
    fn build(segs: &[crate::codec::SegmentEvents]) -> EventIndex {
        // Expand per segment in parallel (a trace is tens of millions of
        // word touches), then one parallel sort over the concatenation.
        let per_seg: Vec<(Vec<PointEntry>, bool)> = segs
            .par_iter()
            .map(|se| {
                let mut points = Vec::with_capacity(se.events.len());
                let mut unindexable = false;
                let mut push = |h: u8, inst: u32, word: u64, t: u64, write: bool| match (
                    pack_key(h, inst, word),
                    pack_pos(se.seg, t, write),
                ) {
                    (Some(key), Some(pos)) => points.push(PointEntry { key, pos }),
                    _ => unindexable = true,
                };
                for ev in &se.events {
                    match *ev {
                        TraceEvent::Access {
                            h,
                            inst,
                            word,
                            t,
                            write,
                        } => push(h, inst, word, t, write),
                        TraceEvent::Range {
                            h,
                            inst,
                            start,
                            len,
                            t,
                            write,
                        } => {
                            for w in start..start + u64::from(len) {
                                push(h, inst, w, t, write);
                            }
                        }
                        TraceEvent::HostRead { word } => {
                            push(HwStructure::L2 as u8, 0, word, 0, false)
                        }
                        TraceEvent::Slot { .. } => {}
                    }
                }
                (points, unindexable)
            })
            .collect();
        let unindexable = per_seg.iter().any(|(_, u)| *u);
        let mut points = Vec::with_capacity(per_seg.iter().map(|(p, _)| p.len()).sum());
        for (p, _) in per_seg {
            points.extend(p);
        }
        points.par_sort_unstable_by_key(|e| (e.key, e.pos));
        EventIndex {
            points,
            unindexable,
        }
    }

    /// First recorded touch of `(h, inst, word)` at-or-after `(seg, c)`:
    /// `None` if never touched again, otherwise `Some(read)`. Reads sort
    /// before writes at equal position, so a same-cycle read/write tie
    /// conservatively reports a read.
    fn first_touch(&self, h: u8, inst: u32, word: u64, seg: u32, c: u64) -> Option<bool> {
        let key = pack_key(h, inst, word)?;
        let pos = pack_pos(seg, c, false)?;
        let i = self.points.partition_point(|e| (e.key, e.pos) < (key, pos));
        match self.points.get(i) {
            Some(e) if e.key == key => Some(e.pos & 1 == 0),
            _ => None,
        }
    }
}

/// One CTA-slot occupancy transition, with its *effective* cycle: an
/// initial (prefill) fill occupies from cycle 0, mid-run fills and
/// frees take effect from `t + 1` (they happen in cycle `t`'s retire
/// stage, after that cycle's fault application point).
#[derive(Clone, Copy)]
struct SlotEvent {
    sm: u32,
    slot: u32,
    eff: u64,
    fill: bool,
}

/// Per-launch replay info: geometry, retired cycle count, and the slot
/// occupancy timeline needed to mirror the injector's population walk.
pub struct LaunchInfo {
    /// Global segment number of this launch (`2 * ordinal + 1`).
    pub seg: u32,
    pub geom: TraceGeometry,
    /// Local cycles the launch ran for (golden).
    pub cycles: u64,
    slot_events: Vec<SlotEvent>,
}

impl LaunchInfo {
    /// Total warps this launch executes (re-execution cost proxy).
    pub fn warps(&self) -> u64 {
        u64::from(self.geom.warps_per_cta) * u64::from(self.geom.total_ctas)
    }

    /// Which CTA slots hold a live CTA at the top of local cycle `c`.
    fn live_slots(&self, num_sms: usize, c: u64) -> Vec<Vec<bool>> {
        let mut live = vec![vec![false; self.geom.slots_per_sm as usize]; num_sms];
        for ev in &self.slot_events {
            if ev.eff <= c {
                if let Some(s) = live
                    .get_mut(ev.sm as usize)
                    .and_then(|sm| sm.get_mut(ev.slot as usize))
                {
                    *s = ev.fill;
                }
            }
        }
        live
    }
}

/// Why a trial could not be adjudicated dead and must re-execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Some footprint word is read before being overwritten.
    LiveWord,
    /// Stuck-at faults re-assert every cycle; overwrites don't clear them.
    Persistent,
    /// SIMT-stack / scheduler faults disturb control, not data.
    ControlState,
    /// No usable trace for the target site (missing launch, out-of-range
    /// cycle, unindexable coordinates, incompatible line geometry).
    NoTrace,
}

impl FallbackReason {
    pub const ALL: [FallbackReason; 4] = [
        FallbackReason::LiveWord,
        FallbackReason::Persistent,
        FallbackReason::ControlState,
        FallbackReason::NoTrace,
    ];

    /// Stable label (metrics dimension).
    pub fn label(&self) -> &'static str {
        match self {
            FallbackReason::LiveWord => "live_word",
            FallbackReason::Persistent => "persistent",
            FallbackReason::ControlState => "control_state",
            FallbackReason::NoTrace => "no_trace",
        }
    }
}

/// Adjudication result for one (launch, fault) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every footprint bit is overwritten (or never touched) before any
    /// read: the faulty run is bit-identical to golden. `population` is
    /// exactly what the injector would have reported (0 means the fault
    /// landed on an empty structure and `applied` must be false).
    Dead { population: u64 },
    /// Must re-execute with the timed engine; `warps` is the launch's
    /// warp count (0 when unknown), for re-execution accounting.
    Fallback { reason: FallbackReason, warps: u64 },
}

/// A fully indexed application trace.
pub struct AppTrace {
    blobs: Vec<Vec<u8>>,
    launches: Vec<LaunchInfo>,
    index: EventIndex,
    /// Total encoded size of all segment blobs.
    pub bytes: u64,
    /// Content fingerprint over the encoded blobs.
    pub fingerprint: u64,
}

impl AppTrace {
    /// Decode and index a set of encoded segment blobs (in segment
    /// order). Panics if any blob fails to round-trip — the blobs come
    /// from our own encoder, so anything else is a codec bug.
    pub fn from_blobs(blobs: Vec<Vec<u8>>) -> AppTrace {
        let segs: Vec<crate::codec::SegmentEvents> = blobs
            .par_iter()
            .map(|b| {
                let se = decode_segment_lossy(b).expect("trace blob header must decode");
                assert!(se.complete, "trace blob must round-trip completely");
                se
            })
            .collect();
        Self::from_segments(blobs, &segs)
    }

    /// Index already-decoded segments against their encoded blobs. The
    /// recorder calls this directly with the in-memory event stream it
    /// just encoded, skipping the decode round trip (the codec's
    /// encode↔decode fixpoint is property-tested separately).
    pub fn from_segments(blobs: Vec<Vec<u8>>, segs: &[crate::codec::SegmentEvents]) -> AppTrace {
        let mut launches = Vec::new();
        for se in segs {
            if let Some((geom, cycles)) = se.launch {
                let slot_events = se
                    .events
                    .iter()
                    .filter_map(|ev| match *ev {
                        TraceEvent::Slot {
                            sm,
                            slot,
                            t,
                            fill,
                            initial,
                        } => Some(SlotEvent {
                            sm,
                            slot,
                            eff: if fill && initial { 0 } else { t + 1 },
                            fill,
                        }),
                        _ => None,
                    })
                    .collect();
                launches.push(LaunchInfo {
                    seg: se.seg,
                    geom,
                    cycles,
                    slot_events,
                });
            }
        }
        let index = EventIndex::build(segs);
        let bytes = blobs.iter().map(|b| b.len() as u64).sum();
        let fingerprint = fingerprint_blobs(&blobs);
        AppTrace {
            blobs,
            launches,
            index,
            bytes,
            fingerprint,
        }
    }

    /// Number of recorded launches.
    pub fn num_launches(&self) -> usize {
        self.launches.len()
    }

    /// Replay info for launch ordinal `k`.
    pub fn launch(&self, k: usize) -> Option<&LaunchInfo> {
        self.launches.get(k)
    }

    /// The encoded segment blobs, in segment order.
    pub fn blobs(&self) -> &[Vec<u8>] {
        &self.blobs
    }

    /// Persist one `.trace` artifact per segment into `dir`
    /// (`seg-<k>.trace`), creating the directory if needed.
    pub fn save_to_dir(&self, dir: &Path) -> IoResult<()> {
        std::fs::create_dir_all(dir)?;
        for (i, blob) in self.blobs.iter().enumerate() {
            std::fs::write(dir.join(format!("seg-{i}.trace")), blob)?;
        }
        Ok(())
    }

    /// Load a trace saved by [`save_to_dir`](AppTrace::save_to_dir):
    /// reads consecutive `seg-<k>.trace` files starting at 0 and
    /// validates that every blob decodes completely.
    pub fn load_from_dir(dir: &Path) -> IoResult<AppTrace> {
        let mut blobs = Vec::new();
        loop {
            let path = dir.join(format!("seg-{}.trace", blobs.len()));
            if !path.exists() {
                break;
            }
            blobs.push(std::fs::read(&path)?);
        }
        if blobs.is_empty() {
            return Err(Error::new(ErrorKind::NotFound, "no seg-0.trace in dir"));
        }
        for (i, b) in blobs.iter().enumerate() {
            let ok = decode_segment_lossy(b).is_some_and(|se| se.complete && se.seg == i as u32);
            if !ok {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("seg-{i}.trace is corrupt or out of order"),
                ));
            }
        }
        Ok(AppTrace::from_blobs(blobs))
    }

    /// Decide whether the trial `(launch ordinal, fault)` can be
    /// adjudicated dead from the trace alone. Mirrors the injector's
    /// site selection (`apply_uarch`) exactly: same population walk over
    /// live CTA slots, same footprint expansion, same array geometry.
    pub fn adjudicate(&self, cfg: &GpuConfig, ordinal: usize, fault: &UarchFault) -> Verdict {
        let Some(li) = self.launches.get(ordinal) else {
            return Verdict::Fallback {
                reason: FallbackReason::NoTrace,
                warps: 0,
            };
        };
        let warps = li.warps();
        let fallback = |reason| Verdict::Fallback { reason, warps };
        if self.index.unindexable {
            return fallback(FallbackReason::NoTrace);
        }
        if fault.pattern.is_persistent() {
            return fallback(FallbackReason::Persistent);
        }
        match fault.structure {
            HwStructure::Simt | HwStructure::Sched => {
                return fallback(FallbackReason::ControlState)
            }
            HwStructure::RegFile
            | HwStructure::Smem
            | HwStructure::L1D
            | HwStructure::L1T
            | HwStructure::L2 => {}
        }
        let c = fault.cycle;
        if c >= li.cycles {
            // The engine would idle-forward to the fault cycle and apply
            // the fault in post-launch state we did not model; punt.
            return fallback(FallbackReason::NoTrace);
        }
        let seg_f = li.seg;
        let h = fault.structure as u8;
        let g = &li.geom;
        match fault.structure {
            HwStructure::RegFile | HwStructure::Smem => {
                let is_rf = fault.structure == HwStructure::RegFile;
                let per_cta = u64::from(if is_rf {
                    g.regs_per_cta
                } else {
                    g.smem_words_per_cta
                });
                let live = li.live_slots(cfg.num_sms as usize, c);
                let live_slots: u64 = live
                    .iter()
                    .map(|sm| sm.iter().filter(|&&x| x).count() as u64)
                    .sum();
                let population = live_slots * per_cta;
                if population == 0 {
                    return Verdict::Dead { population: 0 };
                }
                let mut target = fault.loc_pick % population;
                let mut site = None;
                'walk: for (smi, sm) in live.iter().enumerate() {
                    for (slot_idx, &occ) in sm.iter().enumerate() {
                        if !occ {
                            continue;
                        }
                        if target < per_cta {
                            site = Some((smi, slot_idx as u64 * per_cta + target));
                            break 'walk;
                        }
                        target -= per_cta;
                    }
                }
                let (smi, idx) = site.expect("population walk must land");
                let arr_len = u64::from(if is_rf {
                    cfg.rf_regs_per_sm
                } else {
                    cfg.smem_bytes_per_sm / 4
                });
                for (e, _mask) in
                    pattern_footprint(fault.pattern, idx, fault.bit, arr_len, 32, WARP_SIZE as u64)
                {
                    if self.index.first_touch(h, smi as u32, e, seg_f, c) == Some(true) {
                        return fallback(FallbackReason::LiveWord);
                    }
                }
                Verdict::Dead { population }
            }
            HwStructure::L1D | HwStructure::L1T | HwStructure::L2 => {
                let (geom, count) = match fault.structure {
                    HwStructure::L1D => (&cfg.l1d, u64::from(cfg.num_sms)),
                    HwStructure::L1T => (&cfg.l1t, u64::from(cfg.num_sms)),
                    _ => (&cfg.l2, 1),
                };
                let line_words = u64::from(cfg.l2.line_bytes / 4);
                if u64::from(geom.line_bytes / 4) > line_words {
                    // The recorder addresses cache words as
                    // `frame * (l2_line_bytes / 4) + offset`; a larger
                    // line would alias frames, so refuse to adjudicate.
                    return fallback(FallbackReason::NoTrace);
                }
                let per = u64::from(geom.bytes);
                let population = per * count * 8;
                let byte = fault.loc_pick % (per * count);
                let which = (byte / per) as u32;
                let row = u64::from(geom.line_bytes);
                let mut words: Vec<u64> =
                    pattern_footprint(fault.pattern, byte % per, fault.bit, per, 8, row)
                        .iter()
                        .map(|(b, _)| (b / row) * line_words + (b % row) / 4)
                        .collect();
                words.sort_unstable();
                words.dedup();
                for w in words {
                    if self.index.first_touch(h, which, w, seg_f, c) == Some(true) {
                        return fallback(FallbackReason::LiveWord);
                    }
                }
                Verdict::Dead { population }
            }
            HwStructure::Simt | HwStructure::Sched => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_segment;
    use vgpu_sim::FaultPattern;

    fn geom() -> TraceGeometry {
        TraceGeometry {
            warps_per_cta: 2,
            regs_per_cta: 64,
            smem_words_per_cta: 8,
            slots_per_sm: 2,
            total_ctas: 3,
        }
    }

    /// One launch (seg 1): SM0 slot0 lives [0, end), SM0 slot1 filled at
    /// retire of cycle 4 (live from 5). RF word 10 written at t=2, read
    /// at t=6; RF word 20 written at t=3, never read; word 30 untouched.
    fn tiny_trace() -> AppTrace {
        let g = geom();
        let launch_events = vec![
            TraceEvent::Slot {
                sm: 0,
                slot: 0,
                t: 0,
                fill: true,
                initial: true,
            },
            TraceEvent::Range {
                h: 0,
                inst: 0,
                start: 0,
                len: 64,
                t: 0,
                write: true,
            },
            TraceEvent::Access {
                h: 0,
                inst: 0,
                word: 10,
                t: 2,
                write: true,
            },
            TraceEvent::Access {
                h: 0,
                inst: 0,
                word: 20,
                t: 3,
                write: true,
            },
            TraceEvent::Slot {
                sm: 0,
                slot: 1,
                t: 4,
                fill: true,
                initial: false,
            },
            TraceEvent::Range {
                h: 0,
                inst: 0,
                start: 64,
                len: 64,
                t: 4,
                write: true,
            },
            TraceEvent::Access {
                h: 0,
                inst: 0,
                word: 10,
                t: 6,
                write: false,
            },
        ];
        let blobs = vec![
            encode_segment(0, None, &[]),
            encode_segment(1, Some((&g, 10)), &launch_events),
            encode_segment(2, None, &[TraceEvent::HostRead { word: 5 }]),
        ];
        AppTrace::from_blobs(blobs)
    }

    fn rf_fault(cycle: u64, loc_pick: u64) -> UarchFault {
        UarchFault {
            cycle,
            structure: HwStructure::RegFile,
            loc_pick,
            bit: 3,
            pattern: FaultPattern::SingleBit,
        }
    }

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    #[test]
    fn read_after_flip_is_live() {
        let tr = tiny_trace();
        // Only slot 0 lives at cycle 3 → population 64, idx == loc_pick.
        match tr.adjudicate(&cfg(), 0, &rf_fault(3, 10)) {
            Verdict::Fallback {
                reason: FallbackReason::LiveWord,
                warps,
            } => assert_eq!(warps, 6),
            v => panic!("expected live fallback, got {v:?}"),
        }
    }

    #[test]
    fn overwrite_before_read_is_dead() {
        let tr = tiny_trace();
        // Flip word 10 at cycle 1: write at t=2 kills it before the t=6
        // read. Flip word 20 at cycle 1: write at t=3 kills it. Both dead.
        for w in [10, 20] {
            assert_eq!(
                tr.adjudicate(&cfg(), 0, &rf_fault(1, w)),
                Verdict::Dead { population: 64 }
            );
        }
    }

    #[test]
    fn flip_at_write_cycle_counts_post_fault() {
        let tr = tiny_trace();
        // Fault applies at the top of cycle 2; the write at t=2 happens
        // after it and overwrites the flip.
        assert_eq!(
            tr.adjudicate(&cfg(), 0, &rf_fault(2, 10)),
            Verdict::Dead { population: 64 }
        );
        // At cycle 3 the write is past; the t=6 read consumes the flip.
        assert!(matches!(
            tr.adjudicate(&cfg(), 0, &rf_fault(3, 10)),
            Verdict::Fallback {
                reason: FallbackReason::LiveWord,
                ..
            }
        ));
    }

    #[test]
    fn untouched_word_is_dead() {
        let tr = tiny_trace();
        assert_eq!(
            tr.adjudicate(&cfg(), 0, &rf_fault(3, 30)),
            Verdict::Dead { population: 64 }
        );
    }

    #[test]
    fn mid_run_slot_fill_extends_population() {
        let tr = tiny_trace();
        // At cycle 4 only slot 0 is live (fill at t=4 is effective from
        // 5); at cycle 5 both slots are live and the zero-fill makes the
        // second slot's words dead.
        assert_eq!(
            tr.adjudicate(&cfg(), 0, &rf_fault(4, 70)),
            Verdict::Dead { population: 64 }
        );
        assert_eq!(
            tr.adjudicate(&cfg(), 0, &rf_fault(5, 70)),
            Verdict::Dead { population: 128 }
        );
    }

    #[test]
    fn persistent_and_control_faults_fall_back() {
        let tr = tiny_trace();
        let mut f = rf_fault(1, 0);
        f.pattern = FaultPattern::StuckAt1;
        assert!(matches!(
            tr.adjudicate(&cfg(), 0, &f),
            Verdict::Fallback {
                reason: FallbackReason::Persistent,
                ..
            }
        ));
        let mut f = rf_fault(1, 0);
        f.structure = HwStructure::Simt;
        assert!(matches!(
            tr.adjudicate(&cfg(), 0, &f),
            Verdict::Fallback {
                reason: FallbackReason::ControlState,
                ..
            }
        ));
    }

    #[test]
    fn missing_launch_and_late_cycle_fall_back() {
        let tr = tiny_trace();
        assert!(matches!(
            tr.adjudicate(&cfg(), 7, &rf_fault(0, 0)),
            Verdict::Fallback {
                reason: FallbackReason::NoTrace,
                warps: 0,
            }
        ));
        assert!(matches!(
            tr.adjudicate(&cfg(), 0, &rf_fault(10, 0)),
            Verdict::Fallback {
                reason: FallbackReason::NoTrace,
                ..
            }
        ));
    }

    #[test]
    fn host_read_keeps_l2_word_live() {
        let g = geom();
        let blobs = vec![
            encode_segment(0, None, &[]),
            encode_segment(
                1,
                Some((&g, 10)),
                &[
                    TraceEvent::Slot {
                        sm: 0,
                        slot: 0,
                        t: 0,
                        fill: true,
                        initial: true,
                    },
                    TraceEvent::Access {
                        h: 4,
                        inst: 0,
                        word: 5,
                        t: 1,
                        write: true,
                    },
                ],
            ),
            encode_segment(2, None, &[TraceEvent::HostRead { word: 5 }]),
        ];
        let tr = AppTrace::from_blobs(blobs);
        let c = cfg();
        // L2 frame 0, word 5 → byte offset 20 of the data array. The
        // host read in seg 2 is the first touch after cycle 2.
        let f = UarchFault {
            cycle: 2,
            structure: HwStructure::L2,
            loc_pick: 20,
            bit: 0,
            pattern: FaultPattern::SingleBit,
        };
        assert!(matches!(
            tr.adjudicate(&c, 0, &f),
            Verdict::Fallback {
                reason: FallbackReason::LiveWord,
                ..
            }
        ));
        // A neighbouring untouched word is dead.
        let f2 = UarchFault { loc_pick: 24, ..f };
        assert!(matches!(tr.adjudicate(&c, 0, &f2), Verdict::Dead { .. }));
    }

    #[test]
    fn save_load_round_trip() {
        let tr = tiny_trace();
        let dir = std::env::temp_dir().join(format!("trace-test-{}", std::process::id()));
        tr.save_to_dir(&dir).unwrap();
        let back = AppTrace::load_from_dir(&dir).unwrap();
        assert_eq!(back.fingerprint, tr.fingerprint);
        assert_eq!(back.bytes, tr.bytes);
        assert_eq!(back.num_launches(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
