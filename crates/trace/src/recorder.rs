//! Trace recording: a [`TraceSink`] that segments the probe stream and a
//! one-call wrapper around the instrumented golden pass.
//!
//! The builder receives [`ProbeEvent`]s from the timed engine (see
//! `vgpu_sim::probe`) and buckets them into segments: host glue before
//! launch 0 is segment 0, launch ordinal `k` is segment `2k + 1`, and
//! the glue after each launch fills the next even segment. Launch
//! segments additionally capture the occupancy geometry and the retired
//! cycle count from [`ProbeEvent::LaunchBegin`] / [`ProbeEvent::LaunchEnd`].
//!
//! [`record_app_trace`] runs the *golden* pass once with the sink
//! attached (bit-identity to the untraced golden run is asserted inside
//! `kernels::golden_run_traced`) and returns the finished, indexed
//! [`AppTrace`].

use std::sync::{Arc, Mutex};

use kernels::{Benchmark, GoldenRun};
use rayon::prelude::*;
use vgpu_sim::{GpuConfig, ProbeEvent, SharedSink, TraceSink};

use crate::codec::{SegmentEvents, TraceEvent, TraceGeometry};
use crate::replay::AppTrace;

struct SegRec {
    /// `Some` for launch segments; cycles is filled in at `LaunchEnd`.
    launch: Option<(TraceGeometry, u64)>,
    events: Vec<TraceEvent>,
}

impl SegRec {
    fn host() -> Self {
        SegRec {
            launch: None,
            events: Vec::new(),
        }
    }
}

/// Accumulates the probe stream of one application run.
pub struct TraceBuilder {
    done: Vec<SegRec>,
    cur: SegRec,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuilder {
    pub fn new() -> Self {
        TraceBuilder {
            done: Vec::new(),
            cur: SegRec::host(),
        }
    }

    fn roll(&mut self, next: SegRec) {
        let prev = std::mem::replace(&mut self.cur, next);
        self.done.push(prev);
    }

    /// Close the final segment, encode everything, and build the replay
    /// index — directly from the in-memory event stream, skipping the
    /// decode round trip (`AppTrace::from_segments`). The builder is
    /// left empty (reusable).
    pub fn finish(&mut self) -> AppTrace {
        let mut recs = std::mem::take(&mut self.done);
        recs.push(std::mem::replace(&mut self.cur, SegRec::host()));
        let segs: Vec<SegmentEvents> = recs
            .into_iter()
            .enumerate()
            .map(|(i, s)| SegmentEvents {
                seg: i as u32,
                launch: s.launch,
                events: s.events,
                complete: true,
            })
            .collect();
        let encoded: Vec<Vec<u8>> = segs
            .par_iter()
            .map(|s| {
                crate::codec::encode_segment(
                    s.seg,
                    s.launch.as_ref().map(|(g, c)| (g, *c)),
                    &s.events,
                )
            })
            .collect();
        AppTrace::from_segments(encoded, &segs)
    }
}

impl TraceSink for TraceBuilder {
    fn event(&mut self, ev: ProbeEvent) {
        match ev {
            ProbeEvent::LaunchBegin {
                warps_per_cta,
                regs_per_cta,
                smem_words_per_cta,
                slots_per_sm,
                total_ctas,
            } => {
                let geom = TraceGeometry {
                    warps_per_cta,
                    regs_per_cta,
                    smem_words_per_cta,
                    slots_per_sm,
                    total_ctas,
                };
                self.roll(SegRec {
                    launch: Some((geom, 0)),
                    events: Vec::new(),
                });
            }
            ProbeEvent::LaunchEnd { cycles } => {
                if let Some((_, c)) = self.cur.launch.as_mut() {
                    *c = cycles;
                }
                self.roll(SegRec::host());
            }
            ProbeEvent::SlotFill {
                sm,
                slot,
                t,
                initial,
            } => self.cur.events.push(TraceEvent::Slot {
                sm,
                slot,
                t,
                fill: true,
                initial,
            }),
            ProbeEvent::SlotFree { sm, slot, t } => self.cur.events.push(TraceEvent::Slot {
                sm,
                slot,
                t,
                fill: false,
                initial: false,
            }),
            ProbeEvent::Access {
                h,
                inst,
                word,
                t,
                write,
            } => self.cur.events.push(TraceEvent::Access {
                h: h as u8,
                inst,
                word,
                t,
                write,
            }),
            ProbeEvent::Range {
                h,
                inst,
                start,
                len,
                t,
                write,
            } => self.cur.events.push(TraceEvent::Range {
                h: h as u8,
                inst,
                start,
                len,
                t,
                write,
            }),
            ProbeEvent::HostRead { word } => self.cur.events.push(TraceEvent::HostRead { word }),
        }
    }
}

/// Record the replay trace for one application: run the golden
/// instrumented pass with a [`TraceBuilder`] attached and return the
/// finished [`AppTrace`]. The traced pass asserts bit-identity (outputs,
/// costs, per-launch stats) against the already-captured `golden`
/// baseline, so a trace can never silently desynchronise from the run
/// it claims to describe.
pub fn record_app_trace(bench: &dyn Benchmark, cfg: &GpuConfig, golden: &GoldenRun) -> AppTrace {
    let builder = Arc::new(Mutex::new(TraceBuilder::new()));
    let sink: SharedSink = builder.clone();
    kernels::golden_run_traced(bench, cfg, golden, sink);
    let mut b = builder.lock().expect("trace builder lock");
    b.finish()
}
