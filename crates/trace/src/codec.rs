//! Compact on-the-wire codec for per-segment trace blobs.
//!
//! A recorded application trace is a sequence of *segments*: segment 0 is
//! the host glue before the first launch, launch ordinal `k` occupies
//! segment `2k + 1`, and the glue between launches (and after the last
//! one) fills the even segments. Each segment encodes independently into
//! one blob:
//!
//! ```text
//! magic  b"vtrc"           4 bytes
//! version u8               currently 1
//! kind    u8               0 = host glue, 1 = launch
//! seg     varint           global segment number
//! (launch only)
//!   warps_per_cta, regs_per_cta, smem_words_per_cta,
//!   slots_per_sm, total_ctas   5 varints
//!   cycles                     varint
//! n_events varint
//! events   ...
//! ```
//!
//! Every event starts with a kind byte `op | (h << 4)` where `h` is the
//! [`HwStructure`](vgpu_sim::HwStructure) discriminant for access/range
//! ops and 0 otherwise. Cycle times are delta-encoded within a segment
//! (they are nondecreasing in append order). All integers are LEB128
//! varints, so a typical register access costs 4-6 bytes instead of the
//! 25 of its in-memory form.
//!
//! [`decode_segment_lossy`] is deliberately forgiving: a truncated blob
//! yields the longest cleanly-decodable event prefix with
//! `complete == false`, never a panic. The replay index is built from
//! *decoded* blobs, so the codec is load-bearing, not just an export
//! format.

/// Blob magic, little-endian `b"vtrc"`.
pub const MAGIC: [u8; 4] = *b"vtrc";
/// Current blob format version.
pub const VERSION: u8 = 1;

const OP_ACCESS_READ: u8 = 0;
const OP_ACCESS_WRITE: u8 = 1;
const OP_RANGE_READ: u8 = 2;
const OP_RANGE_WRITE: u8 = 3;
const OP_SLOT_FILL_INITIAL: u8 = 4;
const OP_SLOT_FILL: u8 = 5;
const OP_SLOT_FREE: u8 = 6;
const OP_HOST_READ: u8 = 7;

/// Occupancy geometry of one launch, as carried in its segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceGeometry {
    pub warps_per_cta: u32,
    pub regs_per_cta: u32,
    pub smem_words_per_cta: u32,
    pub slots_per_sm: u32,
    pub total_ctas: u32,
}

/// One decoded trace event. `h` is the raw [`HwStructure`] discriminant
/// (0 = RF, 1 = SMEM, 2 = L1D, 3 = L1T, 4 = L2).
///
/// [`HwStructure`]: vgpu_sim::HwStructure
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    Access {
        h: u8,
        inst: u32,
        word: u64,
        t: u64,
        write: bool,
    },
    Range {
        h: u8,
        inst: u32,
        start: u64,
        len: u32,
        t: u64,
        write: bool,
    },
    Slot {
        sm: u32,
        slot: u32,
        t: u64,
        fill: bool,
        initial: bool,
    },
    HostRead {
        word: u64,
    },
}

impl TraceEvent {
    fn t(&self) -> u64 {
        match *self {
            TraceEvent::Access { t, .. }
            | TraceEvent::Range { t, .. }
            | TraceEvent::Slot { t, .. } => t,
            TraceEvent::HostRead { .. } => 0,
        }
    }
}

/// One decoded segment: header plus whatever events survived decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEvents {
    pub seg: u32,
    /// `Some((geometry, cycles))` for launch segments, `None` for host glue.
    pub launch: Option<(TraceGeometry, u64)>,
    pub events: Vec<TraceEvent>,
    /// False when the blob was truncated or carried trailing garbage.
    pub complete: bool,
}

/// Append `v` as a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint at `*pos`, bounds- and overflow-checked.
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encode one segment into a self-contained blob.
pub fn encode_segment(
    seg: u32,
    launch: Option<(&TraceGeometry, u64)>,
    events: &[TraceEvent],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + events.len() * 5);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(u8::from(launch.is_some()));
    put_varint(&mut buf, u64::from(seg));
    if let Some((g, cycles)) = launch {
        put_varint(&mut buf, u64::from(g.warps_per_cta));
        put_varint(&mut buf, u64::from(g.regs_per_cta));
        put_varint(&mut buf, u64::from(g.smem_words_per_cta));
        put_varint(&mut buf, u64::from(g.slots_per_sm));
        put_varint(&mut buf, u64::from(g.total_ctas));
        put_varint(&mut buf, cycles);
    }
    put_varint(&mut buf, events.len() as u64);
    let mut last_t = 0u64;
    for ev in events {
        // HostRead carries no time and must not disturb the delta chain.
        let dt = if matches!(ev, TraceEvent::HostRead { .. }) {
            0
        } else {
            let t = ev.t();
            debug_assert!(t >= last_t, "trace events must be t-nondecreasing");
            let dt = t.saturating_sub(last_t);
            last_t = last_t.max(t);
            dt
        };
        match *ev {
            TraceEvent::Access {
                h,
                inst,
                word,
                write,
                ..
            } => {
                let op = if write {
                    OP_ACCESS_WRITE
                } else {
                    OP_ACCESS_READ
                };
                buf.push(op | (h << 4));
                put_varint(&mut buf, u64::from(inst));
                put_varint(&mut buf, word);
                put_varint(&mut buf, dt);
            }
            TraceEvent::Range {
                h,
                inst,
                start,
                len,
                write,
                ..
            } => {
                let op = if write { OP_RANGE_WRITE } else { OP_RANGE_READ };
                buf.push(op | (h << 4));
                put_varint(&mut buf, u64::from(inst));
                put_varint(&mut buf, start);
                put_varint(&mut buf, u64::from(len));
                put_varint(&mut buf, dt);
            }
            TraceEvent::Slot {
                sm,
                slot,
                fill,
                initial,
                ..
            } => {
                let op = match (fill, initial) {
                    (true, true) => OP_SLOT_FILL_INITIAL,
                    (true, false) => OP_SLOT_FILL,
                    (false, _) => OP_SLOT_FREE,
                };
                buf.push(op);
                put_varint(&mut buf, u64::from(sm));
                put_varint(&mut buf, u64::from(slot));
                put_varint(&mut buf, dt);
            }
            TraceEvent::HostRead { word } => {
                buf.push(OP_HOST_READ);
                put_varint(&mut buf, word);
            }
        }
    }
    buf
}

fn decode_event(bytes: &[u8], pos: &mut usize, last_t: &mut u64) -> Option<TraceEvent> {
    let kind = *bytes.get(*pos)?;
    *pos += 1;
    let op = kind & 0x0F;
    let h = kind >> 4;
    match op {
        OP_ACCESS_READ | OP_ACCESS_WRITE => {
            let inst = u32::try_from(get_varint(bytes, pos)?).ok()?;
            let word = get_varint(bytes, pos)?;
            let t = last_t.checked_add(get_varint(bytes, pos)?)?;
            *last_t = t;
            Some(TraceEvent::Access {
                h,
                inst,
                word,
                t,
                write: op == OP_ACCESS_WRITE,
            })
        }
        OP_RANGE_READ | OP_RANGE_WRITE => {
            let inst = u32::try_from(get_varint(bytes, pos)?).ok()?;
            let start = get_varint(bytes, pos)?;
            let len = u32::try_from(get_varint(bytes, pos)?).ok()?;
            let t = last_t.checked_add(get_varint(bytes, pos)?)?;
            *last_t = t;
            Some(TraceEvent::Range {
                h,
                inst,
                start,
                len,
                t,
                write: op == OP_RANGE_WRITE,
            })
        }
        OP_SLOT_FILL_INITIAL | OP_SLOT_FILL | OP_SLOT_FREE => {
            if h != 0 {
                return None;
            }
            let sm = u32::try_from(get_varint(bytes, pos)?).ok()?;
            let slot = u32::try_from(get_varint(bytes, pos)?).ok()?;
            let t = last_t.checked_add(get_varint(bytes, pos)?)?;
            *last_t = t;
            Some(TraceEvent::Slot {
                sm,
                slot,
                t,
                fill: op != OP_SLOT_FREE,
                initial: op == OP_SLOT_FILL_INITIAL,
            })
        }
        OP_HOST_READ => {
            if h != 0 {
                return None;
            }
            let word = get_varint(bytes, pos)?;
            Some(TraceEvent::HostRead { word })
        }
        _ => None,
    }
}

/// Decode one blob, tolerating truncation: returns `None` only when the
/// header itself is unreadable; otherwise returns every event that
/// decodes cleanly before the stream ends, with `complete` reporting
/// whether the full advertised event count (and nothing more) was
/// present. A prefix of a valid blob always yields a prefix of its
/// events.
pub fn decode_segment_lossy(bytes: &[u8]) -> Option<SegmentEvents> {
    if bytes.len() < 6 || bytes[0..4] != MAGIC || bytes[4] != VERSION {
        return None;
    }
    let kind = bytes[5];
    if kind > 1 {
        return None;
    }
    let mut pos = 6usize;
    let seg = u32::try_from(get_varint(bytes, &mut pos)?).ok()?;
    let launch = if kind == 1 {
        let warps_per_cta = u32::try_from(get_varint(bytes, &mut pos)?).ok()?;
        let regs_per_cta = u32::try_from(get_varint(bytes, &mut pos)?).ok()?;
        let smem_words_per_cta = u32::try_from(get_varint(bytes, &mut pos)?).ok()?;
        let slots_per_sm = u32::try_from(get_varint(bytes, &mut pos)?).ok()?;
        let total_ctas = u32::try_from(get_varint(bytes, &mut pos)?).ok()?;
        let cycles = get_varint(bytes, &mut pos)?;
        Some((
            TraceGeometry {
                warps_per_cta,
                regs_per_cta,
                smem_words_per_cta,
                slots_per_sm,
                total_ctas,
            },
            cycles,
        ))
    } else {
        None
    };
    let n_events = get_varint(bytes, &mut pos)?;
    let mut events = Vec::new();
    let mut last_t = 0u64;
    let mut complete = true;
    for _ in 0..n_events {
        match decode_event(bytes, &mut pos, &mut last_t) {
            Some(ev) => events.push(ev),
            None => {
                complete = false;
                break;
            }
        }
    }
    if pos != bytes.len() {
        complete = false;
    }
    Some(SegmentEvents {
        seg,
        launch,
        events,
        complete,
    })
}

/// Order-sensitive fingerprint of a set of encoded blobs (splitmix64
/// fold, same construction the campaign planner uses for plan
/// fingerprints).
pub fn fingerprint_blobs<B: AsRef<[u8]>>(blobs: &[B]) -> u64 {
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut acc = 0x7472_6163_6500_0001u64; // "trace", v1
    for blob in blobs {
        let bytes = blob.as_ref();
        acc = splitmix64(acc ^ bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            acc = splitmix64(acc ^ u64::from_le_bytes(w));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80, 0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(get_varint(&[0xFF; 11], &mut pos), None);
    }

    #[test]
    fn segment_round_trip() {
        let g = TraceGeometry {
            warps_per_cta: 4,
            regs_per_cta: 512,
            smem_words_per_cta: 1,
            slots_per_sm: 8,
            total_ctas: 12,
        };
        let events = vec![
            TraceEvent::Slot {
                sm: 0,
                slot: 0,
                t: 0,
                fill: true,
                initial: true,
            },
            TraceEvent::Range {
                h: 0,
                inst: 0,
                start: 0,
                len: 512,
                t: 0,
                write: true,
            },
            TraceEvent::Access {
                h: 0,
                inst: 0,
                word: 37,
                t: 5,
                write: false,
            },
            TraceEvent::Access {
                h: 4,
                inst: 0,
                word: 1024,
                t: 9,
                write: true,
            },
            TraceEvent::Slot {
                sm: 0,
                slot: 0,
                t: 11,
                fill: false,
                initial: false,
            },
        ];
        let blob = encode_segment(3, Some((&g, 12)), &events);
        let dec = decode_segment_lossy(&blob).expect("header decodes");
        assert_eq!(dec.seg, 3);
        assert_eq!(dec.launch, Some((g, 12)));
        assert_eq!(dec.events, events);
        assert!(dec.complete);
    }

    #[test]
    fn host_segment_round_trip() {
        let events = vec![
            TraceEvent::HostRead { word: 99 },
            TraceEvent::HostRead { word: 0 },
        ];
        let blob = encode_segment(2, None, &events);
        let dec = decode_segment_lossy(&blob).unwrap();
        assert_eq!(dec.launch, None);
        assert_eq!(dec.events, events);
        assert!(dec.complete);
    }

    #[test]
    fn truncated_blob_yields_event_prefix() {
        let events: Vec<TraceEvent> = (0..20)
            .map(|i| TraceEvent::Access {
                h: 2,
                inst: 1,
                word: i * 131,
                t: i,
                write: i % 2 == 0,
            })
            .collect();
        let blob = encode_segment(1, None, &events);
        for cut in 0..blob.len() {
            let dec = decode_segment_lossy(&blob[..cut]);
            if let Some(d) = dec {
                assert!(!d.complete);
                assert_eq!(&events[..d.events.len()], d.events.as_slice());
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(decode_segment_lossy(b"nope").is_none());
        assert!(decode_segment_lossy(b"vtrc\x02\x00\x00\x00").is_none());
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let a = vec![1u8, 2, 3];
        let b = vec![4u8, 5];
        let f1 = fingerprint_blobs(&[a.clone(), b.clone()]);
        let f2 = fingerprint_blobs(&[b, a.clone()]);
        let f3 = fingerprint_blobs(&[a]);
        assert_ne!(f1, f2);
        assert_ne!(f1, f3);
        assert_eq!(f1, f1);
    }
}
