//! Sharded campaign driver: split one fault-injection campaign across
//! processes/machines, checkpoint while running, resume after a kill, and
//! merge shard outputs back into the single-shot result.
//!
//! ```text
//! campaign run   --app VA --layer uarch --shards 4 --shard-index 0 \
//!                --checkpoint shard0.jsonl [--resume shard0.jsonl]
//! campaign run   --app VA --layer uarch --adaptive --ci-target 0.05 \
//!                [--wave-size 16 --max-trials 256 --checkpoint BASE --resume BASE]
//! campaign merge --app VA --layer uarch shard0.jsonl shard1.jsonl ...
//! campaign serve --app VA --layer uarch --shards 3 --listen 127.0.0.1:0 [--adaptive ...]
//! campaign work  --connect 127.0.0.1:PORT [--follow]
//! campaign smoke
//! ```
//!
//! `--adaptive` switches from a fixed `--n` per stratum to CI-driven
//! sizing (docs/TWOLEVEL.md): trials are dispatched in deterministic
//! waves until every (kernel, target) stratum's derated failure-rate CI
//! half-width reaches `--ci-target` or the `--max-trials` cap. Adaptive
//! runs checkpoint per wave (`BASE.waveW`) and resume byte-identically;
//! `serve --adaptive` runs one coordinator per wave on the same socket,
//! with workers reconnecting via `work --follow`.
//!
//! Plans are deterministic (docs/CAMPAIGNS.md): every shard derives the
//! same explicit trial list from `--seed`, so any disjoint cover of the
//! plan — 1 shard or 40, interrupted and resumed or not, executed locally
//! or by a fleet of `work` daemons against a `serve` coordinator
//! (docs/DISPATCH.md) — merges to the byte-identical
//! `UarchAppResult`/`SvfAppResult`.
//!
//! Common options: `--n N --seed S --sms N --hardened --events PATH
//! --csv PATH`, `--structures RF,SMEM,L2` (uarch layer: inject only into
//! a structure subset), `--fault-model PATTERN` (single-bit,
//! double-adjacent, whole-entry, burst-row, burst-col, stuck-at-0,
//! stuck-at-1; docs/FAULT_MODELS.md), watchdog knobs `--wall-limit-us N
//! --cycle-limit N --no-retry`. `run` additionally takes `--checkpoint-every K` (default
//! 64), `--limit L` (stop after L new trials, leaving a resumable
//! checkpoint), and the fast-forward knobs `--snapshots N` (mid-launch
//! golden snapshots per kernel, default 8) / `--no-fast-forward` (force
//! every trial to simulate its whole application; docs/PERF.md). `run`
//! and `serve` take `--backend timed|replay` (docs/TRACE.md): `replay`
//! adjudicates each trial against the recorded golden access trace and
//! synthesizes the (byte-identical) record when the fault footprint is
//! provably dead, simulating only the rest; it requires fast-forward,
//! so `--backend replay --no-fast-forward` is a validation error.
//!
//! Exit codes are uniform across subcommands: **2** for CLI/validation
//! errors (unknown flags, bad `--listen`/`--connect` addresses, bad lease
//! values), **1** for runtime failures (engine errors, unreadable
//! checkpoints, dispatch failures), **0** on success.

use std::path::{Path, PathBuf};
use std::process::exit;

use bench::{finish_observability, init_observability, parse_structures};
use dispatch::{plan_strata, CampaignSpec, DispatchCfg, TelemetryCfg, WaveSpec, WorkerCfg};
use kernels::{all_benchmarks, Benchmark};
use relia::checkpoint::CheckpointHeader;
use relia::plan::{
    prepare_sw_campaign, prepare_uarch_campaign_structures, Layer, PreparedCampaign, TrialTarget,
};
use relia::{
    assemble_sw, assemble_uarch, execute_shard, load_checkpoint, pct, records_fingerprint,
    CampaignCfg, EngineBackend, EngineCfg, EngineError, Table, TrialRecord, Watchdog,
};
use stat::{run_adaptive, sw_targets, uarch_targets, AdaptiveCfg, AdaptiveResult};
use vgpu_sim::{FaultPattern, HwStructure};

/// CLI/validation error: bad flags, bad values, malformed addresses.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

/// Runtime failure: the request was well-formed but executing it failed.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}

/// Everything both `run` and `merge` need to rebuild the plan.
struct CommonOpts {
    app: Option<String>,
    layer: Layer,
    cfg: CampaignCfg,
    hardened: bool,
    /// `--structures` subset (uarch layer only; `None` = all five).
    structures: Option<Vec<HwStructure>>,
    /// `--csv PATH`: also write the assembled result table as CSV.
    csv: Option<PathBuf>,
    /// Non-flag positional arguments (merge's shard files).
    positional: Vec<String>,
}

fn parse_common(args: &[String]) -> CommonOpts {
    let mut o = CommonOpts {
        app: None,
        layer: Layer::Uarch,
        cfg: CampaignCfg::new(100, 100, 0xC0FF_EE00),
        hardened: false,
        structures: None,
        csv: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--hardened" => {
                o.hardened = true;
                i += 1;
                continue;
            }
            "--no-retry" => {
                o.cfg.watchdog.retry_on_panic = false;
                i += 1;
                continue;
            }
            a if !a.starts_with("--") => {
                o.positional.push(a.to_string());
                i += 1;
                continue;
            }
            _ => {}
        }
        let Some(v) = args.get(i + 1) else {
            die(&format!("option {} requires a value", args[i]));
        };
        let parse_num = |what: &str| -> u64 {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{what} takes a number, got {v:?}")))
        };
        match args[i].as_str() {
            "--app" => o.app = Some(v.clone()),
            "--layer" => {
                o.layer = Layer::from_label(v)
                    .unwrap_or_else(|| die(&format!("--layer must be uarch or sw, got {v:?}")))
            }
            "--n" => {
                let n = parse_num("--n") as usize;
                o.cfg.n_uarch = n;
                o.cfg.n_sw = n;
            }
            "--seed" => o.cfg.seed = parse_num("--seed"),
            "--sms" => o.cfg.gpu = vgpu_sim::GpuConfig::volta_scaled(parse_num("--sms") as u32),
            "--wall-limit-us" => o.cfg.watchdog.wall_us_limit = Some(parse_num("--wall-limit-us")),
            "--cycle-limit" => o.cfg.watchdog.cycle_limit = Some(parse_num("--cycle-limit")),
            "--structures" => o.structures = Some(parse_structures(v).unwrap_or_else(|e| die(&e))),
            "--fault-model" => {
                o.cfg.pattern = FaultPattern::from_label(v).unwrap_or_else(|| {
                    let known: Vec<&str> = FaultPattern::ALL.iter().map(|p| p.label()).collect();
                    die(&format!(
                        "--fault-model must be one of {}, got {v:?}",
                        known.join(", ")
                    ))
                })
            }
            "--csv" => o.csv = Some(PathBuf::from(v)),
            "--events" => {} // handled by init_observability
            other => die(&format!("unknown option {other}")),
        }
        i += 2;
    }
    if o.structures.is_some() && o.layer == Layer::Sw {
        die("--structures only applies to --layer uarch");
    }
    // SIMT-stack and scheduler state is ephemeral: a transient flip there
    // is just one corrupted access, which the storage structures already
    // model. Only the persistent stuck-at patterns target them.
    if let Some(structures) = &o.structures {
        if structures
            .iter()
            .any(|h| matches!(h, HwStructure::Simt | HwStructure::Sched))
            && !o.cfg.pattern.is_persistent()
        {
            die(&format!(
                "--structures SIMT/SCHED requires a stuck-at fault model \
                 (--fault-model stuck-at-0 or stuck-at-1), got {}",
                o.cfg.pattern.label()
            ));
        }
    }
    o
}

fn find_bench(name: &str) -> Box<dyn Benchmark> {
    let mut all = all_benchmarks();
    match all.iter().position(|b| b.name().eq_ignore_ascii_case(name)) {
        Some(i) => all.swap_remove(i),
        None => {
            let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
            die(&format!(
                "unknown app {name:?}; available: {}",
                names.join(", ")
            ));
        }
    }
}

fn prepare<'a>(bench: &'a dyn Benchmark, o: &CommonOpts) -> PreparedCampaign<'a> {
    match o.layer {
        Layer::Uarch => prepare_uarch_campaign_structures(
            bench,
            &o.cfg,
            o.hardened,
            o.structures.as_deref().unwrap_or(&HwStructure::ALL),
        ),
        Layer::Sw => prepare_sw_campaign(bench, &o.cfg, o.hardened),
    }
}

/// Print the assembled result of a fully covered plan (and write it as
/// CSV when `--csv` was given) — the byte-comparison artifact for the
/// shard-merge and dispatch differential checks.
fn print_result(prep: &PreparedCampaign, records: &[TrialRecord], csv: Option<&Path>) {
    let table = match prep.plan.layer {
        Layer::Uarch => {
            let res = assemble_uarch(prep, records).unwrap_or_else(|e| fail(&e.to_string()));
            let mut t = Table::new(
                format!("{} — chip AVF per kernel (%)", res.app),
                &["Kernel", "SDC", "Timeout", "DUE", "AVF"],
            );
            for k in &res.kernels {
                let a = k.chip_avf(&prep.cfg.gpu);
                t.row(vec![
                    k.kernel.clone(),
                    pct(a.sdc),
                    pct(a.timeout),
                    pct(a.due),
                    pct(a.total()),
                ]);
            }
            let app = res.app_avf(&prep.cfg.gpu);
            t.row(vec![
                "app".into(),
                pct(app.sdc),
                pct(app.timeout),
                pct(app.due),
                pct(app.total()),
            ]);
            t
        }
        Layer::Sw => {
            let res = assemble_sw(prep, records).unwrap_or_else(|e| fail(&e.to_string()));
            let mut t = Table::new(
                format!("{} — SVF per kernel (%)", res.app),
                &["Kernel", "SDC", "Timeout", "DUE", "SVF", "SVF-LD"],
            );
            for k in &res.kernels {
                let s = k.svf();
                t.row(vec![
                    k.kernel.clone(),
                    pct(s.sdc),
                    pct(s.timeout),
                    pct(s.due),
                    pct(s.total()),
                    pct(k.svf_ld().total()),
                ]);
            }
            let app = res.app_svf();
            t.row(vec![
                "app".into(),
                pct(app.sdc),
                pct(app.timeout),
                pct(app.due),
                pct(app.total()),
                pct(res.app_svf_ld().total()),
            ]);
            t
        }
    };
    println!("{table}");
    if let Some(path) = csv {
        table
            .write_csv(path)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        eprintln!("[campaign] wrote {}", path.display());
    }
    println!("result fingerprint: {:#018x}", records_fingerprint(records));
}

/// Raw `--adaptive` flag values as peeled off a subcommand's argument
/// list (`None`/`false` = flag absent).
#[derive(Default)]
struct AdaptiveOpts {
    adaptive: bool,
    ci_target: Option<f64>,
    wave_size: Option<usize>,
    max_trials: Option<usize>,
}

impl AdaptiveOpts {
    /// Fold the adaptive flags into an [`AdaptiveCfg`], rejecting
    /// adaptive-only flags without `--adaptive` and any configuration
    /// that cannot drive a terminating campaign (both exit 2).
    fn into_cfg(self) -> Option<AdaptiveCfg> {
        if !self.adaptive {
            for (flag, given) in [
                ("--ci-target", self.ci_target.is_some()),
                ("--wave-size", self.wave_size.is_some()),
                ("--max-trials", self.max_trials.is_some()),
            ] {
                if given {
                    die(&format!("{flag} requires --adaptive"));
                }
            }
            return None;
        }
        let acfg = AdaptiveCfg::new(
            self.ci_target.unwrap_or(0.05),
            self.wave_size.unwrap_or(16),
            self.max_trials.unwrap_or(256),
        );
        acfg.validate().unwrap_or_else(|e| die(&e));
        Some(acfg)
    }
}

/// The stratification an adaptive campaign sizes: kernel × structure for
/// the uarch layer (respecting `--structures`), kernel × software fault
/// kind for the sw layer.
fn adaptive_targets(o: &CommonOpts) -> Vec<TrialTarget> {
    match o.layer {
        Layer::Uarch => match &o.structures {
            None => uarch_targets(),
            Some(v) => v.iter().map(|&h| TrialTarget::Structure(h)).collect(),
        },
        Layer::Sw => sw_targets(),
    }
}

/// Per-wave checkpoint path: `BASE.waveW` keeps every wave's journal
/// alongside the base the user named, so a killed adaptive run resumes
/// from whichever wave it died in.
fn wave_path(base: &Path, wave: u64) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".wave{wave}"));
    PathBuf::from(os)
}

/// Print the per-stratum table and summary of a finished adaptive
/// campaign. The two fingerprints are the byte-comparison artifact for
/// the adaptive differential checks (single-shot vs sharded vs resumed
/// vs dispatched).
fn print_adaptive(
    bench: &dyn Benchmark,
    res: &AdaptiveResult,
    acfg: &AdaptiveCfg,
    csv: Option<&Path>,
) {
    let names = bench.kernels();
    let mut t = Table::new(
        format!(
            "{} — adaptive {} strata (target CI ±{})",
            res.app,
            res.layer.label(),
            acfg.ci_target
        ),
        &[
            "Kernel", "Target", "Trials", "Fail", "Rate", "CI ±", "Derate", "Wave",
        ],
    );
    for s in &res.strata {
        t.row(vec![
            names[s.kernel_idx].to_string(),
            s.target.label().to_string(),
            s.n.to_string(),
            s.stats.failures().to_string(),
            pct(s.stats.failure_rate()),
            format!("{:.4}", s.derated_halfwidth(acfg.conf)),
            format!("{:.3}", s.derate),
            match s.converged_wave {
                Some(w) => w.to_string(),
                None => "cap".into(),
            },
        ]);
    }
    println!("{t}");
    if let Some(path) = csv {
        t.write_csv(path)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        eprintln!("[campaign] wrote {}", path.display());
    }
    println!(
        "adaptive: {} waves, {} trials (uniform design {} → savings {:.2}x), max CI ±{:.4}",
        res.waves,
        res.total_trials(),
        res.uniform_equivalent(),
        res.savings(),
        res.max_halfwidth(acfg.conf),
    );
    println!("plans fingerprint: {:#018x}", res.plans_fp);
    println!("result fingerprint: {:#018x}", res.records_fp);
}

fn cmd_run(args: &[String]) {
    let mut shards = 1usize;
    let mut shard_index = 0usize;
    let mut checkpoint: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut every = relia::DEFAULT_CHECKPOINT_EVERY;
    let mut limit: Option<usize> = None;
    let mut fast_forward = true;
    let mut snapshots = relia::DEFAULT_SNAPSHOTS;
    let mut backend = EngineBackend::Timed;
    // Peel off run-specific flags, forward the rest to the common parser.
    fn value(args: &[String], i: usize) -> &str {
        args.get(i + 1)
            .unwrap_or_else(|| die(&format!("option {} requires a value", args[i])))
    }
    fn num(args: &[String], i: usize) -> u64 {
        let v = value(args, i);
        v.parse()
            .unwrap_or_else(|_| die(&format!("{} takes a number, got {v:?}", args[i])))
    }
    let mut adaptive = AdaptiveOpts::default();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-fast-forward" => {
                fast_forward = false;
                i += 1;
                continue;
            }
            "--adaptive" => {
                adaptive.adaptive = true;
                i += 1;
                continue;
            }
            "--shards" => shards = num(args, i) as usize,
            "--shard-index" => shard_index = num(args, i) as usize,
            "--checkpoint-every" => every = num(args, i) as usize,
            "--limit" => limit = Some(num(args, i) as usize),
            "--snapshots" => snapshots = num(args, i) as usize,
            "--backend" => backend = parse_backend(value(args, i)),
            "--checkpoint" => checkpoint = Some(PathBuf::from(value(args, i))),
            "--resume" => resume = Some(PathBuf::from(value(args, i))),
            "--ci-target" => {
                let v = value(args, i);
                adaptive.ci_target =
                    Some(v.parse().unwrap_or_else(|_| {
                        die(&format!("--ci-target takes a number, got {v:?}"))
                    }));
            }
            "--wave-size" => adaptive.wave_size = Some(num(args, i) as usize),
            "--max-trials" => adaptive.max_trials = Some(num(args, i) as usize),
            _ => {
                rest.push(args[i].clone());
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    let adaptive = adaptive.into_cfg();
    let o = parse_common(&rest);
    if !o.positional.is_empty() {
        die(&format!("unexpected argument {:?}", o.positional[0]));
    }
    if shards == 0 {
        die("--shards must be at least 1");
    }
    if shard_index >= shards {
        die(&format!(
            "--shard-index {shard_index} out of range for --shards {shards} (valid: 0..={})",
            shards - 1
        ));
    }
    let Some(app) = &o.app else {
        die("run requires --app NAME");
    };
    if backend == EngineBackend::Replay && !fast_forward {
        die(
            "--backend replay requires fast-forward: replay adjudicates against the \
             golden trace and re-executes fallback trials from its snapshots \
             (drop --no-fast-forward)",
        );
    }
    let bench = find_bench(app);
    if let Some(acfg) = adaptive {
        if shards != 1 || shard_index != 0 {
            die(
                "--adaptive runs single-process per wave; distribute an adaptive campaign \
                 with serve --adaptive + work --follow instead of --shards",
            );
        }
        run_adaptive_cli(
            bench.as_ref(),
            &o,
            &acfg,
            checkpoint,
            resume,
            every,
            limit,
            fast_forward,
            snapshots,
            backend,
        );
        return;
    }
    let prep = prepare(bench.as_ref(), &o);
    let eng = EngineCfg {
        shards,
        shard_index,
        checkpoint,
        checkpoint_every: every,
        resume,
        trial_limit: limit,
        fast_forward,
        snapshots,
        backend,
    };
    eprintln!(
        "[campaign] {} {} plan: {} trials, fingerprint {:#018x}, shard {}/{} ({} trials)",
        prep.plan.app,
        prep.plan.layer.label(),
        prep.plan.len(),
        prep.plan.fingerprint(),
        shard_index,
        shards,
        relia::shard_trials(prep.plan.len(), shards, shard_index).len(),
    );
    let records = match execute_shard(&prep, &eng) {
        Ok(r) => r,
        Err(e @ EngineError::AlreadyComplete { .. }) => {
            fail(&format!("{e}; nothing to resume"));
        }
        Err(e) => fail(&e.to_string()),
    };
    let my = relia::shard_trials(prep.plan.len(), shards, shard_index);
    if records.len() == prep.plan.len() {
        print_result(&prep, &records, o.csv.as_deref());
    } else {
        println!(
            "shard {}/{}: {}/{} trials classified, fingerprint {:#018x}{}",
            shard_index,
            shards,
            records.len(),
            my.len(),
            records_fingerprint(&records),
            if records.len() < my.len() {
                " (partial — resume to finish)"
            } else {
                " (merge with the other shards for results)"
            }
        );
    }
}

/// `campaign run --adaptive`: CI-driven sizing, one in-process engine run
/// per wave. With `--checkpoint BASE` each wave journals to
/// `BASE.waveW`; `--resume BASE` fast-forwards completed waves from
/// their journals and finishes a partial one. `--limit L` bounds the
/// *new* trials this invocation executes (the kill-mid-wave test hook):
/// when the budget runs out mid-wave the run exits 0 with a resumable
/// checkpoint, exactly like a fixed-n sharded run.
#[allow(clippy::too_many_arguments)]
fn run_adaptive_cli(
    bench: &dyn Benchmark,
    o: &CommonOpts,
    acfg: &AdaptiveCfg,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
    every: usize,
    limit: Option<usize>,
    fast_forward: bool,
    snapshots: usize,
    backend: EngineBackend,
) {
    let targets = adaptive_targets(o);
    eprintln!(
        "[campaign] {} {} adaptive: {} kernels x {} targets, CI target ±{}, wave size {}, \
         cap {}/stratum",
        bench.name(),
        o.layer.label(),
        bench.kernels().len(),
        targets.len(),
        acfg.ci_target,
        acfg.wave_size,
        acfg.max_per_stratum,
    );
    let mut executed_new = 0usize;
    let res = run_adaptive(
        bench,
        &o.cfg,
        o.hardened,
        o.layer,
        &targets,
        acfg,
        |prep, wave| {
            let ck = checkpoint.as_ref().map(|b| wave_path(b, wave));
            let rs = resume
                .as_ref()
                .map(|b| wave_path(b, wave))
                .filter(|p| p.exists());
            // The resume journal's record count tells us how many of this
            // wave's trials are already classified — only the rest count
            // against `--limit`.
            let preexisting = match &rs {
                Some(p) => load_checkpoint(p)
                    .unwrap_or_else(|e| fail(&format!("{}: {e}", p.display())))
                    .records
                    .len(),
                None => 0,
            };
            let eng = EngineCfg {
                shards: 1,
                shard_index: 0,
                checkpoint: ck,
                checkpoint_every: every,
                resume: rs,
                trial_limit: limit.map(|l| l.saturating_sub(executed_new)),
                fast_forward,
                snapshots,
                backend,
            };
            let records = match execute_shard(prep, &eng) {
                Ok(r) => r,
                Err(EngineError::AlreadyComplete { .. }) => {
                    let p = eng
                        .resume
                        .as_ref()
                        .expect("AlreadyComplete implies a resume journal");
                    load_checkpoint(p)
                        .unwrap_or_else(|e| fail(&format!("{}: {e}", p.display())))
                        .records
                }
                Err(e) => fail(&e.to_string()),
            };
            if records.len() < prep.plan.len() {
                println!(
                    "adaptive wave {wave}: {}/{} trials classified \
                     (partial — resume to finish)",
                    records.len(),
                    prep.plan.len()
                );
                finish_observability();
                exit(0);
            }
            executed_new += records.len() - preexisting;
            Ok(records)
        },
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    print_adaptive(bench, &res, acfg, o.csv.as_deref());
}

fn cmd_merge(args: &[String]) {
    let o = parse_common(args);
    if o.positional.is_empty() {
        die("merge requires at least one shard checkpoint file");
    }
    let Some(app) = &o.app else {
        die("merge requires --app NAME (to rebuild the plan)");
    };
    let bench = find_bench(app);
    let prep = prepare(bench.as_ref(), &o);
    let expect = CheckpointHeader::for_plan(&prep.plan, 1, 0);
    let mut records = Vec::new();
    let mut first: Option<CheckpointHeader> = None;
    for path in &o.positional {
        let ck = load_checkpoint(std::path::Path::new(path))
            .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        if ck.header.fingerprint != expect.fingerprint {
            fail(&format!(
                "{path}: fingerprint {:#x} does not match this plan ({:#x}) — \
                 different app/layer/n/seed/sms/hardened?",
                ck.header.fingerprint, expect.fingerprint
            ));
        }
        match &first {
            None => first = Some(ck.header.clone()),
            Some(h) if !h.same_plan(&ck.header) => {
                fail(&format!(
                    "{path}: shard header disagrees with {}",
                    o.positional[0]
                ));
            }
            _ => {}
        }
        records.extend(ck.records);
    }
    // Two files for the same shard (a reassigned lease journaled twice, a
    // resumed run merged alongside its original) are fine: deterministic
    // trials make duplicates byte-agreeing, so dedupe keeps the first of
    // each and rejects only records that *disagree* on an outcome.
    let records = relia::dedupe_records(&records).unwrap_or_else(|e| fail(&e.to_string()));
    // complete_outcomes inside assemble rejects remaining gaps, so a
    // missing shard still fails loudly here.
    print_result(&prep, &records, o.csv.as_deref());
}

/// Tiny end-to-end gate for scripts/check.sh: a 2-shard run through real
/// checkpoint files must merge to the single-shot result.
fn cmd_smoke() {
    let dir = std::env::temp_dir().join(format!("relia_campaign_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CampaignCfg::new(6, 6, 0x5A5A);
    let bench = find_bench("VA");
    for (layer, label) in [(Layer::Uarch, "uarch"), (Layer::Sw, "sw")] {
        let o = CommonOpts {
            app: Some("VA".into()),
            layer,
            cfg: cfg.clone(),
            hardened: false,
            structures: None,
            csv: None,
            positional: Vec::new(),
        };
        let prep = prepare(bench.as_ref(), &o);
        let single = execute_shard(&prep, &EngineCfg::single_shot()).unwrap();
        let mut merged = Vec::new();
        for idx in 0..2 {
            let path = dir.join(format!("{label}-{idx}.jsonl"));
            let eng = EngineCfg {
                checkpoint: Some(path.clone()),
                ..EngineCfg::sharded(2, idx)
            };
            execute_shard(&prep, &eng).unwrap();
            merged.extend(load_checkpoint(&path).unwrap().records);
        }
        let fp_single = records_fingerprint(&single);
        let fp_merged = records_fingerprint(&merged);
        if fp_single != fp_merged {
            fail(&format!(
                "smoke failed ({label}): merged fingerprint {fp_merged:#x} != single-shot {fp_single:#x}"
            ));
        }
        match layer {
            Layer::Uarch => {
                if assemble_uarch(&prep, &merged).unwrap()
                    != assemble_uarch(&prep, &single).unwrap()
                {
                    fail(&format!("smoke failed ({label}): assembled results differ"));
                }
                // Fast-forward equivalence: the snapshot path (default in
                // `single` above) must classify byte-identically to a full
                // slow-path run (docs/PERF.md).
                let slow_eng = EngineCfg {
                    fast_forward: false,
                    ..EngineCfg::single_shot()
                };
                let slow = execute_shard(&prep, &slow_eng).unwrap();
                let fp_slow = records_fingerprint(&slow);
                if fp_single != fp_slow {
                    fail(&format!(
                        "smoke failed ({label}): fast-forward fingerprint {fp_single:#x} \
                         != slow-path {fp_slow:#x}"
                    ));
                }
                if assemble_uarch(&prep, &slow).unwrap() != assemble_uarch(&prep, &single).unwrap()
                {
                    fail(&format!(
                        "smoke failed ({label}): fast-forward assembled result differs from \
                         slow path"
                    ));
                }
                println!("smoke {label}: fast-forward == slow path ({fp_slow:#018x})");
                // Replay equivalence: trace-adjudicated execution must
                // classify byte-identically to the timed backend
                // (docs/TRACE.md).
                let replay_eng = EngineCfg {
                    backend: EngineBackend::Replay,
                    ..EngineCfg::single_shot()
                };
                let replay = execute_shard(&prep, &replay_eng).unwrap();
                let fp_replay = records_fingerprint(&replay);
                if fp_single != fp_replay {
                    fail(&format!(
                        "smoke failed ({label}): replay fingerprint {fp_replay:#x} \
                         != timed {fp_single:#x}"
                    ));
                }
                if assemble_uarch(&prep, &replay).unwrap()
                    != assemble_uarch(&prep, &single).unwrap()
                {
                    fail(&format!(
                        "smoke failed ({label}): replay assembled result differs from timed"
                    ));
                }
                println!("smoke {label}: replay backend == timed ({fp_replay:#018x})");
            }
            Layer::Sw => {
                if assemble_sw(&prep, &merged).unwrap() != assemble_sw(&prep, &single).unwrap() {
                    fail(&format!("smoke failed ({label}): assembled results differ"));
                }
            }
        }
        println!("smoke {label}: 2-shard merge == single-shot ({fp_single:#018x})");
    }
    // Adaptive gate: a CI-driven campaign executed single-shot must match
    // the same campaign with every wave split over 3 in-process shards —
    // wave plans, records, and convergence trajectory, byte for byte.
    let acfg = AdaptiveCfg::new(0.15, 6, 24);
    let bench = find_bench("VA");
    let single = stat::run_adaptive_single(
        bench.as_ref(),
        &cfg,
        false,
        Layer::Uarch,
        &uarch_targets(),
        &acfg,
    )
    .unwrap_or_else(|e| fail(&format!("smoke failed (adaptive): {e}")));
    let sharded = run_adaptive(
        bench.as_ref(),
        &cfg,
        false,
        Layer::Uarch,
        &uarch_targets(),
        &acfg,
        |prep, _| {
            let mut recs = Vec::new();
            for i in 0..3 {
                recs.extend(execute_shard(prep, &EngineCfg::sharded(3, i))?);
            }
            Ok(recs)
        },
    )
    .unwrap_or_else(|e| fail(&format!("smoke failed (adaptive): {e}")));
    if single != sharded {
        fail("smoke failed (adaptive): 3-shard wave execution differs from single-shot");
    }
    if !(single.waves >= 1 && single.total_trials() > 0) {
        fail("smoke failed (adaptive): campaign executed no waves");
    }
    println!(
        "smoke adaptive: 3-shard waves == single-shot ({} waves, {} trials, \
         records {:#018x})",
        single.waves,
        single.total_trials(),
        single.records_fp
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parse `--backend` (uniform exit-2 policy on unknown labels).
fn parse_backend(label: &str) -> EngineBackend {
    EngineBackend::from_label(label).unwrap_or_else(|| {
        die(&format!(
            "--backend must be one of timed, replay; got {label:?}"
        ))
    })
}

/// Validate a `HOST:PORT` address from the CLI. Hostnames are allowed
/// (resolution happens at connect/bind time); a missing or non-numeric
/// port is a validation error (exit 2) per the uniform exit-code policy.
fn check_addr(flag: &str, addr: &str) -> String {
    if addr.parse::<std::net::SocketAddr>().is_ok() {
        return addr.to_string();
    }
    match addr.rsplit_once(':') {
        Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => addr.to_string(),
        _ => die(&format!("{flag} must be HOST:PORT, got {addr:?}")),
    }
}

/// Build a [`TelemetryCfg`] from `--telemetry-port` (port 0 = ephemeral;
/// pair it with `--telemetry-port-file` so pollers can find the port).
fn telemetry_cfg(sub: &str, port: Option<u64>, port_file: Option<PathBuf>) -> Option<TelemetryCfg> {
    match (port, port_file) {
        (None, None) => None,
        (None, Some(_)) => die(&format!(
            "{sub}: --telemetry-port-file requires --telemetry-port"
        )),
        (Some(p), pf) => {
            if p > u16::MAX as u64 {
                die(&format!("--telemetry-port must be 0..=65535, got {p}"));
            }
            Some(TelemetryCfg {
                listen: format!("127.0.0.1:{p}"),
                port_file: pf,
            })
        }
    }
}

/// `campaign serve`: run the dispatch coordinator (docs/DISPATCH.md).
fn cmd_serve(args: &[String]) {
    let mut listen = String::from("127.0.0.1:0");
    let mut port_file: Option<PathBuf> = None;
    let mut shards = 2usize;
    let mut lease_ms = 10_000u64;
    let mut backoff_ms = 250u64;
    let mut max_backoff_ms = 5_000u64;
    let mut wait_ms = 200u64;
    let mut out_dir: Option<PathBuf> = None;
    let mut telemetry_port: Option<u64> = None;
    let mut telemetry_port_file: Option<PathBuf> = None;
    let mut backend = EngineBackend::Timed;
    fn value(args: &[String], i: usize) -> &str {
        args.get(i + 1)
            .unwrap_or_else(|| die(&format!("option {} requires a value", args[i])))
    }
    fn num(args: &[String], i: usize) -> u64 {
        let v = value(args, i);
        v.parse()
            .unwrap_or_else(|_| die(&format!("{} takes a number, got {v:?}", args[i])))
    }
    let mut adaptive = AdaptiveOpts::default();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--adaptive" => {
                adaptive.adaptive = true;
                i += 1;
                continue;
            }
            "--backend" => backend = parse_backend(value(args, i)),
            "--listen" => listen = check_addr("--listen", value(args, i)),
            "--port-file" => port_file = Some(PathBuf::from(value(args, i))),
            "--shards" => shards = num(args, i) as usize,
            "--lease-ms" => lease_ms = num(args, i),
            "--backoff-ms" => backoff_ms = num(args, i),
            "--max-backoff-ms" => max_backoff_ms = num(args, i),
            "--wait-ms" => wait_ms = num(args, i),
            "--out-dir" => out_dir = Some(PathBuf::from(value(args, i))),
            "--telemetry-port" => telemetry_port = Some(num(args, i)),
            "--telemetry-port-file" => telemetry_port_file = Some(PathBuf::from(value(args, i))),
            "--ci-target" => {
                let v = value(args, i);
                adaptive.ci_target =
                    Some(v.parse().unwrap_or_else(|_| {
                        die(&format!("--ci-target takes a number, got {v:?}"))
                    }));
            }
            "--wave-size" => adaptive.wave_size = Some(num(args, i) as usize),
            "--max-trials" => adaptive.max_trials = Some(num(args, i) as usize),
            _ => {
                rest.push(args[i].clone());
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    let adaptive = adaptive.into_cfg();
    let o = parse_common(&rest);
    if !o.positional.is_empty() {
        die(&format!("unexpected argument {:?}", o.positional[0]));
    }
    let Some(app) = &o.app else {
        die("serve requires --app NAME");
    };
    if o.cfg.watchdog != Watchdog::default() {
        die(
            "serve does not support watchdog limits: wall-clock reclassification depends on \
             machine speed and would break the byte-identical dispatch merge",
        );
    }
    if shards == 0 {
        die("--shards must be at least 1");
    }
    if lease_ms == 0 || backoff_ms == 0 || wait_ms == 0 {
        die("--lease-ms, --backoff-ms, and --wait-ms must be positive");
    }
    if max_backoff_ms < backoff_ms {
        die(&format!(
            "--max-backoff-ms {max_backoff_ms} is below --backoff-ms {backoff_ms}"
        ));
    }
    if adaptive.is_some() && telemetry_port.is_some() {
        die(
            "serve --adaptive cannot mount a fixed telemetry port: each wave runs its own \
             coordinator and the port would be re-bound mid-campaign",
        );
    }
    let bench = find_bench(app);
    let spec = CampaignSpec {
        app: bench.name().to_string(),
        layer: o.layer,
        n: match o.layer {
            Layer::Uarch => o.cfg.n_uarch,
            Layer::Sw => o.cfg.n_sw,
        },
        seed: o.cfg.seed,
        sms: o.cfg.gpu.num_sms,
        hardened: o.hardened,
        structures: o.structures.clone(),
        fault_model: o.cfg.pattern,
        backend,
        wave: None,
    };
    let dcfg = DispatchCfg {
        shards,
        lease: std::time::Duration::from_millis(lease_ms),
        backoff: std::time::Duration::from_millis(backoff_ms),
        max_backoff: std::time::Duration::from_millis(max_backoff_ms),
        wait_ms,
        out_dir,
        telemetry: telemetry_cfg("serve", telemetry_port, telemetry_port_file),
    };
    let listener = std::net::TcpListener::bind(&listen)
        .unwrap_or_else(|e| fail(&format!("cannot listen on {listen}: {e}")));
    let local = listener
        .local_addr()
        .unwrap_or_else(|e| fail(&e.to_string()));
    if let Some(pf) = &port_file {
        // Write-then-rename so pollers never read a half-written port.
        let tmp = pf.with_extension("tmp");
        std::fs::write(&tmp, format!("{}\n", local.port()))
            .and_then(|()| std::fs::rename(&tmp, pf))
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", pf.display())));
    }

    if let Some(acfg) = adaptive {
        // One coordinator per wave on the same bound socket: workers run
        // `work --follow` and reconnect between waves. The wave (index +
        // strata) rides in the job frame, so each worker re-expands the
        // wave plan locally and the handshake proves it.
        let targets = adaptive_targets(&o);
        eprintln!(
            "[dispatch] {} {} adaptive: CI target ±{}, wave size {}, cap {}/stratum, \
             {} shards, listening on {local}",
            bench.name(),
            o.layer.label(),
            acfg.ci_target,
            acfg.wave_size,
            acfg.max_per_stratum,
            shards,
        );
        let mut totals = dispatch::DispatchStats::default();
        let res = run_adaptive(
            bench.as_ref(),
            &o.cfg,
            o.hardened,
            o.layer,
            &targets,
            &acfg,
            |prep, wave| {
                let wspec = CampaignSpec {
                    wave: Some(WaveSpec {
                        wave,
                        strata: plan_strata(&prep.plan),
                    }),
                    ..spec.clone()
                };
                let wcfg = DispatchCfg {
                    // Separate journals per wave: the shard file names
                    // repeat across waves.
                    out_dir: dcfg.out_dir.as_ref().map(|d| {
                        let dir = d.join(format!("wave{wave}"));
                        std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                            fail(&format!("cannot create {}: {e}", dir.display()))
                        });
                        dir
                    }),
                    telemetry: None,
                    ..dcfg.clone()
                };
                let l = listener
                    .try_clone()
                    .unwrap_or_else(|e| fail(&format!("cannot clone listener: {e}")));
                eprintln!(
                    "[dispatch] wave {wave}: {} trials, fingerprint {:#018x}",
                    prep.plan.len(),
                    prep.plan.fingerprint(),
                );
                let outcome = dispatch::serve(l, &prep.plan, &wspec, &wcfg)
                    .unwrap_or_else(|e| fail(&e.to_string()));
                let s = &outcome.stats;
                totals.workers_joined += s.workers_joined;
                totals.leases_granted += s.leases_granted;
                totals.leases_reassigned += s.leases_reassigned;
                totals.leases_expired += s.leases_expired;
                totals.shards_completed += s.shards_completed;
                totals.duplicate_records += s.duplicate_records;
                totals.torn_frames += s.torn_frames;
                totals.resend_requests += s.resend_requests;
                Ok(outcome.records)
            },
        )
        .unwrap_or_else(|e| fail(&e.to_string()));
        eprintln!(
            "[dispatch] adaptive complete: {} waves, {} worker sessions, {} leases \
             ({} reassigned, {} expired), {} shards, {} duplicate records, {} torn frames, \
             {} resends",
            res.waves,
            totals.workers_joined,
            totals.leases_granted,
            totals.leases_reassigned,
            totals.leases_expired,
            totals.shards_completed,
            totals.duplicate_records,
            totals.torn_frames,
            totals.resend_requests,
        );
        print_adaptive(bench.as_ref(), &res, &acfg, o.csv.as_deref());
        return;
    }

    let prep = prepare(bench.as_ref(), &o);
    eprintln!(
        "[dispatch] {} {} plan: {} trials, fingerprint {:#018x}, {} shards, listening on {local}",
        prep.plan.app,
        prep.plan.layer.label(),
        prep.plan.len(),
        prep.plan.fingerprint(),
        shards,
    );
    let outcome = dispatch::serve(listener, &prep.plan, &spec, &dcfg)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let s = &outcome.stats;
    eprintln!(
        "[dispatch] complete: {} workers, {} leases ({} reassigned, {} expired), \
         {} shards, {} duplicate records, {} torn frames, {} resends",
        s.workers_joined,
        s.leases_granted,
        s.leases_reassigned,
        s.leases_expired,
        s.shards_completed,
        s.duplicate_records,
        s.torn_frames,
        s.resend_requests,
    );
    print_result(&prep, &outcome.records, o.csv.as_deref());
}

/// `campaign work`: run one worker daemon against a coordinator.
fn cmd_work(args: &[String]) {
    let mut connect: Option<String> = None;
    let mut cfg = WorkerCfg {
        name: format!("worker-{}", std::process::id()),
        ..WorkerCfg::default()
    };
    let mut telemetry_port: Option<u64> = None;
    let mut telemetry_port_file: Option<PathBuf> = None;
    let mut follow = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            cfg.trace = true;
            i += 1;
            continue;
        }
        if args[i] == "--follow" {
            follow = true;
            i += 1;
            continue;
        }
        let Some(v) = args.get(i + 1) else {
            die(&format!("option {} requires a value", args[i]));
        };
        let parse_num = |what: &str| -> u64 {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{what} takes a number, got {v:?}")))
        };
        match args[i].as_str() {
            "--connect" => connect = Some(check_addr("--connect", v)),
            "--name" => cfg.name = v.clone(),
            "--heartbeat-ms" => {
                let ms = parse_num("--heartbeat-ms");
                if ms == 0 {
                    die("--heartbeat-ms must be positive");
                }
                cfg.heartbeat = std::time::Duration::from_millis(ms);
            }
            "--read-timeout-ms" => {
                let ms = parse_num("--read-timeout-ms");
                if ms == 0 {
                    die("--read-timeout-ms must be positive");
                }
                cfg.read_timeout = std::time::Duration::from_millis(ms);
            }
            // Fault-tolerance test hook: die abruptly after N trials.
            "--fail-after" => cfg.fail_after = Some(parse_num("--fail-after") as usize),
            "--telemetry-port" => telemetry_port = Some(parse_num("--telemetry-port")),
            "--telemetry-port-file" => telemetry_port_file = Some(PathBuf::from(v)),
            "--events" => {} // handled by init_observability
            other => die(&format!("unknown option {other}")),
        }
        i += 2;
    }
    cfg.telemetry = telemetry_cfg("work", telemetry_port, telemetry_port_file);
    if follow && cfg.telemetry.is_some() {
        die("work --follow cannot mount a fixed telemetry port: each session re-binds it");
    }
    let Some(addr) = connect else {
        die("work requires --connect HOST:PORT");
    };
    if follow {
        // Serve an adaptive campaign: one worker session per wave. The
        // coordinator keeps the listening socket across waves, so between
        // waves a reconnect just parks in the accept backlog; once the
        // coordinator is gone the connection fails and the worker exits.
        // A session error before any completed session is a real failure.
        let mut sessions = 0usize;
        let mut shards = 0usize;
        let mut trials = 0usize;
        loop {
            match dispatch::work(&addr, &cfg) {
                Ok(s) if s.died_early => {
                    println!(
                        "worker {}: injected failure after {} trials (lease abandoned)",
                        s.worker, s.trials_executed
                    );
                    return;
                }
                Ok(s) => {
                    sessions += 1;
                    shards += s.shards_completed;
                    trials += s.trials_executed;
                }
                Err(e) if sessions == 0 => fail(&e.to_string()),
                Err(_) => break,
            }
        }
        println!(
            "worker {}: {} sessions, {} shards completed, {} trials executed",
            cfg.name, sessions, shards, trials
        );
        return;
    }
    match dispatch::work(&addr, &cfg) {
        Ok(s) if s.died_early => {
            // The injected --fail-after death is the requested behaviour.
            println!(
                "worker {}: injected failure after {} trials (lease abandoned)",
                s.worker, s.trials_executed
            );
        }
        Ok(s) => println!(
            "worker {}: {} shards completed, {} trials executed",
            s.worker, s.shards_completed, s.trials_executed
        ),
        Err(e) => fail(&e.to_string()),
    }
}

/// Fetch and parse a telemetry `/status` document.
fn fetch_status(addr: &str) -> obs::JsonNode {
    match obs::http_get(addr, "/status", std::time::Duration::from_secs(2)) {
        Ok((200, body)) => obs::parse_json(&body)
            .unwrap_or_else(|| fail(&format!("{addr}/status returned unparseable JSON"))),
        Ok((code, _)) => fail(&format!("{addr}/status returned HTTP {code}")),
        Err(e) => fail(&format!("cannot reach {addr}: {e}")),
    }
}

/// Render one `/status` document as human-readable lines — the shared
/// body of `campaign status` (one shot) and `campaign top` (live).
fn fleet_lines(doc: &obs::JsonNode) -> Vec<String> {
    let s = |k: &str| doc.get(k).and_then(|n| n.as_str().map(String::from));
    let n = |k: &str| doc.get(k).and_then(obs::JsonNode::as_u64).unwrap_or(0);
    let mut out = Vec::new();
    match s("role").as_deref() {
        Some("coordinator") => {
            out.push(format!(
                "coordinator  {} {}  fp {}  shards {}  {}",
                s("app").unwrap_or_default(),
                s("layer").unwrap_or_default(),
                s("campaign_fp").unwrap_or_default(),
                n("shards"),
                if doc.get("done").and_then(obs::JsonNode::as_bool) == Some(true) {
                    "DONE"
                } else {
                    "running"
                },
            ));
            let held = n("records_held");
            let trials = n("trials").max(1);
            // `eta_ms` is absent while the coordinator has no observed
            // rate yet; render that honestly instead of `eta 0.0s`.
            let eta = match doc.get("eta_ms").and_then(obs::JsonNode::as_u64) {
                Some(ms) => format!("{:.1}s", ms as f64 / 1e3),
                None => "--".to_string(),
            };
            out.push(format!(
                "records      {held}/{} ({:.1}%)  {:.1} rec/s  eta {eta}  elapsed {:.1}s",
                n("trials"),
                100.0 * held as f64 / trials as f64,
                doc.get("records_per_s")
                    .and_then(obs::JsonNode::as_f64)
                    .unwrap_or(0.0),
                n("elapsed_ms") as f64 / 1e3,
            ));
            if let Some(st) = doc.get("stats") {
                let sn = |k: &str| st.get(k).and_then(obs::JsonNode::as_u64).unwrap_or(0);
                out.push(format!(
                    "stats        {} workers  {} leases ({} reassigned, {} expired)  \
                     {} shards done  {} dup  {} torn  {} resent",
                    sn("workers_joined"),
                    sn("leases_granted"),
                    sn("leases_reassigned"),
                    sn("leases_expired"),
                    sn("shards_completed"),
                    sn("duplicate_records"),
                    sn("torn_frames"),
                    sn("resend_requests"),
                ));
            }
            let mut t = Table::new(
                "shards",
                &[
                    "Shard",
                    "State",
                    "Owner",
                    "Held/Total",
                    "Attempts",
                    "HB age",
                    "Retry in",
                ],
            );
            for sh in doc
                .get("shard_detail")
                .and_then(obs::JsonNode::as_arr)
                .unwrap_or(&[])
            {
                let g = |k: &str| sh.get(k).and_then(obs::JsonNode::as_u64).unwrap_or(0);
                let state = sh
                    .get("state")
                    .and_then(obs::JsonNode::as_str)
                    .unwrap_or("?");
                t.row(vec![
                    g("shard").to_string(),
                    state.to_string(),
                    sh.get("owner")
                        .and_then(obs::JsonNode::as_str)
                        .unwrap_or("-")
                        .to_string(),
                    format!("{}/{}", g("held"), g("total")),
                    g("attempts").to_string(),
                    if state == "leased" {
                        format!("{}ms", g("heartbeat_age_ms"))
                    } else {
                        "-".into()
                    },
                    if state == "pending" {
                        format!("{}ms", g("retry_in_ms"))
                    } else {
                        "-".into()
                    },
                ]);
            }
            out.push(t.to_string());
            let workers: Vec<String> = doc
                .get("workers")
                .and_then(obs::JsonNode::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|w| {
                    let name = w.get("name").and_then(obs::JsonNode::as_str).unwrap_or("?");
                    match w.get("telemetry").and_then(obs::JsonNode::as_str) {
                        Some(addr) if !addr.is_empty() => format!("{name} @{addr}"),
                        _ => name.to_string(),
                    }
                })
                .collect();
            out.push(format!("workers      {}", workers.join(", ")));
        }
        Some("worker") => {
            out.push(format!(
                "worker {}  {}/{} trials  masked {}  sdc {}  timeout {}  due {}",
                s("name").unwrap_or_default(),
                n("trials_done"),
                n("trials_total"),
                n("masked"),
                n("sdc"),
                n("timeout"),
                n("due"),
            ));
            // Cost-weighted progress: trial counts under the replay
            // backend mix near-free synthesized records with full
            // simulations, so prefer the engine's simulated-cycle rate
            // when the document carries it (docs/TRACE.md).
            if let Some(rate) = doc.get("sim_cycles_per_s").and_then(obs::JsonNode::as_f64) {
                out.push(format!(
                    "sim cost     {} cycles done  {:.2} Mcyc/s (cost-weighted)",
                    n("sim_cycles_done"),
                    rate / 1e6,
                ));
            }
            if doc.get("replay_dead").is_some() {
                out.push(format!(
                    "replay       {} dead  {} re-executed  {} warps re-simulated",
                    n("replay_dead"),
                    n("replay_fallback"),
                    n("replay_warps_reexecuted"),
                ));
            }
            if let (Some(p50), Some(p95)) = (
                doc.get("wall_p50_us").and_then(obs::JsonNode::as_f64),
                doc.get("wall_p95_us").and_then(obs::JsonNode::as_f64),
            ) {
                out.push(format!(
                    "wall time    p50 {:.1}ms  p95 {:.1}ms",
                    p50 / 1e3,
                    p95 / 1e3
                ));
            }
        }
        _ => out.push("(unrecognized /status document)".into()),
    }
    out
}

/// `campaign status ADDR`: one-shot fleet view from a `/status` endpoint.
fn cmd_status(args: &[String]) {
    let Some(addr) = args.first() else {
        die("status requires ADDR (HOST:PORT of a telemetry endpoint)");
    };
    let addr = check_addr("status ADDR", addr);
    for line in fleet_lines(&fetch_status(&addr)) {
        println!("{line}");
    }
}

/// `campaign top ADDR`: poll `/status` and redraw a live fleet view.
fn cmd_top(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut interval = std::time::Duration::from_millis(1_000);
    let mut iterations = 0u64; // 0 = until the coordinator reports done
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--interval-ms" | "--iterations" => {
                let Some(v) = args.get(i + 1) else {
                    die(&format!("option {} requires a value", args[i]));
                };
                let num: u64 = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("{} takes a number, got {v:?}", args[i])));
                if args[i] == "--interval-ms" {
                    if num == 0 {
                        die("--interval-ms must be positive");
                    }
                    interval = std::time::Duration::from_millis(num);
                } else {
                    iterations = num;
                }
                i += 2;
            }
            a if !a.starts_with("--") && addr.is_none() => {
                addr = Some(check_addr("top ADDR", a));
                i += 1;
            }
            other => die(&format!("unknown option {other}")),
        }
    }
    let Some(addr) = addr else {
        die("top requires ADDR (HOST:PORT of a telemetry endpoint)");
    };
    use std::io::IsTerminal;
    let clear = std::io::stdout().is_terminal();
    let mut round = 0u64;
    loop {
        let doc = fetch_status(&addr);
        if clear {
            print!("\x1b[2J\x1b[H");
        }
        println!("campaign top — {addr} (poll {})", round + 1);
        for line in fleet_lines(&doc) {
            println!("{line}");
        }
        round += 1;
        let done = doc.get("done").and_then(obs::JsonNode::as_bool) == Some(true);
        if done || (iterations > 0 && round >= iterations) {
            break;
        }
        std::thread::sleep(interval);
    }
}

/// `campaign scrape ADDR`: fetch `/metrics` + `/status`, lint both.
fn cmd_scrape(args: &[String]) {
    let Some(addr) = args.first() else {
        die("scrape requires ADDR (HOST:PORT of a telemetry endpoint)");
    };
    let addr = check_addr("scrape ADDR", addr);
    let body = match obs::http_get(&addr, "/metrics", std::time::Duration::from_secs(2)) {
        Ok((200, body)) => body,
        Ok((code, _)) => fail(&format!("{addr}/metrics returned HTTP {code}")),
        Err(e) => fail(&format!("cannot reach {addr}: {e}")),
    };
    let series = obs::expo::lint(&body)
        .unwrap_or_else(|e| fail(&format!("{addr}/metrics failed exposition lint: {e}")));
    let _ = fetch_status(&addr); // must parse as JSON
    println!("scrape ok: {series} series, /status parses");
}

/// `campaign lint`: validate Prometheus exposition text from stdin.
fn cmd_lint() {
    use std::io::Read;
    let mut body = String::new();
    std::io::stdin()
        .read_to_string(&mut body)
        .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
    match obs::expo::lint(&body) {
        Ok(series) => println!("lint ok: {series} series"),
        Err(e) => fail(&format!("exposition lint failed: {e}")),
    }
}

/// `campaign timeline FILE...`: print trace events from JSONL event files
/// in wall-clock order (one table across coordinator + worker sinks).
fn cmd_timeline(args: &[String]) {
    if args.is_empty() {
        die("timeline requires at least one JSONL events file");
    }
    let mut events = Vec::new();
    for path in args {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        events.extend(text.lines().filter_map(obs::TraceEvent::parse));
    }
    if events.is_empty() {
        fail("no trace records found (run workers with --trace and an --events sink)");
    }
    events.sort_by_key(|e| (e.t_us, e.shard, e.trial));
    let mut t = Table::new(
        format!("trace timeline — {} events", events.len()),
        &["t (ms)", "Kind", "Worker", "Shard", "Trial", "Wall (µs)"],
    );
    for e in &events {
        t.row(vec![
            format!("{:.3}", e.t_us as f64 / 1e3),
            e.kind.clone(),
            if e.worker.is_empty() {
                "-".into()
            } else {
                e.worker.clone()
            },
            e.shard.to_string(),
            if e.trial == u64::MAX {
                "-".into()
            } else {
                e.trial.to_string()
            },
            e.wall_us.to_string(),
        ]);
    }
    println!("{t}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(sub) = args.get(1) else {
        die(
            "usage: campaign <run|merge|serve|work|status|top|scrape|lint|timeline|smoke> \
             [options] (see docs/CAMPAIGNS.md, docs/DISPATCH.md, docs/OBSERVABILITY.md)",
        );
    };
    init_observability();
    match sub.as_str() {
        "run" => cmd_run(&args[2..]),
        "merge" => cmd_merge(&args[2..]),
        "serve" => cmd_serve(&args[2..]),
        "work" => cmd_work(&args[2..]),
        "status" => cmd_status(&args[2..]),
        "top" => cmd_top(&args[2..]),
        "scrape" => cmd_scrape(&args[2..]),
        "lint" => cmd_lint(),
        "timeline" => cmd_timeline(&args[2..]),
        "smoke" => cmd_smoke(),
        other => die(&format!(
            "unknown subcommand {other:?} (run|merge|serve|work|status|top|scrape|lint|timeline|smoke)"
        )),
    }
    finish_observability();
}
