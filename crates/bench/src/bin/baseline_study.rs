//! Regenerates the unprotected-system comparison artifacts:
//!
//! * **Figure 1** — application-level AVF (bottom) and SVF (top), with the
//!   SDC / Timeout / DUE breakdown (`results/fig01_app_avf_svf.csv`).
//! * **Figure 2** — the same at kernel level (`results/fig02_...csv`).
//! * **Figure 4** — AVF-RF vs SVF (`results/fig04_...csv`).
//! * **Figure 5** — AVF-Cache vs SVF-LD (`results/fig05_...csv`).
//! * **Table I** — consistent/opposite trend counts over all pairs
//!   (`results/tab1_trends.csv`).
//!
//! Options: `--n-uarch N --n-sw N --seed S --sms N --events PATH`,
//! watchdog: `--wall-limit-us N --cycle-limit N --no-retry`
//! (docs/CAMPAIGNS.md; plus the `RELIA_EVENTS` / `RELIA_METRICS` /
//! `RELIA_PROGRESS` environment switches — see
//! `bench::init_observability`).

use bench::{
    cli_campaign_cfg, finish_observability, init_observability, results_dir, run_baseline,
};
use relia::{compare_pairs, error_margin, pct, pct4, Confidence, Table, TrendItem};
use vgpu_sim::HwStructure;

fn main() {
    init_observability();
    let cfg = cli_campaign_cfg(300, 300);
    eprintln!(
        "n_uarch={} (±{:.2}% @99%), n_sw={} (±{:.2}% @99%)",
        cfg.n_uarch,
        error_margin(cfg.n_uarch, Confidence::C99) * 100.0,
        cfg.n_sw,
        error_margin(cfg.n_sw, Confidence::C99) * 100.0
    );
    let base = run_baseline(&cfg);
    let dir = results_dir();

    // ---- Figure 1: application level --------------------------------
    let mut fig1 = Table::new(
        "Figure 1: application-level AVF (cross-layer) and SVF (software-only), %",
        &[
            "App",
            "AVF_SDC",
            "AVF_Timeout",
            "AVF_DUE",
            "AVF",
            "SVF_SDC",
            "SVF_Timeout",
            "SVF_DUE",
            "SVF",
        ],
    );
    for (avf, svf) in &base.apps {
        let a = avf.app_avf(&cfg.gpu);
        let s = svf.app_svf();
        fig1.row(vec![
            avf.app.clone(),
            pct4(a.sdc),
            pct4(a.timeout),
            pct4(a.due),
            pct4(a.total()),
            pct(s.sdc),
            pct(s.timeout),
            pct(s.due),
            pct(s.total()),
        ]);
    }
    println!("{fig1}");
    fig1.write_csv(dir.join("fig01_app_avf_svf.csv")).unwrap();

    // ---- Figure 2: kernel level --------------------------------------
    let mut fig2 = Table::new(
        "Figure 2: kernel-level AVF and SVF, %",
        &[
            "Kernel",
            "AVF_SDC",
            "AVF_Timeout",
            "AVF_DUE",
            "AVF",
            "SVF_SDC",
            "SVF_Timeout",
            "SVF_DUE",
            "SVF",
        ],
    );
    for (avf, svf) in &base.apps {
        for (ka, ks) in avf.kernels.iter().zip(&svf.kernels) {
            let a = ka.chip_avf(&cfg.gpu);
            let s = ks.svf();
            fig2.row(vec![
                format!("{} {}", avf.app, ka.kernel),
                pct4(a.sdc),
                pct4(a.timeout),
                pct4(a.due),
                pct4(a.total()),
                pct(s.sdc),
                pct(s.timeout),
                pct(s.due),
                pct(s.total()),
            ]);
        }
    }
    println!("{fig2}");
    fig2.write_csv(dir.join("fig02_kernel_avf_svf.csv"))
        .unwrap();

    // ---- Figure 4: AVF-RF vs SVF --------------------------------------
    let mut fig4 = Table::new(
        "Figure 4: AVF-RF (register file only) vs SVF, %",
        &[
            "App",
            "AVF-RF_SDC",
            "AVF-RF_Timeout",
            "AVF-RF_DUE",
            "AVF-RF",
            "SVF",
        ],
    );
    for (avf, svf) in &base.apps {
        let a = avf.app_avf_structure(HwStructure::RegFile);
        fig4.row(vec![
            avf.app.clone(),
            pct4(a.sdc),
            pct4(a.timeout),
            pct4(a.due),
            pct4(a.total()),
            pct(svf.app_svf().total()),
        ]);
    }
    println!("{fig4}");
    fig4.write_csv(dir.join("fig04_avf_rf_vs_svf.csv")).unwrap();

    // ---- Figure 5: AVF-Cache vs SVF-LD --------------------------------
    let mut fig5 = Table::new(
        "Figure 5: AVF-Cache (L1D+L1T+L2) vs SVF-LD (load injections), %",
        &[
            "App",
            "AVF-Cache_SDC",
            "AVF-Cache_Timeout",
            "AVF-Cache_DUE",
            "AVF-Cache",
            "SVF-LD",
        ],
    );
    for (avf, svf) in &base.apps {
        let a = avf.app_avf_cache(&cfg.gpu);
        fig5.row(vec![
            avf.app.clone(),
            pct4(a.sdc),
            pct4(a.timeout),
            pct4(a.due),
            pct4(a.total()),
            pct(svf.app_svf_ld().total()),
        ]);
    }
    println!("{fig5}");
    fig5.write_csv(dir.join("fig05_avf_cache_vs_svf_ld.csv"))
        .unwrap();

    // ---- Table I: trend agreement --------------------------------------
    let app_items: Vec<TrendItem> = base
        .apps
        .iter()
        .map(|(a, s)| TrendItem {
            name: a.app.clone(),
            a: a.app_avf(&cfg.gpu).total(),
            b: s.app_svf().total(),
        })
        .collect();
    let kernel_items: Vec<TrendItem> = base
        .apps
        .iter()
        .flat_map(|(a, s)| {
            a.kernels.iter().zip(&s.kernels).map(|(ka, ks)| TrendItem {
                name: format!("{} {}", a.app, ka.kernel),
                a: ka.chip_avf(&cfg.gpu).total(),
                b: ks.svf().total(),
            })
        })
        .collect();
    let rf_items: Vec<TrendItem> = base
        .apps
        .iter()
        .map(|(a, s)| TrendItem {
            name: a.app.clone(),
            a: a.app_avf_structure(HwStructure::RegFile).total(),
            b: s.app_svf().total(),
        })
        .collect();
    let cache_items: Vec<TrendItem> = base
        .apps
        .iter()
        .map(|(a, s)| TrendItem {
            name: a.app.clone(),
            a: a.app_avf_cache(&cfg.gpu).total(),
            b: s.app_svf_ld().total(),
        })
        .collect();

    let mut tab1 = Table::new(
        "Table I: consistent vs opposite vulnerability-ranking trends",
        &[
            "Comparison",
            "Consistent",
            "Opposite",
            "Consistent%",
            "Opposite%",
        ],
    );
    for (label, items) in [
        ("Application-Level", &app_items),
        ("Kernel-Level", &kernel_items),
        ("AVF-RF vs. SVF", &rf_items),
        ("AVF-Cache vs. SVF-LD", &cache_items),
    ] {
        let t = compare_pairs(items);
        tab1.row(vec![
            label.to_string(),
            t.consistent.to_string(),
            t.opposite.to_string(),
            format!("{:.0}", t.consistent_pct()),
            format!("{:.0}", t.opposite_pct()),
        ]);
    }
    println!("{tab1}");
    tab1.write_csv(dir.join("tab1_trends.csv")).unwrap();

    finish_observability();
}
