//! Regenerates **Figure 12** and evaluates the Section-V-B proposal:
//!
//! 1. Disassembles the paper's ten-instruction snippet and prints the
//!    register-reuse set of `R0` at instruction #4 (the red circles).
//! 2. Quantifies the proposal's impact: runs source-register injection
//!    campaigns in both the *instantaneous* model (typical SVF tooling)
//!    and the *reuse-replicating* model the paper proposes, showing that
//!    the instantaneous model underestimates vulnerability.
//!
//! Writes `results/fig12_reuse_sets.csv` and
//! `results/fig12_src_injection_modes.csv`.
//! Options: `--n-sw N --seed S`.

use bench::{cli_campaign_cfg, results_dir};
use kernels::{all_benchmarks, faulty_run, golden_run, Outcome, PlannedFault, Variant};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relia::reuse::{figure12_kernel, readers_until_redef};
use relia::{pct, ClassCounts, Table};
use vgpu_arch::Reg;
use vgpu_sim::{Mode, SwFault, SwFaultKind};

fn main() {
    let cfg = cli_campaign_cfg(0, 300);
    let dir = results_dir();

    // ---- Part 1: the exact Figure 12 example --------------------------
    let k = figure12_kernel();
    println!("{}", k.disassemble());
    let mut t = Table::new(
        "Figure 12: register-reuse sets (fault at instruction #4)",
        &["Register", "Fault at", "Affected instructions"],
    );
    for (reg, at) in [(Reg(0), 3usize), (Reg(3), 3), (Reg(2), 4)] {
        let readers = readers_until_redef(&k, at, reg);
        t.row(vec![
            format!("R{}", reg.0),
            format!("#{}", at + 1),
            readers
                .iter()
                .map(|&i| format!("#{}", i + 1))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    println!("{t}");
    t.write_csv(dir.join("fig12_reuse_sets.csv")).unwrap();

    // ---- Part 2: instantaneous vs reuse-replicating source injection --
    let mut modes = Table::new(
        "Source-register injection: instantaneous (SrcTransient) vs reuse-replicating (SrcPersistent) failure rates, %",
        &["App", "FR transient", "FR persistent", "underestimation (pp)"],
    );
    let variant = Variant {
        mode: Mode::Functional,
        hardened: false,
    };
    for b in all_benchmarks() {
        eprintln!("[fig12] {} ...", b.name());
        let golden = golden_run(b.as_ref(), &cfg.gpu, variant);
        let mut fr = [0.0f64; 2];
        for (mi, kind) in [SwFaultKind::SrcTransient, SwFaultKind::SrcPersistent]
            .into_iter()
            .enumerate()
        {
            let mut counts = ClassCounts::default();
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (mi as u64) << 32);
            // Uniform over the whole app's source-reading instruction
            // stream (launch picked by weight).
            let windows: Vec<(usize, u64)> = golden
                .records
                .iter()
                .enumerate()
                .map(|(o, r)| (o, r.stats.src_reg_instrs))
                .filter(|&(_, w)| w > 0)
                .collect();
            let total: u64 = windows.iter().map(|&(_, w)| w).sum();
            for _ in 0..cfg.n_sw {
                let mut x = rng.gen_range(0..total);
                let (ordinal, weight) = windows
                    .iter()
                    .copied()
                    .find(|&(_, w)| {
                        if x < w {
                            true
                        } else {
                            x -= w;
                            false
                        }
                    })
                    .unwrap();
                let fault = PlannedFault::Sw(SwFault {
                    kind,
                    target: rng.gen_range(0..weight),
                    bit: rng.gen_range(0..32),
                    loc_pick: 0,
                    pattern: vgpu_sim::FaultPattern::SingleBit,
                });
                let res = faulty_run(b.as_ref(), &cfg.gpu, variant, &golden, ordinal, fault);
                counts.record(res.outcome);
                let _ = Outcome::Masked;
            }
            fr[mi] = counts.failure_rate();
        }
        modes.row(vec![
            b.name().to_string(),
            pct(fr[0]),
            pct(fr[1]),
            format!("{:+.2}", (fr[1] - fr[0]) * 100.0),
        ]);
    }
    println!("{modes}");
    modes
        .write_csv(dir.join("fig12_src_injection_modes.csv"))
        .unwrap();
}
