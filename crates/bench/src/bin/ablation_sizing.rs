//! Ablation: how the chip-AVF depends on design choices the methodology
//! bakes in — SM count (changes derating factors and the L2 share of the
//! chip's bit budget) and the structure-size weighting itself.
//!
//! This probes the paper's threat-to-validity discussion (Section VI,
//! "GPU devices": absolute values shift with sizing, relative trends
//! should not) by recomputing two applications' AVFs under different GPU
//! sizings and reporting whether their *ranking* survives.
//!
//! Writes `results/ablation_sizing.csv`.
//! Options: `--n-uarch N --seed S`.

use bench::{cli_campaign_cfg, results_dir};
use kernels::apps::{hotspot::HotSpot, lud::Lud, scp::Scp};
use kernels::Benchmark;
use relia::{pct4, run_uarch_campaign, Table};
use vgpu_sim::{GpuConfig, HwStructure};

fn main() {
    let base_cfg = cli_campaign_cfg(100, 0);
    let dir = results_dir();
    let apps: [&dyn Benchmark; 3] = [&HotSpot, &Lud, &Scp];
    let mut t = Table::new(
        "Ablation: chip AVF under different GPU sizings, %",
        &[
            "SMs",
            "RF share",
            "App",
            "AVF",
            "AVF-RF",
            "AVF-L2",
            "rank(HotSpot>LUD)",
        ],
    );
    for sms in [2u32, 4, 8] {
        let mut cfg = base_cfg.clone();
        cfg.gpu = GpuConfig::volta_scaled(sms);
        let rf_share =
            cfg.gpu.structure_bits(HwStructure::RegFile) as f64 / cfg.gpu.total_bits() as f64;
        let mut avfs = Vec::new();
        for app in apps {
            eprintln!("[ablation] {} SMs, {} ...", sms, app.name());
            let r = run_uarch_campaign(app, &cfg, false);
            avfs.push((app.name(), r.app_avf(&cfg.gpu).total(), r));
        }
        let rank_holds = avfs[0].1 > avfs[1].1; // HotSpot vs LUD
        for (name, avf, r) in &avfs {
            t.row(vec![
                sms.to_string(),
                format!("{:.0}%", rf_share * 100.0),
                name.to_string(),
                pct4(*avf),
                pct4(r.app_avf_structure(HwStructure::RegFile).total()),
                pct4(r.app_avf_structure(HwStructure::L2).total()),
                if rank_holds {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    println!("{t}");
    t.write_csv(dir.join("ablation_sizing.csv")).unwrap();
}
