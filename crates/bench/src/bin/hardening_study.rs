//! Regenerates the Section-IV TMR hardening artifacts:
//!
//! * **Figure 7** — kernel AVF & SVF with/without hardening
//!   (`results/fig07_hardened_avf_svf.csv`).
//! * **Figure 8** — the SDC share of AVF with/without hardening
//!   (`results/fig08_hardened_sdc.csv`).
//! * **Figure 9** — Timeout+DUE of AVF and SVF with/without hardening
//!   (`results/fig09_hardened_due_timeout.csv`).
//! * **Figure 10** — per-structure AVF before/after for the paper's
//!   representative kernels (`results/fig10_structure_breakdown.csv`,
//!   full per-kernel data in the CSV).
//! * **Figure 11** — control-path-affected masked runs (cycle-count
//!   proxy) with/without hardening (`results/fig11_control_path.csv`).
//!
//! Options: `--n-uarch N --n-sw N --seed S --events PATH`, watchdog:
//! `--wall-limit-us N --cycle-limit N --no-retry` (docs/CAMPAIGNS.md).
//! TMR runs cost ~3.5× the unprotected ones, so defaults are smaller
//! than `baseline_study`'s.

use bench::{cli_campaign_cfg, finish_observability, init_observability, results_dir};
use kernels::all_benchmarks;
use relia::{evaluate_hardening, pct, pct4, Table};

fn main() {
    init_observability();
    let cfg = cli_campaign_cfg(150, 150);
    let dir = results_dir();
    let gpu = cfg.gpu.clone();

    let mut fig7 = Table::new(
        "Figure 7: AVF and SVF with/without TMR hardening, %",
        &["Kernel", "AVF_base", "AVF_TMR", "SVF_base", "SVF_TMR"],
    );
    let mut fig8 = Table::new(
        "Figure 8: SDC share of AVF with/without hardening, %",
        &["Kernel", "AVF-SDC_base", "AVF-SDC_TMR"],
    );
    let mut fig9 = Table::new(
        "Figure 9: Timeout and DUE with/without hardening, %",
        &[
            "Kernel",
            "AVF-TO_base",
            "AVF-DUE_base",
            "AVF-TO_TMR",
            "AVF-DUE_TMR",
            "SVF-TO_base",
            "SVF-DUE_base",
            "SVF-TO_TMR",
            "SVF-DUE_TMR",
        ],
    );
    let mut fig10 = Table::new(
        "Figure 10: per-structure AVF before/after hardening, %",
        &[
            "Kernel",
            "Structure",
            "SDC_base",
            "TO_base",
            "DUE_base",
            "SDC_TMR",
            "TO_TMR",
            "DUE_TMR",
        ],
    );
    let mut fig11 = Table::new(
        "Figure 11: control-path-affected masked runs (microarch FI), %",
        &["Kernel", "base", "TMR"],
    );

    for b in all_benchmarks() {
        eprintln!("[hardening] {} ...", b.name());
        let cmp = evaluate_hardening(b.as_ref(), &cfg);
        for row in cmp.kernel_rows(&gpu) {
            let name = format!("{} {}", cmp.app, row.kernel);
            fig7.row(vec![
                name.clone(),
                pct4(row.avf_base.total()),
                pct4(row.avf_tmr.total()),
                pct(row.svf_base.total()),
                pct(row.svf_tmr.total()),
            ]);
            fig8.row(vec![
                name.clone(),
                pct4(row.avf_base.sdc),
                pct4(row.avf_tmr.sdc),
            ]);
            fig9.row(vec![
                name.clone(),
                pct4(row.avf_base.timeout),
                pct4(row.avf_base.due),
                pct4(row.avf_tmr.timeout),
                pct4(row.avf_tmr.due),
                pct(row.svf_base.timeout),
                pct(row.svf_base.due),
                pct(row.svf_tmr.timeout),
                pct(row.svf_tmr.due),
            ]);
            for (h, before, after) in &row.structures {
                fig10.row(vec![
                    name.clone(),
                    h.label().to_string(),
                    pct4(before.sdc),
                    pct4(before.timeout),
                    pct4(before.due),
                    pct4(after.sdc),
                    pct4(after.timeout),
                    pct4(after.due),
                ]);
            }
            fig11.row(vec![name, pct(row.ctrl_base), pct(row.ctrl_tmr)]);
        }
    }

    println!("{fig7}");
    println!("{fig8}");
    println!("{fig9}");
    // The paper's Figure 10 shows six representative kernels; print those,
    // the CSV has all of them.
    let representative = [
        "LUD K2",
        "SCP K1",
        "NW K2",
        "BackProp K2",
        "SRADv1 K2",
        "K-Means K2",
    ];
    let mut fig10_print = Table::new(
        "Figure 10 (representative kernels): per-structure AVF before/after, %",
        &fig10.headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for row in &fig10.rows {
        if representative.contains(&row[0].as_str()) {
            fig10_print.row(row.clone());
        }
    }
    println!("{fig10_print}");
    println!("{fig11}");

    fig7.write_csv(dir.join("fig07_hardened_avf_svf.csv"))
        .unwrap();
    fig8.write_csv(dir.join("fig08_hardened_sdc.csv")).unwrap();
    fig9.write_csv(dir.join("fig09_hardened_due_timeout.csv"))
        .unwrap();
    fig10
        .write_csv(dir.join("fig10_structure_breakdown.csv"))
        .unwrap();
    fig11.write_csv(dir.join("fig11_control_path.csv")).unwrap();

    finish_observability();
}
