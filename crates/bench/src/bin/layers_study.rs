//! Extension study: the **three-layer** vulnerability comparison
//! (SVF vs PVF vs AVF) — the GPU analogue of the CPU cross-layer stack the
//! paper's related work builds on (Papadimitriou & Gizopoulos, ISCA'21;
//! Sridharan & Kaeli's PVF).
//!
//! Decomposes the software-level estimation error into its two sources:
//!
//! * **SVF → PVF**: fault-origin population (destination values of executed
//!   instructions vs the whole live architectural register state);
//! * **PVF → AVF**: hardware masking + derating (dead/unallocated entries,
//!   cache evictions, structure sizes).
//!
//! Writes `results/layers_study.csv`.
//! Options: `--n-uarch N --n-sw N --seed S --events PATH`, watchdog:
//! `--wall-limit-us N --cycle-limit N --no-retry` (docs/CAMPAIGNS.md).

use bench::{cli_campaign_cfg, finish_observability, init_observability, results_dir};
use kernels::all_benchmarks;
use relia::{
    pct, pct4, run_pvf_campaign, run_sw_campaign, run_uarch_campaign_with, Table, TrendItem,
};

fn main() {
    init_observability();
    let cfg = cli_campaign_cfg(100, 200);
    let backend = bench::cli_backend();
    let dir = results_dir();
    let mut t = Table::new(
        "Three-layer comparison: SVF (software) vs PVF (architectural state) vs AVF (cross-layer), %",
        &["App", "SVF", "PVF", "AVF", "SVF/PVF", "PVF/AVF"],
    );
    let mut items_sp = Vec::new(); // SVF vs PVF ranking agreement
    let mut items_pa = Vec::new(); // PVF vs AVF ranking agreement
    for b in all_benchmarks() {
        eprintln!("[layers] {} ...", b.name());
        let svf = run_sw_campaign(b.as_ref(), &cfg, false).app_svf().total();
        let pvf = run_pvf_campaign(b.as_ref(), &cfg, false).app_pvf().total();
        let avf = run_uarch_campaign_with(b.as_ref(), &cfg, false, backend)
            .app_avf(&cfg.gpu)
            .total();
        t.row(vec![
            b.name().to_string(),
            pct(svf),
            pct(pvf),
            pct4(avf),
            format!("{:.2}x", svf / pvf.max(1e-9)),
            format!("{:.0}x", pvf / avf.max(1e-9)),
        ]);
        items_sp.push(TrendItem {
            name: b.name().into(),
            a: svf,
            b: pvf,
        });
        items_pa.push(TrendItem {
            name: b.name().into(),
            a: pvf,
            b: avf,
        });
    }
    println!("{t}");
    let sp = relia::compare_pairs(&items_sp);
    let pa = relia::compare_pairs(&items_pa);
    println!(
        "ranking agreement: SVF-vs-PVF {}/{} consistent, PVF-vs-AVF {}/{} consistent\n\
         → most of the *ranking* error appears below the architectural level\n\
         (hardware masking + derating), matching the paper's Insight #6.",
        sp.consistent,
        sp.total(),
        pa.consistent,
        pa.total()
    );
    t.write_csv(dir.join("layers_study.csv")).unwrap();

    finish_observability();
}
