//! Regenerates the footnote-1 observation: cross-layer AVF measurement is
//! far more expensive than software-level SVF measurement.
//!
//! The paper reports 1,258 single-core machine-days for the AVF campaigns
//! vs 10 for the SVF campaigns (~126×). Two factors compose that gap:
//!
//! 1. **per-injection cost** — a cycle-level microarchitecture simulation
//!    vs software-visible execution (in the paper, native GPU runs; here,
//!    the functional engine);
//! 2. **campaign size** — AVF needs one campaign per hardware structure
//!    (×5), SVF a single campaign per kernel.
//!
//! This binary measures both factors on this implementation and writes
//! `results/speed_study.csv`.

use bench::{cli_campaign_cfg, results_dir};
use kernels::{all_benchmarks, faulty_run, golden_run, PlannedFault, Variant};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relia::Table;
use std::time::Instant;
use vgpu_sim::{HwStructure, Mode, SwFault, SwFaultKind, UarchFault};

fn main() {
    let cfg = cli_campaign_cfg(50, 50);
    let dir = results_dir();
    let mut t = Table::new(
        "Footnote 1: per-injection cost, AVF (cycle-level) vs SVF (software-level)",
        &[
            "App",
            "AVF us/inj",
            "SVF us/inj",
            "cost ratio",
            "x structures",
            "campaign ratio",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for b in all_benchmarks() {
        eprintln!("[speed] {} ...", b.name());
        let vt = Variant {
            mode: Mode::Timed,
            hardened: false,
        };
        let vf = Variant {
            mode: Mode::Functional,
            hardened: false,
        };
        let gt = golden_run(b.as_ref(), &cfg.gpu, vt);
        let gf = golden_run(b.as_ref(), &cfg.gpu, vf);

        let t0 = Instant::now();
        for _ in 0..cfg.n_uarch {
            let ordinal = rng.gen_range(0..gt.records.len());
            let cycles = gt.records[ordinal].stats.cycles.max(1);
            let fault = PlannedFault::Uarch(UarchFault {
                cycle: rng.gen_range(0..cycles),
                structure: HwStructure::RegFile,
                loc_pick: rng.gen(),
                bit: rng.gen_range(0..32),
                pattern: vgpu_sim::FaultPattern::SingleBit,
            });
            faulty_run(b.as_ref(), &cfg.gpu, vt, &gt, ordinal, fault);
        }
        let avf_us = t0.elapsed().as_micros() as f64 / cfg.n_uarch as f64;

        let t1 = Instant::now();
        for _ in 0..cfg.n_sw {
            let ordinal = rng.gen_range(0..gf.records.len());
            let elig = gf.records[ordinal].stats.gp_dest_instrs.max(1);
            let fault = PlannedFault::Sw(SwFault {
                kind: SwFaultKind::DestValue,
                target: rng.gen_range(0..elig),
                bit: rng.gen_range(0..32),
                loc_pick: 0,
                pattern: vgpu_sim::FaultPattern::SingleBit,
            });
            faulty_run(b.as_ref(), &cfg.gpu, vf, &gf, ordinal, fault);
        }
        let svf_us = t1.elapsed().as_micros() as f64 / cfg.n_sw as f64;

        let ratio = avf_us / svf_us.max(1.0);
        t.row(vec![
            b.name().to_string(),
            format!("{avf_us:.0}"),
            format!("{svf_us:.0}"),
            format!("{ratio:.1}x"),
            "5".to_string(),
            format!("{:.0}x", ratio * 5.0),
        ]);
    }
    println!("{t}");
    println!(
        "paper: AVF campaigns took 1258 machine-days vs 10 for SVF (~126x);\n\
         here the SVF side is also simulated (no silicon), so the per-\n\
         injection gap is smaller — the campaign-size factor (x5 structures)\n\
         composes identically."
    );
    t.write_csv(dir.join("speed_study.csv")).unwrap();
}
