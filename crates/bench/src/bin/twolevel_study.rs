//! Two-level estimator study: accuracy and cost of the stratified
//! two-level SDC model against a large full-injection reference and the
//! injection-free ACE analytic bound, plus the trial-count savings of
//! adaptive CI-driven sizing at a fixed interval target
//! (`results/fig_twolevel.csv`, docs/TWOLEVEL.md).
//!
//! ```text
//! twolevel_study [--check]     # full study + figure CSV
//! twolevel_study smoke         # tiny determinism gate (no results/ I/O)
//! ```
//!
//! Three estimator arms per application, all from the same campaign seed:
//!
//! - **full** — a large dest-value injection campaign (`--n-ref` trials
//!   per kernel); its per-kernel SDC rate is the ground truth.
//! - **two-level** — [`stat::estimate_two_level`] with a small per-class
//!   sample (`--n-class`); class rates propagate through population
//!   shares, with Wilson CIs per class and a bootstrap CI at app level.
//! - **ACE** — the analytic chip AVF from a single fault-free pass
//!   (zero injections; an upper-bound ranking, not a calibrated rate).
//!
//! The fourth arm sizes the two-level strata *adaptively*
//! ([`stat::run_adaptive_single`] over the class targets) at a fixed CI
//! target and reports the trial-count savings vs the uniform fixed-n
//! design with the same guarantee. `--check` gates on the acceptance
//! thresholds (two-level Spearman >= 0.7 vs full injection, aggregate
//! adaptive savings >= 2x) and exits 1 when unmet.

use std::process::exit;

use ace::{estimate_app, spearman};
use bench::{finish_observability, init_observability, results_dir};
use kernels::{all_benchmarks, Benchmark};
use relia::plan::Layer;
use relia::{
    execute_shard, prepare_sw_kinds, sw_seed_tag, CampaignCfg, Confidence, EngineCfg, Table,
};
use stat::{class_targets, estimate_two_level, run_adaptive_single, AdaptiveCfg};
use vgpu_sim::{GpuConfig, SwFaultKind};

const FIG_CSV: &str = "fig_twolevel.csv";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

struct Opts {
    apps: Option<String>,
    /// Full-injection reference trials per kernel (ground truth).
    n_ref: usize,
    /// Two-level trials per (kernel, instruction class).
    n_class: usize,
    /// Bootstrap replicates for the propagated app-level CI.
    reps: usize,
    seed: u64,
    gpu: GpuConfig,
    acfg: AdaptiveCfg,
    check: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        apps: None,
        n_ref: 400,
        n_class: 24,
        reps: 500,
        seed: 0x7E11_EBE1,
        gpu: GpuConfig::volta_scaled(4),
        acfg: AdaptiveCfg::new(0.1, 8, 128),
        check: false,
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--check" {
            o.check = true;
            i += 1;
            continue;
        }
        let Some(v) = args.get(i + 1) else {
            die(&format!("option {} requires a value", args[i]));
        };
        let parse_num = |what: &str| -> u64 {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{what} takes a number, got {v:?}")))
        };
        match args[i].as_str() {
            "--apps" => o.apps = Some(v.clone()),
            "--n-ref" => o.n_ref = parse_num("--n-ref") as usize,
            "--n-class" => o.n_class = parse_num("--n-class") as usize,
            "--reps" => o.reps = parse_num("--reps") as usize,
            "--seed" => o.seed = parse_num("--seed"),
            "--sms" => o.gpu = GpuConfig::volta_scaled(parse_num("--sms") as u32),
            "--ci-target" => {
                o.acfg.ci_target = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--ci-target takes a number, got {v:?}")));
            }
            "--wave-size" => o.acfg.wave_size = parse_num("--wave-size") as usize,
            "--max-trials" => o.acfg.max_per_stratum = parse_num("--max-trials") as usize,
            "--events" => {} // handled by init_observability
            other => die(&format!("unknown option {other}")),
        }
        i += 2;
    }
    o.acfg.validate().unwrap_or_else(|e| die(&e));
    if o.n_ref == 0 || o.n_class == 0 || o.reps == 0 {
        die("--n-ref, --n-class, and --reps must be >= 1");
    }
    o
}

/// Suite subset in canonical (figure) order, regardless of `--apps` order.
fn select_benches(spec: Option<&str>) -> Vec<Box<dyn Benchmark>> {
    let all = all_benchmarks();
    let Some(spec) = spec else {
        return all;
    };
    let wanted: Vec<String> = spec
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    for w in &wanted {
        if !all.iter().any(|b| b.name().eq_ignore_ascii_case(w)) {
            let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
            die(&format!(
                "unknown app {w:?}; available: {}",
                names.join(", ")
            ));
        }
    }
    all.into_iter()
        .filter(|b| wanted.iter().any(|w| b.name().eq_ignore_ascii_case(w)))
        .collect()
}

/// Large dest-value-only reference campaign: per-kernel SDC ground truth.
fn full_reference(bench: &dyn Benchmark, o: &Opts) -> Vec<f64> {
    let cfg = CampaignCfg {
        n_sw: o.n_ref,
        seed: o.seed,
        gpu: o.gpu.clone(),
        ..CampaignCfg::new(0, o.n_ref, o.seed)
    };
    let kind = SwFaultKind::DestValue;
    let prep = prepare_sw_kinds(bench, &cfg, false, &[(kind, sw_seed_tag(kind))]);
    let records = execute_shard(&prep, &EngineCfg::single_shot())
        .expect("single-shot execution performs no checkpoint I/O");
    let counts =
        relia::assemble_sw_counts(&prep, &records).expect("a single shard covers the whole plan");
    counts.iter().map(|k| k[0].rates().sdc).collect()
}

/// One per-kernel comparison point.
struct Point {
    app: String,
    kernel: String,
    full: f64,
    two: f64,
    two_lo: f64,
    two_hi: f64,
    ace: f64,
    /// Per-kernel trial budgets of the three injection designs.
    full_trials: usize,
    two_trials: usize,
    adaptive_trials: usize,
    adaptive_uniform: usize,
}

fn cmd_study(o: &Opts) {
    let benches = select_benches(o.apps.as_deref());
    let mut points: Vec<Point> = Vec::new();
    let mut summary = Table::new(
        format!(
            "Two-level vs full-injection app SDC (seed {:#x}, n-ref {}, n-class {})",
            o.seed, o.n_ref, o.n_class
        ),
        &[
            "app",
            "full_sdc",
            "twolevel_sdc",
            "ci_lo",
            "ci_hi",
            "waves",
            "adaptive_trials",
            "uniform_trials",
            "savings",
        ],
    );

    for b in &benches {
        eprintln!("[twolevel] {}...", b.name());
        let full = full_reference(b.as_ref(), o);
        let two_cfg = CampaignCfg {
            gpu: o.gpu.clone(),
            ..CampaignCfg::new(0, o.n_class, o.seed)
        };
        let two = estimate_two_level(b.as_ref(), &two_cfg, Confidence::C95, o.reps);
        let ace = estimate_app(b.as_ref(), &o.gpu);
        let adaptive_cfg = CampaignCfg {
            gpu: o.gpu.clone(),
            ..CampaignCfg::new(0, 0, o.seed)
        };
        let adaptive = run_adaptive_single(
            b.as_ref(),
            &adaptive_cfg,
            false,
            Layer::Sw,
            &class_targets(),
            &o.acfg,
        )
        .expect("in-process waves cannot under-cover their own plan");

        let classes_per_kernel = two.kernels[0].classes.len().max(1);
        for (k_idx, tk) in two.kernels.iter().enumerate() {
            let k_adaptive: usize = adaptive
                .strata
                .iter()
                .filter(|s| s.kernel_idx == k_idx)
                .map(|s| s.n)
                .sum();
            let k_max = adaptive
                .strata
                .iter()
                .filter(|s| s.kernel_idx == k_idx)
                .map(|s| s.n)
                .max()
                .unwrap_or(0);
            points.push(Point {
                app: two.app.clone(),
                kernel: tk.kernel.clone(),
                full: full[k_idx],
                two: tk.sdc(),
                two_lo: tk
                    .classes
                    .iter()
                    .map(|c| c.share * c.sdc_ci.lo)
                    .sum::<f64>(),
                two_hi: tk
                    .classes
                    .iter()
                    .map(|c| c.share * c.sdc_ci.hi)
                    .sum::<f64>(),
                ace: ace.kernels[k_idx].chip_avf(&o.gpu),
                full_trials: o.n_ref,
                two_trials: classes_per_kernel * o.n_class,
                adaptive_trials: k_adaptive,
                adaptive_uniform: k_max * classes_per_kernel,
            });
        }
        summary.row(vec![
            two.app.clone(),
            format!("{:.6}", full.iter().sum::<f64>() / full.len().max(1) as f64),
            format!("{:.6}", two.sdc),
            format!("{:.6}", two.sdc_ci.lo),
            format!("{:.6}", two.sdc_ci.hi),
            adaptive.waves.to_string(),
            adaptive.total_trials().to_string(),
            adaptive.uniform_equivalent().to_string(),
            format!("{:.2}x", adaptive.savings()),
        ]);
    }

    let mut fig = Table::new(
        format!(
            "Two-level vs full-injection vs ACE per kernel (seed {:#x})",
            o.seed
        ),
        &[
            "app",
            "kernel",
            "full_sdc",
            "twolevel_sdc",
            "twolevel_lo",
            "twolevel_hi",
            "ace_avf",
            "err_twolevel",
            "err_ace",
            "full_trials",
            "twolevel_trials",
            "adaptive_trials",
            "adaptive_uniform",
        ],
    );
    for p in &points {
        fig.row(vec![
            p.app.clone(),
            p.kernel.clone(),
            format!("{:.6}", p.full),
            format!("{:.6}", p.two),
            format!("{:.6}", p.two_lo),
            format!("{:.6}", p.two_hi),
            format!("{:.6}", p.ace),
            format!("{:.6}", (p.two - p.full).abs()),
            format!("{:.6}", (p.ace - p.full).abs()),
            p.full_trials.to_string(),
            p.two_trials.to_string(),
            p.adaptive_trials.to_string(),
            p.adaptive_uniform.to_string(),
        ]);
    }
    println!("{fig}");
    println!("{summary}");
    fig.write_csv(results_dir().join(FIG_CSV)).unwrap();
    println!("wrote {}", results_dir().join(FIG_CSV).display());

    let fulls: Vec<f64> = points.iter().map(|p| p.full).collect();
    let twos: Vec<f64> = points.iter().map(|p| p.two).collect();
    let aces: Vec<f64> = points.iter().map(|p| p.ace).collect();
    let mae = |xs: &[f64]| -> f64 {
        xs.iter()
            .zip(&fulls)
            .map(|(x, f)| (x - f).abs())
            .sum::<f64>()
            / xs.len().max(1) as f64
    };
    let rho_two = spearman(&twos, &fulls);
    let rho_ace = spearman(&aces, &fulls);
    let total_adaptive: usize = points.iter().map(|p| p.adaptive_trials).sum();
    let total_uniform: usize = points.iter().map(|p| p.adaptive_uniform).sum();
    let savings = total_uniform as f64 / total_adaptive.max(1) as f64;

    match rho_two {
        Some(r) => println!(
            "spearman(two-level, full) = {r:.4}, MAE {:.6} over {} kernels",
            mae(&twos),
            points.len()
        ),
        None => println!("spearman(two-level, full) undefined"),
    }
    match rho_ace {
        Some(r) => println!("spearman(ace, full)       = {r:.4}, MAE {:.6}", mae(&aces)),
        None => println!("spearman(ace, full) undefined"),
    }
    println!(
        "adaptive (target CI +/-{}): {} trials vs uniform {} -> savings {savings:.2}x",
        o.acfg.ci_target, total_adaptive, total_uniform
    );

    if o.check {
        let r = rho_two.unwrap_or_else(|| die("--check: two-level spearman undefined"));
        let mut failed = false;
        if r < 0.7 {
            eprintln!("check FAILED: two-level spearman {r:.4} < 0.7");
            failed = true;
        }
        if savings < 2.0 {
            eprintln!("check FAILED: adaptive savings {savings:.2}x < 2x");
            failed = true;
        }
        if failed {
            exit(1);
        }
        println!("check OK: spearman {r:.4} >= 0.7, adaptive savings {savings:.2}x >= 2x");
    }
}

/// Tiny gate for scripts/check.sh: the two-level estimator and the
/// adaptive sizer must be deterministic and structurally coherent,
/// without touching `results/`.
fn cmd_smoke() {
    let bench = select_benches(Some("VA")).pop().unwrap();
    let cfg = CampaignCfg::new(0, 3, 0x5710_CA5E);
    let a = estimate_two_level(bench.as_ref(), &cfg, Confidence::C95, 50);
    let b = estimate_two_level(bench.as_ref(), &cfg, Confidence::C95, 50);
    if a != b {
        die("smoke failed: two-level estimates differ across reruns");
    }
    if !(a.sdc_ci.contains(a.sdc) && a.failure_ci.contains(a.failure)) {
        die("smoke failed: propagated CI does not cover the point estimate");
    }
    let acfg = AdaptiveCfg::new(0.25, 4, 16);
    let r1 = run_adaptive_single(
        bench.as_ref(),
        &cfg,
        false,
        Layer::Sw,
        &class_targets(),
        &acfg,
    )
    .unwrap_or_else(|e| die(&format!("smoke failed: adaptive run: {e}")));
    let r2 = run_adaptive_single(
        bench.as_ref(),
        &cfg,
        false,
        Layer::Sw,
        &class_targets(),
        &acfg,
    )
    .unwrap_or_else(|e| die(&format!("smoke failed: adaptive rerun: {e}")));
    if r1 != r2 {
        die("smoke failed: adaptive campaigns differ across reruns");
    }
    if r1.savings() < 1.0 || r1.total_trials() == 0 {
        die("smoke failed: degenerate adaptive campaign");
    }
    println!(
        "smoke ok: VA two-level SDC {:.4} in [{:.4}, {:.4}], adaptive {} waves / {} trials \
         (savings {:.2}x), deterministic",
        a.sdc,
        a.sdc_ci.lo,
        a.sdc_ci.hi,
        r1.waves,
        r1.total_trials(),
        r1.savings()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        cmd_smoke();
        return;
    }
    let o = parse_opts(&args);
    init_observability();
    cmd_study(&o);
    finish_observability();
}
