//! Regenerates **Figure 3**: resource-utilization comparison (fault-free
//! profiling) for the paper's three kernel pairs, each metric normalized
//! to the pair's sum (50% = equal):
//!
//! * (a) HotSpot K1 vs LUD K1 — opposite AVF/SVF trend, utilization gap;
//! * (b) LUD K2 vs LUD K1 — consistent trend, utilization explains it;
//! * (c) VA K1 vs SCP K1 — opposite trend without a clear utilization
//!   signal.
//!
//! Writes `results/fig03a.csv`, `fig03b.csv`, `fig03c.csv`. The AVF/SVF
//! bars of the figure are produced by the (much more expensive)
//! `baseline_study`; this binary focuses on the profiling metrics and
//! reuses small campaigns for the two leading bars.
//!
//! Options: `--n-uarch N --n-sw N --seed S`.

use bench::{cli_campaign_cfg, results_dir};
use kernels::apps::{hotspot::HotSpot, lud::Lud, scp::Scp, va::Va};
use kernels::{golden_run, Benchmark, Variant};
use relia::{kernel_metrics, normalized_pair, run_sw_campaign, run_uarch_campaign, Table};

struct KernelRef<'a> {
    bench: &'a dyn Benchmark,
    k_idx: usize,
    label: &'a str,
}

fn main() {
    let cfg = cli_campaign_cfg(200, 200);
    let dir = results_dir();
    let pairs: [(&str, &str, KernelRef, KernelRef); 3] = [
        (
            "Figure 3a: HotSpot K1 vs LUD K1 (opposite trend)",
            "fig03a.csv",
            KernelRef {
                bench: &HotSpot,
                k_idx: 0,
                label: "HotSpot K1",
            },
            KernelRef {
                bench: &Lud,
                k_idx: 0,
                label: "LUD K1",
            },
        ),
        (
            "Figure 3b: LUD K2 vs LUD K1 (consistent trend)",
            "fig03b.csv",
            KernelRef {
                bench: &Lud,
                k_idx: 1,
                label: "LUD K2",
            },
            KernelRef {
                bench: &Lud,
                k_idx: 0,
                label: "LUD K1",
            },
        ),
        (
            "Figure 3c: VA K1 vs SCP K1 (opposite trend)",
            "fig03c.csv",
            KernelRef {
                bench: &Va,
                k_idx: 0,
                label: "VA K1",
            },
            KernelRef {
                bench: &Scp,
                k_idx: 0,
                label: "SCP K1",
            },
        ),
    ];
    for (title, csv, k1, k2) in pairs {
        // Leading AVF/SVF bars.
        let vuln = |k: &KernelRef| {
            let avf = run_uarch_campaign(k.bench, &cfg, false);
            let svf = run_sw_campaign(k.bench, &cfg, false);
            (
                avf.kernels[k.k_idx].chip_avf(&cfg.gpu).total(),
                svf.kernels[k.k_idx].svf().total(),
            )
        };
        eprintln!("[fig03] {} vs {} ...", k1.label, k2.label);
        let (avf1, svf1) = vuln(&k1);
        let (avf2, svf2) = vuln(&k2);
        // Profiling metrics from timed golden runs.
        let g1 = golden_run(k1.bench, &cfg.gpu, Variant::TIMED);
        let g2 = golden_run(k2.bench, &cfg.gpu, Variant::TIMED);
        let m1 = kernel_metrics(&g1, k1.k_idx, &cfg.gpu);
        let m2 = kernel_metrics(&g2, k2.k_idx, &cfg.gpu);

        let mut t = Table::new(
            title,
            &[
                "Metric",
                &format!("{} %", k1.label),
                &format!("{} %", k2.label),
            ],
        );
        let share = |a: f64, b: f64| {
            if a + b == 0.0 {
                (50.0, 50.0)
            } else {
                (a / (a + b) * 100.0, b / (a + b) * 100.0)
            }
        };
        let (a, b) = share(avf1, avf2);
        t.row(vec!["AVF".into(), format!("{a:.1}"), format!("{b:.1}")]);
        let (a, b) = share(svf1, svf2);
        t.row(vec!["SVF".into(), format!("{a:.1}"), format!("{b:.1}")]);
        for (label, a, b) in normalized_pair(&m1, &m2) {
            t.row(vec![
                label.to_string(),
                format!("{a:.1}"),
                format!("{b:.1}"),
            ]);
        }
        println!("{t}");
        t.write_csv(dir.join(csv)).unwrap();
    }
}
