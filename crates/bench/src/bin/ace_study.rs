//! ACE analytical-estimator study: single-pass analytic AVF for the whole
//! suite, cross-validated against recorded injection AVF
//! (`results/fig_ace_vs_avf.csv`).
//!
//! ```text
//! ace_study --make-ref [--n-uarch 250]   # record the injection reference
//! ace_study [--check]                    # estimate + compare + figure CSV
//! ace_study smoke                        # tiny determinism gate
//! ```
//!
//! The default run performs **no injections**: one instrumented fault-free
//! timed simulation per application (under the `ace_run` obs phase) yields
//! per-kernel, per-structure analytic AVF. If the reference CSVs written
//! by `--make-ref` are present, it emits the comparison figure with
//! Spearman rank correlation and mean absolute error, plus a stdout-only
//! speedup table from the obs phase timings. `--check` additionally gates
//! on the acceptance thresholds (Spearman ≥ 0.7, per-app speedup ≥ 50×)
//! and exits 1 when unmet.
//!
//! Options: `--apps VA,NW` (suite subset), `--structures RF,SMEM,L2`
//! (comparison subset; exit 2 on unknown labels), `--n-uarch N --seed S
//! --sms N --events PATH`.

use std::process::exit;

use ace::{estimate_app, spearman, AceAppEstimate, CompareRow};
use bench::{finish_observability, init_observability, parse_structures, results_dir};
use kernels::{all_benchmarks, Benchmark};
use obs::Phase;
use relia::{run_uarch_campaign, CampaignCfg, Table};
use vgpu_sim::{GpuConfig, HwStructure};

const REF_CSV: &str = "ace_injection_ref.csv";
const REF_META_CSV: &str = "ace_injection_ref_meta.csv";
const FIG_CSV: &str = "fig_ace_vs_avf.csv";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

struct Opts {
    apps: Option<String>,
    structures: Vec<HwStructure>,
    cfg: CampaignCfg,
    make_ref: bool,
    check: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        apps: None,
        structures: HwStructure::ALL.to_vec(),
        cfg: CampaignCfg::new(250, 250, 0xC0FF_EE00),
        make_ref: false,
        check: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--make-ref" => {
                o.make_ref = true;
                i += 1;
                continue;
            }
            "--check" => {
                o.check = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let Some(v) = args.get(i + 1) else {
            die(&format!("option {} requires a value", args[i]));
        };
        let parse_num = |what: &str| -> u64 {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{what} takes a number, got {v:?}")))
        };
        match args[i].as_str() {
            "--apps" => o.apps = Some(v.clone()),
            "--structures" => {
                o.structures = parse_structures(v).unwrap_or_else(|e| die(&e));
            }
            "--n-uarch" => o.cfg.n_uarch = parse_num("--n-uarch") as usize,
            "--seed" => o.cfg.seed = parse_num("--seed"),
            "--sms" => o.cfg.gpu = GpuConfig::volta_scaled(parse_num("--sms") as u32),
            "--events" => {} // handled by init_observability
            other => die(&format!("unknown option {other}")),
        }
        i += 2;
    }
    o
}

/// Suite subset in canonical (figure) order, regardless of `--apps` order.
fn select_benches(spec: Option<&str>) -> Vec<Box<dyn Benchmark>> {
    let all = all_benchmarks();
    let Some(spec) = spec else {
        return all;
    };
    let wanted: Vec<String> = spec
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    for w in &wanted {
        if !all.iter().any(|b| b.name().eq_ignore_ascii_case(w)) {
            let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
            die(&format!(
                "unknown app {w:?}; available: {}",
                names.join(", ")
            ));
        }
    }
    all.into_iter()
        .filter(|b| wanted.iter().any(|w| b.name().eq_ignore_ascii_case(w)))
        .collect()
}

fn ace_run_ns() -> u64 {
    obs::phase_snapshot()[Phase::AceRun as usize].total_ns
}

fn all_phase_ns() -> u64 {
    obs::phase_snapshot().iter().map(|p| p.total_ns).sum()
}

/// One `--n-uarch` injection campaign per app; records per-(kernel,
/// structure) injection AVF and per-app campaign wall time.
fn cmd_make_ref(o: &Opts) {
    let benches = select_benches(o.apps.as_deref());
    let mut refs = Table::new(
        format!(
            "Injection AVF reference (n={} per structure, seed {:#x})",
            o.cfg.n_uarch, o.cfg.seed
        ),
        &["app", "kernel", "structure", "inj_avf", "n_per_structure"],
    );
    let mut meta = Table::new(
        "Injection reference campaign cost",
        &[
            "app",
            "campaign_wall_ms",
            "trials",
            "n_uarch",
            "seed",
            "sms",
        ],
    );
    for b in &benches {
        eprintln!("[make-ref] {} (n={})...", b.name(), o.cfg.n_uarch);
        let t0 = all_phase_ns();
        let res = run_uarch_campaign(b.as_ref(), &o.cfg, false);
        let wall_ms = (all_phase_ns() - t0) as f64 / 1e6;
        let trials = b.kernels().len() * HwStructure::ALL.len() * o.cfg.n_uarch;
        for k in &res.kernels {
            for &h in &HwStructure::ALL {
                refs.row(vec![
                    res.app.clone(),
                    k.kernel.clone(),
                    h.label().to_string(),
                    format!("{:.8}", k.avf(h).total()),
                    o.cfg.n_uarch.to_string(),
                ]);
            }
        }
        meta.row(vec![
            res.app.clone(),
            format!("{wall_ms:.3}"),
            trials.to_string(),
            o.cfg.n_uarch.to_string(),
            o.cfg.seed.to_string(),
            o.cfg.gpu.num_sms.to_string(),
        ]);
    }
    let dir = results_dir();
    refs.write_csv(dir.join(REF_CSV)).unwrap();
    meta.write_csv(dir.join(REF_META_CSV)).unwrap();
    println!("{meta}");
    println!(
        "wrote {} and {} under {}",
        REF_CSV,
        REF_META_CSV,
        dir.display()
    );
}

/// Minimal CSV reader for the two reference files (no quoted fields).
fn read_csv_rows(name: &str) -> Option<Vec<Vec<String>>> {
    let text = std::fs::read_to_string(results_dir().join(name)).ok()?;
    Some(
        text.lines()
            .skip(1)
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
            .collect(),
    )
}

fn cmd_estimate(o: &Opts) {
    let benches = select_benches(o.apps.as_deref());
    let gpu = &o.cfg.gpu;
    let mut estimates: Vec<AceAppEstimate> = Vec::new();
    let mut ace_wall_ms: Vec<(String, f64)> = Vec::new();
    for b in &benches {
        let t0 = ace_run_ns();
        let est = estimate_app(b.as_ref(), gpu);
        ace_wall_ms.push((est.app.clone(), (ace_run_ns() - t0) as f64 / 1e6));
        estimates.push(est);
    }

    println!("{}", ace::structure_table(&estimates, gpu, &o.structures));
    println!("{}", ace::app_table(&estimates, gpu));

    // ---- cross-validation against the recorded injection reference --
    let Some(ref_rows) = read_csv_rows(REF_CSV) else {
        eprintln!(
            "note: {}/{} not found — run `ace_study --make-ref` first for \
             the injection comparison",
            results_dir().display(),
            REF_CSV
        );
        if o.check {
            die("--check requires the injection reference");
        }
        return;
    };
    let inj_of = |app: &str, kernel: &str, h: HwStructure| -> Option<f64> {
        ref_rows
            .iter()
            .find(|r| r[0] == app && r[1] == kernel && r[2] == h.label())
            .map(|r| r[3].parse().expect("inj_avf is a number"))
    };
    let mut rows: Vec<CompareRow> = Vec::new();
    for est in &estimates {
        for k in &est.kernels {
            for &h in &o.structures {
                let Some(injected) = inj_of(&est.app, &k.kernel, h) else {
                    eprintln!(
                        "warning: no reference row for {} {} {} — stale {}?",
                        est.app,
                        k.kernel,
                        h.label(),
                        REF_CSV
                    );
                    continue;
                };
                rows.push(CompareRow {
                    app: est.app.clone(),
                    kernel: k.kernel.clone(),
                    structure: h,
                    analytic: k.avf(gpu, h),
                    injected,
                });
            }
        }
    }
    let fig = ace::comparison_table(&rows);
    println!("{fig}");
    fig.write_csv(results_dir().join(FIG_CSV)).unwrap();
    println!("wrote {}", results_dir().join(FIG_CSV).display());

    let xs: Vec<f64> = rows.iter().map(|r| r.analytic).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.injected).collect();
    let rho = spearman(&xs, &ys);

    // ---- estimator cost vs recorded campaign cost (stdout only: wall
    // times are machine-dependent, the figure CSV stays deterministic) --
    let meta = read_csv_rows(REF_META_CSV).unwrap_or_default();
    let mut speed = Table::new(
        "Estimator cost vs recorded injection campaign (obs phase wall)",
        &["app", "ace_ms", "campaign_ms", "speedup"],
    );
    let mut min_speedup = f64::INFINITY;
    for (app, ace_ms) in &ace_wall_ms {
        let Some(m) = meta.iter().find(|r| &r[0] == app) else {
            continue;
        };
        let campaign_ms: f64 = m[1].parse().expect("campaign_wall_ms is a number");
        let ratio = campaign_ms / ace_ms.max(1e-9);
        min_speedup = min_speedup.min(ratio);
        speed.row(vec![
            app.clone(),
            format!("{ace_ms:.3}"),
            format!("{campaign_ms:.3}"),
            format!("{ratio:.0}x"),
        ]);
    }
    if !speed.rows.is_empty() {
        println!("{speed}");
    }

    match rho {
        Some(r) => println!(
            "spearman(analytic, injection) = {r:.4} over {} points",
            rows.len()
        ),
        None => println!("spearman undefined ({} points)", rows.len()),
    }

    if o.check {
        let r = rho.unwrap_or_else(|| die("--check: spearman undefined"));
        let mut failed = false;
        if r < 0.7 {
            eprintln!("check FAILED: spearman {r:.4} < 0.7");
            failed = true;
        }
        if speed.rows.is_empty() {
            eprintln!("check FAILED: no campaign wall-time reference (rerun --make-ref)");
            failed = true;
        } else if min_speedup < 50.0 {
            eprintln!("check FAILED: min speedup {min_speedup:.0}x < 50x");
            failed = true;
        }
        if failed {
            exit(1);
        }
        println!("check OK: spearman {r:.4} >= 0.7, min speedup {min_speedup:.0}x >= 50x");
    }
}

/// Tiny gate for scripts/check.sh: the estimator must be deterministic,
/// injection-free, and produce nonzero RF lifetimes, without touching
/// `results/`.
fn cmd_smoke() {
    let gpu = GpuConfig::volta_scaled(2);
    let bench = select_benches(Some("VA")).pop().unwrap();
    let a = estimate_app(bench.as_ref(), &gpu);
    let b = estimate_app(bench.as_ref(), &gpu);
    if a != b {
        die("smoke failed: estimates differ across reruns");
    }
    if a.kernels[0].avf(&gpu, HwStructure::RegFile) <= 0.0 {
        die("smoke failed: zero RF analytic AVF");
    }
    if a.events == 0 {
        die("smoke failed: tracker recorded no events");
    }
    // Perfect self-agreement sanity for the comparison machinery.
    let avfs: Vec<f64> = HwStructure::ALL
        .iter()
        .map(|&h| a.kernels[0].avf(&gpu, h))
        .collect();
    if spearman(&avfs, &avfs) != Some(1.0) {
        die("smoke failed: self-spearman != 1");
    }
    println!(
        "smoke ok: VA analytic chip AVF {:.4}%, {} lifetime events, deterministic",
        a.kernels[0].chip_avf(&gpu) * 100.0,
        a.events
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        cmd_smoke();
        return;
    }
    let o = parse_opts(&args);
    init_observability();
    // Phase timings back the speedup table, so always collect them here.
    obs::set_enabled(true);
    if o.make_ref {
        cmd_make_ref(&o);
    } else {
        cmd_estimate(&o);
    }
    finish_observability();
}
