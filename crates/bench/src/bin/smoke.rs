//! Quick campaign smoke test (not a paper artifact).

use kernels::apps::{lud::Lud, va::Va};
use relia::{run_sw_campaign, run_uarch_campaign, CampaignCfg};
use std::time::Instant;
use vgpu_sim::HwStructure;

fn main() {
    let cfg = CampaignCfg::new(200, 200, 1);
    for b in [&Va as &dyn kernels::Benchmark, &Lud] {
        let t = Instant::now();
        let avf = run_uarch_campaign(b, &cfg, false);
        let ta = t.elapsed();
        let t = Instant::now();
        let svf = run_sw_campaign(b, &cfg, false);
        let ts = t.elapsed();
        println!("== {} (avf {ta:.1?}, svf {ts:.1?})", b.name());
        for (ka, ks) in avf.kernels.iter().zip(&svf.kernels) {
            print!(
                "  {}: chipAVF={:.4}% [",
                ka.kernel,
                ka.chip_avf(&cfg.gpu).total() * 100.0
            );
            for h in HwStructure::ALL {
                print!(
                    "{}={:.4}% (df {:.3}) ",
                    h.label(),
                    ka.avf(h).total() * 100.0,
                    ka.df_of(h)
                );
            }
            println!("]");
            let s = ks.svf();
            println!(
                "     SVF={:.2}% (sdc {:.2}%, to {:.2}%, due {:.2}%), SVF-LD={:.2}%",
                s.total() * 100.0,
                s.sdc * 100.0,
                s.timeout * 100.0,
                s.due * 100.0,
                ks.svf_ld().total() * 100.0
            );
        }
        println!(
            "  appAVF={:.4}%  appSVF={:.2}%",
            avf.app_avf(&cfg.gpu).total() * 100.0,
            svf.app_svf().total() * 100.0
        );
    }
}
