//! Dev utility: per-app uarch campaign cost at small N (not an artifact).
use kernels::all_benchmarks;
use relia::{run_uarch_campaign, CampaignCfg};
use std::time::Instant;

fn main() {
    let cfg = CampaignCfg::new(10, 10, 1);
    let mut total = 0.0;
    for b in all_benchmarks() {
        let t = Instant::now();
        run_uarch_campaign(b.as_ref(), &cfg, false);
        let dt = t.elapsed().as_secs_f64();
        total += dt;
        println!(
            "{:<12} {:>6.2}s  ({:.1} ms/inj over {} inj)",
            b.name(),
            dt,
            dt * 1000.0 / (b.kernels().len() * 5 * 10) as f64,
            b.kernels().len() * 5 * 10
        );
    }
    println!(
        "TOTAL {total:.1}s at N=10 → scale ~{:.0}s per 100 N",
        total * 10.0
    );
}
