//! Measures golden-run cost per benchmark in both engines — used to size
//! campaign defaults (not a paper artifact).

use kernels::{all_benchmarks, golden_run, Variant};
use std::time::Instant;
use vgpu_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::default();
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "app", "t_timed", "cycles", "t_func", "instrs", "speedup"
    );
    for b in all_benchmarks() {
        let t0 = Instant::now();
        let gt = golden_run(b.as_ref(), &cfg, Variant::TIMED);
        let dt = t0.elapsed();
        let t1 = Instant::now();
        let gf = golden_run(b.as_ref(), &cfg, Variant::FUNCTIONAL);
        let df = t1.elapsed();
        println!(
            "{:<12} {:>9.1?} {:>12} {:>9.1?} {:>12} {:>9.1}x",
            b.name(),
            dt,
            gt.total_cost,
            df,
            gf.total_cost,
            dt.as_secs_f64() / df.as_secs_f64().max(1e-9)
        );
    }
}
