//! Fault-model study: re-runs the cross-layer ranking analysis under every
//! [`FaultPattern`] — multi-bit transients (adjacent double, whole entry,
//! row/column bursts) and persistent stuck-at cells — and asks the paper's
//! question again for each: *does the software-level ranking survive?*
//!
//! For every (pattern, app, kernel) it records the injection AVF (uarch
//! layer, all five storage structures) and SVF (software layer), then
//! summarises per pattern:
//!
//! * Spearman rank correlation of the per-kernel AVF (and SVF) vector
//!   against the single-bit baseline — how much the fault model itself
//!   reshuffles the vulnerability ranking at each layer;
//! * the SVF-vs-AVF pairwise ranking agreement (the Table I / Insight #6
//!   inversion analysis), re-run under that pattern.
//!
//! Writes `results/fig_fault_model_ranking.csv`.
//! Options: `--n-uarch N --n-sw N --seed S --sms N --events PATH`,
//! watchdog `--wall-limit-us N --cycle-limit N --no-retry`
//! (docs/CAMPAIGNS.md; pattern catalog in docs/FAULT_MODELS.md).
//!
//! `fault_model_study smoke` is the scripts/check.sh gate: one app, tiny
//! campaigns, a transient multi-bit and a persistent pattern, determinism
//! asserted, nothing written under `results/`.

use ace::spearman;
use bench::{cli_campaign_cfg, finish_observability, init_observability, results_dir};
use kernels::all_benchmarks;
use relia::{pct, pct4, run_sw_campaign, run_uarch_campaign_with, CampaignCfg, Table, TrendItem};
use vgpu_sim::FaultPattern;

/// One (app, kernel) measurement under one fault pattern.
struct Point {
    app: String,
    kernel: String,
    avf: f64,
    svf: f64,
}

fn measure(cfg: &CampaignCfg, pattern: FaultPattern) -> Vec<Point> {
    let backend = bench::cli_backend();
    let mut cfg = cfg.clone();
    cfg.pattern = pattern;
    let mut points = Vec::new();
    for b in all_benchmarks() {
        eprintln!("[fault-model] {} / {} ...", pattern.label(), b.name());
        let uarch = run_uarch_campaign_with(b.as_ref(), &cfg, false, backend);
        let sw = run_sw_campaign(b.as_ref(), &cfg, false);
        for (ku, ks) in uarch.kernels.iter().zip(&sw.kernels) {
            assert_eq!(ku.kernel, ks.kernel, "layer kernel order must agree");
            points.push(Point {
                app: uarch.app.clone(),
                kernel: ku.kernel.clone(),
                avf: ku.chip_avf(&cfg.gpu).total(),
                svf: ks.svf().total(),
            });
        }
    }
    points
}

/// Spearman of a metric across the per-kernel vector vs the single-bit
/// baseline (same campaign sizes, same seeds — the pattern is the only
/// difference). `None` (constant input) renders as "NA".
fn rho(base: &[Point], pts: &[Point], f: impl Fn(&Point) -> f64) -> String {
    let xs: Vec<f64> = base.iter().map(&f).collect();
    let ys: Vec<f64> = pts.iter().map(&f).collect();
    match spearman(&xs, &ys) {
        Some(r) => format!("{r:.4}"),
        None => "NA".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        smoke();
        return;
    }
    init_observability();
    let cfg = cli_campaign_cfg(60, 120);
    let mut t = Table::new(
        format!(
            "Fault-model ranking study (n_uarch={}, n_sw={}, seed {:#x})",
            cfg.n_uarch, cfg.n_sw, cfg.seed
        ),
        &[
            "app",
            "kernel",
            "pattern",
            "avf",
            "svf",
            "spearman_avf_vs_single_bit",
            "spearman_svf_vs_single_bit",
        ],
    );
    let base = measure(&cfg, FaultPattern::SingleBit);
    let mut summary = Vec::new();
    for &p in &FaultPattern::ALL {
        let pts = if p == FaultPattern::SingleBit {
            // Reuse the baseline run: same cfg, same pattern, same seeds.
            base.iter()
                .map(|b| Point {
                    app: b.app.clone(),
                    kernel: b.kernel.clone(),
                    avf: b.avf,
                    svf: b.svf,
                })
                .collect()
        } else {
            measure(&cfg, p)
        };
        assert_eq!(pts.len(), base.len(), "pattern runs must cover the suite");
        let rho_avf = rho(&base, &pts, |x| x.avf);
        let rho_svf = rho(&base, &pts, |x| x.svf);
        // The inversion analysis of Table I, re-run under this pattern:
        // does ranking apps by SVF still mis-order them vs AVF?
        let items: Vec<TrendItem> = pts
            .iter()
            .map(|x| TrendItem {
                name: format!("{}/{}", x.app, x.kernel),
                a: x.svf,
                b: x.avf,
            })
            .collect();
        let trend = relia::compare_pairs(&items);
        summary.push((p, rho_avf.clone(), rho_svf.clone(), trend));
        for x in &pts {
            t.row(vec![
                x.app.clone(),
                x.kernel.clone(),
                p.label().to_string(),
                pct4(x.avf),
                pct(x.svf),
                rho_avf.clone(),
                rho_svf.clone(),
            ]);
        }
    }
    println!("{t}");
    for (p, ra, rs, trend) in &summary {
        println!(
            "{:>15}: spearman vs single-bit AVF {ra} / SVF {rs}, \
             SVF-vs-AVF ranking {}/{} pairs consistent",
            p.label(),
            trend.consistent,
            trend.total()
        );
    }
    let dir = results_dir();
    t.write_csv(dir.join("fig_fault_model_ranking.csv"))
        .unwrap();
    println!(
        "wrote {}",
        dir.join("fig_fault_model_ranking.csv").display()
    );
    finish_observability();
}

/// check.sh gate: one app, one transient multi-bit and one persistent
/// pattern, deterministic across reruns, and the stuck-at campaign must
/// actually differ from single-bit (the pattern is not a no-op).
fn smoke() {
    let backend = bench::cli_backend();
    let cfg = CampaignCfg::new(6, 6, 0x5A5A);
    let bench = kernels::all_benchmarks()
        .into_iter()
        .find(|b| b.name() == "VA")
        .expect("VA in the suite");
    let run = |pattern: FaultPattern| {
        let mut c = cfg.clone();
        c.pattern = pattern;
        let u = run_uarch_campaign_with(bench.as_ref(), &c, false, backend);
        let s = run_sw_campaign(bench.as_ref(), &c, false);
        (
            u.app_avf(&c.gpu).total(),
            s.app_svf().total(),
            u.kernels[0].per_structure.clone(),
        )
    };
    for pattern in [FaultPattern::BurstRow, FaultPattern::StuckAt0] {
        let a = run(pattern);
        let b = run(pattern);
        assert_eq!(
            a.2,
            b.2,
            "smoke failed: {} campaign not deterministic",
            pattern.label()
        );
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "AVF must be deterministic");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "SVF must be deterministic");
    }
    let single = run(FaultPattern::SingleBit);
    let stuck = run(FaultPattern::StuckAt1);
    assert_ne!(
        single.2, stuck.2,
        "smoke failed: stuck-at-1 outcomes identical to single-bit — the \
         pattern is not reaching the injector"
    );
    println!(
        "smoke ok: VA single-bit AVF {:.4}% vs stuck-at-1 AVF {:.4}%, deterministic",
        single.0 * 100.0,
        stuck.0 * 100.0
    );
}
