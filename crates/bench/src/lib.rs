//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation section
//! (see DESIGN.md's per-experiment index) and writes both an aligned text
//! table to stdout and a CSV under `results/`.

use relia::CampaignCfg;

/// Parse common CLI options: `--n-uarch N --n-sw N --seed S --sms N`.
/// Defaults are sized so every figure regenerates in minutes on a laptop;
/// pass larger counts to tighten confidence intervals (the paper used
/// 3,000 injections per target at ±2.35%, 99% confidence).
pub fn cli_campaign_cfg(default_uarch: usize, default_sw: usize) -> CampaignCfg {
    let mut cfg = CampaignCfg::new(default_uarch, default_sw, 0xC0FF_EE00);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--n-uarch" => cfg.n_uarch = v.parse().expect("--n-uarch takes a number"),
            "--n-sw" => cfg.n_sw = v.parse().expect("--n-sw takes a number"),
            "--seed" => cfg.seed = v.parse().expect("--seed takes a number"),
            "--sms" => {
                cfg.gpu = vgpu_sim::GpuConfig::volta_scaled(v.parse().expect("--sms takes a number"))
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    cfg
}

/// Results directory (repo-relative `results/`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Unhardened AVF + SVF campaigns over the whole suite — shared by the
/// Figure 1/2/4/5 and Table I generators.
pub struct BaselineResults {
    pub cfg: CampaignCfg,
    pub apps: Vec<(relia::UarchAppResult, relia::SvfAppResult)>,
}

pub fn run_baseline(cfg: &CampaignCfg) -> BaselineResults {
    let apps = kernels::all_benchmarks()
        .iter()
        .map(|b| {
            eprintln!("[baseline] {} ...", b.name());
            (
                relia::run_uarch_campaign(b.as_ref(), cfg, false),
                relia::run_sw_campaign(b.as_ref(), cfg, false),
            )
        })
        .collect();
    BaselineResults { cfg: cfg.clone(), apps }
}
