//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation section
//! (see DESIGN.md's per-experiment index) and writes both an aligned text
//! table to stdout and a CSV under `results/`.

use relia::CampaignCfg;

/// Parse common CLI options: `--n-uarch N --n-sw N --seed S --sms N
/// --fault-model PATTERN --events PATH`, plus the per-injection watchdog
/// knobs `--wall-limit-us N --cycle-limit N --no-retry` (see docs/CAMPAIGNS.md;
/// all limits default to off so results stay bit-reproducible). Defaults
/// are sized so every figure regenerates in minutes on a laptop; pass
/// larger counts to tighten confidence intervals (the paper used 3,000
/// injections per target at ±2.35%, 99% confidence). `--events` is
/// consumed by [`init_observability`].
pub fn cli_campaign_cfg(default_uarch: usize, default_sw: usize) -> CampaignCfg {
    let mut cfg = CampaignCfg::new(default_uarch, default_sw, 0xC0FF_EE00);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        // Valueless flags first, then `--flag VALUE` pairs.
        if args[i] == "--no-retry" {
            cfg.watchdog.retry_on_panic = false;
            i += 1;
            continue;
        }
        let Some(v) = args.get(i + 1) else {
            panic!("option {} requires a value", args[i]);
        };
        match args[i].as_str() {
            "--n-uarch" => cfg.n_uarch = v.parse().expect("--n-uarch takes a number"),
            "--n-sw" => cfg.n_sw = v.parse().expect("--n-sw takes a number"),
            "--seed" => cfg.seed = v.parse().expect("--seed takes a number"),
            "--sms" => {
                cfg.gpu =
                    vgpu_sim::GpuConfig::volta_scaled(v.parse().expect("--sms takes a number"))
            }
            "--wall-limit-us" => {
                cfg.watchdog.wall_us_limit =
                    Some(v.parse().expect("--wall-limit-us takes a number"))
            }
            "--cycle-limit" => {
                cfg.watchdog.cycle_limit = Some(v.parse().expect("--cycle-limit takes a number"))
            }
            "--fault-model" => {
                cfg.pattern = vgpu_sim::FaultPattern::from_label(v)
                    .unwrap_or_else(|| panic!("unknown --fault-model {v:?}"))
            }
            "--backend" => {} // handled by cli_backend
            "--events" => {}  // handled by init_observability
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    cfg
}

/// `--backend timed|replay` from the raw CLI args: the engine-backend
/// axis the study binaries share with `campaign run` (docs/TRACE.md).
/// Defaults to the timed backend when the flag is absent.
pub fn cli_backend() -> relia::EngineBackend {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--backend") {
        None => relia::EngineBackend::Timed,
        Some(i) => {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("option --backend requires a value"));
            relia::EngineBackend::from_label(v)
                .unwrap_or_else(|| panic!("unknown --backend {v:?} (timed, replay)"))
        }
    }
}

/// Parse a `--structures RF,SMEM,L2` list into [`vgpu_sim::HwStructure`]s
/// (case-insensitive labels, order preserved, duplicates dropped). The
/// error message names the offending label so callers can `exit(2)` with
/// it directly. The canonical implementation lives in the dispatch crate
/// (the job frame carries the same spec string over the wire).
pub fn parse_structures(spec: &str) -> Result<Vec<vgpu_sim::HwStructure>, String> {
    dispatch::parse_structures(spec)
}

/// Turn on observability from CLI/env before running campaigns:
///
/// * `--events PATH` or `RELIA_EVENTS=PATH` — JSONL event sink (one line
///   per injection) plus the metrics registry;
/// * `RELIA_METRICS=1` — metrics registry and phase timers alone;
/// * `RELIA_PROGRESS=1`/`0` — force the stderr progress reporter on/off
///   (default: on exactly when events or metrics are on).
///
/// With none of these set the campaigns run exactly as before: no files,
/// no extra output, identical results (observability never touches the
/// seeded RNG streams).
pub fn init_observability() {
    // Always installed: a panicking campaign must not lose the buffered
    // event/trace lines needed to debug the panic.
    obs::install_panic_hook();
    let args: Vec<String> = std::env::args().collect();
    if args.last().map(String::as_str) == Some("--events") {
        eprintln!("error: --events requires a path");
        std::process::exit(2);
    }
    let events_path = args
        .windows(2)
        .find(|w| w[0] == "--events")
        .map(|w| w[1].clone())
        .or_else(|| std::env::var("RELIA_EVENTS").ok().filter(|s| !s.is_empty()));
    let metrics_on = std::env::var("RELIA_METRICS").is_ok_and(|v| v != "0");
    let mut any = metrics_on;
    if let Some(p) = &events_path {
        if let Err(e) = obs::init_events(std::path::Path::new(p)) {
            eprintln!("error: cannot open events file {p}: {e}");
            std::process::exit(2);
        }
        eprintln!("[obs] writing events to {p}");
        any = true;
    }
    if any {
        obs::set_enabled(true);
    }
    let progress = match std::env::var("RELIA_PROGRESS").ok().as_deref() {
        Some("0") => false,
        Some(_) => true,
        None => any,
    };
    if progress {
        obs::progress::enable();
    }
}

/// Print the final observability summary (metrics snapshot + phase
/// profile) to stderr and flush/close the event sink. No-op when
/// [`init_observability`] enabled nothing.
pub fn finish_observability() {
    obs::progress::finish();
    if obs::enabled() {
        let snap = obs::global().snapshot();
        for t in relia::report::metrics_tables(&snap) {
            eprintln!("{t}");
        }
        eprintln!("{}", relia::report::phase_table(&obs::phase_snapshot()));
    }
    if obs::events_enabled() {
        obs::flush_events().expect("flush events");
        obs::events::shutdown_events();
    }
}

/// Results directory (repo-relative `results/`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Unhardened AVF + SVF campaigns over the whole suite — shared by the
/// Figure 1/2/4/5 and Table I generators.
pub struct BaselineResults {
    pub cfg: CampaignCfg,
    pub apps: Vec<(relia::UarchAppResult, relia::SvfAppResult)>,
}

pub fn run_baseline(cfg: &CampaignCfg) -> BaselineResults {
    let apps = kernels::all_benchmarks()
        .iter()
        .map(|b| {
            eprintln!("[baseline] {} ...", b.name());
            (
                relia::run_uarch_campaign(b.as_ref(), cfg, false),
                relia::run_sw_campaign(b.as_ref(), cfg, false),
            )
        })
        .collect();
    BaselineResults {
        cfg: cfg.clone(),
        apps,
    }
}

#[cfg(test)]
mod tests {
    use vgpu_sim::HwStructure;

    #[test]
    fn parse_structures_accepts_lists_and_rejects_unknowns() {
        assert_eq!(
            super::parse_structures("RF,SMEM,L2").unwrap(),
            vec![HwStructure::RegFile, HwStructure::Smem, HwStructure::L2]
        );
        // Case-insensitive, whitespace-tolerant, dedup preserving order.
        assert_eq!(
            super::parse_structures(" l2 , rf ,L2").unwrap(),
            vec![HwStructure::L2, HwStructure::RegFile]
        );
        assert!(super::parse_structures("RF,SM").unwrap_err().contains("SM"));
        assert!(super::parse_structures("").is_err());
        assert!(super::parse_structures(",,").is_err());
    }
}
