//! Campaign-configuration regressions driven through the real `campaign`
//! binary.
//!
//! The load-bearing one: a **persistent stuck-at fault under a cycle
//! limit**. Stuck-at trials cannot take the masked-convergence early exit,
//! so a run whose semantics diverge (hang, panic, or a classification
//! that depends on the fast-forward path) shows up here. The watchdog
//! compares the *architectural* cost (`total_cost`) against the budget —
//! `simulated_cost` is a scheduling artifact that legitimately differs
//! between the slow and snapshot-resume paths and must never feed
//! classification.

use std::process::Command;

fn campaign(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(args)
        .output()
        .expect("spawn campaign binary")
}

fn run_ok(args: &[&str]) -> String {
    let out = campaign(args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "campaign {args:?} failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn fingerprint(stdout: &str) -> &str {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("result fingerprint: "))
        .expect("run prints a result fingerprint")
}

/// A stuck-at campaign whose every trial blows a tiny cycle budget must
/// terminate promptly and classify the trials as Timeout — not hang
/// waiting for a convergence that can never happen, and not leak the
/// overrun into SDC/DUE.
#[test]
fn stuck_at_with_cycle_limit_classifies_timeout() {
    let stdout = run_ok(&[
        "run",
        "--app",
        "VA",
        "--n",
        "2",
        "--seed",
        "7",
        "--fault-model",
        "stuck-at-1",
        "--cycle-limit",
        "50",
    ]);
    // Table rows are whitespace-aligned "Kernel SDC Timeout DUE AVF"
    // percentages. With a 50-cycle budget every trial that runs to
    // completion overruns it, so the entire SDC mass moves into the
    // Timeout column; only aborted runs (DUE) keep their class.
    let app_row: Vec<&str> = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("app"))
        .expect("app summary row")
        .split_whitespace()
        .collect();
    let (sdc, timeout) = (app_row[1], app_row[2]);
    assert_eq!(
        sdc, "0.00",
        "no completed trial may keep SDC, got {app_row:?}"
    );
    let timeout: f64 = timeout.parse().expect("Timeout column is a number");
    assert!(
        timeout > 0.0,
        "overrunning stuck-at trials must classify Timeout, got {app_row:?}"
    );
}

/// The classification must not depend on the execution path: disabling
/// golden-prefix fast-forward changes `simulated_cost` but nothing the
/// records capture, so the result fingerprints must match bit for bit —
/// also under a cycle limit, where a `simulated_cost`-based watchdog
/// would classify the two paths differently.
#[test]
fn stuck_at_cycle_limit_fingerprint_is_path_independent() {
    let base = [
        "run",
        "--app",
        "VA",
        "--n",
        "3",
        "--seed",
        "11",
        "--fault-model",
        "stuck-at-0",
        "--cycle-limit",
        "2000",
    ];
    let fast = run_ok(&base);
    let mut slow_args = base.to_vec();
    slow_args.push("--no-fast-forward");
    let slow = run_ok(&slow_args);
    assert_eq!(
        fingerprint(&fast),
        fingerprint(&slow),
        "watchdog classification must agree between fast-forward and slow paths"
    );
}

/// Same path-independence for an unlimited stuck-at run (the guard that
/// snapshots plus persistent faults compose), and for a multi-bit burst.
#[test]
fn pattern_runs_are_fast_forward_invariant() {
    for model in ["stuck-at-1", "burst-col"] {
        let base = [
            "run",
            "--app",
            "VA",
            "--n",
            "2",
            "--seed",
            "9",
            "--fault-model",
            model,
        ];
        let fast = run_ok(&base);
        let mut slow_args = base.to_vec();
        slow_args.push("--no-fast-forward");
        let slow = run_ok(&slow_args);
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&slow),
            "{model}: fast-forward must not change results"
        );
    }
}
