//! Uniform exit codes across every `campaign` subcommand:
//!
//! * **2** — CLI/validation errors: unknown subcommands/flags, malformed
//!   values, bad `--listen`/`--connect` addresses, bad lease values;
//! * **1** — runtime failures: unreadable checkpoints, refused
//!   connections, engine errors;
//! * **0** — success.
//!
//! These are load-bearing for scripts/check.sh and any fleet supervisor
//! wrapping `serve`/`work`: a supervisor must be able to tell "my command
//! line is wrong, don't retry" from "the run failed, maybe retry".

use std::process::Command;

fn campaign(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(args)
        .output()
        .expect("spawn campaign binary")
}

fn assert_exit(args: &[&str], want: i32) {
    let out = campaign(args);
    let got = out.status.code().expect("no exit code (signal?)");
    assert_eq!(
        got,
        want,
        "campaign {:?}: want exit {want}, got {got}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn validation_errors_exit_2() {
    // CLI-shape errors, uniformly across subcommands.
    assert_exit(&[], 2);
    assert_exit(&["frobnicate"], 2);
    assert_exit(&["run", "--bogus-flag", "1"], 2);
    assert_exit(&["run"], 2); // missing --app
    assert_exit(&["run", "--app", "VA", "--layer", "quantum"], 2);
    assert_exit(&["run", "--app", "NOPE"], 2);
    assert_exit(&["run", "--app", "VA", "--n", "many"], 2);
    assert_exit(&["run", "--app", "VA", "--structures", "RF,WARP"], 2);
    assert_exit(
        &["run", "--app", "VA", "--layer", "sw", "--structures", "RF"],
        2,
    );
    assert_exit(
        &["run", "--app", "VA", "--shards", "2", "--shard-index", "2"],
        2,
    );
    assert_exit(&["merge"], 2); // no shard files
    assert_exit(&["merge", "missing.jsonl"], 2); // no --app
}

#[test]
fn fault_model_validation_errors_exit_2() {
    // Unknown pattern names must die before any simulation starts, on
    // every subcommand that accepts the flag.
    assert_exit(&["run", "--app", "VA", "--fault-model", "bogus"], 2);
    assert_exit(&["run", "--app", "VA", "--fault-model", ""], 2);
    assert_exit(&["serve", "--app", "VA", "--fault-model", "warp-drive"], 2);
    // SIMT/SCHED state is ephemeral: a transient flip there is not a
    // meaningful model, only stuck-at campaigns may target it.
    assert_exit(&["run", "--app", "VA", "--structures", "SIMT,SCHED"], 2);
    assert_exit(
        &[
            "run",
            "--app",
            "VA",
            "--structures",
            "RF,SIMT",
            "--fault-model",
            "burst-row",
        ],
        2,
    );
}

#[test]
fn backend_validation_errors_exit_2() {
    // Unknown backend labels must die before any simulation starts, on
    // both subcommands that accept the flag.
    assert_exit(&["run", "--app", "VA", "--backend", "quantum"], 2);
    assert_exit(&["run", "--app", "VA", "--backend", ""], 2);
    assert_exit(&["serve", "--app", "VA", "--backend", "bogus"], 2);
    assert_exit(&["run", "--app", "VA", "--backend"], 2); // missing value
                                                          // Replay adjudicates against the golden trace and re-executes
                                                          // fallback trials from fast-forward snapshots; forcing the slow path
                                                          // alongside it is a contradiction, not a degraded mode.
    assert_exit(
        &[
            "run",
            "--app",
            "VA",
            "--backend",
            "replay",
            "--no-fast-forward",
        ],
        2,
    );
}

#[test]
fn adaptive_validation_errors_exit_2() {
    // Malformed adaptive sizing flags must die before any simulation
    // starts (docs/TWOLEVEL.md), on both `run` and `serve`.
    assert_exit(&["run", "--app", "VA", "--adaptive", "--ci-target", "0"], 2);
    assert_exit(
        &["run", "--app", "VA", "--adaptive", "--ci-target", "1.5"],
        2,
    );
    assert_exit(
        &["run", "--app", "VA", "--adaptive", "--ci-target", "abc"],
        2,
    );
    assert_exit(&["run", "--app", "VA", "--adaptive", "--wave-size", "0"], 2);
    assert_exit(
        &[
            "run",
            "--app",
            "VA",
            "--adaptive",
            "--wave-size",
            "8",
            "--max-trials",
            "4",
        ],
        2,
    );
    // Adaptive-only flags without --adaptive are a usage error, not a
    // silent no-op.
    assert_exit(&["run", "--app", "VA", "--ci-target", "0.1"], 2);
    assert_exit(&["run", "--app", "VA", "--wave-size", "8"], 2);
    assert_exit(&["run", "--app", "VA", "--max-trials", "64"], 2);
    // Adaptive campaigns are single-process per wave; sharding and fixed
    // telemetry ports belong to serve/work.
    assert_exit(&["run", "--app", "VA", "--adaptive", "--shards", "3"], 2);
    assert_exit(
        &[
            "serve",
            "--app",
            "VA",
            "--adaptive",
            "--telemetry-port",
            "0",
        ],
        2,
    );
    assert_exit(&["serve", "--app", "VA", "--ci-target", "0.1"], 2);
}

#[test]
fn dispatch_validation_errors_exit_2() {
    // Bad --listen / --connect addresses and lease values (satellite 2).
    assert_exit(&["serve", "--app", "VA", "--listen", "nonsense"], 2);
    assert_exit(&["serve", "--app", "VA", "--listen", "host:NaN"], 2);
    assert_exit(&["serve", "--app", "VA", "--lease-ms", "0"], 2);
    assert_exit(&["serve", "--app", "VA", "--shards", "0"], 2);
    assert_exit(
        &[
            "serve",
            "--app",
            "VA",
            "--backoff-ms",
            "500",
            "--max-backoff-ms",
            "100",
        ],
        2,
    );
    assert_exit(&["serve"], 2); // missing --app
                                // Watchdog limits are machine-dependent, so serve refuses them.
    assert_exit(&["serve", "--app", "VA", "--wall-limit-us", "1000"], 2);
    assert_exit(&["work"], 2); // missing --connect
    assert_exit(&["work", "--connect", "noport"], 2);
    assert_exit(&["work", "--connect", ":123"], 2);
    assert_exit(&["work", "--connect", "127.0.0.1:99999"], 2);
    assert_exit(
        &["work", "--connect", "127.0.0.1:80", "--heartbeat-ms", "0"],
        2,
    );
}

#[test]
fn telemetry_validation_errors_exit_2() {
    // Telemetry flags and the status/top/scrape/timeline consumers.
    assert_exit(&["serve", "--app", "VA", "--telemetry-port", "70000"], 2);
    assert_exit(
        &["serve", "--app", "VA", "--telemetry-port-file", "p.txt"],
        2,
    ); // port file without a port
    assert_exit(
        &[
            "work",
            "--connect",
            "127.0.0.1:80",
            "--telemetry-port-file",
            "p.txt",
        ],
        2,
    );
    assert_exit(&["status"], 2); // missing ADDR
    assert_exit(&["status", "nonsense"], 2);
    assert_exit(&["top"], 2);
    assert_exit(&["top", "127.0.0.1:80", "--interval-ms", "0"], 2);
    assert_exit(&["top", "127.0.0.1:80", "--bogus"], 2);
    assert_exit(&["scrape"], 2);
    assert_exit(&["timeline"], 2); // no files
}

#[test]
fn telemetry_runtime_failures_exit_1() {
    // A dead port is a runtime failure for every poller, and a missing
    // events file is a runtime failure for the timeline renderer.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    assert_exit(&["status", &addr], 1);
    assert_exit(&["scrape", &addr], 1);
    assert_exit(&["timeline", "/definitely/not/events.jsonl"], 1);
}

#[test]
fn runtime_failures_exit_1() {
    // Unreadable checkpoint: well-formed command, failing execution.
    assert_exit(
        &["merge", "--app", "VA", "/definitely/not/a/real/file.jsonl"],
        1,
    );
    // Connection refused: find a port with no listener by binding then
    // dropping it (racy in theory, dead port in practice).
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    assert_exit(&["work", "--connect", &format!("127.0.0.1:{port}")], 1);
}

#[test]
fn success_exits_0() {
    let out = campaign(&["run", "--app", "VA", "--n", "2", "--seed", "7"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("result fingerprint"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
