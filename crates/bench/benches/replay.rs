//! Campaign trial throughput of the trace-replay backend against the
//! timed backend (docs/TRACE.md). Both classify byte-identically — the
//! differential tests prove that — so this bench measures only the cost
//! structure replay changes: trials whose fault footprint is provably
//! dead in the recorded golden trace synthesize their record without
//! simulating, and only live-footprint trials re-execute.

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::apps::scp::Scp;
use relia::{execute_trials_with, prepare_uarch_campaign, CampaignCfg, EngineBackend, FastForward};

fn bench_replay(c: &mut Criterion) {
    let cfg = CampaignCfg::new(4, 0, 0xBE9C_AE01);
    let prep = prepare_uarch_campaign(&Scp, &cfg, false);
    let idxs: Vec<usize> = (0..prep.plan.len()).collect();
    // Capture the trace and snapshot set up front so the one-off
    // instrumented golden passes are not attributed to the first replay
    // sample — in a real campaign they amortize over thousands of trials.
    let _ = prep.trace();
    let _ = prep.snapshots(relia::DEFAULT_SNAPSHOTS);

    let mut g = c.benchmark_group("replay");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("replay", |b| {
        b.iter(|| {
            let ff = FastForward {
                backend: EngineBackend::Replay,
                ..FastForward::default()
            };
            execute_trials_with(&prep, ff, &idxs, |_| Ok(())).unwrap()
        })
    });
    g.bench_function("timed", |b| {
        b.iter(|| execute_trials_with(&prep, FastForward::default(), &idxs, |_| Ok(())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
