//! Microbenchmarks of the cache hierarchy — the hot path of the timed
//! engine (every global access funnels through `load_via`/`store_via`).

use criterion::{criterion_group, criterion_main, Criterion};
use vgpu_sim::cache::{load_via, store_via, Cache};
use vgpu_sim::{GlobalMem, GpuConfig};

fn bench_cache(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut g = c.benchmark_group("cache");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    g.bench_function("load_hit", |b| {
        let mut l1 = Cache::new(cfg.l1d.clone());
        let mut l2 = Cache::new(cfg.l2.clone());
        let mut mem = GlobalMem::new(1 << 20);
        mem.map(0, 1 << 20);
        let (mut mr, mut mw) = (0, 0);
        load_via(
            &mut l1, &mut l2, &mut mem, 0, 0, &cfg.lat, &mut mr, &mut mw, None,
        );
        let mut now = 10_000u64;
        b.iter(|| {
            now += 100;
            load_via(
                &mut l1, &mut l2, &mut mem, 64, now, &cfg.lat, &mut mr, &mut mw, None,
            )
        })
    });

    g.bench_function("load_streaming_miss", |b| {
        let mut l1 = Cache::new(cfg.l1d.clone());
        let mut l2 = Cache::new(cfg.l2.clone());
        let mut mem = GlobalMem::new(1 << 22);
        mem.map(0, 1 << 22);
        let (mut mr, mut mw) = (0, 0);
        let mut addr = 0u32;
        let mut now = 0u64;
        b.iter(|| {
            addr = (addr + 128) & ((1 << 22) - 1);
            now += 500;
            load_via(
                &mut l1, &mut l2, &mut mem, addr, now, &cfg.lat, &mut mr, &mut mw, None,
            )
        })
    });

    g.bench_function("store_through", |b| {
        let mut l1 = Cache::new(cfg.l1d.clone());
        let mut l2 = Cache::new(cfg.l2.clone());
        let mut mem = GlobalMem::new(1 << 20);
        mem.map(0, 1 << 20);
        let (mut mr, mut mw) = (0, 0);
        let mut i = 0u32;
        let mut now = 0u64;
        b.iter(|| {
            i = (i + 4) & 0xFFFF;
            now += 100;
            store_via(
                &mut l1, &mut l2, &mut mem, i, i, now, &cfg.lat, &mut mr, &mut mw, None,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
