//! Per-injection cost at each abstraction layer (the paper's footnote 1:
//! AVF campaigns cost orders of magnitude more than SVF campaigns).

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::apps::hotspot::HotSpot;
use kernels::{faulty_run, golden_run, PlannedFault, Variant};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vgpu_sim::{GpuConfig, HwStructure, SwFault, SwFaultKind, UarchFault};

fn bench_injections(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let gt = golden_run(&HotSpot, &cfg, Variant::TIMED);
    let gf = golden_run(&HotSpot, &cfg, Variant::FUNCTIONAL);
    let mut g = c.benchmark_group("injection");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    for &h in &[HwStructure::RegFile, HwStructure::L2] {
        g.bench_function(format!("uarch/{}", h.label()), |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| {
                let ordinal = rng.gen_range(0..gt.records.len());
                let fault = PlannedFault::Uarch(UarchFault {
                    cycle: rng.gen_range(0..gt.records[ordinal].stats.cycles.max(1)),
                    structure: h,
                    loc_pick: rng.gen(),
                    bit: rng.gen_range(0..32),
                    pattern: vgpu_sim::FaultPattern::SingleBit,
                });
                faulty_run(&HotSpot, &cfg, Variant::TIMED, &gt, ordinal, fault)
            })
        });
    }

    g.bench_function("sw/dest_value", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let ordinal = rng.gen_range(0..gf.records.len());
            let fault = PlannedFault::Sw(SwFault {
                kind: SwFaultKind::DestValue,
                target: rng.gen_range(0..gf.records[ordinal].stats.gp_dest_instrs.max(1)),
                bit: rng.gen_range(0..32),
                loc_pick: 0,
                pattern: vgpu_sim::FaultPattern::SingleBit,
            });
            faulty_run(&HotSpot, &cfg, Variant::FUNCTIONAL, &gf, ordinal, fault)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_injections);
criterion_main!(benches);
