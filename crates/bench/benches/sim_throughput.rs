//! Simulator throughput: fault-free golden runs of representative
//! benchmarks on both engines. The timed/functional gap is one factor of
//! the paper's footnote-1 cost asymmetry between AVF and SVF campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::apps::{hotspot::HotSpot, scp::Scp, va::Va};
use kernels::{golden_run, Benchmark, Variant};
use vgpu_sim::GpuConfig;

fn bench_engines(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let apps: [(&str, &dyn Benchmark); 3] = [("va", &Va), ("scp", &Scp), ("hotspot", &HotSpot)];
    let mut g = c.benchmark_group("golden_run");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, bench) in apps {
        g.bench_function(format!("{name}/timed"), |b| {
            b.iter(|| golden_run(bench, &cfg, Variant::TIMED))
        });
        g.bench_function(format!("{name}/functional"), |b| {
            b.iter(|| golden_run(bench, &cfg, Variant::FUNCTIONAL))
        });
        g.bench_function(format!("{name}/timed_tmr"), |b| {
            b.iter(|| golden_run(bench, &cfg, Variant::TIMED_TMR))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
