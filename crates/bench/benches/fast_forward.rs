//! Campaign trial throughput with and without golden-prefix fast-forward
//! (docs/PERF.md). Both paths classify byte-identically — that is proven
//! by the differential tests — so this bench measures only the speedup
//! from skipping pre-fault launches, resuming from mid-launch snapshots,
//! and exiting early on masked convergence.

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::apps::scp::Scp;
use relia::{execute_trials_with, prepare_uarch_campaign, CampaignCfg, FastForward};

fn bench_fast_forward(c: &mut Criterion) {
    let cfg = CampaignCfg::new(4, 0, 0xBE9C_FF01);
    let prep = prepare_uarch_campaign(&Scp, &cfg, false);
    let idxs: Vec<usize> = (0..prep.plan.len()).collect();
    // Capture the snapshot set up front so the one-off instrumented
    // golden pass is not attributed to the first fast-forward sample —
    // in a real campaign it amortizes over thousands of trials.
    let _ = prep.snapshots(relia::DEFAULT_SNAPSHOTS);

    let mut g = c.benchmark_group("fast_forward");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("on", |b| {
        b.iter(|| execute_trials_with(&prep, FastForward::default(), &idxs, |_| Ok(())).unwrap())
    });
    g.bench_function("off", |b| {
        b.iter(|| execute_trials_with(&prep, FastForward::disabled(), &idxs, |_| Ok(())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_fast_forward);
criterion_main!(benches);
