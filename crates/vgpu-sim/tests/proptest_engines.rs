//! Differential property tests: the cycle-level engine and the functional
//! engine must compute identical architectural results for arbitrary
//! programs, and fault injection must never break the machine (every run
//! terminates in one of the four outcome classes).

use proptest::prelude::*;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, LaunchConfig, MemSpace, Operand, Reg};
use vgpu_sim::{
    ArenaPlanner, Budget, FaultPlan, Gpu, GpuConfig, HwStructure, Mode, SwFault, SwFaultKind,
    SwInjector, UarchFault, UarchInjector,
};

/// A random but *safe* kernel: ALU soup over 6 data registers driven by
/// lane identity, finished by a store of the mixed result — no wild
/// addresses, no divergence hazards beyond predication.
fn random_kernel(ops: &[u8], with_loop: bool) -> Kernel {
    let mut a = KernelBuilder::new("prop");
    let (gid, tmp, addr) = (a.reg(), a.reg(), a.reg());
    let regs: Vec<Reg> = (0..6).map(|_| a.reg()).collect();
    let p = a.pred();
    a.linear_tid(gid, tmp);
    for (i, &r) in regs.iter().enumerate() {
        a.imad(
            r,
            gid,
            Operand::Imm((i as u32).wrapping_mul(2654435761)),
            Operand::Imm(i as u32 + 1),
        );
    }
    let emit = |a: &mut KernelBuilder, code: u8| {
        let d = regs[(code % 6) as usize];
        let x = regs[((code >> 2) % 6) as usize];
        let y = regs[((code >> 4) % 6) as usize];
        match code % 8 {
            0 => a.iadd(d, x, Operand::Reg(y)),
            1 => a.imul(d, x, Operand::Reg(y)),
            2 => a.xor(d, x, Operand::Reg(y)),
            3 => a.iscadd(d, x, Operand::Reg(y), code % 5),
            4 => a.fadd(d, x, Operand::Reg(y)),
            5 => a.ffma(d, x, Operand::Reg(y), Operand::imm_f32(0.5)),
            6 => a.shr(d, x, (code % 31) as u32),
            _ => a.imax(d, x, Operand::Reg(y), true),
        }
    };
    if with_loop {
        let i = a.reg();
        let q = a.pred();
        a.mov(i, 0u32);
        a.loop_while(|a| {
            for &code in ops {
                emit(a, code);
            }
            a.iadd(i, i, 1u32);
            // Divergent trip count: lane-dependent bound.
            a.and(tmp, gid, 3u32);
            a.iadd(tmp, tmp, 1u32);
            a.isetp(q, i, Operand::Reg(tmp), CmpOp::Lt, true);
            (q, false)
        });
    } else {
        for &code in ops {
            emit(&mut a, code);
        }
    }
    // Predicated mixing, then store the whole state.
    a.isetp(p, gid, 17u32, CmpOp::Gt, true);
    a.predicated(p, false, |a| a.xor(regs[0], regs[1], Operand::Reg(regs[2])));
    let mut acc = regs[0];
    for &r in &regs[1..] {
        a.xor(acc, acc, Operand::Reg(r));
        acc = regs[0];
    }
    a.mov(addr, a.param(0));
    a.iscadd(addr, gid, Operand::Reg(addr), 2);
    a.st(MemSpace::Global, addr, 0, regs[0]);
    a.build().unwrap()
}

fn run(kernel: &Kernel, mode: Mode, n: u32) -> Vec<u32> {
    let mut planner = ArenaPlanner::new();
    let out = planner.alloc(n * 4);
    let mem = planner.build();
    let mut gpu = Gpu::new(GpuConfig::default(), mem, mode);
    let lc = LaunchConfig::new(n / 64, 64, vec![out]);
    gpu.launch(kernel, &lc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    gpu.host_read_block(out, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Timed and functional engines agree on arbitrary ALU programs.
    #[test]
    fn engines_agree_on_random_programs(
        ops in prop::collection::vec(any::<u8>(), 1..40),
        with_loop in any::<bool>(),
    ) {
        let k = random_kernel(&ops, with_loop);
        let n = 256;
        prop_assert_eq!(run(&k, Mode::Timed, n), run(&k, Mode::Functional, n));
    }

    /// Any microarchitecture fault either completes (masked/SDC) or aborts
    /// cleanly — the simulator must never panic, hang, or corrupt itself.
    #[test]
    fn uarch_faults_always_classify(
        ops in prop::collection::vec(any::<u8>(), 1..20),
        cycle_frac in 0.0f64..1.0,
        pick in any::<u64>(),
        bit in 0u8..32,
        structure in 0usize..5,
    ) {
        let k = random_kernel(&ops, false);
        let n = 256;
        let golden = {
            let mut planner = ArenaPlanner::new();
            let out = planner.alloc(n * 4);
            let mem = planner.build();
            let mut gpu = Gpu::new(GpuConfig::default(), mem, Mode::Timed);
            let lc = LaunchConfig::new(n / 64, 64, vec![out]);
            gpu.launch(&k, &lc, FaultPlan::None, &Budget::unlimited()).unwrap()
        };
        let mut planner = ArenaPlanner::new();
        let out = planner.alloc(n * 4);
        let mem = planner.build();
        let mut gpu = Gpu::new(GpuConfig::default(), mem, Mode::Timed);
        let lc = LaunchConfig::new(n / 64, 64, vec![out]);
        let mut inj = UarchInjector::new(UarchFault {
            cycle: ((golden.cycles as f64) * cycle_frac) as u64,
            structure: HwStructure::ALL[structure],
            loc_pick: pick,
            bit,
            pattern: vgpu_sim::FaultPattern::SingleBit,
        });
        let budget = Budget { cycles: golden.cycles * 10 + 1000, instrs: u64::MAX / 2 };
        // Either outcome is fine; not panicking/hanging is the property.
        let _ = gpu.launch(&k, &lc, FaultPlan::Uarch(&mut inj), &budget);
    }

    /// Software faults likewise always classify, and a fault whose target
    /// index lies inside the eligible stream is always applied.
    #[test]
    fn sw_faults_always_classify_and_apply(
        ops in prop::collection::vec(any::<u8>(), 1..20),
        frac in 0.0f64..1.0,
        bit in 0u8..32,
    ) {
        let k = random_kernel(&ops, false);
        let n = 256;
        let golden = {
            let mut planner = ArenaPlanner::new();
            let out = planner.alloc(n * 4);
            let mem = planner.build();
            let mut gpu = Gpu::new(GpuConfig::default(), mem, Mode::Functional);
            let lc = LaunchConfig::new(n / 64, 64, vec![out]);
            gpu.launch(&k, &lc, FaultPlan::None, &Budget::unlimited()).unwrap()
        };
        let target = ((golden.gp_dest_instrs.saturating_sub(1)) as f64 * frac) as u64;
        let mut planner = ArenaPlanner::new();
        let out = planner.alloc(n * 4);
        let mem = planner.build();
        let mut gpu = Gpu::new(GpuConfig::default(), mem, Mode::Functional);
        let lc = LaunchConfig::new(n / 64, 64, vec![out]);
        let mut inj = SwInjector::new(SwFault { kind: SwFaultKind::DestValue, target, bit, loc_pick: 0, pattern: vgpu_sim::FaultPattern::SingleBit });
        let budget = Budget { cycles: u64::MAX / 2, instrs: golden.thread_instrs * 10 + 1000 };
        let res = gpu.launch(&k, &lc, FaultPlan::Sw(&mut inj), &budget);
        if res.is_ok() {
            prop_assert!(inj.applied, "in-stream target must fire");
        }
    }
}
