//! Property tests for the fault-pattern geometry: for arbitrary structure
//! geometries and seed sites, every [`FaultPattern`] footprint must stay
//! inside the structure, touch exactly the bit set docs/FAULT_MODELS.md
//! documents, and stuck-at forcing must be idempotent.

use proptest::prelude::*;
use vgpu_sim::{apply_stuck, pattern_footprint, value_mask, FaultPattern, BURST_COL_ROWS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No pattern ever writes outside the structure: every entry index is
    /// in bounds, every mask fits in the entry width, and no entry shows
    /// up twice (transient flips must never cancel themselves out).
    #[test]
    fn footprints_stay_in_bounds(
        entries in 1u64..4096,
        width in 1u8..=32,
        row in 0u64..128,
        entry in any::<u64>(),
        bit in any::<u8>(),
        which in 0usize..FaultPattern::ALL.len(),
    ) {
        let pattern = FaultPattern::ALL[which];
        let sites = pattern_footprint(pattern, entry, bit, entries, width, row);
        prop_assert!(!sites.is_empty(), "a fault must corrupt something");
        let width_mask = if width >= 32 { !0u32 } else { (1u32 << width) - 1 };
        for &(e, m) in &sites {
            prop_assert!(e < entries, "entry {} out of {}", e, entries);
            prop_assert_ne!(m, 0, "empty mask at entry {}", e);
            prop_assert_eq!(m & !width_mask, 0, "mask {:#x} exceeds width {}", m, width);
        }
        let mut idxs: Vec<u64> = sites.iter().map(|s| s.0).collect();
        idxs.sort_unstable();
        idxs.dedup();
        prop_assert_eq!(idxs.len(), sites.len(), "duplicate entry in footprint");
    }

    /// Each pattern touches exactly its documented bit set — checked
    /// against an independent recomputation of the documented shape.
    #[test]
    fn footprints_match_documented_shapes(
        entries in 1u64..4096,
        width in 1u8..=32,
        row in 0u64..128,
        entry in any::<u64>(),
        bit in any::<u8>(),
        which in 0usize..FaultPattern::ALL.len(),
    ) {
        let pattern = FaultPattern::ALL[which];
        let sites = pattern_footprint(pattern, entry, bit, entries, width, row);
        let seed_entry = entry % entries;
        let b = u32::from(bit) % u32::from(width);
        let row = row.max(1);
        let expected: Vec<(u64, u32)> = match pattern {
            FaultPattern::SingleBit | FaultPattern::StuckAt0 | FaultPattern::StuckAt1 =>
                vec![(seed_entry, 1 << b)],
            FaultPattern::DoubleAdjacent => {
                let next = (b + 1) % u32::from(width);
                vec![(seed_entry, (1 << b) | (1 << next))]
            }
            FaultPattern::WholeEntry => {
                let m = if width >= 32 { !0 } else { (1u32 << width) - 1 };
                vec![(seed_entry, m)]
            }
            FaultPattern::BurstRow => {
                let start = seed_entry - seed_entry % row;
                (start..entries.min(start + row)).map(|e| (e, 1 << b)).collect()
            }
            FaultPattern::BurstCol =>
                (0..BURST_COL_ROWS)
                    .filter_map(|r| {
                        let e = seed_entry.checked_add(r * row)?;
                        (e < entries).then_some((e, 1u32 << b))
                    })
                    .collect(),
        };
        prop_assert_eq!(sites, expected);
    }

    /// A one-bit-wide double-adjacent footprint degenerates to the single
    /// bit (wrap maps b+1 onto b) — corner of the wrap rule worth pinning.
    #[test]
    fn double_adjacent_on_one_bit_entries_degenerates(
        entries in 1u64..256,
        entry in any::<u64>(),
        bit in any::<u8>(),
    ) {
        let sites = pattern_footprint(FaultPattern::DoubleAdjacent, entry, bit, entries, 1, 4);
        prop_assert_eq!(sites, vec![(entry % entries, 1u32)]);
    }

    /// Stuck-at forcing is idempotent and only ever touches masked bits.
    #[test]
    fn stuck_application_is_idempotent(
        word in any::<u32>(),
        mask in any::<u32>(),
        value in any::<bool>(),
    ) {
        let once = apply_stuck(word, mask, value);
        prop_assert_eq!(apply_stuck(once, mask, value), once, "double application must be a no-op");
        prop_assert_eq!(once & !mask, word & !mask, "unmasked bits must survive");
        let forced = if value { mask } else { 0 };
        prop_assert_eq!(once & mask, forced, "masked bits must equal the stuck value");
    }

    /// The single-value mask (software faults, SIMT/scheduler words) is
    /// nonzero and always covers the seed bit; stuck-at patterns pin
    /// exactly one cell.
    #[test]
    fn value_masks_cover_seed_bit(
        bit in any::<u8>(),
        which in 0usize..FaultPattern::ALL.len(),
    ) {
        let pattern = FaultPattern::ALL[which];
        let m = value_mask(pattern, bit);
        prop_assert_ne!(m, 0);
        prop_assert_ne!(m & (1 << (u32::from(bit) % 32)), 0, "seed bit not in mask {:#x}", m);
        if pattern.is_persistent() {
            prop_assert_eq!(m.count_ones(), 1);
        }
    }
}
