//! End-to-end engine tests: timed vs functional equivalence, timing-model
//! sanity, barriers across warps, and fault application plumbing.

use vgpu_arch::{CmpOp, KernelBuilder, LaunchConfig, MemSpace, SpecialReg};
use vgpu_sim::{
    ArenaPlanner, Budget, FaultPlan, Gpu, GpuConfig, HwStructure, Mode, SwFault, SwFaultKind,
    SwInjector, UarchFault, UarchInjector,
};

/// y[i] = a*x[i] + y[i] over n elements, one thread per element.
fn saxpy_kernel() -> vgpu_arch::Kernel {
    let mut a = KernelBuilder::new("saxpy");
    let (gid, tmp, xa, ya, xv, yv) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    a.linear_tid(gid, tmp);
    a.mov(tmp, a.param(3)); // n
    a.isetp(p, gid, tmp, CmpOp::Lt, true);
    a.if_then(p, false, |a| {
        a.mov(xa, a.param(0));
        a.iscadd(xa, gid, xa, 2);
        a.mov(ya, a.param(1));
        a.iscadd(ya, gid, ya, 2);
        a.ld(xv, MemSpace::Global, xa, 0);
        a.ld(yv, MemSpace::Global, ya, 0);
        let coef = a.reg();
        a.mov(coef, a.param(2));
        a.ffma(
            yv,
            xv,
            vgpu_arch::Operand::Reg(coef),
            vgpu_arch::Operand::Reg(yv),
        );
        a.st(MemSpace::Global, ya, 0, yv);
    });
    a.build().unwrap()
}

/// Per-CTA shared-memory reduction with a barrier, then one store per CTA.
fn reduce_kernel() -> vgpu_arch::Kernel {
    let mut a = KernelBuilder::new("reduce");
    let smem = a.alloc_smem(256 * 4);
    assert_eq!(smem, 0);
    let (tid, gid, tmp, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    a.s2r(tid, SpecialReg::TidX);
    a.linear_tid(gid, tmp);
    // smem[tid] = in[gid]
    a.mov(addr, a.param(0));
    a.iscadd(addr, gid, addr, 2);
    a.ld(v, MemSpace::Global, addr, 0);
    a.shl(addr, tid, 2u32);
    a.st(MemSpace::Shared, addr, 0, v);
    a.bar();
    // Tree reduction by thread 0 (simple, exercises smem + divergence).
    a.isetp(p, tid, 0u32, CmpOp::Eq, true);
    a.if_then(p, false, |a| {
        let (acc, i, w) = (a.reg(), a.reg(), a.reg());
        let q = a.pred();
        a.mov(acc, 0u32);
        a.mov(i, 0u32);
        a.loop_while(|a| {
            a.shl(w, i, 2u32);
            a.ld(w, MemSpace::Shared, w, 0);
            a.iadd(acc, acc, w);
            a.iadd(i, i, 1u32);
            a.s2r(w, SpecialReg::NTidX);
            a.isetp(q, i, vgpu_arch::Operand::Reg(w), CmpOp::Lt, true);
            (q, false)
        });
        // out[ctaid] = acc
        let o = a.reg();
        a.s2r(o, SpecialReg::CtaIdX);
        a.mov(w, a.param(1));
        a.iscadd(o, o, w, 2);
        a.st(MemSpace::Global, o, 0, acc);
    });
    a.build().unwrap()
}

struct SaxpySetup {
    gpu: Gpu,
    lc: LaunchConfig,
    y_addr: u32,
    n: u32,
}

fn saxpy_setup(mode: Mode, n: u32) -> SaxpySetup {
    let mut planner = ArenaPlanner::new();
    let x = planner.alloc(n * 4);
    let y = planner.alloc(n * 4);
    let mut mem = planner.build();
    for i in 0..n {
        mem.write_u32(x + i * 4, (i as f32).to_bits());
        mem.write_u32(y + i * 4, (2.0f32).to_bits());
    }
    let gpu = Gpu::new(GpuConfig::default(), mem, mode);
    let lc = LaunchConfig::new(n.div_ceil(128), 128, vec![x, y, 3.0f32.to_bits(), n]);
    SaxpySetup {
        gpu,
        lc,
        y_addr: y,
        n,
    }
}

#[test]
fn saxpy_functional_correct() {
    let k = saxpy_kernel();
    let mut s = saxpy_setup(Mode::Functional, 1000);
    let stats = s
        .gpu
        .launch(&k, &s.lc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    for i in 0..s.n {
        assert_eq!(
            s.gpu.host_read_f32(s.y_addr + i * 4),
            3.0 * i as f32 + 2.0,
            "i={i}"
        );
    }
    assert_eq!(stats.cycles, 0, "functional mode has no cycle model");
    assert!(stats.thread_instrs > 0);
    assert_eq!(stats.load_instrs, 2000);
    assert_eq!(stats.store_instrs, 1000);
}

#[test]
fn saxpy_timed_matches_functional() {
    let k = saxpy_kernel();
    let n = 1000;
    let mut f = saxpy_setup(Mode::Functional, n);
    let mut t = saxpy_setup(Mode::Timed, n);
    f.gpu
        .launch(&k, &f.lc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    let ts = t
        .gpu
        .launch(&k, &t.lc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    for i in 0..n {
        assert_eq!(
            t.gpu.host_read_u32(t.y_addr + i * 4),
            f.gpu.host_read_u32(f.y_addr + i * 4),
            "i={i}"
        );
    }
    assert!(ts.cycles > 0);
    assert!(ts.l1d.accesses > 0, "loads went through L1D");
    assert!(ts.l2.accesses > 0);
    assert!(ts.mem_reads > 0, "cold misses reached DRAM");
    assert!(ts.occupancy() > 0.0 && ts.occupancy() <= 1.0);
}

#[test]
fn reduce_with_barrier_timed_and_functional_agree() {
    let k = reduce_kernel();
    let n_ctas = 8u32;
    let block = 256u32;
    let n = n_ctas * block;
    let build = |mode| {
        let mut planner = ArenaPlanner::new();
        let inp = planner.alloc(n * 4);
        let out = planner.alloc(n_ctas * 4);
        let mut mem = planner.build();
        for i in 0..n {
            mem.write_u32(inp + i * 4, i % 17);
        }
        let gpu = Gpu::new(GpuConfig::default(), mem, mode);
        let lc = LaunchConfig::new(n_ctas, block, vec![inp, out]);
        (gpu, lc, out)
    };
    let (mut fg, flc, fout) = build(Mode::Functional);
    let (mut tg, tlc, tout) = build(Mode::Timed);
    fg.launch(&k, &flc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    tg.launch(&k, &tlc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    for c in 0..n_ctas {
        let expect: u32 = (0..block).map(|t| (c * block + t) % 17).sum();
        assert_eq!(fg.host_read_u32(fout + c * 4), expect, "functional cta {c}");
        assert_eq!(tg.host_read_u32(tout + c * 4), expect, "timed cta {c}");
    }
}

#[test]
fn timed_run_is_deterministic() {
    let k = saxpy_kernel();
    let run = || {
        let mut s = saxpy_setup(Mode::Timed, 512);
        s.gpu
            .launch(&k, &s.lc, FaultPlan::None, &Budget::unlimited())
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical runs must produce identical statistics");
}

#[test]
fn uarch_rf_fault_changes_or_masks_but_never_panics() {
    let k = saxpy_kernel();
    let golden = {
        let mut s = saxpy_setup(Mode::Timed, 512);
        s.gpu
            .launch(&k, &s.lc, FaultPlan::None, &Budget::unlimited())
            .unwrap()
    };
    let mut outcomes = [0u32; 3]; // masked, sdc, aborted
    for trial in 0..40u64 {
        let mut s = saxpy_setup(Mode::Timed, 512);
        let mut inj = UarchInjector::new(UarchFault {
            cycle: (trial * 97) % golden.cycles.max(1),
            structure: HwStructure::RegFile,
            loc_pick: trial.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            bit: (trial % 32) as u8,
            pattern: vgpu_sim::FaultPattern::SingleBit,
        });
        let budget = Budget {
            cycles: golden.cycles * 10 + 1000,
            instrs: u64::MAX / 2,
        };
        match s.gpu.launch(&k, &s.lc, FaultPlan::Uarch(&mut inj), &budget) {
            Ok(_) => {
                assert!(inj.applied);
                let mut sdc = false;
                let mut clean = saxpy_setup(Mode::Timed, 512);
                clean
                    .gpu
                    .launch(&k, &clean.lc, FaultPlan::None, &Budget::unlimited())
                    .unwrap();
                for i in 0..512 {
                    if s.gpu.host_read_u32(s.y_addr + i * 4)
                        != clean.gpu.host_read_u32(clean.y_addr + i * 4)
                    {
                        sdc = true;
                        break;
                    }
                }
                outcomes[if sdc { 1 } else { 0 }] += 1;
            }
            Err(_) => outcomes[2] += 1,
        }
    }
    // With real register-file faults some runs must be masked; usually at
    // least one corrupts data or crashes.
    assert!(outcomes[0] > 0, "some faults must be masked: {outcomes:?}");
    assert!(
        outcomes[1] + outcomes[2] > 0,
        "some faults must be visible: {outcomes:?}"
    );
}

#[test]
fn uarch_cache_fault_applies_to_whole_array() {
    let k = saxpy_kernel();
    let mut s = saxpy_setup(Mode::Timed, 256);
    let mut inj = UarchInjector::new(UarchFault {
        cycle: 10,
        structure: HwStructure::L2,
        loc_pick: 123_456_789,
        bit: 3,
        pattern: vgpu_sim::FaultPattern::SingleBit,
    });
    let _ = s
        .gpu
        .launch(&k, &s.lc, FaultPlan::Uarch(&mut inj), &Budget::unlimited());
    assert!(inj.applied);
    let cfg = GpuConfig::default();
    assert_eq!(inj.population, cfg.l2.bytes as u64 * 8);
}

#[test]
fn sw_fault_in_functional_mode() {
    let k = saxpy_kernel();
    // Golden eligible-instruction count.
    let mut g = saxpy_setup(Mode::Functional, 256);
    let gs = g
        .gpu
        .launch(&k, &g.lc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    assert!(gs.gp_dest_instrs > 0);
    let mut hit_any_sdc = false;
    for t in 0..20 {
        let mut s = saxpy_setup(Mode::Functional, 256);
        let mut inj = SwInjector::new(SwFault {
            kind: SwFaultKind::DestValue,
            target: (t * 131) % gs.gp_dest_instrs,
            bit: 30,
            loc_pick: 0,
            pattern: vgpu_sim::FaultPattern::SingleBit,
        });
        let budget = Budget {
            cycles: u64::MAX / 2,
            instrs: gs.thread_instrs * 10 + 1000,
        };
        if s.gpu
            .launch(&k, &s.lc, FaultPlan::Sw(&mut inj), &budget)
            .is_ok()
        {
            assert!(inj.applied, "target index within population must apply");
            for i in 0..256 {
                if s.gpu.host_read_f32(s.y_addr + i * 4) != 3.0 * i as f32 + 2.0 {
                    hit_any_sdc = true;
                }
            }
        }
    }
    assert!(
        hit_any_sdc,
        "high-bit flips of live values must corrupt some output"
    );
}

#[test]
fn timeout_classification() {
    let k = saxpy_kernel();
    let mut s = saxpy_setup(Mode::Timed, 1024);
    let err = s
        .gpu
        .launch(
            &k,
            &s.lc,
            FaultPlan::None,
            &Budget {
                cycles: 10,
                instrs: u64::MAX / 2,
            },
        )
        .unwrap_err();
    assert_eq!(err, vgpu_sim::LaunchAbort::Timeout);
}

#[test]
fn l2_persists_across_launches_and_host_reads_are_coherent() {
    let k = saxpy_kernel();
    let mut s = saxpy_setup(Mode::Timed, 256);
    s.gpu
        .launch(&k, &s.lc, FaultPlan::None, &Budget::unlimited())
        .unwrap();
    // Outputs live in dirty L2 lines; the host must still see them.
    for i in 0..256 {
        assert_eq!(s.gpu.host_read_f32(s.y_addr + i * 4), 3.0 * i as f32 + 2.0);
    }
    // And raw DRAM may legitimately be stale for some words.
    let mut stale = 0;
    for i in 0..256u32 {
        if s.gpu.mem().read_u32(s.y_addr + i * 4) != (3.0 * i as f32 + 2.0).to_bits() {
            stale += 1;
        }
    }
    // (Not asserting stale > 0 — the L2 is big enough to hold everything,
    // but the write-back path means DRAM staleness is possible, not wrong.)
    let _ = stale;
}
