//! # vgpu-sim — a cycle-level SIMT GPU simulator with fault-injection hooks
//!
//! This crate is the microarchitecture substrate of the CLUSTER'24
//! reproduction: a GPGPU-Sim-class simulator of a Volta-like GPU. It models
//! the five hardware structures the paper injects faults into — register
//! files, shared memory, L1 data caches, L1 texture caches, and the L2 —
//! as *bit-addressable, data-holding* arrays, so that a single flipped bit
//! propagates (or is masked) exactly the way the cross-layer AVF
//! methodology requires.
//!
//! Two execution engines share one instruction interpreter:
//!
//! * **Timed** ([`Mode::Timed`]) — SMs with greedy-then-oldest warp
//!   scheduling, latency-based stalling, MSHR-backed caches, CTA
//!   occupancy limits, and cycle statistics. Microarchitecture-level
//!   faults ([`UarchFault`]) are applied at a chosen cycle.
//! * **Functional** ([`Mode::Functional`]) — hardware-agnostic execution
//!   straight against device memory, used for software-level (NVBitFI
//!   model) injections ([`SwFault`]). This engine is what makes SVF
//!   campaigns two orders of magnitude faster than AVF campaigns, as the
//!   paper's footnote 1 reports.
//!
//! The entry point is [`Gpu`].

pub mod cache;
pub mod config;
pub mod due;
pub mod exec;
pub mod fault;
pub mod functional;
pub mod gpu;
pub mod lifetime;
pub mod mem;
pub mod probe;
pub mod snapshot;
pub mod stats;
pub mod timed;
pub mod warp;

pub use config::{CacheGeom, GpuConfig, Latencies};
pub use due::DueKind;
pub use fault::{
    apply_stuck, pattern_footprint, value_mask, FaultPattern, HwStructure, StuckCache, StuckSite,
    SwFault, SwFaultKind, SwInjector, SwStuck, UarchFault, UarchInjector, BURST_COL_ROWS,
};
pub use gpu::{Budget, FaultPlan, Gpu, LaunchAbort, Mode};
pub use lifetime::LifetimeTracker;
pub use mem::{ArenaPlanner, GlobalMem};
pub use probe::{ProbeEvent, SharedSink, TraceSink};
pub use snapshot::{ConvergeWith, DeviceSnapshot, ResumeOutcome, SimSnapshot};
pub use stats::{CacheStats, Stats};
