//! Set-associative, data-holding caches with MSHRs.
//!
//! These caches store actual line bytes — a requirement for bit-level fault
//! injection: a flipped bit in a cache data array must propagate to readers
//! and write-backs, and must vanish when a clean line is evicted (the
//! hardware masking effect Section V-B of the paper describes).
//!
//! Policies (GPGPU-Sim Volta-like):
//! * **L1 data cache** — write-through, no write-allocate, allocate on load.
//!   L1 lines are therefore never dirty and evictions silently drop data.
//! * **L1 texture cache** — read-only.
//! * **L2** — write-back, write-allocate; dirty evictions write DRAM.
//!
//! Timing is approximated by *eager fills with delayed readiness*: on a
//! miss the data moves immediately, an MSHR records when it would really
//! arrive, and later accesses to the in-flight line are pending hits that
//! wait for the remaining latency.

use crate::config::{CacheGeom, Latencies};
use crate::fault::HwStructure;
use crate::lifetime::{CacheAce, LifetimeTracker};
use crate::mem::GlobalMem;
use crate::stats::CacheStats;

/// One cache instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    geom: CacheGeom,
    /// Per line: the line address (`addr / line_bytes`) it holds.
    tags: Vec<u32>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    lru: Vec<u64>,
    data: Vec<u8>,
    /// Outstanding fills: `(line_addr, ready_cycle)`.
    mshr: Vec<(u32, u64)>,
    stamp: u64,
    pub stats: CacheStats,
}

impl Cache {
    pub fn new(geom: CacheGeom) -> Self {
        let lines = geom.lines() as usize;
        assert!(lines > 0 && geom.sets() > 0, "degenerate cache geometry");
        Cache {
            data: vec![0u8; geom.bytes as usize],
            tags: vec![0; lines],
            valid: vec![false; lines],
            dirty: vec![false; lines],
            lru: vec![0; lines],
            mshr: Vec::with_capacity(geom.mshrs as usize),
            stamp: 0,
            geom,
            stats: CacheStats::default(),
        }
    }

    pub fn geom(&self) -> &CacheGeom {
        &self.geom
    }

    #[inline]
    fn set_of(&self, line_addr: u32) -> u32 {
        line_addr % self.geom.sets()
    }

    /// Index range of the ways of a set.
    #[inline]
    fn ways_of(&self, set: u32) -> std::ops::Range<usize> {
        let base = (set * self.geom.ways) as usize;
        base..base + self.geom.ways as usize
    }

    /// Find a resident line without touching LRU (host peeks, tests).
    pub fn probe(&self, line_addr: u32) -> Option<usize> {
        self.ways_of(self.set_of(line_addr))
            .find(|&i| self.valid[i] && self.tags[i] == line_addr)
    }

    /// Find a resident line and mark it most-recently used.
    pub fn lookup(&mut self, line_addr: u32) -> Option<usize> {
        let idx = self.probe(line_addr)?;
        self.stamp += 1;
        self.lru[idx] = self.stamp;
        Some(idx)
    }

    /// Choose a victim way in the set of `line_addr`: an invalid way if one
    /// exists, else the least recently used.
    pub fn victim(&self, line_addr: u32) -> usize {
        let range = self.ways_of(self.set_of(line_addr));
        let mut best = range.start;
        let mut best_lru = u64::MAX;
        for i in range {
            if !self.valid[i] {
                return i;
            }
            if self.lru[i] < best_lru {
                best_lru = self.lru[i];
                best = i;
            }
        }
        best
    }

    /// Is the victim line dirty (needs write-back before replacement)?
    pub fn line_dirty(&self, idx: usize) -> bool {
        self.valid[idx] && self.dirty[idx]
    }

    pub fn line_addr_of(&self, idx: usize) -> u32 {
        self.tags[idx]
    }

    /// Byte view of line `idx`.
    pub fn line_data(&self, idx: usize) -> &[u8] {
        let lb = self.geom.line_bytes as usize;
        &self.data[idx * lb..(idx + 1) * lb]
    }

    /// Install `bytes` as line `line_addr` in way `idx`, clean, MRU.
    pub fn fill(&mut self, idx: usize, line_addr: u32, bytes: &[u8]) {
        let lb = self.geom.line_bytes as usize;
        debug_assert_eq!(bytes.len(), lb);
        self.data[idx * lb..(idx + 1) * lb].copy_from_slice(bytes);
        self.tags[idx] = line_addr;
        self.valid[idx] = true;
        self.dirty[idx] = false;
        self.stamp += 1;
        self.lru[idx] = self.stamp;
    }

    /// Read the aligned word at byte `off` of line `idx`.
    #[inline]
    pub fn read_word(&self, idx: usize, off: u32) -> u32 {
        let p = idx * self.geom.line_bytes as usize + off as usize;
        u32::from_le_bytes(self.data[p..p + 4].try_into().unwrap())
    }

    /// Write the aligned word at byte `off` of line `idx`; optionally mark
    /// the line dirty (write-back caches).
    #[inline]
    pub fn write_word(&mut self, idx: usize, off: u32, v: u32, mark_dirty: bool) {
        let p = idx * self.geom.line_bytes as usize + off as usize;
        self.data[p..p + 4].copy_from_slice(&v.to_le_bytes());
        if mark_dirty {
            self.dirty[idx] = true;
        }
    }

    /// Outstanding-fill readiness for `line_addr`, if any fill is still in
    /// flight at `now`.
    pub fn mshr_ready(&self, line_addr: u32, now: u64) -> Option<u64> {
        self.mshr
            .iter()
            .find(|&&(l, r)| l == line_addr && r > now)
            .map(|&(_, r)| r)
    }

    /// Try to allocate an MSHR for a new outstanding fill. Prunes completed
    /// entries first. Returns `false` (a reservation fail) when all MSHRs
    /// are busy.
    pub fn mshr_alloc(&mut self, line_addr: u32, ready: u64, now: u64) -> bool {
        self.mshr.retain(|&(_, r)| r > now);
        if self.mshr.len() >= self.geom.mshrs as usize {
            return false;
        }
        self.mshr.push((line_addr, ready));
        true
    }

    /// Drop every line (kernel-boundary L1 invalidation). Panics in debug
    /// builds if a dirty line would be lost — only write-through caches may
    /// be invalidated.
    pub fn invalidate_all(&mut self) {
        debug_assert!(
            !self.valid.iter().zip(&self.dirty).any(|(&v, &d)| v && d),
            "invalidating a cache with dirty lines"
        );
        self.valid.fill(false);
        self.dirty.fill(false);
        self.mshr.clear();
    }

    /// Write back every dirty line to `mem` and leave lines resident+clean.
    pub fn writeback_all(&mut self, mem: &mut GlobalMem, mem_writes: &mut u64) {
        let lb = self.geom.line_bytes;
        for idx in 0..self.tags.len() {
            if self.valid[idx] && self.dirty[idx] {
                let addr = self.tags[idx] * lb;
                mem.write_line(addr, self.line_data(idx));
                self.dirty[idx] = false;
                *mem_writes += 1;
            }
        }
    }

    /// Total data-array bytes (fault-injection population).
    pub fn data_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Flip one bit of the data array (microarchitecture fault injection).
    /// The flip lands wherever `byte_index` points — valid line, stale
    /// invalid line, it does not matter: that is the AVF fault model.
    pub fn flip_bit(&mut self, byte_index: u64, bit: u8) {
        self.flip_mask(byte_index, 1 << (bit % 8));
    }

    /// XOR a whole bit mask into one byte of the data array (multi-bit
    /// transient fault patterns).
    pub fn flip_mask(&mut self, byte_index: u64, mask: u8) {
        let i = byte_index as usize % self.data.len();
        self.data[i] ^= mask;
    }

    /// Force the masked bits of one data-array byte to `value` (stuck-at
    /// fault patterns; idempotent, so re-asserting every cycle is safe).
    pub fn force_mask(&mut self, byte_index: u64, mask: u8, value: bool) {
        let i = byte_index as usize % self.data.len();
        self.data[i] = if value {
            self.data[i] | mask
        } else {
            self.data[i] & !mask
        };
    }

    /// Coherent host view: the current word at `addr` if resident.
    pub fn peek_word(&self, addr: u32) -> Option<u32> {
        let lb = self.geom.line_bytes;
        let idx = self.probe(addr / lb)?;
        Some(self.read_word(idx, (addr % lb) & !3))
    }

    /// No resident lines and no outstanding fills — the state every L1 is
    /// in at a kernel boundary after [`Cache::invalidate_all`]. With
    /// nothing resident the LRU stamp is dead state (victim choice only
    /// compares ages of *valid* lines), so two all-invalid caches are
    /// architecturally interchangeable regardless of their stamps.
    pub fn no_live_lines(&self) -> bool {
        self.mshr.is_empty() && !self.valid.iter().any(|&v| v)
    }

    /// Return the cache to its just-constructed state (scratch reuse):
    /// every line invalid, zeroed arrays, empty MSHRs, zero stats.
    pub fn reset(&mut self) {
        self.data.fill(0);
        self.tags.fill(0);
        self.valid.fill(false);
        self.dirty.fill(false);
        self.lru.fill(0);
        self.mshr.clear();
        self.stamp = 0;
        self.stats = CacheStats::default();
    }

    /// Architectural equality: do the two caches behave identically from
    /// here on? Compares the LRU stamp, the outstanding-fill list, the
    /// valid bitmap, and — for valid lines only — tag, dirtiness, LRU age
    /// and data bytes. Invalid lines' stale contents are dead state (a
    /// fill overwrites them before any read), and `stats` are reporting
    /// counters, so both are excluded. Used by the masked-convergence
    /// check; a `false` from residual dead-state differences only costs a
    /// missed early exit, never correctness.
    pub fn arch_eq(&self, other: &Cache) -> bool {
        if self.geom != other.geom
            || self.stamp != other.stamp
            || self.mshr != other.mshr
            || self.valid != other.valid
        {
            return false;
        }
        let lb = self.geom.line_bytes as usize;
        for idx in 0..self.tags.len() {
            if !self.valid[idx] {
                continue;
            }
            if self.tags[idx] != other.tags[idx]
                || self.dirty[idx] != other.dirty[idx]
                || self.lru[idx] != other.lru[idx]
                || self.data[idx * lb..(idx + 1) * lb] != other.data[idx * lb..(idx + 1) * lb]
            {
                return false;
            }
        }
        true
    }

    /// Approximate heap footprint in bytes (snapshot accounting).
    pub fn byte_size(&self) -> u64 {
        self.data.len() as u64
            + self.tags.len() as u64 * 4
            + self.valid.len() as u64
            + self.dirty.len() as u64
            + self.lru.len() as u64 * 8
            + self.mshr.len() as u64 * 12
    }

    /// Coherent host update of a resident line (dirtiness unchanged).
    pub fn poke_word(&mut self, addr: u32, v: u32) -> bool {
        let lb = self.geom.line_bytes;
        if let Some(idx) = self.probe(addr / lb) {
            let p = idx * lb as usize + ((addr % lb) & !3) as usize;
            self.data[p..p + 4].copy_from_slice(&v.to_le_bytes());
            true
        } else {
            false
        }
    }
}

/// Result of a hierarchy access: the loaded value and the cycle at which
/// the requesting warp may proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    pub value: u32,
    pub ready: u64,
}

/// Fetch a full line into `l2` (if absent) and return `(way, ready)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ensure_l2(
    l2: &mut Cache,
    mem: &mut GlobalMem,
    line_addr: u32,
    now: u64,
    lat: &Latencies,
    mem_reads: &mut u64,
    mem_writes: &mut u64,
    ace: Option<&mut LifetimeTracker>,
) -> (usize, u64) {
    l2.stats.accesses += 1;
    if let Some(idx) = l2.lookup(line_addr) {
        let ready = match l2.mshr_ready(line_addr, now) {
            Some(r) => {
                l2.stats.pending_hits += 1;
                r
            }
            None => now + lat.l2_hit as u64,
        };
        return (idx, ready);
    }
    l2.stats.misses += 1;
    let victim = l2.victim(line_addr);
    let victim_dirty = l2.line_dirty(victim);
    if victim_dirty {
        let wb_addr = l2.line_addr_of(victim) * l2.geom.line_bytes;
        mem.write_line(wb_addr, l2.line_data(victim));
        *mem_writes += 1;
    }
    let lb = l2.geom.line_bytes;
    let bytes: Vec<u8> = mem.line(line_addr * lb, lb).to_vec();
    l2.fill(victim, line_addr, &bytes);
    if let Some(tr) = ace {
        // A dirty victim's data was architecturally required up to the
        // write-back; a clean victim's open intervals close dead when the
        // fill overwrites them (handled inside `cache_fill`'s writes).
        if victim_dirty {
            tr.close_line_live(HwStructure::L2, 0, victim, now);
        }
        tr.cache_fill(HwStructure::L2, 0, victim, now);
    }
    *mem_reads += 1;
    let mut ready = now + lat.dram as u64;
    if !l2.mshr_alloc(line_addr, ready, now) {
        l2.stats.reservation_fails += 1;
        ready += lat.mshr_fail as u64;
    }
    (victim, ready)
}

/// Load one word through an L1 (data or texture) backed by the shared L2.
/// `addr` must already be validated (aligned + mapped).
#[allow(clippy::too_many_arguments)]
pub fn load_via(
    l1: &mut Cache,
    l2: &mut Cache,
    mem: &mut GlobalMem,
    addr: u32,
    now: u64,
    lat: &Latencies,
    mem_reads: &mut u64,
    mem_writes: &mut u64,
    mut ace: Option<CacheAce<'_>>,
) -> AccessResult {
    let lb = l1.geom.line_bytes;
    debug_assert_eq!(lb, l2.geom.line_bytes, "uniform line size across levels");
    let line_addr = addr / lb;
    let off = addr % lb;
    l1.stats.accesses += 1;
    if let Some(idx) = l1.lookup(line_addr) {
        let ready = match l1.mshr_ready(line_addr, now) {
            Some(r) => {
                l1.stats.pending_hits += 1;
                r
            }
            None => now + lat.l1_hit as u64,
        };
        if let Some(a) = ace.as_mut() {
            a.tracker
                .cache_read(a.l1, a.sm, idx, (off / 4) as usize, now);
        }
        return AccessResult {
            value: l1.read_word(idx, off),
            ready,
        };
    }
    l1.stats.misses += 1;
    let (l2_idx, l2_ready) = ensure_l2(
        l2,
        mem,
        line_addr,
        now,
        lat,
        mem_reads,
        mem_writes,
        ace.as_mut().map(|a| &mut *a.tracker),
    );
    let victim = l1.victim(line_addr);
    // L1 is write-through: the victim is clean by construction and is
    // silently dropped — a fault previously injected into it is masked here.
    let line: Vec<u8> = l2.line_data(l2_idx).to_vec();
    l1.fill(victim, line_addr, &line);
    if let Some(a) = ace.as_mut() {
        // The whole L2 line is read to service the L1 fill (conservative),
        // the L1 victim's words open fresh intervals, and the requested
        // word is read immediately.
        a.tracker.cache_read_line(HwStructure::L2, 0, l2_idx, now);
        a.tracker.cache_fill(a.l1, a.sm, victim, now);
        a.tracker
            .cache_read(a.l1, a.sm, victim, (off / 4) as usize, now);
    }
    let mut ready = l2_ready + (lat.l1_hit as u64);
    if !l1.mshr_alloc(line_addr, ready, now) {
        l1.stats.reservation_fails += 1;
        ready += lat.mshr_fail as u64;
    }
    AccessResult {
        value: l1.read_word(victim, off),
        ready,
    }
}

/// Store one word: write-through the L1D, write-back allocate in L2.
/// `addr` must already be validated.
#[allow(clippy::too_many_arguments)]
pub fn store_via(
    l1d: &mut Cache,
    l2: &mut Cache,
    mem: &mut GlobalMem,
    addr: u32,
    value: u32,
    now: u64,
    lat: &Latencies,
    mem_reads: &mut u64,
    mem_writes: &mut u64,
    mut ace: Option<CacheAce<'_>>,
) -> u64 {
    let lb = l1d.geom.line_bytes;
    let line_addr = addr / lb;
    let off = addr % lb;
    l1d.stats.accesses += 1;
    if let Some(idx) = l1d.lookup(line_addr) {
        // Update in place; the line stays clean (write-through).
        l1d.write_word(idx, off, value, false);
        if let Some(a) = ace.as_mut() {
            a.tracker
                .cache_write(a.l1, a.sm, idx, (off / 4) as usize, now);
        }
    } else {
        l1d.stats.misses += 1; // no write-allocate
    }
    let (l2_idx, _) = ensure_l2(
        l2,
        mem,
        line_addr,
        now,
        lat,
        mem_reads,
        mem_writes,
        ace.as_mut().map(|a| &mut *a.tracker),
    );
    l2.write_word(l2_idx, off, value, true);
    if let Some(a) = ace.as_mut() {
        a.tracker
            .cache_write(HwStructure::L2, 0, l2_idx, (off / 4) as usize, now);
    }
    now + lat.store as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> CacheGeom {
        CacheGeom {
            bytes: 1024,
            line_bytes: 128,
            ways: 2,
            mshrs: 2,
        }
    }

    fn lat() -> Latencies {
        Latencies {
            alu: 4,
            sfu: 16,
            smem: 24,
            smem_conflict: 2,
            l1_hit: 30,
            l2_hit: 100,
            dram: 400,
            store: 8,
            mshr_fail: 64,
        }
    }

    fn mem_with(addr: u32, v: u32) -> GlobalMem {
        let mut m = GlobalMem::new(64 * 1024);
        m.map(0, 64 * 1024);
        m.write_u32(addr, v);
        m
    }

    #[test]
    fn fill_and_read() {
        let mut c = Cache::new(small_geom());
        let bytes = [7u8; 128];
        let v = c.victim(3);
        c.fill(v, 3, &bytes);
        assert_eq!(c.probe(3), Some(v));
        assert_eq!(c.read_word(v, 0), 0x07070707);
        assert_eq!(c.probe(4), None);
    }

    #[test]
    fn lru_victim_selection() {
        let mut c = Cache::new(small_geom());
        // 4 sets, 2 ways. Lines 0 and 4 map to set 0.
        let v0 = c.victim(0);
        c.fill(v0, 0, &[0u8; 128]);
        let v4 = c.victim(4);
        c.fill(v4, 4, &[0u8; 128]);
        assert_ne!(v0, v4);
        // Touch line 0 → line 4 becomes LRU.
        c.lookup(0);
        let v8 = c.victim(8);
        assert_eq!(v8, v4);
    }

    #[test]
    fn load_miss_then_hit() {
        let mut l1 = Cache::new(small_geom());
        let mut l2 = Cache::new(CacheGeom {
            bytes: 4096,
            line_bytes: 128,
            ways: 4,
            mshrs: 4,
        });
        let mut mem = mem_with(256, 0xabcd);
        let (mut mr, mut mw) = (0, 0);
        let r = load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            256,
            0,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(r.value, 0xabcd);
        assert!(r.ready >= 400, "miss pays DRAM latency");
        assert_eq!(l1.stats.misses, 1);
        assert_eq!(l2.stats.misses, 1);
        assert_eq!(mr, 1);

        // Second access after the fill completes: plain L1 hit.
        let r2 = load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            260,
            10_000,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(r2.value, 0);
        assert_eq!(r2.ready, 10_000 + 30);
        assert_eq!(l1.stats.misses, 1);
        assert_eq!(l1.stats.accesses, 2);
        assert_eq!(mr, 1, "no extra DRAM traffic");
    }

    #[test]
    fn pending_hit_waits_for_fill() {
        let mut l1 = Cache::new(small_geom());
        let mut l2 = Cache::new(CacheGeom {
            bytes: 4096,
            line_bytes: 128,
            ways: 4,
            mshrs: 4,
        });
        let mut mem = mem_with(0, 5);
        let (mut mr, mut mw) = (0, 0);
        let r = load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            0,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        // Another warp reads the same line 10 cycles later, before ready.
        let r2 = load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            4,
            10,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(l1.stats.pending_hits, 1);
        assert_eq!(r2.ready, r.ready, "pending hit completes with the fill");
    }

    #[test]
    fn mshr_exhaustion_counts_reservation_fail() {
        let mut l1 = Cache::new(small_geom()); // 2 MSHRs
        let mut l2 = Cache::new(CacheGeom {
            bytes: 8192,
            line_bytes: 128,
            ways: 4,
            mshrs: 16,
        });
        let mut mem = mem_with(0, 1);
        let (mut mr, mut mw) = (0, 0);
        for i in 0..3u32 {
            load_via(
                &mut l1,
                &mut l2,
                &mut mem,
                i * 128,
                0,
                &lat(),
                &mut mr,
                &mut mw,
                None,
            );
        }
        assert_eq!(l1.stats.reservation_fails, 1);
    }

    #[test]
    fn store_write_through_keeps_l1_clean_and_dirties_l2() {
        let mut l1 = Cache::new(small_geom());
        let mut l2 = Cache::new(CacheGeom {
            bytes: 4096,
            line_bytes: 128,
            ways: 4,
            mshrs: 4,
        });
        let mut mem = mem_with(0, 0);
        let (mut mr, mut mw) = (0, 0);
        // Load first so the line is in both levels.
        load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            0,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        store_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            42,
            1000,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        let i1 = l1.probe(0).unwrap();
        assert!(!l1.line_dirty(i1), "write-through L1 stays clean");
        assert_eq!(l1.read_word(i1, 0), 42, "L1 copy updated");
        let i2 = l2.probe(0).unwrap();
        assert!(l2.line_dirty(i2), "L2 line dirtied");
        assert_eq!(l2.read_word(i2, 0), 42);
        assert_eq!(mem.read_u32(0), 0, "DRAM not yet updated (write-back L2)");
        let mut mw2 = 0;
        l2.writeback_all(&mut mem, &mut mw2);
        assert_eq!(mw2, 1);
        assert_eq!(mem.read_u32(0), 42);
    }

    #[test]
    fn store_miss_does_not_allocate_in_l1() {
        let mut l1 = Cache::new(small_geom());
        let mut l2 = Cache::new(CacheGeom {
            bytes: 4096,
            line_bytes: 128,
            ways: 4,
            mshrs: 4,
        });
        let mut mem = mem_with(0, 0);
        let (mut mr, mut mw) = (0, 0);
        store_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            9,
            0,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(l1.probe(0), None, "no write-allocate in L1");
        assert!(l2.probe(0).is_some(), "write-allocate in L2");
    }

    #[test]
    fn clean_eviction_masks_injected_fault() {
        // The paper's Section V-B masking scenario: flip a bit in a clean
        // L1 line, evict it by loading conflicting lines, reload — the
        // fault is gone.
        let mut l1 = Cache::new(small_geom()); // 4 sets, 2 ways
        let mut l2 = Cache::new(CacheGeom {
            bytes: 16384,
            line_bytes: 128,
            ways: 8,
            mshrs: 16,
        });
        let mut mem = mem_with(0, 0x1111);
        let (mut mr, mut mw) = (0, 0);
        load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            0,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        let idx = l1.probe(0).unwrap();
        let byte_index = idx as u64 * 128;
        l1.flip_bit(byte_index, 1); // value becomes 0x1113
        let r = load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            1000,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(r.value, 0x1113, "fault visible while resident");
        // Evict set 0 by loading two other lines mapping to it (lines 4, 8).
        load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            4 * 128,
            2000,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            8 * 128,
            3000,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(l1.probe(0), None, "faulty line evicted");
        let r = load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            9000,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(r.value, 0x1111, "clean eviction masked the fault");
    }

    #[test]
    fn dirty_l2_eviction_propagates_fault_to_dram() {
        // Converse scenario: a fault in a *dirty* L2 line is written back
        // and corrupts memory even though no instruction ever reads it.
        let geom = CacheGeom {
            bytes: 512,
            line_bytes: 128,
            ways: 2,
            mshrs: 4,
        }; // 2 sets
        let mut l1 = Cache::new(small_geom());
        let mut l2 = Cache::new(geom);
        let mut mem = mem_with(0, 0);
        let (mut mr, mut mw) = (0, 0);
        store_via(
            &mut l1,
            &mut l2,
            &mut mem,
            0,
            0x10,
            0,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        let idx = l2.probe(0).unwrap();
        l2.flip_bit(idx as u64 * 128, 0); // 0x10 -> 0x11
                                          // Evict line 0 from L2: load lines 2 and 4 (set 0 of 2 sets).
        load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            2 * 128,
            100,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        load_via(
            &mut l1,
            &mut l2,
            &mut mem,
            4 * 128,
            200,
            &lat(),
            &mut mr,
            &mut mw,
            None,
        );
        assert_eq!(
            mem.read_u32(0),
            0x11,
            "dirty write-back carried the flipped bit"
        );
        assert!(mw >= 1);
    }

    #[test]
    fn invalidate_all_clears_lines() {
        let mut c = Cache::new(small_geom());
        let v = c.victim(0);
        c.fill(v, 0, &[1u8; 128]);
        c.invalidate_all();
        assert_eq!(c.probe(0), None);
    }

    #[test]
    fn peek_and_poke() {
        let mut c = Cache::new(small_geom());
        let v = c.victim(0);
        c.fill(v, 0, &[0u8; 128]);
        assert!(c.poke_word(8, 77));
        assert_eq!(c.peek_word(8), Some(77));
        assert_eq!(c.peek_word(128 * 5), None);
        assert!(!c.poke_word(128 * 5, 1));
    }
}
