//! The cycle-level engine: SMs, CTA occupancy limits, greedy-then-oldest
//! warp scheduling, latency stalling, MSHR-backed caches, and
//! microarchitecture-level fault application at a chosen cycle.
//!
//! Timing model: one instruction issues per SM per cycle; a warp that
//! issues is busy until its instruction's latency elapses. Idle stretches
//! are fast-forwarded to the next readiness event (clamped to the pending
//! fault cycle so injections land at the exact requested cycle).

use crate::cache::{ensure_l2, load_via, Cache};
use crate::config::{GpuConfig, Latencies};
use crate::due::{DueKind, LaunchAbort};
use crate::exec::{step_warp, ExecCtx, GMem, IssueClass, StepEvent};
use crate::fault::{HwStructure, SwInjector, UarchInjector};
use crate::lifetime::{CacheAce, LifetimeTracker};
use crate::mem::GlobalMem;
use crate::stats::Stats;
use crate::warp::Warp;
use vgpu_arch::{Kernel, LaunchConfig, WARP_SIZE};

/// Timed global-memory interface: coalesces a warp's lane accesses into
/// line accesses against the L1/L2 hierarchy.
struct TimedGMem<'a> {
    l1d: &'a mut Cache,
    l1t: &'a mut Cache,
    l2: &'a mut Cache,
    mem: &'a mut GlobalMem,
    lat: &'a Latencies,
    now: u64,
    mem_reads: &'a mut u64,
    mem_writes: &'a mut u64,
    /// ACE lifetime tracker (fault-free `--ace` runs only), plus the
    /// coordinates translating this step's warp-local register / CTA-local
    /// shared-memory indices to SM-global tracker entries.
    ace: Option<&'a mut LifetimeTracker>,
    sm: usize,
    ace_rf_base: usize,
    ace_smem_base: usize,
}

impl GMem for TimedGMem<'_> {
    fn load(
        &mut self,
        tex: bool,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        out: &mut [u32; WARP_SIZE],
    ) -> Result<u64, DueKind> {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.mem.check_word(addrs[lane])?;
        }
        let l1 = if tex { &mut *self.l1t } else { &mut *self.l1d };
        let h = if tex {
            HwStructure::L1T
        } else {
            HwStructure::L1D
        };
        let lb = l1.geom().line_bytes;
        let mut seen = [0u32; WARP_SIZE];
        let mut n = 0usize;
        let mut ready_max = self.now;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let addr = addrs[lane];
            let line = addr / lb;
            let already = seen[..n].contains(&line);
            if already {
                // Same line touched earlier in this coalesced access; it is
                // normally still resident, but an intervening fill in the
                // same set may have evicted it — refetch in that case.
                if let Some(idx) = l1.probe(line) {
                    if let Some(tr) = self.ace.as_deref_mut() {
                        tr.cache_read(h, self.sm, idx, ((addr % lb) / 4) as usize, self.now);
                    }
                    out[lane] = l1.read_word(idx, addr % lb);
                    continue;
                }
            }
            let r = load_via(
                l1,
                self.l2,
                self.mem,
                addr,
                self.now,
                self.lat,
                self.mem_reads,
                self.mem_writes,
                self.ace.as_deref_mut().map(|tr| CacheAce {
                    tracker: tr,
                    l1: h,
                    sm: self.sm,
                }),
            );
            out[lane] = r.value;
            ready_max = ready_max.max(r.ready);
            if !already {
                seen[n] = line;
                n += 1;
            }
        }
        Ok(ready_max)
    }

    fn store(
        &mut self,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        vals: &[u32; WARP_SIZE],
    ) -> Result<u64, DueKind> {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.mem.check_word(addrs[lane])?;
        }
        let lb = self.l1d.geom().line_bytes;
        let mut seen = [0u32; WARP_SIZE];
        let mut n = 0usize;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let addr = addrs[lane];
            let line = addr / lb;
            let off = addr % lb;
            if !seen[..n].contains(&line) {
                // One coalesced access per line for the statistics.
                self.l1d.stats.accesses += 1;
                if self.l1d.probe(line).is_none() {
                    self.l1d.stats.misses += 1; // write-through, no allocate
                }
                ensure_l2(
                    self.l2,
                    self.mem,
                    line,
                    self.now,
                    self.lat,
                    self.mem_reads,
                    self.mem_writes,
                    self.ace.as_deref_mut(),
                );
                seen[n] = line;
                n += 1;
            }
            if let Some(i1) = self.l1d.lookup(line) {
                self.l1d.write_word(i1, off, vals[lane], false);
                if let Some(tr) = self.ace.as_deref_mut() {
                    tr.cache_write(HwStructure::L1D, self.sm, i1, (off / 4) as usize, self.now);
                }
            }
            let i2 = match self.l2.probe(line) {
                Some(i) => i,
                None => {
                    ensure_l2(
                        self.l2,
                        self.mem,
                        line,
                        self.now,
                        self.lat,
                        self.mem_reads,
                        self.mem_writes,
                        self.ace.as_deref_mut(),
                    )
                    .0
                }
            };
            self.l2.write_word(i2, off, vals[lane], true);
            if let Some(tr) = self.ace.as_deref_mut() {
                tr.cache_write(HwStructure::L2, 0, i2, (off / 4) as usize, self.now);
            }
        }
        Ok(self.now + self.lat.store as u64)
    }

    fn ace_enabled(&self) -> bool {
        self.ace.is_some()
    }

    fn ace_reg_read(&mut self, reg_word: usize) {
        let (sm, base, now) = (self.sm, self.ace_rf_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.reg_read(sm, base + reg_word, now);
        }
    }

    fn ace_reg_write(&mut self, reg_word: usize) {
        let (sm, base, now) = (self.sm, self.ace_rf_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.reg_write(sm, base + reg_word, now);
        }
    }

    fn ace_smem_read(&mut self, word: usize) {
        let (sm, base, now) = (self.sm, self.ace_smem_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.smem_read(sm, base + word, now);
        }
    }

    fn ace_smem_write(&mut self, word: usize) {
        let (sm, base, now) = (self.sm, self.ace_smem_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.smem_write(sm, base + word, now);
        }
    }
}

/// One CTA resident on an SM.
struct CtaSlot {
    warps_running: u32,
    arrived: u32,
}

/// Per-SM state for one launch.
struct SmState {
    rf: Vec<u32>,
    smem: Vec<u32>,
    slots: Vec<Option<CtaSlot>>,
    warps: Vec<Option<Warp>>,
    /// Index of the warp issued last cycle (greedy-then-oldest policy).
    last: Option<usize>,
}

/// Per-launch geometry derived from the kernel and launch config.
struct Geometry {
    wpc: u32,
    regs_per_warp: u32,
    regs_per_cta: u32,
    smem_words_per_cta: u32,
    slots_per_sm: u32,
}

fn geometry(cfg: &GpuConfig, kernel: &Kernel, lc: &LaunchConfig) -> Geometry {
    let wpc = lc.warps_per_cta();
    let regs_per_warp = kernel.num_regs as u32 * WARP_SIZE as u32;
    let regs_per_cta = wpc * regs_per_warp;
    let smem_words_per_cta = (kernel.smem_bytes / 4).max(1);
    let by_threads = cfg.max_threads_per_sm / (wpc * WARP_SIZE as u32);
    let by_rf = cfg.rf_regs_per_sm / regs_per_cta;
    let by_smem = (cfg.smem_bytes_per_sm / 4) / smem_words_per_cta;
    let slots_per_sm = cfg.max_ctas_per_sm.min(by_threads).min(by_rf).min(by_smem);
    assert!(
        slots_per_sm >= 1,
        "kernel {} exceeds SM limits (block {}, regs {}, smem {}B)",
        kernel.name,
        lc.block_x,
        kernel.num_regs,
        kernel.smem_bytes
    );
    Geometry {
        wpc,
        regs_per_warp,
        regs_per_cta,
        smem_words_per_cta,
        slots_per_sm,
    }
}

/// Place CTA `lin` into `slot` of `sm` (SM index `smi`) at cycle `t`.
#[allow(clippy::too_many_arguments)]
fn launch_cta(
    sm: &mut SmState,
    slot: usize,
    lin: u64,
    lc: &LaunchConfig,
    g: &Geometry,
    seq: &mut u64,
    smi: usize,
    t: u64,
    ace: Option<&mut LifetimeTracker>,
) {
    let ctaid_x = (lin % lc.grid_x as u64) as u32;
    let ctaid_y = (lin / lc.grid_x as u64) as u32;
    let rf_base = slot * g.regs_per_cta as usize;
    sm.rf[rf_base..rf_base + g.regs_per_cta as usize].fill(0);
    let sm_base = slot * g.smem_words_per_cta as usize;
    sm.smem[sm_base..sm_base + g.smem_words_per_cta as usize].fill(0);
    if let Some(tr) = ace {
        tr.cta_fill(
            smi,
            rf_base,
            g.regs_per_cta as usize,
            sm_base,
            g.smem_words_per_cta as usize,
            t,
        );
    }
    for wi in 0..g.wpc {
        let first_thread = wi * WARP_SIZE as u32;
        let lanes = (lc.block_x - first_thread).min(WARP_SIZE as u32);
        let mask = if lanes >= 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        let w = Warp::new(ctaid_x, ctaid_y, wi, mask, *seq);
        *seq += 1;
        sm.warps[slot * g.wpc as usize + wi as usize] = Some(w);
    }
    sm.slots[slot] = Some(CtaSlot {
        warps_running: g.wpc,
        arrived: 0,
    });
}

/// Apply a pending microarchitecture fault to the live machine state.
fn apply_uarch(
    inj: &mut UarchInjector,
    sms: &mut [SmState],
    l1ds: &mut [Cache],
    l1ts: &mut [Cache],
    l2: &mut Cache,
    g: &Geometry,
) {
    inj.applied = true;
    let bit = inj.fault.bit;
    match inj.fault.structure {
        HwStructure::RegFile | HwStructure::Smem => {
            let is_rf = inj.fault.structure == HwStructure::RegFile;
            let per_cta = if is_rf {
                g.regs_per_cta as u64
            } else {
                g.smem_words_per_cta as u64
            };
            let mut population = 0u64;
            for sm in sms.iter() {
                population += sm.slots.iter().flatten().count() as u64 * per_cta;
            }
            inj.population = population;
            if population == 0 {
                return; // nothing allocated at this cycle: trivially masked
            }
            let mut target = inj.fault.loc_pick % population;
            for sm in sms.iter_mut() {
                for (slot_idx, slot) in sm.slots.iter().enumerate() {
                    if slot.is_none() {
                        continue;
                    }
                    if target < per_cta {
                        let idx = slot_idx as u64 * per_cta + target;
                        if is_rf {
                            sm.rf[idx as usize] ^= 1 << (bit % 32);
                        } else {
                            sm.smem[idx as usize] ^= 1 << (bit % 32);
                        }
                        return;
                    }
                    target -= per_cta;
                }
            }
            unreachable!("population walk must land");
        }
        HwStructure::L1D | HwStructure::L1T => {
            let caches = if inj.fault.structure == HwStructure::L1D {
                l1ds
            } else {
                l1ts
            };
            let per = caches[0].data_bytes();
            let total = per * caches.len() as u64;
            inj.population = total * 8;
            let byte = inj.fault.loc_pick % total;
            caches[(byte / per) as usize].flip_bit(byte % per, bit);
        }
        HwStructure::L2 => {
            inj.population = l2.data_bytes() * 8;
            l2.flip_bit(inj.fault.loc_pick % l2.data_bytes(), bit);
        }
    }
}

/// Run one kernel launch on the timed engine.
#[allow(clippy::too_many_arguments)]
pub fn run_timed(
    cfg: &GpuConfig,
    mem: &mut GlobalMem,
    l1ds: &mut [Cache],
    l1ts: &mut [Cache],
    l2: &mut Cache,
    kernel: &Kernel,
    lc: &LaunchConfig,
    mut uarch: Option<&mut UarchInjector>,
    mut sw: Option<&mut SwInjector>,
    mut ace: Option<&mut LifetimeTracker>,
    budget_cycles: u64,
) -> Result<Stats, LaunchAbort> {
    let g = geometry(cfg, kernel, lc);
    let num_sms = cfg.num_sms as usize;
    let mut sms: Vec<SmState> = (0..num_sms)
        .map(|_| SmState {
            rf: vec![0; cfg.rf_regs_per_sm as usize],
            smem: vec![0; (cfg.smem_bytes_per_sm / 4) as usize],
            slots: (0..g.slots_per_sm).map(|_| None).collect(),
            warps: (0..g.slots_per_sm * g.wpc).map(|_| None).collect(),
            last: None,
        })
        .collect();

    let total_ctas = lc.num_ctas();
    let mut next_cta = 0u64;
    let mut done_ctas = 0u64;
    let mut seq = 0u64;

    // Initial CTA fill, round-robin over SMs.
    'fill: for slot in 0..g.slots_per_sm as usize {
        for (smi, sm) in sms.iter_mut().enumerate() {
            if next_cta >= total_ctas {
                break 'fill;
            }
            launch_cta(
                sm,
                slot,
                next_cta,
                lc,
                &g,
                &mut seq,
                smi,
                0,
                ace.as_deref_mut(),
            );
            next_cta += 1;
        }
    }

    let mut stats = Stats::default();
    let l1d_start: Vec<_> = l1ds.iter().map(|c| c.stats).collect();
    let l1t_start: Vec<_> = l1ts.iter().map(|c| c.stats).collect();
    let l2_start = l2.stats;
    let mut mem_reads = 0u64;
    let mut mem_writes = 0u64;

    let max_warps_hw = (cfg.max_threads_per_sm / WARP_SIZE as u32) as u64;
    let mut cycle = 0u64;

    let result: Result<(), LaunchAbort> = 'outer: loop {
        // Apply a due microarchitecture fault before issuing at this cycle.
        if let Some(inj) = uarch.as_deref_mut() {
            if !inj.applied && cycle >= inj.fault.cycle {
                apply_uarch(inj, &mut sms, l1ds, l1ts, l2, &g);
            }
        }

        let mut issued_any = false;
        let mut resident = 0u64;
        for (smi, sm) in sms.iter_mut().enumerate() {
            resident += sm.warps.iter().flatten().filter(|w| !w.done).count() as u64;

            // Greedy-then-oldest pick.
            let ready = |w: &Warp, cyc: u64| !w.done && !w.at_barrier && w.ready_at <= cyc;
            let pick = match sm.last {
                Some(wi) if sm.warps[wi].as_ref().is_some_and(|w| ready(w, cycle)) => Some(wi),
                _ => sm
                    .warps
                    .iter()
                    .enumerate()
                    .filter_map(|(i, w)| w.as_ref().map(|w| (i, w)))
                    .filter(|(_, w)| ready(w, cycle))
                    .min_by_key(|(_, w)| w.seq)
                    .map(|(i, _)| i),
            };
            let Some(wi) = pick else {
                sm.last = None;
                continue;
            };

            let mut warp = sm.warps[wi].take().expect("picked warp exists");
            let slot_idx = wi / g.wpc as usize;
            let rf_base = slot_idx * g.regs_per_cta as usize
                + warp.warp_in_cta as usize * g.regs_per_warp as usize;
            let smem_base = slot_idx * g.smem_words_per_cta as usize;
            let (event, due) = {
                let mut tg = TimedGMem {
                    l1d: &mut l1ds[smi],
                    l1t: &mut l1ts[smi],
                    l2,
                    mem,
                    lat: &cfg.lat,
                    now: cycle,
                    mem_reads: &mut mem_reads,
                    mem_writes: &mut mem_writes,
                    ace: ace.as_deref_mut(),
                    sm: smi,
                    ace_rf_base: rf_base,
                    ace_smem_base: smem_base,
                };
                let mut ctx = ExecCtx {
                    kernel,
                    params: &lc.params,
                    ntid: lc.block_x,
                    nctaid: lc.grid_x,
                    regs: &mut sm.rf[rf_base..rf_base + g.regs_per_warp as usize],
                    smem: &mut sm.smem[smem_base..smem_base + g.smem_words_per_cta as usize],
                    mem: &mut tg,
                    stats: &mut stats,
                    sw: sw.as_deref_mut(),
                    max_stack: cfg.max_stack_depth,
                };
                match step_warp(&mut warp, &mut ctx) {
                    Ok(ev) => (Some(ev), None),
                    Err(e) => (None, Some(e)),
                }
            };
            if let Some(e) = due {
                break 'outer Err(LaunchAbort::Due(e));
            }
            issued_any = true;
            let mut clear_greedy = true;
            match event.unwrap() {
                StepEvent::Issued(class) => {
                    let latency = match class {
                        IssueClass::Alu => cfg.lat.alu as u64,
                        IssueClass::Sfu => cfg.lat.sfu as u64,
                        IssueClass::Smem { extra_conflicts } => {
                            cfg.lat.smem as u64
                                + extra_conflicts as u64 * cfg.lat.smem_conflict as u64
                        }
                        IssueClass::Mem { ready } => ready.saturating_sub(cycle).max(1),
                    };
                    warp.ready_at = cycle + latency;
                    sm.warps[wi] = Some(warp);
                    sm.last = Some(wi);
                    clear_greedy = false;
                }
                StepEvent::Barrier => {
                    warp.at_barrier = true;
                    warp.ready_at = cycle + cfg.lat.alu as u64;
                    sm.warps[wi] = Some(warp);
                    let slot = sm.slots[slot_idx].as_mut().expect("slot live");
                    slot.arrived += 1;
                    if slot.arrived >= slot.warps_running {
                        slot.arrived = 0;
                        let base = slot_idx * g.wpc as usize;
                        for w in sm.warps[base..base + g.wpc as usize].iter_mut().flatten() {
                            w.at_barrier = false;
                        }
                    }
                }
                StepEvent::Done => {
                    sm.warps[wi] = None;
                    let slot = sm.slots[slot_idx].as_mut().expect("slot live");
                    slot.warps_running -= 1;
                    if slot.warps_running == 0 {
                        sm.slots[slot_idx] = None;
                        done_ctas += 1;
                        if next_cta < total_ctas {
                            launch_cta(
                                sm,
                                slot_idx,
                                next_cta,
                                lc,
                                &g,
                                &mut seq,
                                smi,
                                cycle,
                                ace.as_deref_mut(),
                            );
                            next_cta += 1;
                        }
                    } else if slot.arrived >= slot.warps_running {
                        // Last non-waiting warp exited: release the barrier.
                        slot.arrived = 0;
                        let base = slot_idx * g.wpc as usize;
                        for w in sm.warps[base..base + g.wpc as usize].iter_mut().flatten() {
                            w.at_barrier = false;
                        }
                    }
                }
            }
            if clear_greedy {
                sm.last = None;
            }
        }

        if done_ctas == total_ctas {
            stats.resident_warp_cycles += resident;
            stats.max_warp_cycles += num_sms as u64 * max_warps_hw;
            stats.issue_cycles += 1; // the Done event implies an issue
            cycle += 1;
            break Ok(());
        }

        // Advance time: one cycle after an issue, else fast-forward to the
        // next readiness event (clamped to a pending fault cycle).
        let advance = if issued_any {
            1
        } else {
            let mut nxt = u64::MAX;
            for sm in &sms {
                for w in sm.warps.iter().flatten() {
                    if !w.done && !w.at_barrier && w.ready_at > cycle {
                        nxt = nxt.min(w.ready_at);
                    }
                }
            }
            if nxt == u64::MAX {
                break Err(LaunchAbort::Due(DueKind::BarrierDeadlock));
            }
            let mut target = nxt;
            if let Some(inj) = uarch.as_deref() {
                if !inj.applied && inj.fault.cycle > cycle {
                    target = target.min(inj.fault.cycle);
                }
            }
            target - cycle
        };
        if issued_any {
            stats.issue_cycles += 1;
        } else {
            stats.stall_cycles += advance;
        }
        stats.resident_warp_cycles += resident * advance;
        stats.max_warp_cycles += num_sms as u64 * max_warps_hw * advance;
        cycle += advance;
        if cycle > budget_cycles {
            break Err(LaunchAbort::Timeout);
        }
    };

    // Kernel boundary: L1s are invalidated (write-through, nothing dirty).
    for c in l1ds.iter_mut().chain(l1ts.iter_mut()) {
        c.invalidate_all();
    }
    // Register-file and shared-memory contents die with the grid, and the
    // invalidated L1 lines are clean: close every open interval dead.
    if let Some(tr) = ace {
        tr.launch_end(cycle);
    }

    result?;

    stats.cycles = cycle;
    stats.mem_reads = mem_reads;
    stats.mem_writes = mem_writes;
    for (c, s0) in l1ds.iter().zip(&l1d_start) {
        let mut d = c.stats;
        sub_stats(&mut d, s0);
        stats.l1d.add(&d);
    }
    for (c, s0) in l1ts.iter().zip(&l1t_start) {
        let mut d = c.stats;
        sub_stats(&mut d, s0);
        stats.l1t.add(&d);
    }
    let mut d = l2.stats;
    sub_stats(&mut d, &l2_start);
    stats.l2.add(&d);
    Ok(stats)
}

fn sub_stats(a: &mut crate::stats::CacheStats, b: &crate::stats::CacheStats) {
    a.accesses -= b.accesses;
    a.misses -= b.misses;
    a.pending_hits -= b.pending_hits;
    a.reservation_fails -= b.reservation_fails;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu_arch::KernelBuilder;

    fn kernel_with(regs: u8, smem: u32) -> Kernel {
        let mut a = KernelBuilder::new("g");
        for i in 0..regs {
            a.mov(vgpu_arch::Reg(i), 0u32);
        }
        if smem > 0 {
            a.alloc_smem(smem);
        }
        a.build().unwrap()
    }

    #[test]
    fn geometry_respects_all_limits() {
        let cfg = GpuConfig::default();
        // Thread-limited: 1024 threads/SM, block 256 → 4 CTAs.
        let k = kernel_with(4, 0);
        let lc = LaunchConfig::new(64, 256, vec![]);
        let g = geometry(&cfg, &k, &lc);
        assert_eq!(g.slots_per_sm, 4);
        assert_eq!(g.wpc, 8);
        assert_eq!(g.regs_per_warp, 4 * 32);

        // RF-limited: 32 regs × 256 threads = 8192 regs/CTA, 65536 RF → 8,
        // but thread cap (4) binds first; with block 64 the RF allows 32
        // and max_ctas (16) binds.
        let k = kernel_with(32, 0);
        let lc = LaunchConfig::new(64, 64, vec![]);
        let g = geometry(&cfg, &k, &lc);
        assert_eq!(g.slots_per_sm, 16);

        // SMEM-limited: 48 KiB per CTA of a 64 KiB SM → 1 slot.
        let k = kernel_with(2, 48 * 1024);
        let lc = LaunchConfig::new(8, 64, vec![]);
        let g = geometry(&cfg, &k, &lc);
        assert_eq!(g.slots_per_sm, 1);
        assert_eq!(g.smem_words_per_cta, 48 * 1024 / 4);
    }

    #[test]
    #[should_panic(expected = "exceeds SM limits")]
    fn oversized_kernel_panics_at_launch_geometry() {
        let cfg = GpuConfig::default();
        let k = kernel_with(2, 80 * 1024); // > 64 KiB SMEM per SM
        let lc = LaunchConfig::new(1, 32, vec![]);
        geometry(&cfg, &k, &lc);
    }

    #[test]
    fn partial_last_warp_gets_partial_mask() {
        let cfg = GpuConfig::default();
        let k = kernel_with(2, 0);
        let lc = LaunchConfig::new(1, 40, vec![]); // 1 full warp + 8 lanes
        let g = geometry(&cfg, &k, &lc);
        let mut sm = SmState {
            rf: vec![0; cfg.rf_regs_per_sm as usize],
            smem: vec![0; (cfg.smem_bytes_per_sm / 4) as usize],
            slots: (0..g.slots_per_sm).map(|_| None).collect(),
            warps: (0..g.slots_per_sm * g.wpc).map(|_| None).collect(),
            last: None,
        };
        let mut seq = 0;
        launch_cta(&mut sm, 0, 0, &lc, &g, &mut seq, 0, 0, None);
        let w0 = sm.warps[0].as_ref().unwrap();
        let w1 = sm.warps[1].as_ref().unwrap();
        assert_eq!(w0.init_mask, u32::MAX);
        assert_eq!(w1.init_mask, 0xFF);
        assert_eq!(seq, 2);
    }
}
