//! The cycle-level engine: SMs, CTA occupancy limits, greedy-then-oldest
//! warp scheduling, latency stalling, MSHR-backed caches, and
//! microarchitecture-level fault application at a chosen cycle.
//!
//! Timing model: one instruction issues per SM per cycle; a warp that
//! issues is busy until its instruction's latency elapses. Idle stretches
//! are fast-forwarded to the next readiness event (clamped to the pending
//! fault cycle so injections land at the exact requested cycle).

use crate::cache::{ensure_l2, load_via, Cache};
use crate::config::{GpuConfig, Latencies};
use crate::due::{DueKind, LaunchAbort};
use crate::exec::{step_warp, ExecCtx, GMem, IssueClass, StepEvent};
use crate::fault::{
    apply_stuck, pattern_footprint, value_mask, HwStructure, StuckCache, StuckSite, SwInjector,
    UarchInjector,
};
use crate::lifetime::{CacheAce, LifetimeTracker};
use crate::mem::GlobalMem;
use crate::snapshot::{ConvergeWith, SimSnapshot};
use crate::stats::{CacheStats, Stats};
use crate::warp::Warp;
use vgpu_arch::{Kernel, LaunchConfig, WARP_SIZE};

/// Timed global-memory interface: coalesces a warp's lane accesses into
/// line accesses against the L1/L2 hierarchy.
struct TimedGMem<'a> {
    l1d: &'a mut Cache,
    l1t: &'a mut Cache,
    l2: &'a mut Cache,
    mem: &'a mut GlobalMem,
    lat: &'a Latencies,
    now: u64,
    mem_reads: &'a mut u64,
    mem_writes: &'a mut u64,
    /// ACE lifetime tracker (fault-free `--ace` runs only), plus the
    /// coordinates translating this step's warp-local register / CTA-local
    /// shared-memory indices to SM-global tracker entries.
    ace: Option<&'a mut LifetimeTracker>,
    sm: usize,
    ace_rf_base: usize,
    ace_smem_base: usize,
}

impl GMem for TimedGMem<'_> {
    fn load(
        &mut self,
        tex: bool,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        out: &mut [u32; WARP_SIZE],
    ) -> Result<u64, DueKind> {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.mem.check_word(addrs[lane])?;
        }
        let l1 = if tex { &mut *self.l1t } else { &mut *self.l1d };
        let h = if tex {
            HwStructure::L1T
        } else {
            HwStructure::L1D
        };
        let lb = l1.geom().line_bytes;
        let mut seen = [0u32; WARP_SIZE];
        let mut n = 0usize;
        let mut ready_max = self.now;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let addr = addrs[lane];
            let line = addr / lb;
            let already = seen[..n].contains(&line);
            if already {
                // Same line touched earlier in this coalesced access; it is
                // normally still resident, but an intervening fill in the
                // same set may have evicted it — refetch in that case.
                if let Some(idx) = l1.probe(line) {
                    if let Some(tr) = self.ace.as_deref_mut() {
                        tr.cache_read(h, self.sm, idx, ((addr % lb) / 4) as usize, self.now);
                    }
                    out[lane] = l1.read_word(idx, addr % lb);
                    continue;
                }
            }
            let r = load_via(
                l1,
                self.l2,
                self.mem,
                addr,
                self.now,
                self.lat,
                self.mem_reads,
                self.mem_writes,
                self.ace.as_deref_mut().map(|tr| CacheAce {
                    tracker: tr,
                    l1: h,
                    sm: self.sm,
                }),
            );
            out[lane] = r.value;
            ready_max = ready_max.max(r.ready);
            if !already {
                seen[n] = line;
                n += 1;
            }
        }
        Ok(ready_max)
    }

    fn store(
        &mut self,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        vals: &[u32; WARP_SIZE],
    ) -> Result<u64, DueKind> {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.mem.check_word(addrs[lane])?;
        }
        let lb = self.l1d.geom().line_bytes;
        let mut seen = [0u32; WARP_SIZE];
        let mut n = 0usize;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let addr = addrs[lane];
            let line = addr / lb;
            let off = addr % lb;
            if !seen[..n].contains(&line) {
                // One coalesced access per line for the statistics.
                self.l1d.stats.accesses += 1;
                if self.l1d.probe(line).is_none() {
                    self.l1d.stats.misses += 1; // write-through, no allocate
                }
                ensure_l2(
                    self.l2,
                    self.mem,
                    line,
                    self.now,
                    self.lat,
                    self.mem_reads,
                    self.mem_writes,
                    self.ace.as_deref_mut(),
                );
                seen[n] = line;
                n += 1;
            }
            if let Some(i1) = self.l1d.lookup(line) {
                self.l1d.write_word(i1, off, vals[lane], false);
                if let Some(tr) = self.ace.as_deref_mut() {
                    tr.cache_write(HwStructure::L1D, self.sm, i1, (off / 4) as usize, self.now);
                }
            }
            let i2 = match self.l2.probe(line) {
                Some(i) => i,
                None => {
                    ensure_l2(
                        self.l2,
                        self.mem,
                        line,
                        self.now,
                        self.lat,
                        self.mem_reads,
                        self.mem_writes,
                        self.ace.as_deref_mut(),
                    )
                    .0
                }
            };
            self.l2.write_word(i2, off, vals[lane], true);
            if let Some(tr) = self.ace.as_deref_mut() {
                tr.cache_write(HwStructure::L2, 0, i2, (off / 4) as usize, self.now);
            }
        }
        Ok(self.now + self.lat.store as u64)
    }

    fn ace_enabled(&self) -> bool {
        self.ace.is_some()
    }

    fn ace_reg_read(&mut self, reg_word: usize) {
        let (sm, base, now) = (self.sm, self.ace_rf_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.reg_read(sm, base + reg_word, now);
        }
    }

    fn ace_reg_write(&mut self, reg_word: usize) {
        let (sm, base, now) = (self.sm, self.ace_rf_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.reg_write(sm, base + reg_word, now);
        }
    }

    fn ace_smem_read(&mut self, word: usize) {
        let (sm, base, now) = (self.sm, self.ace_smem_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.smem_read(sm, base + word, now);
        }
    }

    fn ace_smem_write(&mut self, word: usize) {
        let (sm, base, now) = (self.sm, self.ace_smem_base, self.now);
        if let Some(tr) = self.ace.as_deref_mut() {
            tr.smem_write(sm, base + word, now);
        }
    }
}

/// One CTA resident on an SM.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CtaSlot {
    warps_running: u32,
    arrived: u32,
}

/// Per-SM state for one launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SmState {
    rf: Vec<u32>,
    smem: Vec<u32>,
    slots: Vec<Option<CtaSlot>>,
    warps: Vec<Option<Warp>>,
    /// Index of the warp issued last cycle (greedy-then-oldest policy).
    last: Option<usize>,
}

/// Complete mid-launch engine state — everything `run_timed_ctl` keeps in
/// locals while simulating, in storable form. Together with the device
/// state (global memory + cache hierarchy) this suffices to continue a
/// launch bit-identically from the captured cycle.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EngineState {
    pub(crate) sms: Vec<SmState>,
    pub(crate) next_cta: u64,
    pub(crate) done_ctas: u64,
    pub(crate) seq: u64,
    pub(crate) stats: Stats,
    pub(crate) mem_reads: u64,
    pub(crate) mem_writes: u64,
    pub(crate) cycle: u64,
    /// Per-launch cache-stat baselines captured at launch start; restored
    /// verbatim so the resumed run's launch-delta accounting matches an
    /// uninterrupted run exactly.
    pub(crate) l1d_start: Vec<CacheStats>,
    pub(crate) l1t_start: Vec<CacheStats>,
    pub(crate) l2_start: CacheStats,
}

impl EngineState {
    pub(crate) fn byte_size(&self) -> u64 {
        let per_sm = |sm: &SmState| {
            sm.rf.len() as u64 * 4
                + sm.smem.len() as u64 * 4
                + sm.slots.len() as u64 * 8
                + sm.warps.len() as u64 * std::mem::size_of::<Option<Warp>>() as u64
        };
        self.sms.iter().map(per_sm).sum::<u64>() + std::mem::size_of::<EngineState>() as u64
    }
}

/// Snapshot / resume / convergence controls for [`run_timed_ctl`]. The
/// empty value ([`TimedCtl::none`]) makes `run_timed_ctl` behave exactly
/// like the historical slow path.
pub(crate) struct TimedCtl<'a> {
    /// Cycles (sorted ascending) at which to capture a [`SimSnapshot`].
    pub(crate) capture_at: &'a [u64],
    /// Snapshots captured this run, in cycle order.
    pub(crate) captured: Vec<SimSnapshot>,
    /// Start mid-launch from this snapshot instead of from cycle 0.
    pub(crate) resume: Option<&'a SimSnapshot>,
    /// Golden reference enabling the early masked-convergence exit.
    pub(crate) converge: Option<ConvergeWith<'a>>,
    /// Cycle at which the run exited early through the convergence check.
    pub(crate) converged_at: Option<u64>,
    /// Cycles actually simulated (exit cycle − start cycle).
    pub(crate) simulated_cycles: u64,
}

impl<'a> TimedCtl<'a> {
    pub(crate) fn none() -> TimedCtl<'a> {
        TimedCtl {
            capture_at: &[],
            captured: Vec::new(),
            resume: None,
            converge: None,
            converged_at: None,
            simulated_cycles: 0,
        }
    }
}

/// Per-launch geometry derived from the kernel and launch config.
struct Geometry {
    wpc: u32,
    regs_per_warp: u32,
    regs_per_cta: u32,
    smem_words_per_cta: u32,
    slots_per_sm: u32,
}

fn geometry(cfg: &GpuConfig, kernel: &Kernel, lc: &LaunchConfig) -> Geometry {
    let wpc = lc.warps_per_cta();
    let regs_per_warp = kernel.num_regs as u32 * WARP_SIZE as u32;
    let regs_per_cta = wpc * regs_per_warp;
    let smem_words_per_cta = (kernel.smem_bytes / 4).max(1);
    let by_threads = cfg.max_threads_per_sm / (wpc * WARP_SIZE as u32);
    let by_rf = cfg.rf_regs_per_sm / regs_per_cta;
    let by_smem = (cfg.smem_bytes_per_sm / 4) / smem_words_per_cta;
    let slots_per_sm = cfg.max_ctas_per_sm.min(by_threads).min(by_rf).min(by_smem);
    assert!(
        slots_per_sm >= 1,
        "kernel {} exceeds SM limits (block {}, regs {}, smem {}B)",
        kernel.name,
        lc.block_x,
        kernel.num_regs,
        kernel.smem_bytes
    );
    Geometry {
        wpc,
        regs_per_warp,
        regs_per_cta,
        smem_words_per_cta,
        slots_per_sm,
    }
}

/// Place CTA `lin` into `slot` of `sm` (SM index `smi`) at cycle `t`.
/// `initial` marks the pre-cycle-0 prefill (occupied from cycle 0), as
/// opposed to a mid-run refill during cycle `t`'s retire stage (occupied
/// from `t + 1`).
#[allow(clippy::too_many_arguments)]
fn launch_cta(
    sm: &mut SmState,
    slot: usize,
    lin: u64,
    lc: &LaunchConfig,
    g: &Geometry,
    seq: &mut u64,
    smi: usize,
    t: u64,
    initial: bool,
    ace: Option<&mut LifetimeTracker>,
) {
    let ctaid_x = (lin % lc.grid_x as u64) as u32;
    let ctaid_y = (lin / lc.grid_x as u64) as u32;
    let rf_base = slot * g.regs_per_cta as usize;
    sm.rf[rf_base..rf_base + g.regs_per_cta as usize].fill(0);
    let sm_base = slot * g.smem_words_per_cta as usize;
    sm.smem[sm_base..sm_base + g.smem_words_per_cta as usize].fill(0);
    if let Some(tr) = ace {
        tr.cta_fill(
            smi,
            rf_base,
            g.regs_per_cta as usize,
            sm_base,
            g.smem_words_per_cta as usize,
            t,
        );
        tr.slot_fill(smi, slot, t, initial);
    }
    for wi in 0..g.wpc {
        let first_thread = wi * WARP_SIZE as u32;
        let lanes = (lc.block_x - first_thread).min(WARP_SIZE as u32);
        let mask = if lanes >= 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        let w = Warp::new(ctaid_x, ctaid_y, wi, mask, *seq);
        *seq += 1;
        sm.warps[slot * g.wpc as usize + wi as usize] = Some(w);
    }
    sm.slots[slot] = Some(CtaSlot {
        warps_running: g.wpc,
        arrived: 0,
    });
}

/// Apply a pending microarchitecture fault to the live machine state.
///
/// The seed location is drawn exactly as in the single-bit model
/// (`loc_pick % population`); the fault's [`FaultPattern`] then expands it
/// into its full footprint via [`pattern_footprint`]. Transient patterns
/// XOR their masks once; stuck-at patterns force the masked bits and pin
/// the resolved physical sites in `inj.stuck`, which the engine re-forces
/// on every simulation step until launch end.
///
/// [`FaultPattern`]: crate::fault::FaultPattern
fn apply_uarch(
    inj: &mut UarchInjector,
    sms: &mut [SmState],
    l1ds: &mut [Cache],
    l1ts: &mut [Cache],
    l2: &mut Cache,
    g: &Geometry,
) {
    inj.applied = true;
    let bit = inj.fault.bit;
    let pattern = inj.fault.pattern;
    let stuck = pattern.stuck_value();
    match inj.fault.structure {
        HwStructure::RegFile | HwStructure::Smem => {
            let is_rf = inj.fault.structure == HwStructure::RegFile;
            let per_cta = if is_rf {
                g.regs_per_cta as u64
            } else {
                g.smem_words_per_cta as u64
            };
            let mut population = 0u64;
            for sm in sms.iter() {
                population += sm.slots.iter().flatten().count() as u64 * per_cta;
            }
            inj.population = population;
            if population == 0 {
                return; // nothing allocated at this cycle: trivially masked
            }
            let mut target = inj.fault.loc_pick % population;
            let mut site = None;
            'walk: for (smi, sm) in sms.iter().enumerate() {
                for (slot_idx, slot) in sm.slots.iter().enumerate() {
                    if slot.is_none() {
                        continue;
                    }
                    if target < per_cta {
                        site = Some((smi, slot_idx as u64 * per_cta + target));
                        break 'walk;
                    }
                    target -= per_cta;
                }
            }
            let (smi, idx) = site.expect("population walk must land");
            let sm = &mut sms[smi];
            let arr_len = if is_rf { sm.rf.len() } else { sm.smem.len() } as u64;
            // Rows of WARP_SIZE words: one register (or shared-memory row)
            // across the 32 lanes/banks of the physical array.
            for (e, m) in pattern_footprint(pattern, idx, bit, arr_len, 32, WARP_SIZE as u64) {
                let w = if is_rf {
                    &mut sm.rf[e as usize]
                } else {
                    &mut sm.smem[e as usize]
                };
                match stuck {
                    Some(v) => {
                        *w = apply_stuck(*w, m, v);
                        inj.stuck.push(if is_rf {
                            StuckSite::RfWord {
                                sm: smi,
                                idx: e as usize,
                                mask: m,
                            }
                        } else {
                            StuckSite::SmemWord {
                                sm: smi,
                                idx: e as usize,
                                mask: m,
                            }
                        });
                    }
                    None => *w ^= m,
                }
            }
        }
        HwStructure::L1D | HwStructure::L1T => {
            let is_l1d = inj.fault.structure == HwStructure::L1D;
            let caches = if is_l1d { l1ds } else { l1ts };
            let per = caches[0].data_bytes();
            let total = per * caches.len() as u64;
            inj.population = total * 8;
            let byte = inj.fault.loc_pick % total;
            let which = (byte / per) as usize;
            let row = caches[which].geom().line_bytes as u64;
            for (b, m) in pattern_footprint(pattern, byte % per, bit, per, 8, row) {
                let m8 = m as u8;
                match stuck {
                    Some(v) => {
                        caches[which].force_mask(b, m8, v);
                        inj.stuck.push(StuckSite::CacheByte {
                            cache: if is_l1d {
                                StuckCache::L1d(which)
                            } else {
                                StuckCache::L1t(which)
                            },
                            byte: b,
                            mask: m8,
                        });
                    }
                    None => caches[which].flip_mask(b, m8),
                }
            }
        }
        HwStructure::L2 => {
            let per = l2.data_bytes();
            inj.population = per * 8;
            let row = l2.geom().line_bytes as u64;
            for (b, m) in pattern_footprint(pattern, inj.fault.loc_pick % per, bit, per, 8, row) {
                let m8 = m as u8;
                match stuck {
                    Some(v) => {
                        l2.force_mask(b, m8, v);
                        inj.stuck.push(StuckSite::CacheByte {
                            cache: StuckCache::L2,
                            byte: b,
                            mask: m8,
                        });
                    }
                    None => l2.flip_mask(b, m8),
                }
            }
        }
        HwStructure::Simt | HwStructure::Sched => {
            // Parallelism-management state: target one live warp, chosen
            // uniformly over the resident not-yet-retired warps.
            let mut population = 0u64;
            for sm in sms.iter() {
                population += sm.warps.iter().flatten().filter(|w| !w.done).count() as u64;
            }
            inj.population = population;
            if population == 0 {
                return;
            }
            let mut target = inj.fault.loc_pick % population;
            let mut site = None;
            'scan: for (smi, sm) in sms.iter().enumerate() {
                for (wi, w) in sm.warps.iter().enumerate() {
                    if w.as_ref().is_some_and(|w| !w.done) {
                        if target == 0 {
                            site = Some((smi, wi));
                            break 'scan;
                        }
                        target -= 1;
                    }
                }
            }
            let (smi, wi) = site.expect("population walk must land");
            let mask = value_mask(pattern, bit);
            let w = sms[smi].warps[wi].as_mut().expect("selected warp live");
            if inj.fault.structure == HwStructure::Simt {
                if let Some(top) = w.stack.last_mut() {
                    match stuck {
                        Some(v) => {
                            top.mask = apply_stuck(top.mask, mask, v);
                            inj.stuck.push(StuckSite::SimtMask {
                                sm: smi,
                                warp: wi,
                                mask,
                            });
                        }
                        None => top.mask ^= mask,
                    }
                }
            } else {
                match stuck {
                    Some(v) => {
                        let lo = apply_stuck(w.ready_at as u32, mask, v);
                        w.ready_at = (w.ready_at & !0xFFFF_FFFF) | u64::from(lo);
                        inj.stuck.push(StuckSite::SchedReady {
                            sm: smi,
                            warp: wi,
                            mask,
                        });
                    }
                    None => w.ready_at ^= u64::from(mask),
                }
            }
        }
    }
}

/// Re-force every resolved stuck-at site (idempotent). Called at the top
/// of each engine step after the fault has landed, so any overwrite in
/// the previous step is pinned back to the stuck value before the next
/// instruction can observe it — the "re-asserted on every access"
/// semantics of a permanent fault. Sites are physical: a CTA slot or
/// cache line reallocated over a stuck location inherits the fault.
fn reassert_stuck(
    inj: &UarchInjector,
    sms: &mut [SmState],
    l1ds: &mut [Cache],
    l1ts: &mut [Cache],
    l2: &mut Cache,
) {
    let Some(v) = inj.stuck_value() else {
        return;
    };
    for s in &inj.stuck {
        match *s {
            StuckSite::RfWord { sm, idx, mask } => {
                let w = &mut sms[sm].rf[idx];
                *w = apply_stuck(*w, mask, v);
            }
            StuckSite::SmemWord { sm, idx, mask } => {
                let w = &mut sms[sm].smem[idx];
                *w = apply_stuck(*w, mask, v);
            }
            StuckSite::CacheByte { cache, byte, mask } => match cache {
                StuckCache::L1d(i) => l1ds[i].force_mask(byte, mask, v),
                StuckCache::L1t(i) => l1ts[i].force_mask(byte, mask, v),
                StuckCache::L2 => l2.force_mask(byte, mask, v),
            },
            StuckSite::SimtMask { sm, warp, mask } => {
                if let Some(w) = sms[sm].warps[warp].as_mut() {
                    if let Some(top) = w.stack.last_mut() {
                        top.mask = apply_stuck(top.mask, mask, v);
                    }
                }
            }
            StuckSite::SchedReady { sm, warp, mask } => {
                if let Some(w) = sms[sm].warps[warp].as_mut() {
                    let lo = apply_stuck(w.ready_at as u32, mask, v);
                    w.ready_at = (w.ready_at & !0xFFFF_FFFF) | u64::from(lo);
                }
            }
        }
    }
}

/// Run one kernel launch on the timed engine.
#[allow(clippy::too_many_arguments)]
pub fn run_timed(
    cfg: &GpuConfig,
    mem: &mut GlobalMem,
    l1ds: &mut [Cache],
    l1ts: &mut [Cache],
    l2: &mut Cache,
    kernel: &Kernel,
    lc: &LaunchConfig,
    uarch: Option<&mut UarchInjector>,
    sw: Option<&mut SwInjector>,
    ace: Option<&mut LifetimeTracker>,
    budget_cycles: u64,
) -> Result<Stats, LaunchAbort> {
    run_timed_ctl(
        cfg,
        mem,
        l1ds,
        l1ts,
        l2,
        kernel,
        lc,
        uarch,
        sw,
        ace,
        budget_cycles,
        &mut TimedCtl::none(),
    )
}

/// Run one kernel launch with snapshot capture / resume / convergence
/// controls. With an empty [`TimedCtl`] this is exactly the historical
/// engine; every fast-forward feature routes through the same loop so the
/// two paths cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_timed_ctl(
    cfg: &GpuConfig,
    mem: &mut GlobalMem,
    l1ds: &mut [Cache],
    l1ts: &mut [Cache],
    l2: &mut Cache,
    kernel: &Kernel,
    lc: &LaunchConfig,
    mut uarch: Option<&mut UarchInjector>,
    mut sw: Option<&mut SwInjector>,
    mut ace: Option<&mut LifetimeTracker>,
    budget_cycles: u64,
    ctl: &mut TimedCtl<'_>,
) -> Result<Stats, LaunchAbort> {
    let g = geometry(cfg, kernel, lc);
    let num_sms = cfg.num_sms as usize;
    let total_ctas = lc.num_ctas();
    if let Some(tr) = ace.as_deref_mut() {
        tr.launch_begin(
            g.wpc,
            g.regs_per_cta,
            g.smem_words_per_cta,
            g.slots_per_sm,
            total_ctas as u32,
        );
    }
    let capture_at = ctl.capture_at;
    let mut converge = ctl.converge.take();
    // A persistent (stuck-at) fault is re-asserted until launch end, so
    // the disturbed machine can never provably re-converge to golden
    // while the launch runs: disable the early masked-convergence exit.
    // (Launch-boundary convergence remains valid — the fault dies with
    // the launch.)
    if uarch
        .as_deref()
        .is_some_and(|i| i.fault.pattern.is_persistent())
    {
        converge = None;
    }

    let state = match ctl.resume {
        Some(snap) => {
            // ACE lifetime intervals and SW injection counters accumulate
            // over the whole prefix; a mid-launch restore cannot rebuild
            // them, so fast-forward refuses those modes.
            assert!(
                ace.is_none() && sw.is_none(),
                "snapshot resume supports plain and uarch-fault runs only"
            );
            // Verbatim restore: the resumed machine is bit-identical to
            // the one the snapshot was taken from — including cache stats
            // and the per-launch baselines — so the continuation
            // accumulates exactly what an uninterrupted run would.
            mem.clone_from(&snap.mem);
            for (c, s) in l1ds.iter_mut().zip(&snap.l1ds) {
                c.clone_from(s);
            }
            for (c, s) in l1ts.iter_mut().zip(&snap.l1ts) {
                c.clone_from(s);
            }
            l2.clone_from(&snap.l2);
            snap.engine.clone()
        }
        None => {
            let mut sms: Vec<SmState> = (0..num_sms)
                .map(|_| SmState {
                    rf: vec![0; cfg.rf_regs_per_sm as usize],
                    smem: vec![0; (cfg.smem_bytes_per_sm / 4) as usize],
                    slots: (0..g.slots_per_sm).map(|_| None).collect(),
                    warps: (0..g.slots_per_sm * g.wpc).map(|_| None).collect(),
                    last: None,
                })
                .collect();
            let mut next_cta = 0u64;
            let mut seq = 0u64;
            // Initial CTA fill, round-robin over SMs.
            'fill: for slot in 0..g.slots_per_sm as usize {
                for (smi, sm) in sms.iter_mut().enumerate() {
                    if next_cta >= total_ctas {
                        break 'fill;
                    }
                    launch_cta(
                        sm,
                        slot,
                        next_cta,
                        lc,
                        &g,
                        &mut seq,
                        smi,
                        0,
                        true,
                        ace.as_deref_mut(),
                    );
                    next_cta += 1;
                }
            }
            EngineState {
                sms,
                next_cta,
                done_ctas: 0,
                seq,
                stats: Stats::default(),
                mem_reads: 0,
                mem_writes: 0,
                cycle: 0,
                l1d_start: l1ds.iter().map(|c| c.stats).collect(),
                l1t_start: l1ts.iter().map(|c| c.stats).collect(),
                l2_start: l2.stats,
            }
        }
    };
    let EngineState {
        mut sms,
        mut next_cta,
        mut done_ctas,
        mut seq,
        mut stats,
        mut mem_reads,
        mut mem_writes,
        mut cycle,
        l1d_start,
        l1t_start,
        l2_start,
    } = state;
    let start_cycle = cycle;
    let mut cap_idx = capture_at.partition_point(|&c| c < cycle);
    // Convergence checks start strictly after the fault cycle: at or
    // before it the disturbed state cannot have diverged yet, and the
    // check only fires once the flip has actually landed.
    let mut conv_idx = match (&converge, uarch.as_deref()) {
        (Some(cv), Some(inj)) => cv.snaps.partition_point(|s| s.cycle() <= inj.fault.cycle),
        (Some(_), None) => panic!("convergence exit requires a microarchitecture fault"),
        _ => 0,
    };

    let max_warps_hw = (cfg.max_threads_per_sm / WARP_SIZE as u32) as u64;

    let result: Result<(), LaunchAbort> = if cycle > budget_cycles {
        // Resumed past the budget: the uninterrupted run would already
        // have timed out on its way to this cycle.
        Err(LaunchAbort::Timeout)
    } else {
        'outer: loop {
            // Capture due snapshots before anything mutates state this
            // cycle (golden instrumented runs only).
            while let Some(&cc) = capture_at.get(cap_idx) {
                if cc > cycle {
                    break;
                }
                if cc == cycle {
                    ctl.captured.push(SimSnapshot {
                        engine: EngineState {
                            sms: sms.clone(),
                            next_cta,
                            done_ctas,
                            seq,
                            stats,
                            mem_reads,
                            mem_writes,
                            cycle,
                            l1d_start: l1d_start.clone(),
                            l1t_start: l1t_start.clone(),
                            l2_start,
                        },
                        mem: mem.clone(),
                        l1ds: l1ds.to_vec(),
                        l1ts: l1ts.to_vec(),
                        l2: l2.clone(),
                    });
                }
                cap_idx += 1;
            }

            // Apply a due microarchitecture fault before issuing at this
            // cycle, and re-force any live stuck-at sites (permanent
            // faults) before the next instructions can observe them.
            if let Some(inj) = uarch.as_deref_mut() {
                if !inj.applied && cycle >= inj.fault.cycle {
                    apply_uarch(inj, &mut sms, l1ds, l1ts, l2, &g);
                } else if inj.applied && !inj.stuck.is_empty() {
                    reassert_stuck(inj, &mut sms, l1ds, l1ts, l2);
                }
            }

            // Early masked-convergence exit: once the fault has landed,
            // compare the disturbed machine against the golden snapshot at
            // the same cycle; architectural equality means the rest of the
            // launch is bit-identical to golden, so splice the golden
            // suffix instead of simulating it.
            if let Some(cv) = &converge {
                if uarch.as_deref().is_some_and(|i| i.applied) {
                    while cv.snaps.get(conv_idx).is_some_and(|s| s.cycle() < cycle) {
                        conv_idx += 1;
                    }
                    if cv.snaps.get(conv_idx).is_some_and(|s| s.cycle() == cycle) {
                        let gs = &cv.snaps[conv_idx];
                        conv_idx += 1;
                        if engine_converged(
                            &sms, &g, next_cta, done_ctas, seq, mem, l1ds, l1ts, l2, gs,
                        ) {
                            ctl.converged_at = Some(cycle);
                            ctl.simulated_cycles = cycle - start_cycle;
                            return Ok(splice_golden_suffix(
                                cv, gs, stats, mem_reads, mem_writes, mem, l1ds, l1ts, l2,
                                &l1d_start, &l1t_start, &l2_start,
                            ));
                        }
                    }
                }
            }

            let mut issued_any = false;
            let mut resident = 0u64;
            for (smi, sm) in sms.iter_mut().enumerate() {
                resident += sm.warps.iter().flatten().filter(|w| !w.done).count() as u64;

                // Greedy-then-oldest pick.
                let ready = |w: &Warp, cyc: u64| !w.done && !w.at_barrier && w.ready_at <= cyc;
                let pick = match sm.last {
                    Some(wi) if sm.warps[wi].as_ref().is_some_and(|w| ready(w, cycle)) => Some(wi),
                    _ => sm
                        .warps
                        .iter()
                        .enumerate()
                        .filter_map(|(i, w)| w.as_ref().map(|w| (i, w)))
                        .filter(|(_, w)| ready(w, cycle))
                        .min_by_key(|(_, w)| w.seq)
                        .map(|(i, _)| i),
                };
                let Some(wi) = pick else {
                    sm.last = None;
                    continue;
                };

                let mut warp = sm.warps[wi].take().expect("picked warp exists");
                let slot_idx = wi / g.wpc as usize;
                let rf_base = slot_idx * g.regs_per_cta as usize
                    + warp.warp_in_cta as usize * g.regs_per_warp as usize;
                let smem_base = slot_idx * g.smem_words_per_cta as usize;
                let (event, due) = {
                    let mut tg = TimedGMem {
                        l1d: &mut l1ds[smi],
                        l1t: &mut l1ts[smi],
                        l2,
                        mem,
                        lat: &cfg.lat,
                        now: cycle,
                        mem_reads: &mut mem_reads,
                        mem_writes: &mut mem_writes,
                        ace: ace.as_deref_mut(),
                        sm: smi,
                        ace_rf_base: rf_base,
                        ace_smem_base: smem_base,
                    };
                    let mut ctx = ExecCtx {
                        kernel,
                        params: &lc.params,
                        ntid: lc.block_x,
                        nctaid: lc.grid_x,
                        regs: &mut sm.rf[rf_base..rf_base + g.regs_per_warp as usize],
                        smem: &mut sm.smem[smem_base..smem_base + g.smem_words_per_cta as usize],
                        mem: &mut tg,
                        stats: &mut stats,
                        sw: sw.as_deref_mut(),
                        max_stack: cfg.max_stack_depth,
                    };
                    match step_warp(&mut warp, &mut ctx) {
                        Ok(ev) => (Some(ev), None),
                        Err(e) => (None, Some(e)),
                    }
                };
                if let Some(e) = due {
                    break 'outer Err(LaunchAbort::Due(e));
                }
                issued_any = true;
                let mut clear_greedy = true;
                match event.unwrap() {
                    StepEvent::Issued(class) => {
                        let latency = match class {
                            IssueClass::Alu => cfg.lat.alu as u64,
                            IssueClass::Sfu => cfg.lat.sfu as u64,
                            IssueClass::Smem { extra_conflicts } => {
                                cfg.lat.smem as u64
                                    + extra_conflicts as u64 * cfg.lat.smem_conflict as u64
                            }
                            IssueClass::Mem { ready } => ready.saturating_sub(cycle).max(1),
                        };
                        warp.ready_at = cycle + latency;
                        sm.warps[wi] = Some(warp);
                        sm.last = Some(wi);
                        clear_greedy = false;
                    }
                    StepEvent::Barrier => {
                        warp.at_barrier = true;
                        warp.ready_at = cycle + cfg.lat.alu as u64;
                        sm.warps[wi] = Some(warp);
                        let slot = sm.slots[slot_idx].as_mut().expect("slot live");
                        slot.arrived += 1;
                        if slot.arrived >= slot.warps_running {
                            slot.arrived = 0;
                            let base = slot_idx * g.wpc as usize;
                            for w in sm.warps[base..base + g.wpc as usize].iter_mut().flatten() {
                                w.at_barrier = false;
                            }
                        }
                    }
                    StepEvent::Done => {
                        sm.warps[wi] = None;
                        let slot = sm.slots[slot_idx].as_mut().expect("slot live");
                        slot.warps_running -= 1;
                        if slot.warps_running == 0 {
                            sm.slots[slot_idx] = None;
                            done_ctas += 1;
                            if let Some(tr) = ace.as_deref_mut() {
                                tr.slot_free(smi, slot_idx, cycle);
                            }
                            if next_cta < total_ctas {
                                launch_cta(
                                    sm,
                                    slot_idx,
                                    next_cta,
                                    lc,
                                    &g,
                                    &mut seq,
                                    smi,
                                    cycle,
                                    false,
                                    ace.as_deref_mut(),
                                );
                                next_cta += 1;
                            }
                        } else if slot.arrived >= slot.warps_running {
                            // Last non-waiting warp exited: release the barrier.
                            slot.arrived = 0;
                            let base = slot_idx * g.wpc as usize;
                            for w in sm.warps[base..base + g.wpc as usize].iter_mut().flatten() {
                                w.at_barrier = false;
                            }
                        }
                    }
                }
                if clear_greedy {
                    sm.last = None;
                }
            }

            if done_ctas == total_ctas {
                stats.resident_warp_cycles += resident;
                stats.max_warp_cycles += num_sms as u64 * max_warps_hw;
                stats.issue_cycles += 1; // the Done event implies an issue
                cycle += 1;
                break Ok(());
            }

            // Advance time: one cycle after an issue, else fast-forward to the
            // next readiness event (clamped to a pending fault cycle).
            let advance = if issued_any {
                1
            } else {
                let mut nxt = u64::MAX;
                for sm in &sms {
                    for w in sm.warps.iter().flatten() {
                        if !w.done && !w.at_barrier && w.ready_at > cycle {
                            nxt = nxt.min(w.ready_at);
                        }
                    }
                }
                if nxt == u64::MAX {
                    break Err(LaunchAbort::Due(DueKind::BarrierDeadlock));
                }
                let mut target = nxt;
                if let Some(inj) = uarch.as_deref() {
                    if !inj.applied && inj.fault.cycle > cycle {
                        target = target.min(inj.fault.cycle);
                    }
                }
                // Land exactly on pending capture / convergence-check cycles;
                // splitting an idle stretch in two is stats-neutral (stall and
                // residency counters scale linearly with `advance`).
                if let Some(&cc) = capture_at.get(cap_idx) {
                    if cc > cycle {
                        target = target.min(cc);
                    }
                }
                if let Some(cv) = &converge {
                    if let Some(gs) = cv.snaps.get(conv_idx) {
                        if gs.cycle() > cycle {
                            target = target.min(gs.cycle());
                        }
                    }
                }
                target - cycle
            };
            if issued_any {
                stats.issue_cycles += 1;
            } else {
                stats.stall_cycles += advance;
            }
            stats.resident_warp_cycles += resident * advance;
            stats.max_warp_cycles += num_sms as u64 * max_warps_hw * advance;
            cycle += advance;
            if cycle > budget_cycles {
                break Err(LaunchAbort::Timeout);
            }
        }
    };

    ctl.simulated_cycles = cycle - start_cycle;

    // A stuck-at site overwritten by the very last step must still read
    // stuck when the launch retires (output classification reads L2 and
    // memory after the epilogue).
    if let Some(inj) = uarch.as_deref() {
        if inj.applied && !inj.stuck.is_empty() {
            reassert_stuck(inj, &mut sms, l1ds, l1ts, l2);
        }
    }

    // Kernel boundary: L1s are invalidated (write-through, nothing dirty).
    for c in l1ds.iter_mut().chain(l1ts.iter_mut()) {
        c.invalidate_all();
    }
    // Register-file and shared-memory contents die with the grid, and the
    // invalidated L1 lines are clean: close every open interval dead.
    if let Some(tr) = ace {
        tr.launch_end(cycle);
    }

    result?;

    stats.cycles = cycle;
    stats.mem_reads = mem_reads;
    stats.mem_writes = mem_writes;
    stats.l1d.add(&cache_delta(l1ds, &l1d_start));
    stats.l1t.add(&cache_delta(l1ts, &l1t_start));
    stats.l2.add(&one_cache_delta(l2, &l2_start));
    Ok(stats)
}

/// Architectural equality between the live (disturbed) machine and a
/// golden snapshot at the same cycle. Dead state is excluded: stale
/// RF/SMEM words in free CTA slots (zeroed on reuse by [`launch_cta`]),
/// invalid cache lines, and cache hit/miss counters cannot influence any
/// future architectural outcome. Everything else — warp contexts, CTA
/// bookkeeping, live RF/SMEM ranges, valid cache lines with their tags /
/// dirty bits / LRU ages, MSHRs, and all of global memory — must match
/// bit-for-bit. A false negative only costs performance (the trial keeps
/// simulating); a false positive would be a correctness bug, so the
/// comparison is strict everywhere it matters.
#[allow(clippy::too_many_arguments)]
fn engine_converged(
    sms: &[SmState],
    g: &Geometry,
    next_cta: u64,
    done_ctas: u64,
    seq: u64,
    mem: &GlobalMem,
    l1ds: &[Cache],
    l1ts: &[Cache],
    l2: &Cache,
    gs: &SimSnapshot,
) -> bool {
    let ge = &gs.engine;
    if next_cta != ge.next_cta || done_ctas != ge.done_ctas || seq != ge.seq {
        return false;
    }
    for (sm, gsm) in sms.iter().zip(&ge.sms) {
        if sm.last != gsm.last || sm.slots != gsm.slots || sm.warps != gsm.warps {
            return false;
        }
        for (slot_idx, slot) in sm.slots.iter().enumerate() {
            if slot.is_none() {
                continue;
            }
            let r0 = slot_idx * g.regs_per_cta as usize;
            let r1 = r0 + g.regs_per_cta as usize;
            let s0 = slot_idx * g.smem_words_per_cta as usize;
            let s1 = s0 + g.smem_words_per_cta as usize;
            if sm.rf[r0..r1] != gsm.rf[r0..r1] || sm.smem[s0..s1] != gsm.smem[s0..s1] {
                return false;
            }
        }
    }
    if !l2.arch_eq(&gs.l2) {
        return false;
    }
    for (c, s) in l1ds.iter().zip(&gs.l1ds) {
        if !c.arch_eq(s) {
            return false;
        }
    }
    for (c, s) in l1ts.iter().zip(&gs.l1ts) {
        if !c.arch_eq(s) {
            return false;
        }
    }
    *mem == gs.mem
}

/// Build the final launch [`Stats`] for a converged trial and jump the
/// device to the golden post-launch state. The disturbed run simulated
/// the prefix up to the convergence cycle; golden's own counters cover
/// the suffix from the matched snapshot `gs` to launch end, so the total
/// is `prefix + (golden_end − golden_at_gs)` for every engine counter,
/// and the cache deltas compose the same way against their per-launch
/// baselines.
#[allow(clippy::too_many_arguments)]
fn splice_golden_suffix(
    cv: &ConvergeWith<'_>,
    gs: &SimSnapshot,
    mut stats: Stats,
    mem_reads: u64,
    mem_writes: u64,
    mem: &mut GlobalMem,
    l1ds: &mut [Cache],
    l1ts: &mut [Cache],
    l2: &mut Cache,
    l1d_start: &[CacheStats],
    l1t_start: &[CacheStats],
    l2_start: &CacheStats,
) -> Stats {
    let end = &cv.end_stats;
    stats.add_engine_delta(end, &gs.engine.stats);
    stats.cycles = end.cycles;
    stats.mem_reads = mem_reads + (end.mem_reads - gs.engine.mem_reads);
    stats.mem_writes = mem_writes + (end.mem_writes - gs.engine.mem_writes);
    // Cache counters: what this run accumulated so far plus golden's
    // remaining share of its own per-launch delta.
    stats.l1d = cache_delta(l1ds, l1d_start);
    stats.l1t = cache_delta(l1ts, l1t_start);
    stats.l2 = one_cache_delta(l2, l2_start);
    let mut tail = end.l1d;
    sub_stats(&mut tail, &cache_delta(&gs.l1ds, &gs.engine.l1d_start));
    stats.l1d.add(&tail);
    let mut tail = end.l1t;
    sub_stats(&mut tail, &cache_delta(&gs.l1ts, &gs.engine.l1t_start));
    stats.l1t.add(&tail);
    let mut tail = end.l2;
    sub_stats(&mut tail, &one_cache_delta(&gs.l2, &gs.engine.l2_start));
    stats.l2.add(&tail);
    // Device jump: the golden boundary snapshot already has the L1s
    // invalidated, so the normal epilogue is skipped by the caller.
    mem.clone_from(&cv.end.mem);
    for (c, s) in l1ds.iter_mut().zip(&cv.end.l1ds) {
        c.clone_from(s);
    }
    for (c, s) in l1ts.iter_mut().zip(&cv.end.l1ts) {
        c.clone_from(s);
    }
    l2.clone_from(&cv.end.l2);
    stats
}

/// Sum of per-cache stat deltas against their launch-start baselines.
fn cache_delta(caches: &[Cache], starts: &[CacheStats]) -> CacheStats {
    let mut acc = CacheStats::default();
    for (c, s0) in caches.iter().zip(starts) {
        acc.add(&one_cache_delta(c, s0));
    }
    acc
}

fn one_cache_delta(c: &Cache, s0: &CacheStats) -> CacheStats {
    let mut d = c.stats;
    sub_stats(&mut d, s0);
    d
}

fn sub_stats(a: &mut CacheStats, b: &CacheStats) {
    a.accesses -= b.accesses;
    a.misses -= b.misses;
    a.pending_hits -= b.pending_hits;
    a.reservation_fails -= b.reservation_fails;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu_arch::KernelBuilder;

    fn kernel_with(regs: u8, smem: u32) -> Kernel {
        let mut a = KernelBuilder::new("g");
        for i in 0..regs {
            a.mov(vgpu_arch::Reg(i), 0u32);
        }
        if smem > 0 {
            a.alloc_smem(smem);
        }
        a.build().unwrap()
    }

    #[test]
    fn geometry_respects_all_limits() {
        let cfg = GpuConfig::default();
        // Thread-limited: 1024 threads/SM, block 256 → 4 CTAs.
        let k = kernel_with(4, 0);
        let lc = LaunchConfig::new(64, 256, vec![]);
        let g = geometry(&cfg, &k, &lc);
        assert_eq!(g.slots_per_sm, 4);
        assert_eq!(g.wpc, 8);
        assert_eq!(g.regs_per_warp, 4 * 32);

        // RF-limited: 32 regs × 256 threads = 8192 regs/CTA, 65536 RF → 8,
        // but thread cap (4) binds first; with block 64 the RF allows 32
        // and max_ctas (16) binds.
        let k = kernel_with(32, 0);
        let lc = LaunchConfig::new(64, 64, vec![]);
        let g = geometry(&cfg, &k, &lc);
        assert_eq!(g.slots_per_sm, 16);

        // SMEM-limited: 48 KiB per CTA of a 64 KiB SM → 1 slot.
        let k = kernel_with(2, 48 * 1024);
        let lc = LaunchConfig::new(8, 64, vec![]);
        let g = geometry(&cfg, &k, &lc);
        assert_eq!(g.slots_per_sm, 1);
        assert_eq!(g.smem_words_per_cta, 48 * 1024 / 4);
    }

    #[test]
    #[should_panic(expected = "exceeds SM limits")]
    fn oversized_kernel_panics_at_launch_geometry() {
        let cfg = GpuConfig::default();
        let k = kernel_with(2, 80 * 1024); // > 64 KiB SMEM per SM
        let lc = LaunchConfig::new(1, 32, vec![]);
        geometry(&cfg, &k, &lc);
    }

    #[test]
    fn partial_last_warp_gets_partial_mask() {
        let cfg = GpuConfig::default();
        let k = kernel_with(2, 0);
        let lc = LaunchConfig::new(1, 40, vec![]); // 1 full warp + 8 lanes
        let g = geometry(&cfg, &k, &lc);
        let mut sm = SmState {
            rf: vec![0; cfg.rf_regs_per_sm as usize],
            smem: vec![0; (cfg.smem_bytes_per_sm / 4) as usize],
            slots: (0..g.slots_per_sm).map(|_| None).collect(),
            warps: (0..g.slots_per_sm * g.wpc).map(|_| None).collect(),
            last: None,
        };
        let mut seq = 0;
        launch_cta(&mut sm, 0, 0, &lc, &g, &mut seq, 0, 0, true, None);
        let w0 = sm.warps[0].as_ref().unwrap();
        let w1 = sm.warps[1].as_ref().unwrap();
        assert_eq!(w0.init_mask, u32::MAX);
        assert_eq!(w1.init_mask, 0xFF);
        assert_eq!(seq, 2);
    }
}
