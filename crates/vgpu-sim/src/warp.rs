//! Warp state: the SIMT reconvergence stack and per-warp bookkeeping.

/// One entry of the SIMT reconvergence stack: execute at `pc` with `mask`
/// until reaching the reconvergence point `rpc`, then pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    pub pc: u32,
    pub rpc: u32,
    pub mask: u32,
}

/// Sentinel reconvergence PC for the base stack entry (never popped by the
/// `pc == rpc` rule; the warp ends when all lanes have executed `EXIT`).
pub const RPC_NONE: u32 = u32::MAX;

/// Execution state of one warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warp {
    pub stack: Vec<StackEntry>,
    /// Per-predicate lane bitmasks (bit `l` of `preds[p]` = P_p of lane l).
    pub preds: [u32; 4],
    /// Lanes that executed `EXIT`.
    pub exited: u32,
    /// Lanes that exist (the last warp of a CTA may be partial).
    pub init_mask: u32,
    pub ctaid_x: u32,
    pub ctaid_y: u32,
    pub warp_in_cta: u32,
    /// Cycle at which the warp may issue again (timed engine).
    pub ready_at: u64,
    pub at_barrier: bool,
    pub done: bool,
    /// Global launch order, used for oldest-first scheduling.
    pub seq: u64,
}

impl Warp {
    pub fn new(ctaid_x: u32, ctaid_y: u32, warp_in_cta: u32, init_mask: u32, seq: u64) -> Self {
        debug_assert!(init_mask != 0, "warp with no lanes");
        Warp {
            stack: vec![StackEntry {
                pc: 0,
                rpc: RPC_NONE,
                mask: init_mask,
            }],
            preds: [0; 4],
            exited: 0,
            init_mask,
            ctaid_x,
            ctaid_y,
            warp_in_cta,
            ready_at: 0,
            at_barrier: false,
            done: false,
            seq,
        }
    }

    /// Pop exhausted/reconverged entries; returns `false` if the warp is
    /// finished (stack empty).
    pub fn settle(&mut self) -> bool {
        while let Some(top) = self.stack.last() {
            if top.mask & !self.exited == 0 || top.pc == top.rpc {
                self.stack.pop();
                continue;
            }
            return true;
        }
        self.done = true;
        false
    }

    /// Currently live lanes of the top entry (callers must have `settle`d).
    pub fn live_mask(&self) -> u32 {
        self.stack.last().map_or(0, |t| t.mask & !self.exited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_warp_full_stack() {
        let w = Warp::new(2, 0, 1, 0xffff_ffff, 7);
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.live_mask(), 0xffff_ffff);
        assert!(!w.done);
        assert_eq!(w.seq, 7);
    }

    #[test]
    fn settle_pops_reconverged_entries() {
        let mut w = Warp::new(0, 0, 0, 0xf, 0);
        w.stack.push(StackEntry {
            pc: 10,
            rpc: 10,
            mask: 0x3,
        });
        assert!(w.settle());
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.live_mask(), 0xf);
    }

    #[test]
    fn settle_pops_fully_exited_entries_and_finishes() {
        let mut w = Warp::new(0, 0, 0, 0xf, 0);
        w.exited = 0xf;
        assert!(!w.settle());
        assert!(w.done);
        assert_eq!(w.live_mask(), 0);
    }

    #[test]
    fn partial_exit_keeps_entry_live() {
        let mut w = Warp::new(0, 0, 0, 0xf, 0);
        w.exited = 0x3;
        assert!(w.settle());
        assert_eq!(w.live_mask(), 0xc);
    }
}
