//! The [`Gpu`] facade: device memory + caches + the two execution engines,
//! with coherent host access between launches.

use crate::cache::Cache;
use crate::config::GpuConfig;
pub use crate::due::LaunchAbort;
use crate::fault::{SwInjector, UarchInjector};
use crate::functional::run_functional;
use crate::lifetime::LifetimeTracker;
use crate::mem::GlobalMem;
use crate::probe::SharedSink;
use crate::snapshot::{ConvergeWith, DeviceSnapshot, ResumeOutcome, SimSnapshot};
use crate::stats::Stats;
use crate::timed::{run_timed, run_timed_ctl, TimedCtl};
use vgpu_arch::{Kernel, LaunchConfig};

/// Which execution engine a [`Gpu`] uses.
///
/// * `Timed` — cycle-level microarchitecture simulation (gpuFI-4 / AVF side
///   of the study).
/// * `Functional` — hardware-agnostic execution (NVBitFI / SVF side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Timed,
    Functional,
}

/// Run budgets used for timeout classification. Golden runs should use
/// [`Budget::unlimited`]; faulty runs derive budgets from the golden
/// statistics (`timeout_factor ×` the golden cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Cycle budget (timed engine).
    pub cycles: u64,
    /// Thread-level dynamic instruction budget (functional engine).
    pub instrs: u64,
}

impl Budget {
    pub fn unlimited() -> Self {
        Budget {
            cycles: u64::MAX / 2,
            instrs: u64::MAX / 2,
        }
    }
}

/// The fault (if any) injected into a launch.
pub enum FaultPlan<'a> {
    None,
    /// Microarchitecture-level bit flip (timed engine only).
    Uarch(&'a mut UarchInjector),
    /// Software-level value flip (either engine; normally functional).
    Sw(&'a mut SwInjector),
}

/// A virtual GPU: configuration, device memory, cache hierarchy, engines.
///
/// Cache contents persist across launches (as on hardware, where the L2 is
/// shared across kernels of an application); L1s are invalidated at each
/// kernel boundary by the timed engine. Host accessors are L2-coherent so
/// host-side glue between kernels observes exactly what a `cudaMemcpy`
/// would.
pub struct Gpu {
    pub cfg: GpuConfig,
    mem: GlobalMem,
    mode: Mode,
    l1ds: Vec<Cache>,
    l1ts: Vec<Cache>,
    l2: Cache,
    tracker: Option<LifetimeTracker>,
}

impl Gpu {
    pub fn new(cfg: GpuConfig, mem: GlobalMem, mode: Mode) -> Self {
        let l1ds = (0..cfg.num_sms)
            .map(|_| Cache::new(cfg.l1d.clone()))
            .collect();
        let l1ts = (0..cfg.num_sms)
            .map(|_| Cache::new(cfg.l1t.clone()))
            .collect();
        let l2 = Cache::new(cfg.l2.clone());
        Gpu {
            cfg,
            mem,
            mode,
            l1ds,
            l1ts,
            l2,
            tracker: None,
        }
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Enable ACE lifetime tracking for subsequent timed launches (the
    /// `--ace` mode). Must be attached before the first launch so L2
    /// lifetimes spanning kernels are measured from a common origin.
    pub fn attach_tracker(&mut self) {
        assert_eq!(
            self.mode,
            Mode::Timed,
            "ACE lifetime tracking requires the timed engine"
        );
        self.tracker = Some(LifetimeTracker::new(&self.cfg));
    }

    /// Enable trace recording for subsequent timed launches: attaches a
    /// lifetime tracker (so every engine hook fires) and mirrors the hook
    /// stream into `sink` (`crates/trace`'s recorder). Like
    /// [`Gpu::attach_tracker`], must precede the first launch.
    pub fn attach_trace_sink(&mut self, sink: SharedSink) {
        assert_eq!(
            self.mode,
            Mode::Timed,
            "trace recording requires the timed engine"
        );
        // Forwarding-only tracker: the recorder needs the hook stream,
        // not the ACE interval accounting, and skipping the latter keeps
        // the traced pass cheap (docs/TRACE.md).
        let mut tr = LifetimeTracker::trace_only(&self.cfg);
        tr.set_sink(sink);
        self.tracker = Some(tr);
    }

    /// Record a host-side word read against an attached probe sink: if
    /// `addr` is L2-resident, the peek is forwarded as a
    /// [`ProbeEvent::HostRead`](crate::probe::ProbeEvent) so the trace
    /// knows the word's value propagated to the host (classification or
    /// inter-launch glue). No-op without a tracker or outside timed mode.
    pub fn probe_host_read(&mut self, addr: u32) {
        if self.mode != Mode::Timed {
            return;
        }
        let Some(tr) = self.tracker.as_mut() else {
            return;
        };
        let lb = self.l2.geom().line_bytes;
        if let Some(idx) = self.l2.probe(addr / lb) {
            tr.host_peek(idx, ((addr % lb) / 4) as usize);
        }
    }

    /// Cumulative ACE word-cycles per structure so far (`HwStructure::ALL`
    /// order), if a tracker is attached. Open L2 intervals are not yet
    /// included — see [`Gpu::finish_tracker`].
    pub fn tracker_totals(&self) -> Option<[u64; 5]> {
        self.tracker.as_ref().map(|t| t.ace_word_cycles())
    }

    /// Number of lifetime events (reads/writes/fills/evictions) recorded
    /// so far, if a tracker is attached.
    pub fn tracker_events(&self) -> Option<u64> {
        self.tracker.as_ref().map(|t| t.events())
    }

    /// Close every surviving L2 interval (dirty lines count live up to
    /// now), detach the tracker, and return the final per-structure ACE
    /// word-cycle totals.
    pub fn finish_tracker(&mut self) -> Option<[u64; 5]> {
        let mut tr = self.tracker.take()?;
        let l2 = &self.l2;
        tr.finalize_l2(|line| l2.line_dirty(line));
        Some(tr.ace_word_cycles())
    }

    /// Launch a kernel. Returns per-launch statistics, or the abort cause
    /// (DUE / timeout) for classification.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        lc: &LaunchConfig,
        fault: FaultPlan<'_>,
        budget: &Budget,
    ) -> Result<Stats, LaunchAbort> {
        let res = self.launch_inner(kernel, lc, fault, budget);
        if obs::enabled() {
            self.export_metrics(&res);
        }
        res
    }

    /// Export per-launch simulator counters into the global obs registry,
    /// labeled by engine mode. Only called while observability is on.
    fn export_metrics(&self, res: &Result<Stats, LaunchAbort>) {
        let mode = match self.mode {
            Mode::Timed => "timed",
            Mode::Functional => "functional",
        };
        let labels: &[(&str, &str)] = &[("mode", mode)];
        obs::counter_add("sim_launches_total", labels, 1);
        match res {
            Ok(s) => {
                obs::counter_add("sim_cycles_total", labels, s.cycles);
                obs::counter_add("sim_issue_cycles_total", labels, s.issue_cycles);
                obs::counter_add("sim_stall_cycles_total", labels, s.stall_cycles);
                obs::counter_add("sim_thread_instrs_total", labels, s.thread_instrs);
                obs::counter_add("sim_mem_reads_total", labels, s.mem_reads);
                obs::counter_add("sim_mem_writes_total", labels, s.mem_writes);
            }
            Err(abort) => {
                let cause = match abort {
                    LaunchAbort::Timeout => "timeout",
                    LaunchAbort::Due(_) => "due",
                };
                obs::counter_add("sim_aborts_total", &[("mode", mode), ("cause", cause)], 1);
            }
        }
    }

    fn launch_inner(
        &mut self,
        kernel: &Kernel,
        lc: &LaunchConfig,
        fault: FaultPlan<'_>,
        budget: &Budget,
    ) -> Result<Stats, LaunchAbort> {
        match self.mode {
            Mode::Timed => {
                let (uarch, sw) = match fault {
                    FaultPlan::None => (None, None),
                    FaultPlan::Uarch(u) => (Some(u), None),
                    FaultPlan::Sw(s) => (None, Some(s)),
                };
                let res = run_timed(
                    &self.cfg,
                    &mut self.mem,
                    &mut self.l1ds,
                    &mut self.l1ts,
                    &mut self.l2,
                    kernel,
                    lc,
                    uarch,
                    sw,
                    self.tracker.as_mut(),
                    budget.cycles,
                );
                if let Ok(s) = &res {
                    if let Some(tr) = self.tracker.as_mut() {
                        tr.advance_base(s.cycles);
                    }
                }
                res
            }
            Mode::Functional => {
                let sw = match fault {
                    FaultPlan::None => None,
                    FaultPlan::Sw(s) => Some(s),
                    FaultPlan::Uarch(_) => {
                        panic!("microarchitecture faults require the timed engine")
                    }
                };
                run_functional(
                    &mut self.mem,
                    kernel,
                    lc,
                    sw,
                    budget.instrs,
                    self.cfg.max_stack_depth,
                )
            }
        }
    }

    // ---- snapshots and fast-forward ------------------------------------

    /// Fault-free launch that additionally captures a [`SimSnapshot`] at
    /// each cycle of `capture_at` (sorted ascending). The run itself is
    /// bit-identical to `launch(…, FaultPlan::None, …)` — capture points
    /// only clone state, never perturb it. Timed mode, no ACE tracker.
    pub fn launch_instrumented(
        &mut self,
        kernel: &Kernel,
        lc: &LaunchConfig,
        budget: &Budget,
        capture_at: &[u64],
    ) -> Result<(Stats, Vec<SimSnapshot>), LaunchAbort> {
        assert_eq!(self.mode, Mode::Timed, "snapshots require the timed engine");
        assert!(
            self.tracker.is_none(),
            "snapshots are incompatible with ACE lifetime tracking"
        );
        let mut ctl = TimedCtl::none();
        ctl.capture_at = capture_at;
        let res = run_timed_ctl(
            &self.cfg,
            &mut self.mem,
            &mut self.l1ds,
            &mut self.l1ts,
            &mut self.l2,
            kernel,
            lc,
            None,
            None,
            None,
            budget.cycles,
            &mut ctl,
        );
        if obs::enabled() {
            self.export_metrics(&res);
        }
        res.map(|s| (s, ctl.captured))
    }

    /// Fault-free launch capturing a single snapshot at `cycle`
    /// (convenience over [`Gpu::launch_instrumented`]). Returns `None`
    /// for the snapshot if the launch finished before reaching `cycle`.
    pub fn snapshot_at(
        &mut self,
        kernel: &Kernel,
        lc: &LaunchConfig,
        budget: &Budget,
        cycle: u64,
    ) -> Result<(Stats, Option<SimSnapshot>), LaunchAbort> {
        let (stats, mut snaps) = self.launch_instrumented(kernel, lc, budget, &[cycle])?;
        Ok((stats, snaps.pop()))
    }

    /// Resume a launch mid-flight from `snap` — optionally with a pending
    /// microarchitecture `fault` (whose cycle must be ≥ the snapshot's)
    /// and a golden reference enabling the early masked-convergence exit.
    /// The machine is restored verbatim from the snapshot first, so the
    /// result is bit-identical to running the same launch with the same
    /// fault from cycle 0.
    pub fn resume_from(
        &mut self,
        snap: &SimSnapshot,
        kernel: &Kernel,
        lc: &LaunchConfig,
        fault: Option<&mut UarchInjector>,
        budget: &Budget,
        converge: Option<ConvergeWith<'_>>,
    ) -> Result<ResumeOutcome, LaunchAbort> {
        assert_eq!(self.mode, Mode::Timed, "snapshots require the timed engine");
        assert!(
            self.tracker.is_none(),
            "snapshot resume is incompatible with ACE lifetime tracking"
        );
        if let Some(f) = &fault {
            assert!(
                f.fault.cycle >= snap.cycle(),
                "snapshot (cycle {}) is past the fault cycle {}",
                snap.cycle(),
                f.fault.cycle
            );
        }
        let mut ctl = TimedCtl::none();
        ctl.resume = Some(snap);
        ctl.converge = converge;
        let res = run_timed_ctl(
            &self.cfg,
            &mut self.mem,
            &mut self.l1ds,
            &mut self.l1ts,
            &mut self.l2,
            kernel,
            lc,
            fault,
            None,
            None,
            budget.cycles,
            &mut ctl,
        );
        if obs::enabled() {
            self.export_metrics(&res);
        }
        res.map(|stats| ResumeOutcome {
            stats,
            resumed_at: snap.cycle(),
            simulated_cycles: ctl.simulated_cycles,
            converged_at: ctl.converged_at,
        })
    }

    /// Capture the device state (global memory + cache hierarchy) between
    /// launches — the launch-boundary snapshot of the fast-forward path.
    pub fn device_snapshot(&self) -> DeviceSnapshot {
        DeviceSnapshot {
            mem: self.mem.clone(),
            l1ds: self.l1ds.clone(),
            l1ts: self.l1ts.clone(),
            l2: self.l2.clone(),
        }
    }

    /// Restore device state captured by [`Gpu::device_snapshot`] verbatim.
    pub fn restore_device(&mut self, snap: &DeviceSnapshot) {
        assert_eq!(
            self.mem.size(),
            snap.mem.size(),
            "snapshot from a different arena"
        );
        self.mem.clone_from(&snap.mem);
        for (c, s) in self.l1ds.iter_mut().zip(&snap.l1ds) {
            c.clone_from(s);
        }
        for (c, s) in self.l1ts.iter_mut().zip(&snap.l1ts) {
            c.clone_from(s);
        }
        self.l2.clone_from(&snap.l2);
    }

    /// Architectural equality with a launch-boundary snapshot: global
    /// memory and the L2 must match bit-for-bit ([`Cache::arch_eq`]); the
    /// L1s must simply be empty on both sides, which they always are at a
    /// boundary (the timed engine invalidates them at launch end) — an
    /// empty cache's LRU stamp is dead state. A `true` here means every
    /// subsequent launch behaves bit-identically on both machines.
    pub fn device_converged(&self, snap: &DeviceSnapshot) -> bool {
        self.mem == snap.mem
            && self.l2.arch_eq(&snap.l2)
            && self.l1ds.iter().all(Cache::no_live_lines)
            && snap.l1ds.iter().all(Cache::no_live_lines)
            && self.l1ts.iter().all(Cache::no_live_lines)
            && snap.l1ts.iter().all(Cache::no_live_lines)
    }

    /// Return the GPU to its just-constructed state — zeroed arena bytes
    /// (the mapped-range table survives), reset caches, no tracker — so a
    /// pooled instance can be reused without reallocating (per-worker
    /// scratch reuse on the campaign hot path).
    pub fn reset_in_place(&mut self) {
        self.mem.clear_data();
        for c in self.l1ds.iter_mut().chain(self.l1ts.iter_mut()) {
            c.reset();
        }
        self.l2.reset();
        self.tracker = None;
    }

    // ---- coherent host access ------------------------------------------

    /// Host word read: sees the L2's copy if resident (timed mode).
    pub fn host_read_u32(&self, addr: u32) -> u32 {
        if self.mode == Mode::Timed {
            if let Some(v) = self.l2.peek_word(addr) {
                return v;
            }
        }
        self.mem.read_u32(addr)
    }

    /// Host word write: updates DRAM and any resident L2 copy. With a
    /// lifetime tracker attached, a host overwrite of a resident L2 word
    /// closes the word's interval dead — the device-written value was
    /// superseded before any further architectural use.
    pub fn host_write_u32(&mut self, addr: u32, v: u32) {
        self.mem.write_u32(addr, v);
        if self.mode == Mode::Timed && self.l2.poke_word(addr, v) {
            if let Some(tr) = self.tracker.as_mut() {
                let lb = self.l2.geom().line_bytes;
                if let Some(idx) = self.l2.probe(addr / lb) {
                    tr.cache_write(
                        crate::fault::HwStructure::L2,
                        0,
                        idx,
                        ((addr % lb) / 4) as usize,
                        0,
                    );
                }
            }
        }
    }

    pub fn host_read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.host_read_u32(addr))
    }

    pub fn host_write_f32(&mut self, addr: u32, v: f32) {
        self.host_write_u32(addr, v.to_bits());
    }

    /// Read `words` consecutive words starting at `addr`.
    pub fn host_read_block(&self, addr: u32, words: u32) -> Vec<u32> {
        (0..words)
            .map(|i| self.host_read_u32(addr + i * 4))
            .collect()
    }

    /// Write a block of words starting at `addr`.
    pub fn host_write_block(&mut self, addr: u32, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.host_write_u32(addr + i as u32 * 4, v);
        }
    }

    /// Direct access to the arena (tests, diagnostics).
    pub fn mem(&self) -> &GlobalMem {
        &self.mem
    }

    pub fn mem_mut(&mut self) -> &mut GlobalMem {
        &mut self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu_arch::{KernelBuilder, MemSpace, Operand};

    fn store_kernel() -> vgpu_arch::Kernel {
        // out[gid] = gid
        let mut a = KernelBuilder::new("t");
        let (gid, tmp, addr) = (a.reg(), a.reg(), a.reg());
        a.linear_tid(gid, tmp);
        a.mov(addr, a.param(0));
        a.iscadd(addr, gid, Operand::Reg(addr), 2);
        a.st(MemSpace::Global, addr, 0, gid);
        a.build().unwrap()
    }

    fn fresh(mode: Mode) -> (Gpu, LaunchConfig, u32) {
        let mut planner = crate::mem::ArenaPlanner::new();
        let out = planner.alloc(64 * 4);
        let mem = planner.build();
        let gpu = Gpu::new(GpuConfig::default(), mem, mode);
        (gpu, LaunchConfig::new(2, 32, vec![out]), out)
    }

    #[test]
    fn budget_unlimited_is_huge() {
        let b = Budget::unlimited();
        assert!(b.cycles > 1 << 60);
        assert!(b.instrs > 1 << 60);
    }

    #[test]
    fn host_reads_see_l2_resident_writes_in_timed_mode() {
        let k = store_kernel();
        let (mut gpu, lc, out) = fresh(Mode::Timed);
        gpu.launch(&k, &lc, FaultPlan::None, &Budget::unlimited())
            .unwrap();
        for i in 0..64 {
            assert_eq!(gpu.host_read_u32(out + i * 4), i);
        }
    }

    #[test]
    fn host_write_updates_resident_l2_copy() {
        let k = store_kernel();
        let (mut gpu, lc, out) = fresh(Mode::Timed);
        gpu.launch(&k, &lc, FaultPlan::None, &Budget::unlimited())
            .unwrap();
        // Output lines are dirty in L2; a host write must be visible to a
        // subsequent host read (and to the next kernel through the L2).
        gpu.host_write_u32(out + 8, 777);
        assert_eq!(gpu.host_read_u32(out + 8), 777);
    }

    #[test]
    fn block_accessors_roundtrip() {
        let (mut gpu, _, out) = fresh(Mode::Functional);
        gpu.host_write_block(out, &[1, 2, 3, 4]);
        assert_eq!(gpu.host_read_block(out, 4), vec![1, 2, 3, 4]);
        gpu.host_write_f32(out, 2.5);
        assert_eq!(gpu.host_read_f32(out), 2.5);
    }

    #[test]
    #[should_panic(expected = "timed engine")]
    fn uarch_fault_in_functional_mode_panics() {
        let k = store_kernel();
        let (mut gpu, lc, _) = fresh(Mode::Functional);
        let mut inj = crate::fault::UarchInjector::new(crate::fault::UarchFault {
            cycle: 0,
            structure: crate::fault::HwStructure::L2,
            loc_pick: 0,
            bit: 0,
            pattern: crate::fault::FaultPattern::SingleBit,
        });
        let _ = gpu.launch(&k, &lc, FaultPlan::Uarch(&mut inj), &Budget::unlimited());
    }

    #[test]
    fn mode_accessor() {
        let (gpu, _, _) = fresh(Mode::Timed);
        assert_eq!(gpu.mode(), Mode::Timed);
    }

    #[test]
    fn snapshot_resume_reproduces_golden_suffix() {
        let k = store_kernel();
        let (mut g1, lc, out) = fresh(Mode::Timed);
        let golden = g1
            .launch(&k, &lc, FaultPlan::None, &Budget::unlimited())
            .unwrap();
        let gold_out = g1.host_read_block(out, 64);

        let (mut g2, lc2, _) = fresh(Mode::Timed);
        let mid = golden.cycles / 2;
        let (istats, snap) = g2.snapshot_at(&k, &lc2, &Budget::unlimited(), mid).unwrap();
        assert_eq!(istats, golden, "instrumented run must not perturb stats");
        let snap = snap.expect("mid-run snapshot");
        assert_eq!(snap.cycle(), mid);

        let (mut g3, lc3, out3) = fresh(Mode::Timed);
        let r = g3
            .resume_from(&snap, &k, &lc3, None, &Budget::unlimited(), None)
            .unwrap();
        assert_eq!(r.stats, golden, "resumed run must finish bit-identically");
        assert_eq!(r.resumed_at, mid);
        assert_eq!(r.simulated_cycles, golden.cycles - mid);
        assert_eq!(r.converged_at, None);
        assert_eq!(g3.host_read_block(out3, 64), gold_out);
    }

    #[test]
    fn resume_with_fault_matches_slow_path() {
        use crate::fault::{HwStructure, UarchFault, UarchInjector};
        let k = store_kernel();
        let (mut g1, lc, out) = fresh(Mode::Timed);
        let golden = g1
            .launch(&k, &lc, FaultPlan::None, &Budget::unlimited())
            .unwrap();
        let fault = UarchFault {
            cycle: golden.cycles / 2 + 1,
            structure: HwStructure::L2,
            loc_pick: 12345,
            bit: 7,
            pattern: crate::fault::FaultPattern::SingleBit,
        };

        // Slow path: full run with the fault from cycle 0.
        let (mut gs, lcs, outs) = fresh(Mode::Timed);
        let mut slow_inj = UarchInjector::new(fault);
        let slow = gs
            .launch(
                &k,
                &lcs,
                FaultPlan::Uarch(&mut slow_inj),
                &Budget::unlimited(),
            )
            .unwrap();
        let slow_out = gs.host_read_block(outs, 64);

        // Fast path: snapshot before the fault, resume with it pending.
        let (mut gc, lcc, _) = fresh(Mode::Timed);
        let (_, snap) = gc
            .snapshot_at(&k, &lcc, &Budget::unlimited(), golden.cycles / 2)
            .unwrap();
        let snap = snap.unwrap();
        let (mut gf, lcf, outf) = fresh(Mode::Timed);
        let mut ff_inj = UarchInjector::new(fault);
        let r = gf
            .resume_from(
                &snap,
                &k,
                &lcf,
                Some(&mut ff_inj),
                &Budget::unlimited(),
                None,
            )
            .unwrap();
        assert_eq!(r.stats, slow, "fault trial must be path-independent");
        assert_eq!(slow_inj.applied, ff_inj.applied);
        assert_eq!(slow_inj.population, ff_inj.population);
        assert_eq!(gf.host_read_block(outf, 64), slow_out);
        assert_eq!(gf.host_read_block(out, 64), gs.host_read_block(out, 64));
        let _ = out;
    }
}
