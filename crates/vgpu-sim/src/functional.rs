//! The functional engine: hardware-agnostic execution used for
//! software-level (NVBitFI-model) fault injection and golden references.
//!
//! CTAs run sequentially; warps within a CTA run round-robin with a fixed
//! quantum so barriers work. There are no caches, no latencies and no
//! occupancy limits — exactly the abstraction level a binary-instrumentation
//! injector sees, and the reason SVF campaigns are orders of magnitude
//! cheaper than cross-layer AVF campaigns.

use crate::due::{DueKind, LaunchAbort};
use crate::exec::{step_warp, ExecCtx, FlatMem, StepEvent};
use crate::fault::SwInjector;
use crate::mem::GlobalMem;
use crate::stats::Stats;
use crate::warp::Warp;
use vgpu_arch::{Kernel, LaunchConfig, WARP_SIZE};

/// Instructions a warp may run before yielding to its siblings.
const QUANTUM: u32 = 256;

/// Run one kernel launch functionally. `budget_instrs` bounds the total
/// thread-level dynamic instructions (timeout classification).
pub fn run_functional(
    mem: &mut GlobalMem,
    kernel: &Kernel,
    lc: &LaunchConfig,
    mut sw: Option<&mut SwInjector>,
    budget_instrs: u64,
    max_stack: usize,
) -> Result<Stats, LaunchAbort> {
    let wpc = lc.warps_per_cta() as usize;
    let regs_per_warp = kernel.num_regs as usize * WARP_SIZE;
    let smem_words = (kernel.smem_bytes / 4).max(1) as usize;
    let total_ctas = lc.num_ctas();

    let mut stats = Stats::default();
    let mut seq = 0u64;

    for lin in 0..total_ctas {
        let ctaid_x = (lin % lc.grid_x as u64) as u32;
        let ctaid_y = (lin / lc.grid_x as u64) as u32;
        let mut regs = vec![0u32; wpc * regs_per_warp];
        let mut smem = vec![0u32; smem_words];
        let mut warps: Vec<Warp> = (0..wpc)
            .map(|wi| {
                let first = wi as u32 * WARP_SIZE as u32;
                let lanes = (lc.block_x - first).min(WARP_SIZE as u32);
                let mask = if lanes >= 32 {
                    u32::MAX
                } else {
                    (1u32 << lanes) - 1
                };
                let w = Warp::new(ctaid_x, ctaid_y, wi as u32, mask, seq);
                seq += 1;
                w
            })
            .collect();

        let mut running = wpc as u32;
        let mut arrived = 0u32;
        while running > 0 {
            let mut progressed = false;
            // `wi` also derives the warp's register-bank offset and feeds a
            // second disjoint borrow of `warps` below, so iter_mut won't do.
            #[allow(clippy::needless_range_loop)]
            for wi in 0..wpc {
                if warps[wi].done || warps[wi].at_barrier {
                    continue;
                }
                let rb = wi * regs_per_warp;
                let mut quantum = QUANTUM;
                loop {
                    let mut flat = FlatMem { mem };
                    let mut ctx = ExecCtx {
                        kernel,
                        params: &lc.params,
                        ntid: lc.block_x,
                        nctaid: lc.grid_x,
                        regs: &mut regs[rb..rb + regs_per_warp],
                        smem: &mut smem,
                        mem: &mut flat,
                        stats: &mut stats,
                        sw: sw.as_deref_mut(),
                        max_stack,
                    };
                    match step_warp(&mut warps[wi], &mut ctx).map_err(LaunchAbort::Due)? {
                        StepEvent::Done => {
                            running -= 1;
                            progressed = true;
                            break;
                        }
                        StepEvent::Barrier => {
                            warps[wi].at_barrier = true;
                            arrived += 1;
                            progressed = true;
                            break;
                        }
                        StepEvent::Issued(_) => {
                            progressed = true;
                            quantum -= 1;
                            if quantum == 0 {
                                break;
                            }
                        }
                    }
                }
                if stats.thread_instrs > budget_instrs {
                    return Err(LaunchAbort::Timeout);
                }
            }
            if running > 0 && arrived >= running {
                arrived = 0;
                for w in warps.iter_mut() {
                    w.at_barrier = false;
                }
            } else if !progressed && running > 0 {
                // Every live warp is stuck at a barrier that can never
                // release (fault-corrupted control flow).
                return Err(LaunchAbort::Due(DueKind::BarrierDeadlock));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu_arch::{CmpOp, KernelBuilder, SpecialReg};

    /// A kernel where the first warp exits before the barrier.
    fn early_exit_kernel() -> Kernel {
        let mut a = KernelBuilder::new("early_exit");
        let (tid,) = (a.reg(),);
        let p = a.pred();
        a.s2r(tid, SpecialReg::TidX);
        a.isetp(p, tid, 32u32, CmpOp::Lt, true);
        a.emit_guarded(vgpu_arch::Op::Exit, p, false);
        a.bar();
        a.build().unwrap()
    }

    #[test]
    fn barrier_counts_live_warps_only() {
        // Warp 0 exits pre-barrier; the barrier must release for the one
        // remaining warp (warp-level arrival counting, as on hardware) —
        // the run completes rather than deadlocking.
        let k = early_exit_kernel();
        let mut mem = GlobalMem::new(4096);
        mem.map(0, 4096);
        let lc = LaunchConfig::new(1, 64, vec![]);
        let r = run_functional(&mut mem, &k, &lc, None, u64::MAX / 2, 64);
        assert!(r.is_ok(), "{r:?}");
        let _ = DueKind::BarrierDeadlock; // deadlock is a defensive path
    }

    #[test]
    fn instruction_budget_causes_timeout() {
        let mut a = KernelBuilder::new("spin");
        let (i,) = (a.reg(),);
        let p = a.pred();
        a.mov(i, 0u32);
        a.loop_while(|a| {
            a.iadd(i, i, 1u32);
            a.isetp(p, i, 1_000_000u32, CmpOp::Lt, true);
            (p, false)
        });
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        let lc = LaunchConfig::new(1, 32, vec![]);
        let r = run_functional(&mut mem, &k, &lc, None, 10_000, 64);
        assert_eq!(r.unwrap_err(), LaunchAbort::Timeout);
    }
}
