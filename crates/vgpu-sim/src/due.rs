//! Detected unrecoverable errors (DUEs): catastrophic events that abort
//! execution before any output is produced — the "kernel or application
//! crash" class of the paper's fault-effect taxonomy.

use std::fmt;

/// The cause of a detected unrecoverable error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DueKind {
    /// A global/texture access touched an unmapped address (the dominant
    /// DUE class in GPU fault injection: "illegal memory access").
    IllegalAddress { addr: u32 },
    /// A 32-bit access was not word aligned.
    Misaligned { addr: u32 },
    /// A shared-memory access fell outside the CTA's allocation.
    SmemOutOfBounds { off: u32 },
    /// The program counter left the program (corrupted control flow).
    BadPc { pc: u32 },
    /// SIMT reconvergence stack exceeded its depth limit.
    StackOverflow,
    /// All resident warps were blocked at a barrier or finished while some
    /// CTA could never release its barrier — barrier divergence deadlock.
    BarrierDeadlock,
}

impl fmt::Display for DueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DueKind::IllegalAddress { addr } => write!(f, "illegal memory access at {addr:#x}"),
            DueKind::Misaligned { addr } => write!(f, "misaligned access at {addr:#x}"),
            DueKind::SmemOutOfBounds { off } => {
                write!(f, "shared-memory access out of bounds at offset {off:#x}")
            }
            DueKind::BadPc { pc } => write!(f, "program counter out of range: {pc:#x}"),
            DueKind::StackOverflow => write!(f, "SIMT stack overflow"),
            DueKind::BarrierDeadlock => write!(f, "barrier divergence deadlock"),
        }
    }
}

impl std::error::Error for DueKind {}

/// Why a launch did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchAbort {
    /// A detected unrecoverable error crashed the kernel.
    Due(DueKind),
    /// The run exceeded its cycle (timed) or instruction (functional)
    /// budget.
    Timeout,
}

impl fmt::Display for LaunchAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchAbort::Due(d) => write!(f, "DUE: {d}"),
            LaunchAbort::Timeout => write!(f, "timeout"),
        }
    }
}

impl std::error::Error for LaunchAbort {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DueKind::IllegalAddress { addr: 0x40 }
            .to_string()
            .contains("0x40"));
        assert!(DueKind::BarrierDeadlock.to_string().contains("deadlock"));
        assert!(DueKind::BadPc { pc: 0x99 }.to_string().contains("0x99"));
    }
}
