//! The SIMT instruction interpreter, shared by the cycle-level and
//! functional engines.
//!
//! [`step_warp`] executes one warp instruction: it settles the SIMT stack,
//! evaluates predication, runs the lane loop, handles divergence, applies
//! software-level fault injection hooks, and reports an issue class that the
//! timed engine converts into latency. The engines differ only in the
//! [`GMem`] implementation (cached vs. flat) and in how they consume the
//! returned issue class.

use crate::due::DueKind;
use crate::fault::{apply_stuck, value_mask, SwFaultKind, SwInjector, SwStuck};
use crate::stats::Stats;
use crate::warp::{StackEntry, Warp};
use vgpu_arch::{CmpOp, Kernel, MemSpace, Op, Operand, Reg, SpecialReg, WARP_SIZE};

/// Global-memory interface implemented by the two engines.
pub trait GMem {
    /// Warp-coalesced load of one word per active lane. `addrs[lane]` is
    /// meaningful where `mask` has the lane bit set. Returns the cycle at
    /// which the data is available (0 in functional mode).
    fn load(
        &mut self,
        tex: bool,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        out: &mut [u32; WARP_SIZE],
    ) -> Result<u64, DueKind>;

    /// Warp-coalesced store.
    fn store(
        &mut self,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        vals: &[u32; WARP_SIZE],
    ) -> Result<u64, DueKind>;

    /// Whether ACE lifetime tracking is active. Gates the per-instruction
    /// register-operand walk in [`step_warp`] so untracked runs pay nothing.
    fn ace_enabled(&self) -> bool {
        false
    }

    /// ACE hook: a register word (`reg * 32 + lane`, warp-local) was read.
    fn ace_reg_read(&mut self, _reg_word: usize) {}

    /// ACE hook: a register word (warp-local) was written.
    fn ace_reg_write(&mut self, _reg_word: usize) {}

    /// ACE hook: a shared-memory word (CTA-local index) was read.
    fn ace_smem_read(&mut self, _word: usize) {}

    /// ACE hook: a shared-memory word (CTA-local index) was written.
    fn ace_smem_write(&mut self, _word: usize) {}
}

/// How long the issued instruction occupies the warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueClass {
    Alu,
    Sfu,
    /// Shared-memory access; `extra_conflicts` = serialized extra bank
    /// passes beyond the first.
    Smem {
        extra_conflicts: u32,
    },
    /// Global/texture access; `ready` is the absolute completion cycle.
    Mem {
        ready: u64,
    },
}

/// Outcome of stepping a warp once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    Issued(IssueClass),
    /// The warp arrived at a CTA barrier (PC already advanced).
    Barrier,
    /// The warp finished.
    Done,
}

/// Everything `step_warp` needs besides the warp itself.
pub struct ExecCtx<'a, M: GMem> {
    pub kernel: &'a Kernel,
    pub params: &'a [u32],
    pub ntid: u32,
    pub nctaid: u32,
    /// This warp's register window: `num_regs * 32` words, laid out
    /// register-major (`reg * 32 + lane`).
    pub regs: &'a mut [u32],
    /// The owning CTA's shared memory (word granular).
    pub smem: &'a mut [u32],
    pub mem: &'a mut M,
    pub stats: &'a mut Stats,
    /// Software-level fault injection hook (NVBitFI model).
    pub sw: Option<&'a mut SwInjector>,
    pub max_stack: usize,
}

#[inline]
fn f(v: u32) -> f32 {
    f32::from_bits(v)
}

#[inline]
fn fb(v: f32) -> u32 {
    v.to_bits()
}

#[inline]
fn reg_idx(r: Reg, lane: usize) -> usize {
    r.0 as usize * WARP_SIZE + lane
}

#[inline]
fn read_reg(regs: &[u32], r: Reg, lane: usize) -> u32 {
    regs[reg_idx(r, lane)]
}

#[inline]
fn read_op(regs: &[u32], params: &[u32], o: &Operand, lane: usize) -> u32 {
    match o {
        Operand::Reg(r) => read_reg(regs, *r, lane),
        Operand::Imm(v) => *v,
        Operand::Const(i) => {
            debug_assert!(
                (*i as usize) < params.len(),
                "constant bank index out of range"
            );
            params.get(*i as usize).copied().unwrap_or(0)
        }
    }
}

#[inline]
fn fcmp(cmp: CmpOp, a: f32, bv: f32) -> bool {
    match a.partial_cmp(&bv) {
        Some(ord) => cmp.eval(ord),
        None => cmp == CmpOp::Ne, // unordered: only NE is true
    }
}

/// Kind of value-level software fault pending for this instruction.
enum PendingSw {
    Dest { lane: usize, mask: u32 },
    SrcRestore { r: Reg, lane: usize, mask: u32 },
    None,
}

/// Execute one instruction of `w`. Returns the issue event or a DUE.
pub fn step_warp<M: GMem>(w: &mut Warp, ctx: &mut ExecCtx<'_, M>) -> Result<StepEvent, DueKind> {
    if !w.settle() {
        return Ok(StepEvent::Done);
    }
    let top_idx = w.stack.len() - 1;
    let live = w.stack[top_idx].mask & !w.exited;
    let pc = w.stack[top_idx].pc;
    if pc as usize >= ctx.kernel.instrs.len() {
        return Err(DueKind::BadPc { pc });
    }
    let instr = ctx.kernel.instrs[pc as usize];
    let exec_mask = match instr.guard {
        Some(g) => {
            let pm = w.preds[g.pred.0 as usize];
            live & if g.negate { !pm } else { pm }
        }
        None => live,
    };

    ctx.stats.warp_instrs += 1;
    let n_active = exec_mask.count_ones() as u64;
    ctx.stats.thread_instrs += n_active;

    let op = instr.op;

    // ---- software-level fault injection bookkeeping -------------------
    // Count eligible dynamic thread-instructions and, when the target index
    // falls inside this instruction, arrange the bit flip.
    let mut pending = PendingSw::None;
    if let Some(sw) = ctx.sw.as_deref_mut() {
        if n_active > 0 {
            let eligible = match sw.fault.kind {
                SwFaultKind::DestValue => op.has_gp_dest(),
                SwFaultKind::DestValueLoad => {
                    matches!(
                        op,
                        Op::Ld {
                            space: MemSpace::Global | MemSpace::Tex,
                            ..
                        }
                    )
                }
                SwFaultKind::SrcTransient | SwFaultKind::SrcPersistent => !op.src_regs().is_empty(),
                SwFaultKind::ArchState => true,
                SwFaultKind::DestClass(c) => op.has_gp_dest() && op.instr_class() == c,
            };
            if eligible {
                let t = sw.fault.target;
                if t >= sw.counter && t < sw.counter + n_active {
                    // Locate the (t - counter)-th active lane.
                    let mut k = (t - sw.counter) as u32;
                    let mut m = exec_mask;
                    let lane = loop {
                        let l = m.trailing_zeros();
                        if k == 0 {
                            break l as usize;
                        }
                        m &= m - 1;
                        k -= 1;
                    };
                    let mask = value_mask(sw.fault.pattern, sw.fault.bit);
                    let stuck_v = sw.fault.pattern.stuck_value();
                    match sw.fault.kind {
                        SwFaultKind::DestValue
                        | SwFaultKind::DestValueLoad
                        | SwFaultKind::DestClass(_) => {
                            pending = PendingSw::Dest { lane, mask };
                        }
                        SwFaultKind::SrcTransient | SwFaultKind::SrcPersistent => {
                            let r = op.src_regs()[0];
                            let i = reg_idx(r, lane);
                            match stuck_v {
                                Some(v) => {
                                    // Persistent pattern: the cell is stuck
                                    // regardless of the source-fault kind.
                                    ctx.regs[i] = apply_stuck(ctx.regs[i], mask, v);
                                    sw.stuck = Some(SwStuck {
                                        seq: w.seq,
                                        reg: r.0,
                                        lane,
                                        mask,
                                        value: v,
                                    });
                                }
                                None => {
                                    ctx.regs[i] ^= mask;
                                    if sw.fault.kind == SwFaultKind::SrcTransient {
                                        pending = PendingSw::SrcRestore { r, lane, mask };
                                    }
                                }
                            }
                            sw.applied = true;
                        }
                        SwFaultKind::ArchState => {
                            // Architectural-state fault (PVF model): any
                            // live register of this warp, before execution.
                            let nregs = ctx.kernel.num_regs as u64;
                            let r = Reg((sw.fault.loc_pick % nregs) as u8);
                            let i = reg_idx(r, lane);
                            match stuck_v {
                                Some(v) => {
                                    ctx.regs[i] = apply_stuck(ctx.regs[i], mask, v);
                                    sw.stuck = Some(SwStuck {
                                        seq: w.seq,
                                        reg: r.0,
                                        lane,
                                        mask,
                                        value: v,
                                    });
                                }
                                None => ctx.regs[i] ^= mask,
                            }
                            sw.applied = true;
                        }
                    }
                }
                sw.counter += n_active;
            }
        }
    }

    // ---- instruction-class statistics ----------------------------------
    match op {
        Op::Ld {
            space: MemSpace::Global | MemSpace::Tex,
            ..
        } => {
            ctx.stats.load_instrs += n_active;
        }
        Op::St {
            space: MemSpace::Global,
            ..
        } => ctx.stats.store_instrs += n_active,
        Op::Ld {
            space: MemSpace::Shared,
            ..
        }
        | Op::St {
            space: MemSpace::Shared,
            ..
        } => {
            ctx.stats.smem_instrs += n_active;
        }
        _ => {}
    }
    if op.has_gp_dest() {
        ctx.stats.gp_dest_instrs += n_active;
        if let Some(c) = op.instr_class().index() {
            ctx.stats.class_dest_instrs[c] += n_active;
        }
    }
    if matches!(
        op,
        Op::Ld {
            space: MemSpace::Global | MemSpace::Tex,
            ..
        }
    ) {
        ctx.stats.ld_dest_instrs += n_active;
    }
    if !op.src_regs().is_empty() {
        ctx.stats.src_reg_instrs += n_active;
    }

    // ---- ACE lifetime tracking: source-register reads ------------------
    // `Sel` conservatively counts both inputs as read; predicate registers
    // are not part of the tracked register file.
    if ctx.mem.ace_enabled() && exec_mask != 0 {
        for r in op.src_regs() {
            let mut m = exec_mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                ctx.mem.ace_reg_read(reg_idx(r, lane));
            }
        }
    }

    macro_rules! lanes {
        ($lane:ident, $body:block) => {{
            let mut m = exec_mask;
            while m != 0 {
                let $lane = m.trailing_zeros() as usize;
                m &= m - 1;
                $body
            }
        }};
    }
    macro_rules! alu1 {
        ($d:expr, $a:expr, $lane:ident, $e:expr) => {{
            lanes!($lane, {
                let av = read_reg(ctx.regs, $a, $lane);
                ctx.regs[reg_idx($d, $lane)] = $e(av);
            });
            IssueClass::Alu
        }};
    }
    macro_rules! alu2 {
        ($d:expr, $a:expr, $b:expr, $lane:ident, $e:expr) => {{
            lanes!($lane, {
                let av = read_reg(ctx.regs, $a, $lane);
                let bv = read_op(ctx.regs, ctx.params, $b, $lane);
                ctx.regs[reg_idx($d, $lane)] = $e(av, bv);
            });
            IssueClass::Alu
        }};
    }

    let mut event = StepEvent::Issued(IssueClass::Alu);
    let mut advance = true;

    let class: IssueClass = match &op {
        Op::S2R { d, sr } => {
            lanes!(lane, {
                let v = match sr {
                    SpecialReg::TidX => w.warp_in_cta * WARP_SIZE as u32 + lane as u32,
                    SpecialReg::CtaIdX => w.ctaid_x,
                    SpecialReg::CtaIdY => w.ctaid_y,
                    SpecialReg::NTidX => ctx.ntid,
                    SpecialReg::NCtaIdX => ctx.nctaid,
                    SpecialReg::LaneId => lane as u32,
                };
                ctx.regs[reg_idx(*d, lane)] = v;
            });
            IssueClass::Alu
        }
        Op::Mov { d, a } => {
            lanes!(lane, {
                ctx.regs[reg_idx(*d, lane)] = read_op(ctx.regs, ctx.params, a, lane);
            });
            IssueClass::Alu
        }
        Op::IAdd { d, a, b } => alu2!(*d, *a, b, lane, |x: u32, y: u32| x.wrapping_add(y)),
        Op::ISub { d, a, b } => alu2!(*d, *a, b, lane, |x: u32, y: u32| x.wrapping_sub(y)),
        Op::IMul { d, a, b } => alu2!(*d, *a, b, lane, |x: u32, y: u32| x.wrapping_mul(y)),
        Op::IMad { d, a, b, c } => {
            lanes!(lane, {
                let av = read_reg(ctx.regs, *a, lane);
                let bv = read_op(ctx.regs, ctx.params, b, lane);
                let cv = read_op(ctx.regs, ctx.params, c, lane);
                ctx.regs[reg_idx(*d, lane)] = av.wrapping_mul(bv).wrapping_add(cv);
            });
            IssueClass::Alu
        }
        Op::IScAdd { d, a, b, shift } => {
            let sh = *shift as u32 & 31;
            alu2!(*d, *a, b, lane, |x: u32, y: u32| (x << sh).wrapping_add(y))
        }
        Op::IMnMx {
            d,
            a,
            b,
            max,
            signed,
        } => {
            let (mx, sg) = (*max, *signed);
            alu2!(*d, *a, b, lane, |x: u32, y: u32| {
                if sg {
                    let (xi, yi) = (x as i32, y as i32);
                    (if mx { xi.max(yi) } else { xi.min(yi) }) as u32
                } else if mx {
                    x.max(y)
                } else {
                    x.min(y)
                }
            })
        }
        // NVIDIA shifts clamp: amounts >= 32 yield 0.
        Op::Shl { d, a, b } => {
            alu2!(*d, *a, b, lane, |x: u32, y: u32| if y >= 32 {
                0
            } else {
                x << y
            })
        }
        Op::Shr { d, a, b } => {
            alu2!(*d, *a, b, lane, |x: u32, y: u32| if y >= 32 {
                0
            } else {
                x >> y
            })
        }
        Op::And { d, a, b } => alu2!(*d, *a, b, lane, |x: u32, y: u32| x & y),
        Op::Or { d, a, b } => alu2!(*d, *a, b, lane, |x: u32, y: u32| x | y),
        Op::Xor { d, a, b } => alu2!(*d, *a, b, lane, |x: u32, y: u32| x ^ y),
        Op::Not { d, a } => alu1!(*d, *a, lane, |x: u32| !x),
        Op::FAdd { d, a, b } => alu2!(*d, *a, b, lane, |x, y| fb(f(x) + f(y))),
        Op::FMul { d, a, b } => alu2!(*d, *a, b, lane, |x, y| fb(f(x) * f(y))),
        Op::FFma { d, a, b, c } => {
            lanes!(lane, {
                let av = f(read_reg(ctx.regs, *a, lane));
                let bv = f(read_op(ctx.regs, ctx.params, b, lane));
                let cv = f(read_op(ctx.regs, ctx.params, c, lane));
                ctx.regs[reg_idx(*d, lane)] = fb(av.mul_add(bv, cv));
            });
            IssueClass::Alu
        }
        Op::FMnMx { d, a, b, max } => {
            let mx = *max;
            alu2!(*d, *a, b, lane, |x, y| {
                let (xf, yf) = (f(x), f(y));
                fb(if mx { xf.max(yf) } else { xf.min(yf) })
            })
        }
        Op::FRcp { d, a } => {
            lanes!(lane, {
                let av = f(read_reg(ctx.regs, *a, lane));
                ctx.regs[reg_idx(*d, lane)] = fb(1.0 / av);
            });
            IssueClass::Sfu
        }
        Op::FSqrt { d, a } => {
            lanes!(lane, {
                let av = f(read_reg(ctx.regs, *a, lane));
                ctx.regs[reg_idx(*d, lane)] = fb(av.sqrt());
            });
            IssueClass::Sfu
        }
        Op::FExp { d, a } => {
            lanes!(lane, {
                let av = f(read_reg(ctx.regs, *a, lane));
                ctx.regs[reg_idx(*d, lane)] = fb(av.exp());
            });
            IssueClass::Sfu
        }
        Op::FLog { d, a } => {
            lanes!(lane, {
                let av = f(read_reg(ctx.regs, *a, lane));
                ctx.regs[reg_idx(*d, lane)] = fb(av.ln());
            });
            IssueClass::Sfu
        }
        Op::FAbs { d, a } => alu1!(*d, *a, lane, |x: u32| x & 0x7fff_ffff),
        Op::I2F { d, a } => alu1!(*d, *a, lane, |x: u32| fb(x as i32 as f32)),
        Op::F2I { d, a } => alu1!(*d, *a, lane, |x: u32| f(x) as i32 as u32),
        Op::ISetP {
            p,
            a,
            b,
            cmp,
            signed,
        } => {
            lanes!(lane, {
                let av = read_reg(ctx.regs, *a, lane);
                let bv = read_op(ctx.regs, ctx.params, b, lane);
                let r = if *signed {
                    cmp.eval((av as i32).cmp(&(bv as i32)))
                } else {
                    cmp.eval(av.cmp(&bv))
                };
                let bitm = 1u32 << lane;
                if r {
                    w.preds[p.0 as usize] |= bitm;
                } else {
                    w.preds[p.0 as usize] &= !bitm;
                }
            });
            IssueClass::Alu
        }
        Op::FSetP { p, a, b, cmp } => {
            lanes!(lane, {
                let av = f(read_reg(ctx.regs, *a, lane));
                let bv = f(read_op(ctx.regs, ctx.params, b, lane));
                let r = fcmp(*cmp, av, bv);
                let bitm = 1u32 << lane;
                if r {
                    w.preds[p.0 as usize] |= bitm;
                } else {
                    w.preds[p.0 as usize] &= !bitm;
                }
            });
            IssueClass::Alu
        }
        Op::PSetP {
            p,
            a,
            b,
            op: bop,
            na,
            nb,
        } => {
            let am = if *na {
                !w.preds[a.0 as usize]
            } else {
                w.preds[a.0 as usize]
            };
            let bm = if *nb {
                !w.preds[b.0 as usize]
            } else {
                w.preds[b.0 as usize]
            };
            let rm = match bop {
                vgpu_arch::BoolOp::And => am & bm,
                vgpu_arch::BoolOp::Or => am | bm,
                vgpu_arch::BoolOp::Xor => am ^ bm,
            };
            w.preds[p.0 as usize] = (w.preds[p.0 as usize] & !exec_mask) | (rm & exec_mask);
            IssueClass::Alu
        }
        Op::Sel { d, a, b, p, neg } => {
            let pm = if *neg {
                !w.preds[p.0 as usize]
            } else {
                w.preds[p.0 as usize]
            };
            lanes!(lane, {
                let v = if pm & (1 << lane) != 0 {
                    read_reg(ctx.regs, *a, lane)
                } else {
                    read_op(ctx.regs, ctx.params, b, lane)
                };
                ctx.regs[reg_idx(*d, lane)] = v;
            });
            IssueClass::Alu
        }
        Op::Ld { d, space, a, off } => match space {
            MemSpace::Shared => smem_access(w, ctx, exec_mask, *a, *off, Some(*d), None)?,
            MemSpace::Global | MemSpace::Tex => {
                let mut addrs = [0u32; WARP_SIZE];
                lanes!(lane, {
                    addrs[lane] = read_reg(ctx.regs, *a, lane).wrapping_add(*off as u32);
                });
                let mut out = [0u32; WARP_SIZE];
                if exec_mask != 0 {
                    let ready =
                        ctx.mem
                            .load(*space == MemSpace::Tex, exec_mask, &addrs, &mut out)?;
                    lanes!(lane, {
                        ctx.regs[reg_idx(*d, lane)] = out[lane];
                    });
                    IssueClass::Mem { ready }
                } else {
                    IssueClass::Alu
                }
            }
        },
        Op::St { space, a, off, v } => match space {
            MemSpace::Shared => smem_access(w, ctx, exec_mask, *a, *off, None, Some(*v))?,
            MemSpace::Tex => unreachable!("validated kernels cannot store to texture space"),
            MemSpace::Global => {
                let mut addrs = [0u32; WARP_SIZE];
                let mut vals = [0u32; WARP_SIZE];
                lanes!(lane, {
                    addrs[lane] = read_reg(ctx.regs, *a, lane).wrapping_add(*off as u32);
                    vals[lane] = read_reg(ctx.regs, *v, lane);
                });
                if exec_mask != 0 {
                    let ready = ctx.mem.store(exec_mask, &addrs, &vals)?;
                    IssueClass::Mem { ready }
                } else {
                    IssueClass::Alu
                }
            }
        },
        Op::Bar => {
            event = StepEvent::Barrier;
            IssueClass::Alu
        }
        Op::Bra { target, reconv } => {
            advance = false;
            let taken = exec_mask;
            let fall = live & !taken;
            let top = &mut w.stack[top_idx];
            if taken == 0 {
                top.pc = pc + 1;
            } else if fall == 0 {
                top.pc = *target;
            } else {
                // Divergence: the current entry becomes the reconvergence
                // continuation; push the two sides (skipping any side that
                // starts at the reconvergence point itself).
                top.pc = *reconv;
                top.mask = live;
                let rpc = *reconv;
                if pc + 1 != rpc {
                    w.stack.push(StackEntry {
                        pc: pc + 1,
                        rpc,
                        mask: fall,
                    });
                }
                if *target != rpc {
                    w.stack.push(StackEntry {
                        pc: *target,
                        rpc,
                        mask: taken,
                    });
                }
                if w.stack.len() > ctx.max_stack {
                    return Err(DueKind::StackOverflow);
                }
            }
            IssueClass::Alu
        }
        Op::Exit => {
            w.exited |= exec_mask;
            IssueClass::Alu
        }
    };

    // ---- apply pending destination-value fault & advance ---------------
    match pending {
        PendingSw::Dest { lane, mask } => {
            if let Some(d) = op.dst_reg() {
                let i = reg_idx(d, lane);
                if let Some(sw) = ctx.sw.as_deref_mut() {
                    match sw.fault.pattern.stuck_value() {
                        Some(v) => {
                            ctx.regs[i] = apply_stuck(ctx.regs[i], mask, v);
                            sw.stuck = Some(SwStuck {
                                seq: w.seq,
                                reg: d.0,
                                lane,
                                mask,
                                value: v,
                            });
                        }
                        None => ctx.regs[i] ^= mask,
                    }
                    sw.applied = true;
                }
            }
        }
        PendingSw::SrcRestore { r, lane, mask } => {
            // Transient source fault: undo the flip unless the instruction
            // overwrote the register anyway.
            if op.dst_reg() != Some(r) {
                ctx.regs[reg_idx(r, lane)] ^= mask;
            }
        }
        PendingSw::None => {}
    }

    // ---- re-assert a persistent software-level fault --------------------
    // A stuck register cell is re-forced after every instruction of its
    // warp, so whatever the instruction wrote is pinned back before the
    // next reader can observe it.
    if let Some(sw) = ctx.sw.as_deref_mut() {
        if let Some(st) = sw.stuck {
            if st.seq == w.seq {
                let i = reg_idx(Reg(st.reg), st.lane);
                ctx.regs[i] = apply_stuck(ctx.regs[i], st.mask, st.value);
            }
        }
    }

    // ---- ACE lifetime tracking: destination-register write -------------
    if ctx.mem.ace_enabled() && exec_mask != 0 {
        if let Some(d) = op.dst_reg() {
            let mut m = exec_mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                ctx.mem.ace_reg_write(reg_idx(d, lane));
            }
        }
    }

    if advance {
        w.stack[top_idx].pc = pc + 1;
    }
    if let StepEvent::Issued(_) = event {
        event = StepEvent::Issued(class);
    }
    Ok(event)
}

/// Shared-memory access with bounds checking and a 32-bank conflict model.
fn smem_access<M: GMem>(
    w: &mut Warp,
    ctx: &mut ExecCtx<'_, M>,
    exec_mask: u32,
    a: Reg,
    off: i32,
    load_into: Option<Reg>,
    store_from: Option<Reg>,
) -> Result<IssueClass, DueKind> {
    let len_bytes = (ctx.smem.len() * 4) as u32;
    let mut bank_counts = [0u8; 32];
    let mut m = exec_mask;
    while m != 0 {
        let lane = m.trailing_zeros() as usize;
        m &= m - 1;
        let addr = read_reg(ctx.regs, a, lane).wrapping_add(off as u32);
        if !addr.is_multiple_of(4) {
            return Err(DueKind::Misaligned { addr });
        }
        if addr + 4 > len_bytes {
            return Err(DueKind::SmemOutOfBounds { off: addr });
        }
        let word = (addr / 4) as usize;
        bank_counts[word % 32] += 1;
        if ctx.mem.ace_enabled() {
            if load_into.is_some() {
                ctx.mem.ace_smem_read(word);
            }
            if store_from.is_some() {
                ctx.mem.ace_smem_write(word);
            }
        }
        if let Some(d) = load_into {
            ctx.regs[reg_idx(d, lane)] = ctx.smem[word];
        }
        if let Some(v) = store_from {
            let val = read_reg(ctx.regs, v, lane);
            ctx.smem[word] = val;
        }
    }
    let _ = w;
    let max_per_bank = *bank_counts.iter().max().unwrap() as u32;
    Ok(IssueClass::Smem {
        extra_conflicts: max_per_bank.saturating_sub(1),
    })
}

/// Flat (uncached) memory used by the functional engine.
pub struct FlatMem<'a> {
    pub mem: &'a mut crate::mem::GlobalMem,
}

impl GMem for FlatMem<'_> {
    fn load(
        &mut self,
        _tex: bool,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        out: &mut [u32; WARP_SIZE],
    ) -> Result<u64, DueKind> {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.mem.check_word(addrs[lane])?;
            out[lane] = self.mem.read_u32(addrs[lane]);
        }
        Ok(0)
    }

    fn store(
        &mut self,
        mask: u32,
        addrs: &[u32; WARP_SIZE],
        vals: &[u32; WARP_SIZE],
    ) -> Result<u64, DueKind> {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.mem.check_word(addrs[lane])?;
            self.mem.write_u32(addrs[lane], vals[lane]);
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::GlobalMem;
    use vgpu_arch::KernelBuilder;

    /// Run `kernel` for one full warp with flat memory; returns
    /// (regs, preds, stats) on completion.
    fn run_one_warp(
        kernel: &Kernel,
        params: &[u32],
        mem: &mut GlobalMem,
        init_mask: u32,
    ) -> (Vec<u32>, [u32; 4], Stats) {
        let mut w = Warp::new(0, 0, 0, init_mask, 0);
        let mut regs = vec![0u32; kernel.num_regs as usize * WARP_SIZE];
        let mut smem = vec![0u32; (kernel.smem_bytes / 4).max(1) as usize];
        let mut stats = Stats::default();
        let mut flat = FlatMem { mem };
        for _ in 0..100_000 {
            let mut ctx = ExecCtx {
                kernel,
                params,
                ntid: 32,
                nctaid: 1,
                regs: &mut regs,
                smem: &mut smem,
                mem: &mut flat,
                stats: &mut stats,
                sw: None,
                max_stack: 64,
            };
            match step_warp(&mut w, &mut ctx).expect("no DUE expected") {
                StepEvent::Done => return (regs, w.preds, stats),
                StepEvent::Barrier => {} // single warp: barrier is a no-op
                StepEvent::Issued(_) => {}
            }
        }
        panic!("warp did not finish");
    }

    #[test]
    fn alu_basics_per_lane() {
        let mut a = KernelBuilder::new("t");
        let (r0, r1, r2) = (a.reg(), a.reg(), a.reg());
        a.s2r(r0, SpecialReg::LaneId);
        a.imad(r1, r0, 3u32, 10u32); // r1 = lane*3 + 10
        a.iscadd(r2, r0, 100u32, 2); // r2 = lane*4 + 100
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        let (regs, _, stats) = run_one_warp(&k, &[], &mut mem, u32::MAX);
        for lane in 0..32 {
            assert_eq!(regs[reg_idx(Reg(1), lane)], lane as u32 * 3 + 10);
            assert_eq!(regs[reg_idx(Reg(2), lane)], lane as u32 * 4 + 100);
        }
        assert_eq!(stats.warp_instrs, 4); // 3 + exit
        assert_eq!(stats.thread_instrs, 4 * 32);
    }

    #[test]
    fn float_ops() {
        let mut a = KernelBuilder::new("t");
        let (r0, r1, r2, r3) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.mov(r0, 2.0f32);
        a.ffma(r1, r0, 3.0f32, 1.0f32); // 7.0
        a.frcp(r2, r0); // 0.5
        a.fsqrt(r3, r1); // sqrt(7)
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        let (regs, _, _) = run_one_warp(&k, &[], &mut mem, 1);
        assert_eq!(f(regs[reg_idx(Reg(1), 0)]), 7.0);
        assert_eq!(f(regs[reg_idx(Reg(2), 0)]), 0.5);
        assert_eq!(f(regs[reg_idx(Reg(3), 0)]), 7.0f32.sqrt());
    }

    #[test]
    fn predication_masks_lanes() {
        let mut a = KernelBuilder::new("t");
        let (r0, r1) = (a.reg(), a.reg());
        let p = a.pred();
        a.s2r(r0, SpecialReg::LaneId);
        a.isetp(p, r0, 16u32, CmpOp::Lt, true);
        a.predicated(p, false, |a| a.mov(r1, 7u32));
        a.predicated(p, true, |a| a.mov(r1, 9u32));
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        let (regs, preds, _) = run_one_warp(&k, &[], &mut mem, u32::MAX);
        assert_eq!(preds[0], 0x0000_ffff);
        for lane in 0..32 {
            let expect = if lane < 16 { 7 } else { 9 };
            assert_eq!(regs[reg_idx(Reg(1), lane)], expect, "lane {lane}");
        }
    }

    #[test]
    fn divergence_if_then_else_reconverges() {
        let mut a = KernelBuilder::new("t");
        let (r0, r1, r2) = (a.reg(), a.reg(), a.reg());
        let p = a.pred();
        a.s2r(r0, SpecialReg::LaneId);
        a.isetp(p, r0, 8u32, CmpOp::Lt, true);
        a.if_then_else(p, false, |a| a.mov(r1, 100u32), |a| a.mov(r1, 200u32));
        a.iadd(r2, r1, 1u32); // after reconvergence: all lanes execute
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        let (regs, _, _) = run_one_warp(&k, &[], &mut mem, u32::MAX);
        for lane in 0..32 {
            let expect = if lane < 8 { 101 } else { 201 };
            assert_eq!(regs[reg_idx(Reg(2), lane)], expect, "lane {lane}");
        }
    }

    #[test]
    fn divergent_loop_trip_counts() {
        // Each lane loops `lane+1` times, accumulating into r1.
        let mut a = KernelBuilder::new("t");
        let (r0, r1, r2) = (a.reg(), a.reg(), a.reg());
        let p = a.pred();
        a.s2r(r0, SpecialReg::LaneId);
        a.mov(r1, 0u32);
        a.mov(r2, 0u32);
        a.loop_while(|a| {
            a.iadd(r1, r1, 1u32);
            a.iadd(r2, r2, 1u32);
            a.isetp(p, r2, Operand::Reg(r0), CmpOp::Le, true);
            (p, false)
        });
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        let (regs, _, _) = run_one_warp(&k, &[], &mut mem, u32::MAX);
        for lane in 0..32 {
            assert_eq!(regs[reg_idx(Reg(1), lane)], lane as u32 + 1, "lane {lane}");
        }
    }

    #[test]
    fn global_load_store_roundtrip() {
        let mut a = KernelBuilder::new("t");
        let (r0, r1, r2) = (a.reg(), a.reg(), a.reg());
        a.s2r(r0, SpecialReg::LaneId);
        a.mov(r1, a.param(0));
        a.iscadd(r1, r0, r1, 2); // addr = base + lane*4
        a.ld(r2, MemSpace::Global, r1, 0);
        a.iadd(r2, r2, 1000u32);
        a.st(MemSpace::Global, r1, 0, r2);
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        mem.map(0, 4096);
        for i in 0..32u32 {
            mem.write_u32(256 + i * 4, i);
        }
        let (_, _, stats) = run_one_warp(&k, &[256], &mut mem, u32::MAX);
        for i in 0..32u32 {
            assert_eq!(mem.read_u32(256 + i * 4), i + 1000);
        }
        assert_eq!(stats.load_instrs, 32);
        assert_eq!(stats.store_instrs, 32);
    }

    #[test]
    fn illegal_address_is_due() {
        let mut a = KernelBuilder::new("t");
        let (r0, r1) = (a.reg(), a.reg());
        a.mov(r0, 0x10u32); // unmapped
        a.ld(r1, MemSpace::Global, r0, 0);
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(4096);
        let mut w = Warp::new(0, 0, 0, 1, 0);
        let mut regs = vec![0u32; k.num_regs as usize * WARP_SIZE];
        let mut smem = vec![0u32; 1];
        let mut stats = Stats::default();
        let mut flat = FlatMem { mem: &mut mem };
        let mut err = None;
        for _ in 0..10 {
            let mut ctx = ExecCtx {
                kernel: &k,
                params: &[],
                ntid: 32,
                nctaid: 1,
                regs: &mut regs,
                smem: &mut smem,
                mem: &mut flat,
                stats: &mut stats,
                sw: None,
                max_stack: 64,
            };
            match step_warp(&mut w, &mut ctx) {
                Err(e) => {
                    err = Some(e);
                    break;
                }
                Ok(StepEvent::Done) => break,
                Ok(_) => {}
            }
        }
        assert_eq!(err, Some(DueKind::IllegalAddress { addr: 0x10 }));
    }

    #[test]
    fn smem_roundtrip_and_bounds() {
        let mut a = KernelBuilder::new("t");
        let base = a.alloc_smem(128);
        assert_eq!(base, 0);
        let (r0, r1, r2) = (a.reg(), a.reg(), a.reg());
        a.s2r(r0, SpecialReg::LaneId);
        a.shl(r1, r0, 2u32);
        a.st(MemSpace::Shared, r1, 0, r0);
        a.ld(r2, MemSpace::Shared, r1, 0);
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(64);
        let (regs, _, stats) = run_one_warp(&k, &[], &mut mem, u32::MAX);
        for lane in 0..32 {
            assert_eq!(regs[reg_idx(Reg(2), lane)], lane as u32);
        }
        assert_eq!(stats.smem_instrs, 64);
    }

    #[test]
    fn smem_out_of_bounds_is_due() {
        let mut a = KernelBuilder::new("t");
        a.alloc_smem(16);
        let (r0, r1) = (a.reg(), a.reg());
        a.mov(r0, 64u32);
        a.ld(r1, MemSpace::Shared, r0, 0);
        let k = a.build().unwrap();
        let mut w = Warp::new(0, 0, 0, 1, 0);
        let mut regs = vec![0u32; k.num_regs as usize * WARP_SIZE];
        let mut smem = vec![0u32; (k.smem_bytes / 4) as usize];
        let mut stats = Stats::default();
        let mut mem = GlobalMem::new(64);
        let mut flat = FlatMem { mem: &mut mem };
        let mut got = None;
        for _ in 0..10 {
            let mut ctx = ExecCtx {
                kernel: &k,
                params: &[],
                ntid: 32,
                nctaid: 1,
                regs: &mut regs,
                smem: &mut smem,
                mem: &mut flat,
                stats: &mut stats,
                sw: None,
                max_stack: 64,
            };
            match step_warp(&mut w, &mut ctx) {
                Err(e) => {
                    got = Some(e);
                    break;
                }
                Ok(StepEvent::Done) => break,
                Ok(_) => {}
            }
        }
        assert_eq!(got, Some(DueKind::SmemOutOfBounds { off: 64 }));
    }

    #[test]
    fn sw_fault_dest_value_flips_target_instruction() {
        // Kernel: r1 = 5; r2 = r1 + 1. Inject into dynamic instr index 0
        // (the MOV) of lane 3, bit 1: r1 becomes 7, so r2 = 8 in lane 3.
        let mut a = KernelBuilder::new("t");
        let (r1, r2) = (a.reg(), a.reg());
        a.mov(r1, 5u32);
        a.iadd(r2, r1, 1u32);
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(64);
        let mut w = Warp::new(0, 0, 0, u32::MAX, 0);
        let mut regs = vec![0u32; k.num_regs as usize * WARP_SIZE];
        let mut smem = vec![0u32; 1];
        let mut stats = Stats::default();
        let mut inj = SwInjector::new(crate::fault::SwFault {
            kind: SwFaultKind::DestValue,
            target: 3, // lane 3 of the first eligible instruction
            bit: 1,
            loc_pick: 0,
            pattern: crate::fault::FaultPattern::SingleBit,
        });
        let mut flat = FlatMem { mem: &mut mem };
        loop {
            let mut ctx = ExecCtx {
                kernel: &k,
                params: &[],
                ntid: 32,
                nctaid: 1,
                regs: &mut regs,
                smem: &mut smem,
                mem: &mut flat,
                stats: &mut stats,
                sw: Some(&mut inj),
                max_stack: 64,
            };
            if let StepEvent::Done = step_warp(&mut w, &mut ctx).unwrap() {
                break;
            }
        }
        assert!(inj.applied);
        assert_eq!(
            regs[reg_idx(Reg(0), 3)],
            7,
            "flipped destination value persists"
        );
        assert_eq!(
            regs[reg_idx(Reg(1), 3)],
            8,
            "downstream reader sees the flip"
        );
        assert_eq!(regs[reg_idx(Reg(1), 2)], 6, "other lanes unaffected");
    }

    #[test]
    fn sw_fault_src_transient_affects_single_instruction() {
        // r0 = 4; r1 = r0 + 1; r2 = r0 + 2.
        // Transient source fault on the *second* eligible source-reading
        // instruction (r2 = r0+2) must leave r1 and r0 intact.
        let mut a = KernelBuilder::new("t");
        let (r0, r1, r2) = (a.reg(), a.reg(), a.reg());
        a.mov(r0, 4u32);
        a.iadd(r1, r0, 1u32);
        a.iadd(r2, r0, 2u32);
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(64);
        let mut w = Warp::new(0, 0, 0, 1, 0); // one lane
        let mut regs = vec![0u32; k.num_regs as usize * WARP_SIZE];
        let mut smem = vec![0u32; 1];
        let mut stats = Stats::default();
        let mut inj = SwInjector::new(crate::fault::SwFault {
            kind: SwFaultKind::SrcTransient,
            target: 1, // second src-reading dynamic instr (iadd r2)
            bit: 0,    // 4 -> 5
            loc_pick: 0,
            pattern: crate::fault::FaultPattern::SingleBit,
        });
        let mut flat = FlatMem { mem: &mut mem };
        loop {
            let mut ctx = ExecCtx {
                kernel: &k,
                params: &[],
                ntid: 32,
                nctaid: 1,
                regs: &mut regs,
                smem: &mut smem,
                mem: &mut flat,
                stats: &mut stats,
                sw: Some(&mut inj),
                max_stack: 64,
            };
            if let StepEvent::Done = step_warp(&mut w, &mut ctx).unwrap() {
                break;
            }
        }
        assert!(inj.applied);
        assert_eq!(regs[reg_idx(Reg(1), 0)], 5, "earlier instr unaffected");
        assert_eq!(
            regs[reg_idx(Reg(2), 0)],
            7,
            "target instr read flipped src (5+2)"
        );
        assert_eq!(
            regs[reg_idx(Reg(0), 0)],
            4,
            "source restored after the instr"
        );
    }

    #[test]
    fn masked_exit_finishes_warp_partially() {
        // Lanes < 4 exit early (via predicated EXIT), the rest write r1.
        let mut a = KernelBuilder::new("t");
        let (r0, r1) = (a.reg(), a.reg());
        let p = a.pred();
        a.s2r(r0, SpecialReg::LaneId);
        a.isetp(p, r0, 4u32, CmpOp::Lt, true);
        a.emit_guarded(Op::Exit, p, false);
        a.mov(r1, 9u32);
        let k = a.build().unwrap();
        let mut mem = GlobalMem::new(64);
        let (regs, _, _) = run_one_warp(&k, &[], &mut mem, 0xff);
        for lane in 0..8 {
            let expect = if lane < 4 { 0 } else { 9 };
            assert_eq!(regs[reg_idx(Reg(1), lane)], expect, "lane {lane}");
        }
    }
}
