//! ACE-style lifetime tracking for the timed engine.
//!
//! A [`LifetimeTracker`] observes every write and read of the five modeled
//! hardware structures during a *fault-free* timed simulation and
//! accumulates, per structure, the number of word-cycles during which a
//! stored value was ACE ("architecturally correct execution"-critical): the
//! interval from a write to the **last read** of that value. Cycles between
//! the last read and the overwrite/eviction/kernel-end are un-ACE (a flip
//! there is dead). The analytic AVF of a structure over a run of `C` cycles
//! is then `ACE-bit-cycles / (structure_bits * C)` — computed in
//! `crates/ace` on top of the raw word-cycle totals collected here.
//!
//! Granularity is one 32-bit word: if *any* lane reads a word the whole
//! word is counted live for the interval, which makes the estimate a
//! conservative (upper-bound) approximation of bit-exact ACE analysis.
//!
//! Timekeeping: hooks receive *launch-local* cycles; the tracker adds a
//! running `base` offset that [`advance_base`](LifetimeTracker::advance_base)
//! moves forward after each launch, so L2 lifetimes spanning multiple
//! kernel launches are measured on one global clock.

use crate::config::GpuConfig;
use crate::fault::HwStructure;
use crate::probe::{emit, ProbeBuf, ProbeEvent, SharedSink};

/// Sentinel marking "no open write interval" for a word.
const CLOSED: u64 = u64::MAX;

/// Per-structure lifetime state: one open-interval start (`wr`) and
/// last-read time (`rd`) per 32-bit word, plus the accumulated ACE total.
struct Track {
    wr: Vec<u64>,
    rd: Vec<u64>,
    ace_word_cycles: u64,
}

impl Track {
    fn new(words: usize) -> Self {
        Track {
            wr: vec![CLOSED; words],
            rd: vec![0; words],
            ace_word_cycles: 0,
        }
    }

    /// A new value is written at global time `t`: close the previous
    /// interval at its last read (dead from last read to overwrite) and
    /// open a fresh one.
    fn write(&mut self, i: usize, t: u64) {
        if self.wr[i] != CLOSED {
            self.ace_word_cycles += self.rd[i].saturating_sub(self.wr[i]);
        }
        self.wr[i] = t;
        self.rd[i] = t;
    }

    /// The current value is read at global time `t`.
    fn read(&mut self, i: usize, t: u64) {
        if self.wr[i] != CLOSED {
            self.rd[i] = self.rd[i].max(t);
        }
    }

    /// The value will never be read again (kernel end, clean eviction):
    /// ACE only up to its last read.
    fn close_dead(&mut self, i: usize) {
        if self.wr[i] != CLOSED {
            self.ace_word_cycles += self.rd[i].saturating_sub(self.wr[i]);
            self.wr[i] = CLOSED;
        }
    }

    /// The value leaves the structure still architecturally required
    /// (dirty write-back) at global time `t`: ACE for the full residency.
    fn close_live(&mut self, i: usize, t: u64) {
        if self.wr[i] != CLOSED {
            self.ace_word_cycles += t.saturating_sub(self.wr[i]);
            self.wr[i] = CLOSED;
        }
    }

    fn close_all_dead(&mut self) {
        for i in 0..self.wr.len() {
            self.close_dead(i);
        }
    }
}

/// Records write→read lifetimes for every word of the five modeled
/// structures; see the module docs for the accounting rules.
pub struct LifetimeTracker {
    base: u64,
    tracks: [Track; 5],
    /// Words per instance, indexed by `HwStructure as usize`.
    words_per_inst: [usize; 5],
    line_words: usize,
    events: u64,
    /// Optional probe stream: every hook is forwarded (with its
    /// *launch-local* time) to an attached [`TraceSink`]
    /// (`crate::probe`), batched through a [`ProbeBuf`], so a trace
    /// recorder sees the exact access stream the ACE accounting is
    /// built from.
    sink: Option<ProbeBuf>,
    /// `false` for trace-only trackers ([`LifetimeTracker::trace_only`]):
    /// hooks forward to the probe sink but skip the per-word interval
    /// accounting (and its arrays) entirely.
    ace: bool,
}

impl LifetimeTracker {
    pub fn new(cfg: &GpuConfig) -> Self {
        let sms = cfg.num_sms as usize;
        let words_per_inst = [
            cfg.rf_regs_per_sm as usize,
            cfg.smem_bytes_per_sm as usize / 4,
            cfg.l1d.bytes as usize / 4,
            cfg.l1t.bytes as usize / 4,
            cfg.l2.bytes as usize / 4,
        ];
        let insts = [sms, sms, sms, sms, 1];
        let tracks = [
            Track::new(words_per_inst[0] * insts[0]),
            Track::new(words_per_inst[1] * insts[1]),
            Track::new(words_per_inst[2] * insts[2]),
            Track::new(words_per_inst[3] * insts[3]),
            Track::new(words_per_inst[4] * insts[4]),
        ];
        LifetimeTracker {
            base: 0,
            tracks,
            words_per_inst,
            line_words: cfg.l2.line_bytes as usize / 4,
            events: 0,
            sink: None,
            ace: true,
        }
    }

    /// A forwarding-only tracker for trace recording: every engine hook
    /// still fires (and reaches an attached sink), but no ACE interval
    /// state is allocated or updated. This keeps the traced golden pass
    /// within a small factor of the untraced one instead of paying the
    /// full per-word lifetime accounting it never reads.
    pub fn trace_only(cfg: &GpuConfig) -> Self {
        LifetimeTracker {
            base: 0,
            tracks: [
                Track::new(0),
                Track::new(0),
                Track::new(0),
                Track::new(0),
                Track::new(0),
            ],
            words_per_inst: [
                cfg.rf_regs_per_sm as usize,
                cfg.smem_bytes_per_sm as usize / 4,
                cfg.l1d.bytes as usize / 4,
                cfg.l1t.bytes as usize / 4,
                cfg.l2.bytes as usize / 4,
            ],
            line_words: cfg.l2.line_bytes as usize / 4,
            events: 0,
            sink: None,
            ace: false,
        }
    }

    /// Attach a probe sink; every subsequent hook is mirrored into it.
    pub fn set_sink(&mut self, sink: SharedSink) {
        self.sink = Some(ProbeBuf::new(sink));
    }

    #[inline]
    fn g(&self, t: u64) -> u64 {
        self.base + t
    }

    #[inline]
    fn word(&self, h: HwStructure, inst: usize, word: usize) -> usize {
        inst * self.words_per_inst[h as usize] + word
    }

    // ---- register file / shared memory (word-indexed per SM) ----

    pub fn reg_write(&mut self, sm: usize, word: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let i = self.word(HwStructure::RegFile, sm, word);
            let g = self.g(t);
            self.tracks[HwStructure::RegFile as usize].write(i, g);
        }
        self.probe_access(HwStructure::RegFile, sm, word as u64, t, true);
    }

    pub fn reg_read(&mut self, sm: usize, word: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let i = self.word(HwStructure::RegFile, sm, word);
            let g = self.g(t);
            self.tracks[HwStructure::RegFile as usize].read(i, g);
        }
        self.probe_access(HwStructure::RegFile, sm, word as u64, t, false);
    }

    pub fn smem_write(&mut self, sm: usize, word: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let i = self.word(HwStructure::Smem, sm, word);
            let g = self.g(t);
            self.tracks[HwStructure::Smem as usize].write(i, g);
        }
        self.probe_access(HwStructure::Smem, sm, word as u64, t, true);
    }

    pub fn smem_read(&mut self, sm: usize, word: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let i = self.word(HwStructure::Smem, sm, word);
            let g = self.g(t);
            self.tracks[HwStructure::Smem as usize].read(i, g);
        }
        self.probe_access(HwStructure::Smem, sm, word as u64, t, false);
    }

    #[inline]
    fn probe_access(&mut self, h: HwStructure, inst: usize, word: u64, t: u64, write: bool) {
        emit(
            &mut self.sink,
            ProbeEvent::Access {
                h,
                inst: inst as u32,
                word,
                t,
                write,
            },
        );
    }

    /// CTA launch zero-fills its register and shared-memory partitions:
    /// record the fill as writes (a flip of the cleared state is live until
    /// the first overwrite if the zeros are read).
    pub fn cta_fill(
        &mut self,
        sm: usize,
        rf_start: usize,
        rf_len: usize,
        smem_start: usize,
        smem_len: usize,
        t: u64,
    ) {
        if self.ace {
            let g = self.g(t);
            let rf = &mut self.tracks[HwStructure::RegFile as usize];
            let base = sm * self.words_per_inst[HwStructure::RegFile as usize];
            for w in rf_start..rf_start + rf_len {
                rf.write(base + w, g);
            }
            let smem = &mut self.tracks[HwStructure::Smem as usize];
            let base = sm * self.words_per_inst[HwStructure::Smem as usize];
            for w in smem_start..smem_start + smem_len {
                smem.write(base + w, g);
            }
        }
        self.events += 1;
        emit(
            &mut self.sink,
            ProbeEvent::Range {
                h: HwStructure::RegFile,
                inst: sm as u32,
                start: rf_start as u64,
                len: rf_len as u32,
                t,
                write: true,
            },
        );
        emit(
            &mut self.sink,
            ProbeEvent::Range {
                h: HwStructure::Smem,
                inst: sm as u32,
                start: smem_start as u64,
                len: smem_len as u32,
                t,
                write: true,
            },
        );
    }

    // ---- caches (line-indexed per instance) ----

    #[inline]
    fn line_word(&self, h: HwStructure, inst: usize, line: usize, off: usize) -> usize {
        inst * self.words_per_inst[h as usize] + line * self.line_words + off
    }

    pub fn cache_read(&mut self, h: HwStructure, inst: usize, line: usize, off: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let i = self.line_word(h, inst, line, off);
            let g = self.g(t);
            self.tracks[h as usize].read(i, g);
        }
        self.probe_access(h, inst, (line * self.line_words + off) as u64, t, false);
    }

    pub fn cache_write(&mut self, h: HwStructure, inst: usize, line: usize, off: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let i = self.line_word(h, inst, line, off);
            let g = self.g(t);
            self.tracks[h as usize].write(i, g);
        }
        self.probe_access(h, inst, (line * self.line_words + off) as u64, t, true);
    }

    /// A whole line is filled from the next level: every word is written.
    /// The caller must close the victim line (live if dirty) *before* the
    /// fill.
    pub fn cache_fill(&mut self, h: HwStructure, inst: usize, line: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let g = self.g(t);
            let start = self.line_word(h, inst, line, 0);
            let tr = &mut self.tracks[h as usize];
            for i in start..start + self.line_words {
                tr.write(i, g);
            }
        }
        self.probe_line(h, inst, line, t, true);
    }

    #[inline]
    fn probe_line(&mut self, h: HwStructure, inst: usize, line: usize, t: u64, write: bool) {
        emit(
            &mut self.sink,
            ProbeEvent::Range {
                h,
                inst: inst as u32,
                start: (line * self.line_words) as u64,
                len: self.line_words as u32,
                t,
                write,
            },
        );
    }

    /// A whole line is read to service a lower-level fill (conservative:
    /// all words count as read).
    pub fn cache_read_line(&mut self, h: HwStructure, inst: usize, line: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let g = self.g(t);
            let start = self.line_word(h, inst, line, 0);
            let tr = &mut self.tracks[h as usize];
            for i in start..start + self.line_words {
                tr.read(i, g);
            }
        }
        self.probe_line(h, inst, line, t, false);
    }

    /// A dirty line is evicted at `t`: its data is architecturally required
    /// up to the write-back, so every word closes live.
    pub fn close_line_live(&mut self, h: HwStructure, inst: usize, line: usize, t: u64) {
        self.events += 1;
        if self.ace {
            let g = self.g(t);
            let start = self.line_word(h, inst, line, 0);
            let tr = &mut self.tracks[h as usize];
            for i in start..start + self.line_words {
                tr.close_live(i, g);
            }
        }
        // A dirty write-back propagates the line's data outward — the
        // probe stream records it as a whole-line read.
        self.probe_line(h, inst, line, t, false);
    }

    // ---- scheduling probes (no ACE accounting, forwarding only) ----

    /// A kernel launch begins; geometry for occupancy reconstruction.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_begin(
        &mut self,
        warps_per_cta: u32,
        regs_per_cta: u32,
        smem_words_per_cta: u32,
        slots_per_sm: u32,
        total_ctas: u32,
    ) {
        emit(
            &mut self.sink,
            ProbeEvent::LaunchBegin {
                warps_per_cta,
                regs_per_cta,
                smem_words_per_cta,
                slots_per_sm,
                total_ctas,
            },
        );
    }

    /// CTA slot occupancy change: a slot was filled (`initial` during the
    /// pre-cycle-0 prefill) …
    pub fn slot_fill(&mut self, sm: usize, slot: usize, t: u64, initial: bool) {
        emit(
            &mut self.sink,
            ProbeEvent::SlotFill {
                sm: sm as u32,
                slot: slot as u32,
                t,
                initial,
            },
        );
    }

    /// … or drained during cycle `t`'s retire stage.
    pub fn slot_free(&mut self, sm: usize, slot: usize, t: u64) {
        emit(
            &mut self.sink,
            ProbeEvent::SlotFree {
                sm: sm as u32,
                slot: slot as u32,
                t,
            },
        );
    }

    /// The host observed an L2-resident word (classification or glue read).
    pub fn host_peek(&mut self, line: usize, off: usize) {
        emit(
            &mut self.sink,
            ProbeEvent::HostRead {
                word: (line * self.line_words + off) as u64,
            },
        );
    }

    // ---- boundaries ----

    /// Kernel launch finished after `cycles` local cycles: register-file
    /// and shared-memory contents die with the grid, and the (write-through
    /// L1D, read-only L1T) per-SM caches are invalidated — all remaining
    /// intervals close dead. The L2 persists.
    pub fn launch_end(&mut self, cycles: u64) {
        if self.ace {
            for h in [
                HwStructure::RegFile,
                HwStructure::Smem,
                HwStructure::L1D,
                HwStructure::L1T,
            ] {
                self.tracks[h as usize].close_all_dead();
            }
        }
        emit(&mut self.sink, ProbeEvent::LaunchEnd { cycles });
        // Segment boundary: hand the recorder the completed launch
        // promptly (drop still flushes whatever follows).
        if let Some(b) = &mut self.sink {
            b.flush();
        }
    }

    /// Advance the global clock after a launch completed in `cycles`.
    pub fn advance_base(&mut self, cycles: u64) {
        self.base += cycles;
    }

    /// End of the traced application: close every surviving L2 line —
    /// live at the current global time if dirty (its data still backs
    /// memory the host may read), dead otherwise.
    pub fn finalize_l2(&mut self, dirty: impl Fn(usize) -> bool) {
        if !self.ace {
            return;
        }
        let lines = self.words_per_inst[HwStructure::L2 as usize] / self.line_words;
        for line in 0..lines {
            if dirty(line) {
                // Local time 0 ⇒ the closing time is the current global
                // clock (`base`).
                self.close_line_live(HwStructure::L2, 0, line, 0);
            } else {
                let start = self.line_word(HwStructure::L2, 0, line, 0);
                let tr = &mut self.tracks[HwStructure::L2 as usize];
                for i in start..start + self.line_words {
                    tr.close_dead(i);
                }
            }
        }
    }

    /// Accumulated ACE word-cycles per structure, in `HwStructure::ALL`
    /// order. Multiply by 32 for bit-cycles.
    pub fn ace_word_cycles(&self) -> [u64; 5] {
        [
            self.tracks[0].ace_word_cycles,
            self.tracks[1].ace_word_cycles,
            self.tracks[2].ace_word_cycles,
            self.tracks[3].ace_word_cycles,
            self.tracks[4].ace_word_cycles,
        ]
    }

    /// Total hook invocations (observability counter fodder).
    pub fn events(&self) -> u64 {
        self.events
    }
}

/// Bundle threaded through the cache helpers so an L1 access can record
/// both L1-side and L2-side events against the right instance.
pub struct CacheAce<'a> {
    pub tracker: &'a mut LifetimeTracker,
    /// Which L1 structure the access goes through (L1D or L1T).
    pub l1: HwStructure,
    /// SM index owning the L1 instance.
    pub sm: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cfg() -> GpuConfig {
        GpuConfig::volta_scaled(1)
    }

    #[test]
    fn write_read_overwrite_counts_only_live_interval() {
        let mut t = LifetimeTracker::new(&mini_cfg());
        t.reg_write(0, 3, 10);
        t.reg_read(0, 3, 25); // live 10..25 = 15
        t.reg_write(0, 3, 40); // dead 25..40
        t.launch_end(50); // never read again: +0
        assert_eq!(t.ace_word_cycles()[HwStructure::RegFile as usize], 15);
    }

    #[test]
    fn unread_write_is_dead() {
        let mut t = LifetimeTracker::new(&mini_cfg());
        t.smem_write(0, 0, 5);
        t.launch_end(100);
        assert_eq!(t.ace_word_cycles()[HwStructure::Smem as usize], 0);
    }

    #[test]
    fn read_without_open_interval_is_ignored() {
        let mut t = LifetimeTracker::new(&mini_cfg());
        t.reg_read(0, 7, 10);
        t.launch_end(20);
        assert_eq!(t.ace_word_cycles()[HwStructure::RegFile as usize], 0);
    }

    #[test]
    fn dirty_eviction_closes_full_residency() {
        let cfg = mini_cfg();
        let mut t = LifetimeTracker::new(&cfg);
        t.cache_write(HwStructure::L2, 0, 2, 1, 10);
        t.close_line_live(HwStructure::L2, 0, 2, 100);
        // One word live 10..100; the other 31 line words had no open
        // interval.
        assert_eq!(t.ace_word_cycles()[HwStructure::L2 as usize], 90);
    }

    #[test]
    fn fill_then_partial_read_counts_read_words_only() {
        let cfg = mini_cfg();
        let mut t = LifetimeTracker::new(&cfg);
        t.cache_fill(HwStructure::L1D, 0, 0, 10);
        t.cache_read(HwStructure::L1D, 0, 0, 5, 30);
        t.launch_end(60);
        // Only word 5 was read: live 10..30.
        assert_eq!(t.ace_word_cycles()[HwStructure::L1D as usize], 20);
    }

    #[test]
    fn base_offset_spans_launches() {
        let mut t = LifetimeTracker::new(&mini_cfg());
        t.cache_write(HwStructure::L2, 0, 0, 0, 10); // global 10
        t.advance_base(100);
        t.cache_read(HwStructure::L2, 0, 0, 0, 5); // global 105
        t.advance_base(50);
        t.finalize_l2(|_| false); // clean: dead after last read
        assert_eq!(t.ace_word_cycles()[HwStructure::L2 as usize], 95);
    }

    #[test]
    fn finalize_l2_dirty_line_live_until_end() {
        let mut t = LifetimeTracker::new(&mini_cfg());
        t.cache_write(HwStructure::L2, 0, 1, 0, 10);
        t.advance_base(200);
        t.finalize_l2(|line| line == 1);
        assert_eq!(t.ace_word_cycles()[HwStructure::L2 as usize], 190);
    }

    #[test]
    fn cta_fill_zeroes_are_live_when_read() {
        let mut t = LifetimeTracker::new(&mini_cfg());
        t.cta_fill(0, 0, 4, 0, 2, 0);
        t.reg_read(0, 2, 30); // zero-filled reg read: live 0..30
        t.smem_read(0, 1, 12); // zero-filled smem word: live 0..12
        t.launch_end(40);
        assert_eq!(t.ace_word_cycles()[HwStructure::RegFile as usize], 30);
        assert_eq!(t.ace_word_cycles()[HwStructure::Smem as usize], 12);
    }

    #[test]
    fn same_cycle_write_then_read_is_zero_length() {
        let mut t = LifetimeTracker::new(&mini_cfg());
        t.reg_write(0, 0, 10);
        t.reg_read(0, 0, 10);
        t.launch_end(20);
        assert_eq!(t.ace_word_cycles()[HwStructure::RegFile as usize], 0);
    }
}
