//! Global (device) memory: the DRAM arena plus the mapped-range table used
//! to detect illegal accesses.
//!
//! Host code allocates buffers through [`ArenaPlanner`], which leaves guard
//! gaps between allocations and starts above address 0 so that
//! fault-corrupted pointers (including null-ish ones) are likely to land in
//! unmapped territory and be classified as DUEs, as on real hardware.

use crate::due::DueKind;

/// Device memory arena with a mapped-range table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalMem {
    data: Vec<u8>,
    /// Sorted, disjoint `[start, end)` mapped ranges.
    mapped: Vec<(u32, u32)>,
}

impl GlobalMem {
    /// Create an arena of `size` bytes, all initially unmapped.
    pub fn new(size: u32) -> Self {
        GlobalMem {
            data: vec![0u8; size as usize],
            mapped: Vec::new(),
        }
    }

    /// Total arena size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Mark `[start, start+len)` as a valid allocation. Ranges must not
    /// overlap existing ones and must lie within the arena.
    pub fn map(&mut self, start: u32, len: u32) {
        let end = start
            .checked_add(len)
            .expect("mapping overflows address space");
        assert!(end as usize <= self.data.len(), "mapping outside arena");
        let pos = self.mapped.partition_point(|&(s, _)| s < start);
        if pos > 0 {
            assert!(self.mapped[pos - 1].1 <= start, "overlapping mapping");
        }
        if pos < self.mapped.len() {
            assert!(end <= self.mapped[pos].0, "overlapping mapping");
        }
        self.mapped.insert(pos, (start, end));
    }

    /// True if the aligned word at `addr` lies entirely in a mapped range.
    pub fn is_mapped_word(&self, addr: u32) -> bool {
        let pos = self.mapped.partition_point(|&(_, e)| e <= addr);
        match self.mapped.get(pos) {
            Some(&(s, e)) => s <= addr && addr as u64 + 4 <= e as u64,
            None => false,
        }
    }

    /// Validate a device word access: alignment then mapping.
    pub fn check_word(&self, addr: u32) -> Result<(), DueKind> {
        if !addr.is_multiple_of(4) {
            return Err(DueKind::Misaligned { addr });
        }
        if !self.is_mapped_word(addr) {
            return Err(DueKind::IllegalAddress { addr });
        }
        Ok(())
    }

    /// Read a word (caller must have validated the access).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        let i = addr as usize;
        u32::from_le_bytes(self.data[i..i + 4].try_into().unwrap())
    }

    /// Write a word (caller must have validated the access).
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let i = addr as usize;
        self.data[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Raw byte view of a line for cache fills (no mapping check: caches
    /// may fetch whole lines that straddle guard gaps; only architectural
    /// accesses are checked).
    pub fn line(&self, addr: u32, len: u32) -> &[u8] {
        &self.data[addr as usize..(addr + len) as usize]
    }

    /// Write a line back from a cache.
    pub fn write_line(&mut self, addr: u32, bytes: &[u8]) {
        self.data[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
    }

    /// Zero the whole arena, keeping the mapped-range table. Scratch-reuse
    /// helper: a recycled arena must start from the same all-zero bytes a
    /// fresh [`GlobalMem::new`] would have.
    pub fn clear_data(&mut self) {
        self.data.fill(0);
    }

    /// Approximate heap footprint in bytes (snapshot accounting).
    pub fn byte_size(&self) -> u64 {
        self.data.len() as u64 + self.mapped.len() as u64 * 8
    }
}

/// Bump allocator producing guarded, 256-byte-aligned device allocations.
#[derive(Debug)]
pub struct ArenaPlanner {
    cursor: u32,
    guard: u32,
    regions: Vec<(u32, u32)>,
}

impl ArenaPlanner {
    /// Allocations start at `base` (kept well above zero).
    pub fn new() -> Self {
        ArenaPlanner {
            cursor: 0x1000,
            guard: 512,
            regions: Vec::new(),
        }
    }

    /// Reserve `bytes` of device memory; returns the base address.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        assert!(bytes > 0, "zero-size allocation");
        let base = self.cursor;
        let len = bytes.div_ceil(4) * 4;
        self.regions.push((base, len));
        // 256-byte alignment keeps buffers line-aligned in the caches.
        self.cursor = (base + len + self.guard).div_ceil(256) * 256;
        base
    }

    /// Current high-water mark (exclusive end of the allocated space).
    pub fn high_water(&self) -> u32 {
        self.cursor
    }

    /// Whether `mem` has exactly the arena size and mapped-range table
    /// [`ArenaPlanner::build`] would produce right now — the condition for
    /// recycling an existing arena (after [`GlobalMem::clear_data`])
    /// instead of allocating a fresh one.
    pub fn builds_layout_of(&self, mem: &GlobalMem) -> bool {
        let size = (self.cursor + 0x1000).div_ceil(4096) * 4096;
        mem.size() == size
            && mem.mapped.len() == self.regions.len()
            && self
                .regions
                .iter()
                .map(|&(s, l)| (s, s + l))
                .eq(mem.mapped.iter().copied())
    }

    /// Build the arena: size it to the high-water mark (plus slack) and map
    /// every allocation.
    pub fn build(self) -> GlobalMem {
        let size = (self.cursor + 0x1000).div_ceil(4096) * 4096;
        let mut m = GlobalMem::new(size);
        for (s, l) in self.regions {
            m.map(s, l);
        }
        m
    }
}

impl Default for ArenaPlanner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_check() {
        let mut m = GlobalMem::new(4096);
        m.map(256, 64);
        assert!(m.is_mapped_word(256));
        assert!(m.is_mapped_word(316)); // 256 + 60: last full word
        assert!(!m.is_mapped_word(318));
        assert!(!m.is_mapped_word(200));
        assert!(m.check_word(256).is_ok());
        assert_eq!(m.check_word(258), Err(DueKind::Misaligned { addr: 258 }));
        assert_eq!(
            m.check_word(512),
            Err(DueKind::IllegalAddress { addr: 512 })
        );
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_map_panics() {
        let mut m = GlobalMem::new(4096);
        m.map(0, 128);
        m.map(64, 128);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMem::new(4096);
        m.map(0, 128);
        m.write_u32(8, 0xdead_beef);
        assert_eq!(m.read_u32(8), 0xdead_beef);
        assert_eq!(m.read_u32(12), 0);
    }

    #[test]
    fn planner_leaves_guard_gaps() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(100);
        let b = p.alloc(16);
        assert!(b >= a + 100 + 512, "guard gap enforced");
        assert_eq!(a % 256, 0);
        assert_eq!(b % 256, 0);
        let m = p.build();
        assert!(m.is_mapped_word(a));
        assert!(m.is_mapped_word(b));
        // Guard gap between them is unmapped.
        assert!(!m.is_mapped_word(a + 104));
    }

    #[test]
    fn line_fill_roundtrip() {
        let mut m = GlobalMem::new(4096);
        m.map(0, 256);
        m.write_u32(128, 0x11223344);
        let line: Vec<u8> = m.line(128, 128).to_vec();
        assert_eq!(&line[0..4], &0x11223344u32.to_le_bytes());
        let mut edited = line.clone();
        edited[4] = 0xff;
        m.write_line(128, &edited);
        assert_eq!(m.read_u32(132), 0xff);
    }
}
