//! Simulation probes: a low-level event stream for trace recorders.
//!
//! The timed engine already reports every architectural access to the
//! optional [`LifetimeTracker`](crate::lifetime::LifetimeTracker) (the
//! ACE estimator). A [`TraceSink`] taps that same hook vocabulary —
//! plus a few scheduling hooks the ACE model does not need (CTA slot
//! occupancy, launch geometry) — so an external recorder can rebuild,
//! per launch, exactly which words of which structure were written and
//! read at which cycle. `crates/trace` consumes this stream to build
//! the replay backend's access index.
//!
//! Times are **launch-local** cycles, exactly as the simulator hands
//! them to the tracker hooks; host-side events (L2 pokes between
//! launches) arrive with `t == 0`. A recorder that needs a global order
//! must segment the stream on [`ProbeEvent::LaunchBegin`] /
//! [`ProbeEvent::LaunchEnd`] boundaries.

use std::sync::{Arc, Mutex};

use crate::fault::HwStructure;

/// One probe event, forwarded verbatim from the engine hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// A kernel launch begins; carries the occupancy geometry needed to
    /// reconstruct the per-SM CTA-slot partitioning of the register file
    /// and shared memory.
    LaunchBegin {
        warps_per_cta: u32,
        regs_per_cta: u32,
        smem_words_per_cta: u32,
        slots_per_sm: u32,
        total_ctas: u32,
    },
    /// The launch retired after `cycles` local cycles.
    LaunchEnd { cycles: u64 },
    /// CTA slot `slot` of SM `sm` was (re)filled. `initial` fills happen
    /// during the pre-cycle-0 prefill and are occupied from cycle 0;
    /// mid-run fills happen during cycle `t`'s retire stage and are
    /// occupied from cycle `t + 1`.
    SlotFill {
        sm: u32,
        slot: u32,
        t: u64,
        initial: bool,
    },
    /// CTA slot `slot` of SM `sm` drained during cycle `t`'s retire
    /// stage (empty from cycle `t + 1`).
    SlotFree { sm: u32, slot: u32, t: u64 },
    /// One 32-bit word of structure `h`, instance `inst`, was accessed
    /// at local cycle `t`. For caches `word` is the physical frame-major
    /// index (`frame * line_words + offset`).
    Access {
        h: HwStructure,
        inst: u32,
        word: u64,
        t: u64,
        write: bool,
    },
    /// `len` consecutive words starting at `start` were accessed (CTA
    /// zero-fill and line fills are whole-range writes; line reads and
    /// dirty write-backs are whole-range reads).
    Range {
        h: HwStructure,
        inst: u32,
        start: u64,
        len: u32,
        t: u64,
        write: bool,
    },
    /// The host observed an L2-resident word (classification or
    /// inter-launch glue read through the run controller).
    HostRead { word: u64 },
}

/// Receiver of the probe stream. Implemented by `crates/trace`'s
/// recorder; the simulator only ever forwards into it.
pub trait TraceSink: Send {
    fn event(&mut self, ev: ProbeEvent);
}

/// Shared handle to a sink, cloneable into the engine.
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// Events buffered per [`ProbeBuf`] flush. Access hooks fire every
/// simulated cycle, so taking the sink mutex per event would dominate
/// the traced pass; batching amortises the lock (and the dynamic
/// dispatch cache misses) to one acquisition per `BUF_CAP` events.
const BUF_CAP: usize = 8192;

/// Order-preserving batching wrapper around a [`SharedSink`]: events
/// accumulate in a local vector and drain into the sink in FIFO order
/// on overflow, explicit flush, or drop — so the receiver still sees
/// the exact hook stream, just in bursts.
pub(crate) struct ProbeBuf {
    sink: SharedSink,
    buf: Vec<ProbeEvent>,
}

impl ProbeBuf {
    pub(crate) fn new(sink: SharedSink) -> Self {
        ProbeBuf {
            sink,
            buf: Vec::with_capacity(BUF_CAP),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, ev: ProbeEvent) {
        self.buf.push(ev);
        if self.buf.len() >= BUF_CAP {
            self.flush();
        }
    }

    pub(crate) fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut s = self.sink.lock().expect("probe sink poisoned");
        for ev in self.buf.drain(..) {
            s.event(ev);
        }
    }
}

impl Drop for ProbeBuf {
    /// A detaching owner (end of the traced run) must not strand
    /// buffered events.
    fn drop(&mut self) {
        self.flush();
    }
}

/// Deliver one event to an optional buffered sink (no-op when detached).
#[inline]
pub(crate) fn emit(sink: &mut Option<ProbeBuf>, ev: ProbeEvent) {
    if let Some(b) = sink {
        b.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collect(Vec<ProbeEvent>);
    impl TraceSink for Collect {
        fn event(&mut self, ev: ProbeEvent) {
            self.0.push(ev);
        }
    }

    #[test]
    fn emit_forwards_in_order_and_tolerates_detached() {
        let sink: Arc<Mutex<Collect>> = Arc::new(Mutex::new(Collect(Vec::new())));
        let shared: SharedSink = sink.clone();
        let mut some = Some(ProbeBuf::new(shared));
        emit(&mut some, ProbeEvent::LaunchEnd { cycles: 9 });
        emit(&mut some, ProbeEvent::HostRead { word: 17 });
        emit(&mut None, ProbeEvent::LaunchEnd { cycles: 1 });
        // Buffered events only reach the sink on flush/drop.
        assert!(sink.lock().unwrap().0.is_empty());
        drop(some);
        let got = &sink.lock().unwrap().0;
        assert_eq!(
            got.as_slice(),
            &[
                ProbeEvent::LaunchEnd { cycles: 9 },
                ProbeEvent::HostRead { word: 17 },
            ]
        );
    }

    #[test]
    fn probe_buf_flushes_on_overflow_preserving_order() {
        let sink: Arc<Mutex<Collect>> = Arc::new(Mutex::new(Collect(Vec::new())));
        let mut buf = ProbeBuf::new(sink.clone());
        for w in 0..(BUF_CAP as u64 + 10) {
            buf.push(ProbeEvent::HostRead { word: w });
        }
        // One overflow flush happened; the tail is still buffered.
        assert_eq!(sink.lock().unwrap().0.len(), BUF_CAP);
        buf.flush();
        let got = &sink.lock().unwrap().0;
        assert_eq!(got.len(), BUF_CAP + 10);
        for (w, ev) in got.iter().enumerate() {
            assert_eq!(*ev, ProbeEvent::HostRead { word: w as u64 });
        }
    }
}
