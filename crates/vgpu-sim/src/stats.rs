//! Execution statistics — the fault-free profiling metrics of Figure 3.

/// Counters for one cache (an aggregate over the per-SM instances for L1s).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line-granular accesses after coalescing.
    pub accesses: u64,
    pub misses: u64,
    /// Accesses that hit a line with an outstanding fill (MSHR merge).
    pub pending_hits: u64,
    /// Misses that found no free MSHR.
    pub reservation_fails: u64,
}

impl CacheStats {
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    pub fn add(&mut self, o: &CacheStats) {
        self.accesses += o.accesses;
        self.misses += o.misses;
        self.pending_hits += o.pending_hits;
        self.reservation_fails += o.reservation_fails;
    }
}

/// Statistics of one kernel launch (or an aggregate over launches).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    /// Cycles (timed mode only; 0 in functional mode).
    pub cycles: u64,
    /// Cycles where at least one warp issued (timed mode only).
    pub issue_cycles: u64,
    /// Cycles where no warp could issue — all stalled on scoreboard or
    /// memory (timed mode only). `issue_cycles + stall_cycles == cycles`.
    pub stall_cycles: u64,
    /// Warp-level instructions issued.
    pub warp_instrs: u64,
    /// Thread-level dynamic instructions (warp instruction × active lanes).
    pub thread_instrs: u64,
    /// Thread-level global/texture load instructions.
    pub load_instrs: u64,
    /// Thread-level global store instructions.
    pub store_instrs: u64,
    /// Thread-level shared-memory instructions (loads + stores).
    pub smem_instrs: u64,
    /// Thread-level dynamic instructions with a general-purpose destination
    /// register — the NVBitFI-eligible population.
    pub gp_dest_instrs: u64,
    /// Thread-level dynamic loads with a destination register (SVF-LD
    /// population).
    pub ld_dest_instrs: u64,
    /// Thread-level dynamic instructions reading at least one source
    /// register (population of the source-injection modes).
    pub src_reg_instrs: u64,
    /// `gp_dest_instrs` broken down by [`vgpu_arch::InstrClass`] (indexed
    /// by `InstrClass::index()`): the per-class strata of the two-level
    /// model. Sums to `gp_dest_instrs`.
    pub class_dest_instrs: [u64; 6],
    pub l1d: CacheStats,
    pub l1t: CacheStats,
    pub l2: CacheStats,
    /// DRAM read transactions (L2 fills).
    pub mem_reads: u64,
    /// DRAM write transactions (L2 write-backs).
    pub mem_writes: u64,
    /// Σ over cycles of resident warps (numerator of occupancy).
    pub resident_warp_cycles: u64,
    /// Σ over cycles of the maximum resident warps (denominator).
    pub max_warp_cycles: u64,
}

impl Stats {
    /// Average achieved occupancy in [0, 1].
    pub fn occupancy(&self) -> f64 {
        if self.max_warp_cycles == 0 {
            0.0
        } else {
            self.resident_warp_cycles as f64 / self.max_warp_cycles as f64
        }
    }

    /// Fraction of cycles with at least one issuing warp, in [0, 1].
    pub fn issue_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issue_cycles as f64 / self.cycles as f64
        }
    }

    /// Accumulate another launch's statistics.
    pub fn add(&mut self, o: &Stats) {
        self.cycles += o.cycles;
        self.issue_cycles += o.issue_cycles;
        self.stall_cycles += o.stall_cycles;
        self.warp_instrs += o.warp_instrs;
        self.thread_instrs += o.thread_instrs;
        self.load_instrs += o.load_instrs;
        self.store_instrs += o.store_instrs;
        self.smem_instrs += o.smem_instrs;
        self.gp_dest_instrs += o.gp_dest_instrs;
        self.ld_dest_instrs += o.ld_dest_instrs;
        self.src_reg_instrs += o.src_reg_instrs;
        for (mine, theirs) in self.class_dest_instrs.iter_mut().zip(&o.class_dest_instrs) {
            *mine += theirs;
        }
        self.l1d.add(&o.l1d);
        self.l1t.add(&o.l1t);
        self.l2.add(&o.l2);
        self.mem_reads += o.mem_reads;
        self.mem_writes += o.mem_writes;
        self.resident_warp_cycles += o.resident_warp_cycles;
        self.max_warp_cycles += o.max_warp_cycles;
    }

    /// Add `end − at` for the engine-accumulated counters (instruction,
    /// issue/stall and residency counts) — the golden-suffix credit used
    /// by the masked-convergence early exit. Cycles, DRAM traffic and
    /// cache deltas are spliced separately by the caller.
    pub fn add_engine_delta(&mut self, end: &Stats, at: &Stats) {
        self.issue_cycles += end.issue_cycles - at.issue_cycles;
        self.stall_cycles += end.stall_cycles - at.stall_cycles;
        self.warp_instrs += end.warp_instrs - at.warp_instrs;
        self.thread_instrs += end.thread_instrs - at.thread_instrs;
        self.load_instrs += end.load_instrs - at.load_instrs;
        self.store_instrs += end.store_instrs - at.store_instrs;
        self.smem_instrs += end.smem_instrs - at.smem_instrs;
        self.gp_dest_instrs += end.gp_dest_instrs - at.gp_dest_instrs;
        self.ld_dest_instrs += end.ld_dest_instrs - at.ld_dest_instrs;
        self.src_reg_instrs += end.src_reg_instrs - at.src_reg_instrs;
        for ((mine, e), a) in self
            .class_dest_instrs
            .iter_mut()
            .zip(&end.class_dest_instrs)
            .zip(&at.class_dest_instrs)
        {
            *mine += e - a;
        }
        self.resident_warp_cycles += end.resident_warp_cycles - at.resident_warp_cycles;
        self.max_warp_cycles += end.max_warp_cycles - at.max_warp_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        let c = CacheStats::default();
        assert_eq!(c.miss_rate(), 0.0);
        let c = CacheStats {
            accesses: 10,
            misses: 3,
            ..Default::default()
        };
        assert!((c.miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn occupancy_ratio() {
        let s = Stats {
            resident_warp_cycles: 50,
            max_warp_cycles: 200,
            ..Default::default()
        };
        assert!((s.occupancy() - 0.25).abs() < 1e-12);
        assert_eq!(Stats::default().occupancy(), 0.0);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = Stats {
            cycles: 1,
            warp_instrs: 2,
            thread_instrs: 3,
            ..Default::default()
        };
        a.l1d.accesses = 5;
        a.issue_cycles = 1;
        let mut b = Stats {
            cycles: 10,
            warp_instrs: 20,
            thread_instrs: 30,
            ..Default::default()
        };
        b.l1d.accesses = 50;
        b.mem_reads = 7;
        b.issue_cycles = 6;
        b.stall_cycles = 4;
        a.add(&b);
        assert_eq!(a.cycles, 11);
        assert_eq!(a.warp_instrs, 22);
        assert_eq!(a.thread_instrs, 33);
        assert_eq!(a.l1d.accesses, 55);
        assert_eq!(a.mem_reads, 7);
        assert_eq!(a.issue_cycles, 7);
        assert_eq!(a.stall_cycles, 4);
    }

    #[test]
    fn zero_cycle_and_zero_slot_launches_do_not_nan() {
        // Functional-mode launches record instructions but neither cycles
        // nor warp-slot residency; both ratios must be 0.0, never NaN.
        let s = Stats {
            thread_instrs: 1000,
            warp_instrs: 32,
            resident_warp_cycles: 7, // no max_warp_cycles recorded
            issue_cycles: 3,         // no cycles recorded
            ..Default::default()
        };
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.issue_utilization(), 0.0);
        assert!(s.occupancy().is_finite());
        assert!(s.issue_utilization().is_finite());
    }

    #[test]
    fn issue_utilization_ratio() {
        let s = Stats {
            cycles: 10,
            issue_cycles: 4,
            stall_cycles: 6,
            ..Default::default()
        };
        assert!((s.issue_utilization() - 0.4).abs() < 1e-12);
        assert_eq!(Stats::default().issue_utilization(), 0.0);
    }
}
