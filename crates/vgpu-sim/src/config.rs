//! GPU configuration: structure sizes, cache geometry, latencies.
//!
//! The default configuration is a Volta-class GPU scaled down to 4 SMs so
//! that statistical fault-injection campaigns (hundreds of thousands of
//! end-to-end simulations) complete on one machine. Per-SM structure sizes
//! match the GV100/V100 family; the L2 is scaled with the SM count.

use crate::fault::HwStructure;

/// Geometry of one cache instance (one L1 per SM; one shared L2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total data capacity in bytes.
    pub bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Miss-status holding registers (outstanding misses tracked).
    pub mshrs: u32,
}

impl CacheGeom {
    pub fn lines(&self) -> u32 {
        self.bytes / self.line_bytes
    }

    pub fn sets(&self) -> u32 {
        self.lines() / self.ways
    }

    /// Data-array bit count of one instance.
    pub fn data_bits(&self) -> u64 {
        self.bytes as u64 * 8
    }
}

/// Instruction latencies in cycles. Values follow the usual GPGPU-Sim
/// Volta ballpark; what matters for the study is the *ordering*
/// (ALU < SFU < SMEM < L1 < L2 < DRAM), which shapes occupancy, exposure
/// windows, and cycle-weighted AVF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Latencies {
    pub alu: u32,
    pub sfu: u32,
    pub smem: u32,
    /// Extra cycles per additional conflicting lane on an SMEM bank.
    pub smem_conflict: u32,
    pub l1_hit: u32,
    pub l2_hit: u32,
    pub dram: u32,
    /// Store acknowledge latency (stores do not stall for the hierarchy).
    pub store: u32,
    /// Extra penalty charged when a cache has no free MSHR
    /// (reservation fail).
    pub mshr_fail: u32,
}

/// Full GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    pub num_sms: u32,
    pub max_threads_per_sm: u32,
    pub max_ctas_per_sm: u32,
    /// 32-bit registers in each SM's register file.
    pub rf_regs_per_sm: u32,
    /// Shared-memory bytes per SM.
    pub smem_bytes_per_sm: u32,
    pub l1d: CacheGeom,
    pub l1t: CacheGeom,
    pub l2: CacheGeom,
    pub lat: Latencies,
    /// Faulty runs are declared `Timeout` after
    /// `timeout_factor * golden_cycles` (but at least `min_timeout_cycles`).
    pub timeout_factor: u64,
    pub min_timeout_cycles: u64,
    /// SIMT reconvergence stack depth limit; exceeding it (possible only
    /// under fault corruption) is a detected unrecoverable error.
    pub max_stack_depth: usize,
}

impl GpuConfig {
    /// Volta-like GPU scaled to `num_sms` SMs.
    pub fn volta_scaled(num_sms: u32) -> Self {
        GpuConfig {
            num_sms,
            max_threads_per_sm: 1024,
            max_ctas_per_sm: 16,
            rf_regs_per_sm: 65536, // 256 KiB
            smem_bytes_per_sm: 65536,
            l1d: CacheGeom {
                bytes: 32 * 1024,
                line_bytes: 128,
                ways: 4,
                mshrs: 16,
            },
            l1t: CacheGeom {
                bytes: 16 * 1024,
                line_bytes: 128,
                ways: 4,
                mshrs: 8,
            },
            l2: CacheGeom {
                bytes: 128 * 1024 * num_sms,
                line_bytes: 128,
                ways: 8,
                mshrs: 32,
            },
            lat: Latencies {
                alu: 4,
                sfu: 16,
                smem: 24,
                smem_conflict: 2,
                l1_hit: 32,
                l2_hit: 190,
                dram: 420,
                store: 8,
                mshr_fail: 64,
            },
            timeout_factor: 10,
            min_timeout_cycles: 100_000,
            max_stack_depth: 64,
        }
    }

    /// Bit count of a hardware structure across the whole chip — the
    /// `size(h)` weights of the paper's chip-level AVF formula.
    pub fn structure_bits(&self, h: HwStructure) -> u64 {
        match h {
            HwStructure::RegFile => self.num_sms as u64 * self.rf_regs_per_sm as u64 * 32,
            HwStructure::Smem => self.num_sms as u64 * self.smem_bytes_per_sm as u64 * 8,
            HwStructure::L1D => self.num_sms as u64 * self.l1d.data_bits(),
            HwStructure::L1T => self.num_sms as u64 * self.l1t.data_bits(),
            HwStructure::L2 => self.l2.data_bits(),
            // Ephemeral pipeline state, not ECC-sized data storage: carries
            // no weight in the chip-level AVF formula.
            HwStructure::Simt | HwStructure::Sched => 0,
        }
    }

    /// Total bit count over all five modeled structures.
    pub fn total_bits(&self) -> u64 {
        HwStructure::ALL
            .iter()
            .map(|&h| self.structure_bits(h))
            .sum()
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::volta_scaled(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_geometry_arithmetic() {
        let g = CacheGeom {
            bytes: 32 * 1024,
            line_bytes: 128,
            ways: 4,
            mshrs: 16,
        };
        assert_eq!(g.lines(), 256);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.data_bits(), 32 * 1024 * 8);
    }

    #[test]
    fn default_is_4_sm_volta() {
        let c = GpuConfig::default();
        assert_eq!(c.num_sms, 4);
        assert_eq!(c.structure_bits(HwStructure::RegFile), 4 * 65536 * 32);
        assert_eq!(c.structure_bits(HwStructure::L2), 4 * 128 * 1024 * 8);
    }

    #[test]
    fn register_file_dominates_total_bits() {
        // Footnote 2 of the paper: the register file is the largest
        // structure and therefore dominates chip AVF.
        let c = GpuConfig::default();
        let rf = c.structure_bits(HwStructure::RegFile);
        for h in [
            HwStructure::Smem,
            HwStructure::L1D,
            HwStructure::L1T,
            HwStructure::L2,
        ] {
            assert!(rf > c.structure_bits(h), "RF must dominate {h:?}");
        }
        assert!(rf as f64 / c.total_bits() as f64 > 0.4);
    }
}
