//! Fault specifications for both abstraction layers.
//!
//! * [`UarchFault`] — a microarchitecture-level single-bit flip at a given
//!   cycle in one of the five modeled hardware structures (the gpuFI-4
//!   model of the paper: register files, shared memory, L1 data cache,
//!   L1 texture cache, L2 cache).
//! * [`SwFault`] — a software-level flip in the value produced (or read) by
//!   one dynamic instruction (the NVBitFI model), plus the source-register
//!   variants the paper proposes in Section V-B.

/// The five hardware structures targeted by microarchitecture-level fault
/// injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HwStructure {
    RegFile,
    Smem,
    L1D,
    L1T,
    L2,
}

impl HwStructure {
    pub const ALL: [HwStructure; 5] = [
        HwStructure::RegFile,
        HwStructure::Smem,
        HwStructure::L1D,
        HwStructure::L1T,
        HwStructure::L2,
    ];

    /// Short label used in reports (matches the paper's figure labels).
    pub fn label(&self) -> &'static str {
        match self {
            HwStructure::RegFile => "RF",
            HwStructure::Smem => "SMEM",
            HwStructure::L1D => "L1D",
            HwStructure::L1T => "L1T",
            HwStructure::L2 => "L2",
        }
    }

    /// Inverse of [`label`](HwStructure::label): parse a report label.
    pub fn from_label(s: &str) -> Option<HwStructure> {
        match s {
            "RF" => Some(HwStructure::RegFile),
            "SMEM" => Some(HwStructure::Smem),
            "L1D" => Some(HwStructure::L1D),
            "L1T" => Some(HwStructure::L1T),
            "L2" => Some(HwStructure::L2),
            _ => None,
        }
    }

    /// The cache structures (used for the AVF-Cache sub-metric of Fig. 5).
    pub const CACHES: [HwStructure; 3] = [HwStructure::L1D, HwStructure::L1T, HwStructure::L2];
}

/// A single-bit microarchitecture-level fault.
///
/// `loc_pick` selects the flipped location *uniformly over the live
/// population at the injection cycle* (`loc_pick % population`):
/// for the register file and shared memory this is the set of
/// currently-allocated entries (gpuFI-4 can only target live allocations —
/// the derating factor of the AVF formula accounts for the rest), while for
/// caches it is the entire data array, valid or not, as AVF methodology
/// requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UarchFault {
    /// Cycle (within the target launch) at which the flip occurs.
    pub cycle: u64,
    pub structure: HwStructure,
    /// Uniform random location selector.
    pub loc_pick: u64,
    /// Bit within the selected word (RF/SMEM, 0..32) or byte (caches, the
    /// low 3 bits are used).
    pub bit: u8,
}

/// What a software-level fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwFaultKind {
    /// NVBitFI default: flip a bit of the destination-register value of a
    /// dynamic general-purpose instruction, after it executes. The flipped
    /// value persists in the register until overwritten.
    DestValue,
    /// SVF-LD: like `DestValue` but only load instructions are eligible.
    DestValueLoad,
    /// Flip a source-register value for the duration of one dynamic
    /// instruction only (the "instantaneous" software-level model whose
    /// blind spot Section V-B describes).
    SrcTransient,
    /// Flip a source register in the register file so every later reader
    /// observes it until the register is rewritten — the behaviour the
    /// paper's proposed register-reuse analyzer would reconstruct.
    SrcPersistent,
    /// Flip a bit of an arbitrary *architectural register* of the warp
    /// executing the target dynamic instruction (register chosen by
    /// `loc_pick % num_regs`), before the instruction executes. This is a
    /// fault-injection approximation of the **Program Vulnerability
    /// Factor** (Sridharan & Kaeli) — the microarchitecture-independent,
    /// architecturally-visible portion of AVF — sitting between the
    /// dest-value SVF model and the full cross-layer AVF.
    ArchState,
}

impl SwFaultKind {
    /// Stable identifier used in metric labels and event logs.
    pub fn label(&self) -> &'static str {
        match self {
            SwFaultKind::DestValue => "dest_value",
            SwFaultKind::DestValueLoad => "dest_value_ld",
            SwFaultKind::SrcTransient => "src_transient",
            SwFaultKind::SrcPersistent => "src_persistent",
            SwFaultKind::ArchState => "arch_state",
        }
    }
}

/// A software-level fault: flip `bit` in the value associated with the
/// `target`-th *eligible* dynamic thread-instruction (eligibility depends
/// on [`SwFaultKind`]). Dynamic instructions are counted per executing
/// lane, in deterministic execution order, exactly as a binary
/// instrumentation tool observes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwFault {
    pub kind: SwFaultKind,
    /// Index into the stream of eligible dynamic thread-instructions.
    pub target: u64,
    /// Bit to flip in the 32-bit value.
    pub bit: u8,
    /// Location selector for kinds that pick among several candidate
    /// registers ([`SwFaultKind::ArchState`]); ignored otherwise.
    pub loc_pick: u64,
}

/// Mutable state tracking a software fault during a run.
#[derive(Debug, Clone)]
pub struct SwInjector {
    pub fault: SwFault,
    /// Eligible dynamic thread-instructions seen so far.
    pub counter: u64,
    /// Set once the fault has been applied.
    pub applied: bool,
}

impl SwInjector {
    pub fn new(fault: SwFault) -> Self {
        SwInjector {
            fault,
            counter: 0,
            applied: false,
        }
    }
}

/// Mutable state tracking a microarchitecture fault during a timed run.
#[derive(Debug, Clone)]
pub struct UarchInjector {
    pub fault: UarchFault,
    pub applied: bool,
    /// Live-population size observed when the fault was applied (0 if the
    /// structure had no live entries, in which case the flip was skipped
    /// and the run is trivially fault-free).
    pub population: u64,
}

impl UarchInjector {
    pub fn new(fault: UarchFault) -> Self {
        UarchInjector {
            fault,
            applied: false,
            population: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(HwStructure::RegFile.label(), "RF");
        assert_eq!(HwStructure::Smem.label(), "SMEM");
        assert_eq!(HwStructure::L2.label(), "L2");
        assert_eq!(HwStructure::ALL.len(), 5);
        assert_eq!(HwStructure::CACHES.len(), 3);
    }

    #[test]
    fn injector_initial_state() {
        let i = SwInjector::new(SwFault {
            kind: SwFaultKind::DestValue,
            target: 10,
            bit: 3,
            loc_pick: 0,
        });
        assert_eq!(i.counter, 0);
        assert!(!i.applied);
        let u = UarchInjector::new(UarchFault {
            cycle: 5,
            structure: HwStructure::L2,
            loc_pick: 99,
            bit: 7,
        });
        assert!(!u.applied);
        assert_eq!(u.population, 0);
    }
}
