//! Fault specifications for both abstraction layers.
//!
//! * [`UarchFault`] — a microarchitecture-level fault at a given cycle in
//!   one of the modeled hardware structures (the gpuFI-4 model of the
//!   paper: register files, shared memory, L1 data cache, L1 texture
//!   cache, L2 cache — plus the SIMT divergence stack and warp-scheduler
//!   state for the permanent-fault extension).
//! * [`SwFault`] — a software-level flip in the value produced (or read) by
//!   one dynamic instruction (the NVBitFI model), plus the source-register
//!   variants the paper proposes in Section V-B.
//!
//! Both carry a [`FaultPattern`] selecting *what* is corrupted at the
//! chosen site: the classic uniform single-bit flip, spatial multi-bit
//! transients (adjacent double-bit, whole-entry, row/column bursts per
//! structure geometry), or persistent stuck-at-0/1 faults that are
//! re-asserted on every access until the launch retires. See
//! docs/FAULT_MODELS.md for the catalog and geometry mapping.

use vgpu_arch::InstrClass;

/// The hardware structures targeted by microarchitecture-level fault
/// injection. The first five are the paper's storage structures; `Simt`
/// (per-warp divergence-stack state) and `Sched` (warp-scheduler
/// readiness state) extend the model to the parallelism-management units
/// that permanent-fault studies single out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HwStructure {
    RegFile,
    Smem,
    L1D,
    L1T,
    L2,
    /// Top-of-stack active mask of one warp's SIMT divergence stack.
    Simt,
    /// Warp-scheduler readiness state (`ready_at`) of one warp.
    Sched,
}

impl HwStructure {
    /// The paper's five storage structures (AVF reporting set).
    pub const ALL: [HwStructure; 5] = [
        HwStructure::RegFile,
        HwStructure::Smem,
        HwStructure::L1D,
        HwStructure::L1T,
        HwStructure::L2,
    ];

    /// Every structure the injector can target, including the SIMT stack
    /// and scheduler state (stuck-at campaigns).
    pub const INJECTABLE: [HwStructure; 7] = [
        HwStructure::RegFile,
        HwStructure::Smem,
        HwStructure::L1D,
        HwStructure::L1T,
        HwStructure::L2,
        HwStructure::Simt,
        HwStructure::Sched,
    ];

    /// Short label used in reports (matches the paper's figure labels).
    pub fn label(&self) -> &'static str {
        match self {
            HwStructure::RegFile => "RF",
            HwStructure::Smem => "SMEM",
            HwStructure::L1D => "L1D",
            HwStructure::L1T => "L1T",
            HwStructure::L2 => "L2",
            HwStructure::Simt => "SIMT",
            HwStructure::Sched => "SCHED",
        }
    }

    /// Inverse of [`label`](HwStructure::label): parse a report label.
    pub fn from_label(s: &str) -> Option<HwStructure> {
        match s {
            "RF" => Some(HwStructure::RegFile),
            "SMEM" => Some(HwStructure::Smem),
            "L1D" => Some(HwStructure::L1D),
            "L1T" => Some(HwStructure::L1T),
            "L2" => Some(HwStructure::L2),
            "SIMT" => Some(HwStructure::Simt),
            "SCHED" => Some(HwStructure::Sched),
            _ => None,
        }
    }

    /// The cache structures (used for the AVF-Cache sub-metric of Fig. 5).
    pub const CACHES: [HwStructure; 3] = [HwStructure::L1D, HwStructure::L1T, HwStructure::L2];
}

/// What is corrupted at the fault site: the classic uniform single-bit
/// transient, a spatial multi-bit transient, or a persistent stuck-at
/// fault re-asserted on every access until the launch retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultPattern {
    /// Flip one uniformly chosen bit (the paper's baseline model).
    #[default]
    SingleBit,
    /// Flip two adjacent bits of the same entry (wrapping at the entry
    /// width) — the dominant spatial multi-bit pattern in field studies.
    DoubleAdjacent,
    /// Corrupt every bit of the selected entry (word / byte).
    WholeEntry,
    /// Flip the selected bit position in every entry of the aligned
    /// geometric row containing the site (cache line, register row).
    BurstRow,
    /// Flip the selected bit position in up to [`BURST_COL_ROWS`]
    /// consecutive rows starting at the site (a column burst).
    BurstCol,
    /// Permanently force the selected bit to 0 until launch end.
    StuckAt0,
    /// Permanently force the selected bit to 1 until launch end.
    StuckAt1,
}

/// How many rows a [`FaultPattern::BurstCol`] fault spans (clipped at the
/// end of the structure; no wrap-around).
pub const BURST_COL_ROWS: u64 = 8;

impl FaultPattern {
    pub const ALL: [FaultPattern; 7] = [
        FaultPattern::SingleBit,
        FaultPattern::DoubleAdjacent,
        FaultPattern::WholeEntry,
        FaultPattern::BurstRow,
        FaultPattern::BurstCol,
        FaultPattern::StuckAt0,
        FaultPattern::StuckAt1,
    ];

    /// Stable identifier used by `--fault-model`, metric labels, and the
    /// dispatch protocol.
    pub fn label(&self) -> &'static str {
        match self {
            FaultPattern::SingleBit => "single-bit",
            FaultPattern::DoubleAdjacent => "double-adjacent",
            FaultPattern::WholeEntry => "whole-entry",
            FaultPattern::BurstRow => "burst-row",
            FaultPattern::BurstCol => "burst-col",
            FaultPattern::StuckAt0 => "stuck-at-0",
            FaultPattern::StuckAt1 => "stuck-at-1",
        }
    }

    /// Inverse of [`label`](FaultPattern::label).
    pub fn from_label(s: &str) -> Option<FaultPattern> {
        FaultPattern::ALL.into_iter().find(|p| p.label() == s)
    }

    /// Persistent faults are re-asserted until launch end; they disable
    /// the masked-convergence early exit (the machine can never provably
    /// re-converge to golden while the fault is live).
    pub fn is_persistent(&self) -> bool {
        matches!(self, FaultPattern::StuckAt0 | FaultPattern::StuckAt1)
    }

    /// The forced bit value of a stuck-at pattern; `None` for transients.
    pub fn stuck_value(&self) -> Option<bool> {
        match self {
            FaultPattern::StuckAt0 => Some(false),
            FaultPattern::StuckAt1 => Some(true),
            _ => None,
        }
    }
}

/// The exact set of `(entry, bit-mask)` sites a pattern corrupts in a
/// storage structure of `entries` entries of `width` bits each, arranged
/// geometrically in rows of `row` entries. `entry`/`bit` locate the seed
/// site (the uniformly drawn single-bit location); every returned entry
/// index is `< entries` and every mask fits in `width` bits. This is the
/// single source of truth for pattern geometry — the injector, the
/// property tests, and docs/FAULT_MODELS.md all derive from it.
pub fn pattern_footprint(
    pattern: FaultPattern,
    entry: u64,
    bit: u8,
    entries: u64,
    width: u8,
    row: u64,
) -> Vec<(u64, u32)> {
    debug_assert!(entries > 0 && width > 0 && (1..=32).contains(&width));
    let entry = entry % entries;
    let b = u32::from(bit) % u32::from(width);
    let one = 1u32 << b;
    let row = row.max(1);
    match pattern {
        FaultPattern::SingleBit | FaultPattern::StuckAt0 | FaultPattern::StuckAt1 => {
            vec![(entry, one)]
        }
        FaultPattern::DoubleAdjacent => {
            let b2 = (b + 1) % u32::from(width);
            vec![(entry, one | (1u32 << b2))]
        }
        FaultPattern::WholeEntry => {
            let mask = if width >= 32 {
                !0u32
            } else {
                (1u32 << width) - 1
            };
            vec![(entry, mask)]
        }
        FaultPattern::BurstRow => {
            let start = (entry / row) * row;
            (start..(start + row).min(entries))
                .map(|e| (e, one))
                .collect()
        }
        FaultPattern::BurstCol => (0..BURST_COL_ROWS)
            .map_while(|r| {
                let e = entry.checked_add(r * row)?;
                (e < entries).then_some((e, one))
            })
            .collect(),
    }
}

/// The 32-bit value mask a pattern corrupts when the fault site is a
/// single architectural value (software-level faults, SIMT masks,
/// scheduler state): the geometric row/column patterns map onto the
/// byte lanes of the word.
pub fn value_mask(pattern: FaultPattern, bit: u8) -> u32 {
    let b = u32::from(bit) % 32;
    match pattern {
        FaultPattern::SingleBit | FaultPattern::StuckAt0 | FaultPattern::StuckAt1 => 1 << b,
        FaultPattern::DoubleAdjacent => (1 << b) | (1 << ((b + 1) % 32)),
        FaultPattern::WholeEntry => !0,
        FaultPattern::BurstRow => 0xFF << (8 * (b / 8)),
        FaultPattern::BurstCol => 0x0101_0101 << (b % 8),
    }
}

/// Force the masked bits of `word` to the stuck value. Idempotent.
#[inline]
pub fn apply_stuck(word: u32, mask: u32, value: bool) -> u32 {
    if value {
        word | mask
    } else {
        word & !mask
    }
}

/// A microarchitecture-level fault.
///
/// `loc_pick` selects the seed location *uniformly over the live
/// population at the injection cycle* (`loc_pick % population`):
/// for the register file and shared memory this is the set of
/// currently-allocated entries (gpuFI-4 can only target live allocations —
/// the derating factor of the AVF formula accounts for the rest), while for
/// caches it is the entire data array, valid or not, as AVF methodology
/// requires. The [`FaultPattern`] then expands the seed location into its
/// full footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UarchFault {
    /// Cycle (within the target launch) at which the fault strikes.
    pub cycle: u64,
    pub structure: HwStructure,
    /// Uniform random location selector.
    pub loc_pick: u64,
    /// Bit within the selected word (RF/SMEM, 0..32) or byte (caches, the
    /// low 3 bits are used).
    pub bit: u8,
    /// What is corrupted at the selected site.
    pub pattern: FaultPattern,
}

/// What a software-level fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwFaultKind {
    /// NVBitFI default: flip a bit of the destination-register value of a
    /// dynamic general-purpose instruction, after it executes. The flipped
    /// value persists in the register until overwritten.
    DestValue,
    /// SVF-LD: like `DestValue` but only load instructions are eligible.
    DestValueLoad,
    /// Flip a source-register value for the duration of one dynamic
    /// instruction only (the "instantaneous" software-level model whose
    /// blind spot Section V-B describes).
    SrcTransient,
    /// Flip a source register in the register file so every later reader
    /// observes it until the register is rewritten — the behaviour the
    /// paper's proposed register-reuse analyzer would reconstruct.
    SrcPersistent,
    /// Flip a bit of an arbitrary *architectural register* of the warp
    /// executing the target dynamic instruction (register chosen by
    /// `loc_pick % num_regs`), before the instruction executes. This is a
    /// fault-injection approximation of the **Program Vulnerability
    /// Factor** (Sridharan & Kaeli) — the microarchitecture-independent,
    /// architecturally-visible portion of AVF — sitting between the
    /// dest-value SVF model and the full cross-layer AVF.
    ArchState,
    /// Like `DestValue` but restricted to one [`InstrClass`]: the
    /// per-class strata of the two-level SDC model (docs/TWOLEVEL.md).
    /// `DestValue` is the pooled union of these strata.
    DestClass(InstrClass),
}

impl SwFaultKind {
    /// Stable identifier used in metric labels and event logs.
    pub fn label(&self) -> &'static str {
        match self {
            SwFaultKind::DestValue => "dest_value",
            SwFaultKind::DestValueLoad => "dest_value_ld",
            SwFaultKind::SrcTransient => "src_transient",
            SwFaultKind::SrcPersistent => "src_persistent",
            SwFaultKind::ArchState => "arch_state",
            SwFaultKind::DestClass(InstrClass::Mov) => "dest_mov",
            SwFaultKind::DestClass(InstrClass::IntAlu) => "dest_ialu",
            SwFaultKind::DestClass(InstrClass::FpAlu) => "dest_falu",
            SwFaultKind::DestClass(InstrClass::Sfu) => "dest_sfu",
            SwFaultKind::DestClass(InstrClass::Cvt) => "dest_cvt",
            SwFaultKind::DestClass(InstrClass::Ld) => "dest_ld",
            SwFaultKind::DestClass(InstrClass::Other) => "dest_other",
        }
    }

    /// Inverse of [`label`](SwFaultKind::label).
    pub fn from_label(s: &str) -> Option<SwFaultKind> {
        match s {
            "dest_value" => Some(SwFaultKind::DestValue),
            "dest_value_ld" => Some(SwFaultKind::DestValueLoad),
            "src_transient" => Some(SwFaultKind::SrcTransient),
            "src_persistent" => Some(SwFaultKind::SrcPersistent),
            "arch_state" => Some(SwFaultKind::ArchState),
            _ => s
                .strip_prefix("dest_")
                .and_then(InstrClass::from_label)
                .map(SwFaultKind::DestClass),
        }
    }
}

/// A software-level fault: corrupt the value associated with the
/// `target`-th *eligible* dynamic thread-instruction (eligibility depends
/// on [`SwFaultKind`]). Dynamic instructions are counted per executing
/// lane, in deterministic execution order, exactly as a binary
/// instrumentation tool observes them. The [`FaultPattern`] selects the
/// corrupted bit set within the 32-bit value (stuck-at patterns pin the
/// register cell until launch end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwFault {
    pub kind: SwFaultKind,
    /// Index into the stream of eligible dynamic thread-instructions.
    pub target: u64,
    /// Bit to corrupt in the 32-bit value.
    pub bit: u8,
    /// Location selector for kinds that pick among several candidate
    /// registers ([`SwFaultKind::ArchState`]); ignored otherwise.
    pub loc_pick: u64,
    /// What is corrupted in the targeted value.
    pub pattern: FaultPattern,
}

/// A persistent software-level fault site: one register cell of one warp,
/// re-forced after every instruction of that warp until launch end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwStuck {
    /// `Warp::seq` of the warp whose register window holds the cell.
    pub seq: u64,
    /// Architectural register index.
    pub reg: u8,
    /// Lane within the warp.
    pub lane: usize,
    pub mask: u32,
    pub value: bool,
}

/// Mutable state tracking a software fault during a run.
#[derive(Debug, Clone)]
pub struct SwInjector {
    pub fault: SwFault,
    /// Eligible dynamic thread-instructions seen so far.
    pub counter: u64,
    /// Set once the fault has been applied.
    pub applied: bool,
    /// Resolved stuck-at site (persistent patterns only), re-asserted
    /// after every instruction of the owning warp.
    pub stuck: Option<SwStuck>,
}

impl SwInjector {
    pub fn new(fault: SwFault) -> Self {
        SwInjector {
            fault,
            counter: 0,
            applied: false,
            stuck: None,
        }
    }
}

/// Which physical cache instance a stuck-at site lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckCache {
    L1d(usize),
    L1t(usize),
    L2,
}

/// One resolved persistent fault site in the timed machine, pinned to a
/// physical location when the fault strikes and re-forced on every
/// simulation step until the launch retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckSite {
    /// Word `idx` of SM `sm`'s register file.
    RfWord { sm: usize, idx: usize, mask: u32 },
    /// Word `idx` of SM `sm`'s shared memory.
    SmemWord { sm: usize, idx: usize, mask: u32 },
    /// Byte `byte` of a cache data array.
    CacheByte {
        cache: StuckCache,
        byte: u64,
        mask: u8,
    },
    /// Top-of-stack active mask of warp slot `warp` on SM `sm`.
    SimtMask { sm: usize, warp: usize, mask: u32 },
    /// Low 32 bits of `ready_at` of warp slot `warp` on SM `sm`.
    SchedReady { sm: usize, warp: usize, mask: u32 },
}

/// Mutable state tracking a microarchitecture fault during a timed run.
#[derive(Debug, Clone)]
pub struct UarchInjector {
    pub fault: UarchFault,
    pub applied: bool,
    /// Live-population size observed when the fault was applied (0 if the
    /// structure had no live entries, in which case the flip was skipped
    /// and the run is trivially fault-free).
    pub population: u64,
    /// Resolved stuck-at sites (persistent patterns only), re-forced on
    /// every simulation step after application.
    pub stuck: Vec<StuckSite>,
}

impl UarchInjector {
    pub fn new(fault: UarchFault) -> Self {
        UarchInjector {
            fault,
            applied: false,
            population: 0,
            stuck: Vec::new(),
        }
    }

    /// The stuck bit value if this fault is persistent.
    pub fn stuck_value(&self) -> Option<bool> {
        self.fault.pattern.stuck_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(HwStructure::RegFile.label(), "RF");
        assert_eq!(HwStructure::Smem.label(), "SMEM");
        assert_eq!(HwStructure::L2.label(), "L2");
        assert_eq!(HwStructure::Simt.label(), "SIMT");
        assert_eq!(HwStructure::Sched.label(), "SCHED");
        assert_eq!(HwStructure::ALL.len(), 5);
        assert_eq!(HwStructure::INJECTABLE.len(), 7);
        assert_eq!(HwStructure::CACHES.len(), 3);
        for h in HwStructure::INJECTABLE {
            assert_eq!(HwStructure::from_label(h.label()), Some(h));
        }
    }

    #[test]
    fn pattern_labels_round_trip() {
        for p in FaultPattern::ALL {
            assert_eq!(FaultPattern::from_label(p.label()), Some(p));
        }
        assert_eq!(FaultPattern::from_label("bogus"), None);
        assert_eq!(FaultPattern::default(), FaultPattern::SingleBit);
        assert!(FaultPattern::StuckAt0.is_persistent());
        assert!(FaultPattern::StuckAt1.is_persistent());
        assert!(!FaultPattern::BurstRow.is_persistent());
        assert_eq!(FaultPattern::StuckAt0.stuck_value(), Some(false));
        assert_eq!(FaultPattern::StuckAt1.stuck_value(), Some(true));
        assert_eq!(FaultPattern::SingleBit.stuck_value(), None);
    }

    #[test]
    fn footprints_match_documented_shapes() {
        // Single bit: exactly the seed site.
        assert_eq!(
            pattern_footprint(FaultPattern::SingleBit, 5, 3, 16, 32, 4),
            vec![(5, 1 << 3)]
        );
        // Adjacent double bit wraps at the entry width.
        assert_eq!(
            pattern_footprint(FaultPattern::DoubleAdjacent, 0, 31, 8, 32, 4),
            vec![(0, (1 << 31) | 1)]
        );
        // Whole entry: full-width mask.
        assert_eq!(
            pattern_footprint(FaultPattern::WholeEntry, 2, 0, 8, 8, 4),
            vec![(2, 0xFF)]
        );
        // Burst row: aligned row, clipped at the structure end.
        assert_eq!(
            pattern_footprint(FaultPattern::BurstRow, 5, 1, 7, 32, 4),
            vec![(4, 2), (5, 2), (6, 2)]
        );
        // Burst column: same bit down consecutive rows, no wrap.
        assert_eq!(
            pattern_footprint(FaultPattern::BurstCol, 1, 0, 16, 32, 4),
            vec![(1, 1), (5, 1), (9, 1), (13, 1)]
        );
    }

    #[test]
    fn sw_fault_kind_labels_round_trip() {
        let kinds = [
            SwFaultKind::DestValue,
            SwFaultKind::DestValueLoad,
            SwFaultKind::SrcTransient,
            SwFaultKind::SrcPersistent,
            SwFaultKind::ArchState,
            SwFaultKind::DestClass(InstrClass::Mov),
            SwFaultKind::DestClass(InstrClass::IntAlu),
            SwFaultKind::DestClass(InstrClass::FpAlu),
            SwFaultKind::DestClass(InstrClass::Sfu),
            SwFaultKind::DestClass(InstrClass::Cvt),
            SwFaultKind::DestClass(InstrClass::Ld),
        ];
        for k in kinds {
            assert_eq!(SwFaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(SwFaultKind::from_label("bogus"), None);
        // `dest_ld` must parse as the load *class* stratum, distinct from
        // the legacy SVF-LD kind's `dest_value_ld`.
        assert_eq!(
            SwFaultKind::from_label("dest_ld"),
            Some(SwFaultKind::DestClass(InstrClass::Ld))
        );
    }

    #[test]
    fn stuck_force_is_idempotent() {
        let w = 0b1010_1100u32;
        let m = 0b0110u32;
        let w1 = apply_stuck(w, m, true);
        assert_eq!(apply_stuck(w1, m, true), w1);
        let w0 = apply_stuck(w, m, false);
        assert_eq!(apply_stuck(w0, m, false), w0);
        assert_eq!(w1 & m, m);
        assert_eq!(w0 & m, 0);
        assert_eq!(w1 & !m, w & !m);
        assert_eq!(w0 & !m, w & !m);
    }

    #[test]
    fn injector_initial_state() {
        let i = SwInjector::new(SwFault {
            kind: SwFaultKind::DestValue,
            target: 10,
            bit: 3,
            loc_pick: 0,
            pattern: FaultPattern::SingleBit,
        });
        assert_eq!(i.counter, 0);
        assert!(!i.applied);
        assert!(i.stuck.is_none());
        let u = UarchInjector::new(UarchFault {
            cycle: 5,
            structure: HwStructure::L2,
            loc_pick: 99,
            bit: 7,
            pattern: FaultPattern::SingleBit,
        });
        assert!(!u.applied);
        assert_eq!(u.population, 0);
        assert!(u.stuck.is_empty());
        assert_eq!(u.stuck_value(), None);
    }
}
