//! Architectural snapshots of the timed engine — the mechanism behind the
//! golden-prefix fast-forward for injection campaigns.
//!
//! A [`SimSnapshot`] captures the complete mid-launch machine state:
//! per-SM warp contexts, register files, shared memory, the L1D/L1T/L2
//! arrays with their tags / dirty bits / LRU ages / MSHRs, all of global
//! memory, CTA scheduling state, and the statistics counters accumulated
//! so far. Restoring one is a verbatim clone, so a run resumed from a
//! snapshot at cycle `X` is bit-identical — outputs, statistics, cycle
//! count, DUE behaviour — to an uninterrupted run passing through `X`.
//!
//! Injection trials exploit this in two ways (see `docs/PERF.md`):
//!
//! * **Fast-forward**: a fault at cycle `c` leaves everything before `c`
//!   equal to the golden run, so the trial resumes from the nearest
//!   golden snapshot at-or-before `c` instead of simulating from cycle 0.
//! * **Early masked-convergence exit**: after the flip, the disturbed
//!   machine is periodically compared against the golden snapshot at the
//!   same cycle; architectural equality means the remaining execution is
//!   bit-identical to golden, so the golden suffix is spliced in and the
//!   trial ends early ([`ConvergeWith`]).

use crate::cache::Cache;
use crate::mem::GlobalMem;
use crate::stats::Stats;
use crate::timed::EngineState;

/// Full mid-launch machine state at one cycle of one kernel launch.
///
/// Produced by `Gpu::launch_instrumented` / `Gpu::snapshot_at`, consumed
/// by `Gpu::resume_from`. Opaque outside the simulator: the campaign
/// layers only ever ask for its [`cycle`](SimSnapshot::cycle) and
/// [`byte_size`](SimSnapshot::byte_size).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    pub(crate) engine: EngineState,
    pub(crate) mem: GlobalMem,
    pub(crate) l1ds: Vec<Cache>,
    pub(crate) l1ts: Vec<Cache>,
    pub(crate) l2: Cache,
}

impl SimSnapshot {
    /// Cycle (within the launch) at which this snapshot was captured.
    pub fn cycle(&self) -> u64 {
        self.engine.cycle
    }

    /// Approximate heap footprint in bytes (for the `snapshot_bytes`
    /// observability gauge).
    pub fn byte_size(&self) -> u64 {
        self.engine.byte_size()
            + self.mem.byte_size()
            + self
                .l1ds
                .iter()
                .chain(self.l1ts.iter())
                .map(Cache::byte_size)
                .sum::<u64>()
            + self.l2.byte_size()
    }
}

/// Device-only state (global memory + cache hierarchy) at a kernel
/// boundary, between launches. Cheaper than a [`SimSnapshot`] — there is
/// no engine state to keep when no kernel is in flight — and the unit of
/// per-launch fast-forward for multi-kernel applications.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    pub(crate) mem: GlobalMem,
    pub(crate) l1ds: Vec<Cache>,
    pub(crate) l1ts: Vec<Cache>,
    pub(crate) l2: Cache,
}

impl DeviceSnapshot {
    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> u64 {
        self.mem.byte_size()
            + self
                .l1ds
                .iter()
                .chain(self.l1ts.iter())
                .map(Cache::byte_size)
                .sum::<u64>()
            + self.l2.byte_size()
    }
}

/// Golden reference handed to `Gpu::resume_from` to enable the early
/// masked-convergence exit for one launch.
pub struct ConvergeWith<'a> {
    /// Golden mid-launch snapshots of this launch, sorted by cycle; the
    /// disturbed machine is compared against each one it reaches after
    /// the fault has been applied.
    pub snaps: &'a [SimSnapshot],
    /// Golden device state at the end of this launch (L1s invalidated),
    /// restored wholesale when the trial converges.
    pub end: &'a DeviceSnapshot,
    /// Golden statistics of this launch (the launch delta, not an
    /// aggregate), used to credit the skipped suffix.
    pub end_stats: Stats,
}

/// What `Gpu::resume_from` did, beyond the launch statistics.
#[derive(Debug, Clone, Copy)]
pub struct ResumeOutcome {
    /// Launch statistics, bit-identical to a from-zero run of the same
    /// launch with the same fault.
    pub stats: Stats,
    /// Cycle the run was resumed at (the snapshot's cycle).
    pub resumed_at: u64,
    /// Cycles actually simulated (excludes both the skipped prefix and,
    /// on convergence, the spliced suffix).
    pub simulated_cycles: u64,
    /// Cycle at which the disturbed machine re-converged to golden, if
    /// the early masked-convergence exit fired.
    pub converged_at: Option<u64>,
}
