//! Harness-level integration tests: TMR layout invariants, the vote
//! kernel's repair and failure paths, and fault-outcome classification.

use kernels::apps::va::{self, Va};
use kernels::{
    faulty_run, golden_run, AppAbort, Benchmark, Outcome, PlannedFault, RunCtl, Variant,
};
use vgpu_arch::MemSpace;
use vgpu_sim::{GpuConfig, Mode, SwFault, SwFaultKind, UarchFault};

/// A tiny benchmark that lets the test desynchronise TMR copies between
/// the compute launch and the vote: `corrupt = (copy_index, delta or 0)`.
struct VoteProbe {
    /// Word values written per copy before voting (copy 0, 1, 2).
    values: [u32; 3],
}

impl Benchmark for VoteProbe {
    fn name(&self) -> &'static str {
        "VoteProbe"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let bufs = ctl.alloc(&[64]);
        let out = bufs[0];
        ctl.set_outputs(&[(out, 16)]);
        // A trivial kernel writing 1 to out[gid] in each copy.
        let mut a = vgpu_arch::KernelBuilder::new("probe");
        let roff = kernels::tmr::prologue(&mut a);
        let (gid, tmp, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.linear_tid(gid, tmp);
        kernels::tmr::load_ptr(&mut a, addr, roff, 0);
        a.iscadd(addr, gid, vgpu_arch::Operand::Reg(addr), 2);
        a.mov(v, 1u32);
        a.st(MemSpace::Global, addr, 0, v);
        let k = a.build().unwrap();
        ctl.launch(0, &k, 1, 16, vec![out])?;
        // Desynchronise the copies of word 3 before voting.
        if ctl.hardened() {
            let stride = ctl.tmr_stride();
            for (c, &val) in self.values.iter().enumerate() {
                ctl.write_u32_single(out + 12 + c as u32 * stride, val);
            }
        }
        ctl.vote(0, &[(out, 16)])?;
        Ok(())
    }
}

#[test]
fn vote_repairs_a_single_corrupted_copy() {
    // Copies: 9, 1, 1 → majority 1 wins, run completes.
    let probe = VoteProbe { values: [9, 1, 1] };
    let g = golden_run(&probe, &GpuConfig::default(), Variant::TIMED_TMR);
    assert_eq!(g.output[3], 1, "majority value restored");
}

#[test]
fn vote_repairs_copy_one_and_two_positions() {
    for values in [[1, 9, 1], [1, 1, 9]] {
        let probe = VoteProbe { values };
        let g = golden_run(&probe, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(g.output[3], 1, "{values:?}");
    }
}

#[test]
#[should_panic(expected = "VoteFailed")]
fn vote_with_three_different_copies_is_a_due() {
    // All three copies differ → the paper's red arrow: DUE.
    // golden_run panics on an aborted fault-free run, which is exactly the
    // assertable behaviour here.
    let probe = VoteProbe { values: [7, 8, 9] };
    golden_run(&probe, &GpuConfig::default(), Variant::TIMED_TMR);
}

#[test]
fn tmr_stride_is_uniform_and_copies_replicated() {
    struct LayoutProbe;
    impl Benchmark for LayoutProbe {
        fn name(&self) -> &'static str {
            "LayoutProbe"
        }
        fn kernels(&self) -> &'static [&'static str] {
            &["K1"]
        }
        fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
            let bufs = ctl.alloc(&[256, 1024, 64]);
            ctl.write_u32(bufs[1] + 40, 0xCAFE);
            let stride = ctl.tmr_stride();
            assert!(stride > 0);
            for c in 0..3 {
                assert_eq!(ctl.read_u32(bufs[1] + 40 + c * stride), 0xCAFE, "copy {c}");
            }
            ctl.set_outputs(&[(bufs[0], 4)]);
            // Minimal kernel so the harness accepts the run.
            let mut a = vgpu_arch::KernelBuilder::new("nop");
            let r = a.reg();
            a.mov(r, 0u32);
            let k = a.build().unwrap();
            ctl.launch(0, &k, 1, 32, vec![])?;
            Ok(())
        }
    }
    golden_run(&LayoutProbe, &GpuConfig::default(), Variant::TIMED_TMR);
}

#[test]
fn unhardened_ctl_has_no_stride_and_no_votes() {
    let g = golden_run(&Va, &GpuConfig::default(), Variant::TIMED);
    assert!(g.records.iter().all(|r| !r.is_vote));
}

#[test]
fn planted_sw_fault_in_output_value_is_an_sdc() {
    // VA: the FADD destination is the output value; a high bit flip in a
    // mid-stream FADD must surface as SDC.
    let cfg = GpuConfig::default();
    let variant = Variant {
        mode: Mode::Functional,
        hardened: false,
    };
    let golden = golden_run(&Va, &cfg, variant);
    let mut sdcs = 0;
    let elig = golden.records[0].stats.gp_dest_instrs;
    for t in 0..40 {
        // Spread the targets across the whole dynamic stream so some land
        // on value-producing instructions (loads, the FADD) rather than
        // address arithmetic.
        let res = faulty_run(
            &Va,
            &cfg,
            variant,
            &golden,
            0,
            PlannedFault::Sw(SwFault {
                kind: SwFaultKind::DestValue,
                target: elig * t / 40 + t,
                bit: 30,
                loc_pick: 0,
                pattern: vgpu_sim::FaultPattern::SingleBit,
            }),
        );
        assert!(res.applied);
        if res.outcome == Outcome::Sdc {
            sdcs += 1;
        }
    }
    assert!(sdcs > 0, "high-bit value flips must produce SDCs");
}

#[test]
fn fault_beyond_stream_is_masked_and_not_applied() {
    let cfg = GpuConfig::default();
    let variant = Variant {
        mode: Mode::Functional,
        hardened: false,
    };
    let golden = golden_run(&Va, &cfg, variant);
    let res = faulty_run(
        &Va,
        &cfg,
        variant,
        &golden,
        0,
        PlannedFault::Sw(SwFault {
            kind: SwFaultKind::DestValue,
            target: u64::MAX / 2,
            bit: 0,
            loc_pick: 0,
            pattern: vgpu_sim::FaultPattern::SingleBit,
        }),
    );
    assert_eq!(res.outcome, Outcome::Masked);
    assert!(!res.applied, "target past the eligible stream never fires");
}

#[test]
fn uarch_fault_after_kernel_end_is_masked() {
    let cfg = GpuConfig::default();
    let variant = Variant {
        mode: Mode::Timed,
        hardened: false,
    };
    let golden = golden_run(&Va, &cfg, variant);
    let res = faulty_run(
        &Va,
        &cfg,
        variant,
        &golden,
        0,
        PlannedFault::Uarch(UarchFault {
            cycle: golden.records[0].stats.cycles + 10_000,
            structure: vgpu_sim::HwStructure::RegFile,
            loc_pick: 42,
            bit: 5,
            pattern: vgpu_sim::FaultPattern::SingleBit,
        }),
    );
    assert_eq!(res.outcome, Outcome::Masked);
}

#[test]
fn hardened_run_result_matches_cpu_reference_for_va() {
    let g = golden_run(&Va, &GpuConfig::default(), Variant::FUNCTIONAL_TMR);
    let want = va::cpu_reference();
    for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
        assert_eq!(f32::from_bits(got), want, "element {i}");
    }
}
