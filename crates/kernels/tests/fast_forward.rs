//! Golden-prefix fast-forward must be an *optimization*, never a model
//! change: every classification artifact of [`kernels::faulty_run_ff`]
//! (outcome, architectural cost, applied flag, corrupted-word count) must
//! be bit-identical to the slow path's, and a fault-free snapshot resume
//! must reproduce the golden suffix verbatim.

use std::sync::Arc;

use kernels::apps::{lud::Lud, scp::Scp, va::Va};
use kernels::{
    all_benchmarks, faulty_run, faulty_run_ff, golden_run, golden_run_snapshots,
    verify_snapshot_resume, Benchmark, GoldenRun, PlannedFault, Variant,
};
use proptest::prelude::*;
use vgpu_sim::fault::HwStructure;
use vgpu_sim::{GpuConfig, UarchFault};

fn cfg() -> GpuConfig {
    GpuConfig::volta_scaled(2)
}

/// Fault cycles spread over a launch, including both extremes.
fn probe_cycles(total: u64) -> Vec<u64> {
    vec![
        0,
        total / 3,
        total / 2,
        total * 9 / 10,
        total.saturating_sub(1),
    ]
}

fn assert_ff_matches(bench: &dyn Benchmark, target: usize, golden: &GoldenRun) {
    assert_ff_matches_pattern(bench, target, golden, vgpu_sim::FaultPattern::SingleBit);
}

fn assert_ff_matches_pattern(
    bench: &dyn Benchmark,
    target: usize,
    golden: &GoldenRun,
    pattern: vgpu_sim::FaultPattern,
) {
    let cfg = cfg();
    let snaps = Arc::new(golden_run_snapshots(bench, &cfg, golden, 4));
    let launch_cycles = golden.records[target].stats.cycles;
    let mut resumed_past_zero = 0u32;
    for structure in HwStructure::ALL {
        for (i, cycle) in probe_cycles(launch_cycles).into_iter().enumerate() {
            let fault = PlannedFault::Uarch(UarchFault {
                cycle,
                structure,
                loc_pick: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1),
                bit: (i as u8 * 7) % 32,
                pattern,
            });
            let slow = faulty_run(bench, &cfg, Variant::TIMED, golden, target, fault);
            let fast = faulty_run_ff(bench, &cfg, golden, &snaps, target, fault);
            let tag = format!(
                "{} launch {target} {structure:?} cycle {cycle}",
                bench.name()
            );
            assert_eq!(fast.outcome, slow.outcome, "{tag}");
            assert_eq!(fast.total_cost, slow.total_cost, "{tag}");
            assert_eq!(fast.applied, slow.applied, "{tag}");
            assert_eq!(fast.corrupted_words, slow.corrupted_words, "{tag}");
            // Slow path simulates everything it charges; fast path never
            // simulates more than it charges.
            assert_eq!(slow.simulated_cost, slow.total_cost, "{tag}");
            assert!(fast.simulated_cost <= fast.total_cost, "{tag}");
            assert!(!slow.converged && slow.resumed_at.is_none(), "{tag}");
            if let Some(at) = fast.resumed_at {
                assert!(at <= cycle, "{tag}: resumed after the fault cycle");
                if at > 0 {
                    resumed_past_zero += 1;
                }
            }
        }
    }
    assert!(
        resumed_past_zero > 0,
        "{}: no trial ever resumed from a mid-launch snapshot — fast-forward inert",
        bench.name()
    );
}

#[test]
fn ff_bit_identical_to_slow_path_va() {
    let b = Va;
    let golden = golden_run(&b, &cfg(), Variant::TIMED);
    assert_ff_matches(&b, 0, &golden);
}

#[test]
fn ff_bit_identical_to_slow_path_scp() {
    let b = Scp;
    let golden = golden_run(&b, &cfg(), Variant::TIMED);
    assert_ff_matches(&b, 0, &golden);
}

#[test]
fn ff_bit_identical_to_slow_path_multi_launch() {
    // LUD interleaves three kernels: faulting the last launch exercises
    // the golden-prefix restore for every launch before it, and faulting
    // the first exercises post-fault boundary convergence.
    let b = Lud;
    let golden = golden_run(&b, &cfg(), Variant::TIMED);
    assert!(golden.records.len() > 1, "LUD should be multi-launch");
    assert_ff_matches(&b, 0, &golden);
    assert_ff_matches(&b, golden.records.len() - 1, &golden);
}

#[test]
fn ff_bit_identical_to_slow_path_stuck_at() {
    // Persistent faults are the riskiest case for fast-forward: the stuck
    // site must be pinned to the same physical location and re-asserted
    // over the same suffix whether or not the prefix was restored from a
    // snapshot. Classification must not depend on the path taken.
    let b = Va;
    let golden = golden_run(&b, &cfg(), Variant::TIMED);
    assert_ff_matches_pattern(&b, 0, &golden, vgpu_sim::FaultPattern::StuckAt1);
    assert_ff_matches_pattern(&b, 0, &golden, vgpu_sim::FaultPattern::StuckAt0);
}

#[test]
fn ff_bit_identical_to_slow_path_multi_bit() {
    // Spatial multi-bit transients: the footprint expansion happens at
    // the fault cycle, which fast-forward never skips past.
    let b = Scp;
    let golden = golden_run(&b, &cfg(), Variant::TIMED);
    assert_ff_matches_pattern(&b, 0, &golden, vgpu_sim::FaultPattern::BurstRow);
    assert_ff_matches_pattern(&b, 0, &golden, vgpu_sim::FaultPattern::WholeEntry);
}

#[test]
fn snapshot_resume_reproduces_golden_suffix_every_benchmark() {
    // One mid-app, mid-launch probe per benchmark: capture an extra
    // snapshot there, resume fault-free, and require the golden suffix
    // (stats, cycle count, device state, final output) bit-for-bit.
    let cfg = cfg();
    for b in all_benchmarks() {
        let golden = golden_run(b.as_ref(), &cfg, Variant::TIMED);
        let ordinal = golden.records.len() / 2;
        let cycle = golden.records[ordinal].stats.cycles * 2 / 3;
        verify_snapshot_resume(b.as_ref(), &cfg, &golden, ordinal, cycle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary (benchmark, launch, cycle): a fault-free resume from a
    /// snapshot captured there reproduces the golden suffix exactly.
    #[test]
    fn snapshot_resume_is_lossless_at_arbitrary_cycles(
        bench_idx in 0usize..11,
        ordinal_pick in 0u64..u64::MAX,
        cycle_pick in 0u64..u64::MAX,
    ) {
        let cfg = cfg();
        let benches = all_benchmarks();
        let b = benches[bench_idx].as_ref();
        let golden = golden_run(b, &cfg, Variant::TIMED);
        let ordinal = (ordinal_pick % golden.records.len() as u64) as usize;
        let cycle = cycle_pick % golden.records[ordinal].stats.cycles.max(1);
        verify_snapshot_resume(b, &cfg, &golden, ordinal, cycle);
    }
}
