//! Property-based tests of the TMR vote: for *any* single-copy corruption
//! pattern the vote repairs the data; for any three-way disagreement it
//! raises the DUE flag.

use kernels::{golden_run, AppAbort, Benchmark, RunCtl, Variant};
use proptest::prelude::*;
use vgpu_arch::{KernelBuilder, MemSpace, Operand};
use vgpu_sim::GpuConfig;

/// Benchmark that writes known data, then applies an arbitrary corruption
/// pattern to the copies of chosen words before voting.
#[derive(Debug, Clone)]
struct Corruptor {
    /// (word index, copy index, xor delta) triples.
    hits: Vec<(u32, u32, u32)>,
}

const WORDS: u32 = 32;

impl Benchmark for Corruptor {
    fn name(&self) -> &'static str {
        "Corruptor"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let bufs = ctl.alloc(&[WORDS * 4]);
        let out = bufs[0];
        ctl.set_outputs(&[(out, WORDS)]);
        // Kernel: out[gid] = gid + 100 (per copy).
        let mut a = KernelBuilder::new("fill");
        let roff = kernels::tmr::prologue(&mut a);
        let (gid, tmp, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.linear_tid(gid, tmp);
        kernels::tmr::load_ptr(&mut a, addr, roff, 0);
        a.iscadd(addr, gid, Operand::Reg(addr), 2);
        a.iadd(v, gid, 100u32);
        a.st(MemSpace::Global, addr, 0, v);
        let k = a.build().unwrap();
        ctl.launch(0, &k, 1, WORDS, vec![out])?;
        if ctl.hardened() {
            let stride = ctl.tmr_stride();
            for &(word, copy, delta) in &self.hits {
                // The pristine value of every copy is word + 100; xor the
                // chosen copy only.
                let addr = out + word * 4 + copy * stride;
                ctl.write_u32_single(addr, (word + 100) ^ delta);
            }
        }
        ctl.vote(0, &[(out, WORDS)])?;
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corrupting at most one copy of each word is always repaired.
    #[test]
    fn single_copy_corruption_is_always_repaired(
        words in prop::collection::btree_set(0u32..WORDS, 1..8),
        copy in 0u32..3,
        delta in 1u32..=u32::MAX,
    ) {
        let hits = words.iter().map(|&w| (w, copy, delta)).collect();
        let b = Corruptor { hits };
        let g = golden_run(&b, &GpuConfig::default(), Variant::TIMED_TMR);
        for i in 0..WORDS {
            prop_assert_eq!(g.output[i as usize], i + 100);
        }
    }

    /// Distinct corruption of all three copies of a word raises the DUE
    /// flag (VoteFailed), for any pair of distinct nonzero deltas.
    #[test]
    fn three_way_disagreement_is_a_due(
        word in 0u32..WORDS,
        d1 in 1u32..1000,
        d2 in 1001u32..2000,
    ) {
        let b = Corruptor { hits: vec![(word, 1, d1), (word, 2, d2)] };
        // copy 0 pristine, copies 1/2 corrupted differently → all differ.
        let result = std::panic::catch_unwind(|| {
            golden_run(&b, &GpuConfig::default(), Variant::TIMED_TMR)
        });
        prop_assert!(result.is_err(), "vote must fail");
    }

    /// Two copies corrupted with the SAME delta outvote the pristine one —
    /// the voted value is the (identically) corrupted one. This is the
    /// well-known TMR limitation, worth pinning as a semantic.
    #[test]
    fn matching_double_corruption_wins_the_vote(
        word in 0u32..WORDS,
        delta in 1u32..=u32::MAX,
    ) {
        let b = Corruptor { hits: vec![(word, 0, delta), (word, 2, delta)] };
        let g = golden_run(&b, &GpuConfig::default(), Variant::TIMED_TMR);
        prop_assert_eq!(g.output[word as usize], (word + 100) ^ delta);
        for i in (0..WORDS).filter(|&i| i != word) {
            prop_assert_eq!(g.output[i as usize], i + 100);
        }
    }
}
