//! Thread-level Triple Modular Redundancy (Figure 6 of the paper).
//!
//! The transform has three parts:
//!
//! 1. **Pre-processing** — the harness triplicates every device buffer at a
//!    uniform region stride and writes inputs to all three copies
//!    ([`crate::harness::RunCtl::alloc`] / `write_u32`).
//! 2. **Kernel execution** — protected kernels launch with `grid_y == 3`;
//!    the [`prologue`] emitted at the top of every benchmark kernel
//!    computes `roff = ctaid.y * stride` (parameter word 0 holds the
//!    stride, 0 for unhardened launches) and [`load_ptr`] rebases every
//!    buffer pointer by `roff`, so each redundant copy of the grid works on
//!    its own copy of the data.
//! 3. **Post-processing** — after each protected kernel the harness
//!    launches the [`vote_kernel`] over that kernel's output buffers:
//!    majority value wins and is written back to all three copies
//!    (TMR with repair); three mutually different copies raise the vote
//!    flag, which the harness reports as a DUE — exactly the red arrow of
//!    the paper's Figure 6.
//!
//! The vote runs **on the GPU** and is therefore itself subject to
//! microarchitecture faults — this is what lets the cross-layer AVF
//! analysis observe residual SDCs that the software-level SVF analysis
//! declares eliminated (Insight #5).

use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, Reg, SpecialReg};

/// Threads per CTA of the vote kernel.
pub const VOTE_BLOCK: u32 = 128;

/// Emit the TMR prologue: returns the region-offset register
/// `roff = ctaid.y * params[0]`. Call first, before any [`load_ptr`].
pub fn prologue(a: &mut KernelBuilder) -> Reg {
    let roff = a.reg();
    a.s2r(roff, SpecialReg::CtaIdY);
    a.imul(roff, roff, Operand::Const(0));
    roff
}

/// Load benchmark parameter `idx` (a device pointer) into `d`, rebased to
/// this copy's region. Benchmark parameter `idx` lives in constant-bank
/// word `idx + 1` (word 0 is the TMR stride).
pub fn load_ptr(a: &mut KernelBuilder, d: Reg, roff: Reg, idx: u16) {
    a.mov(d, Operand::Const(idx + 1));
    a.iadd(d, d, roff);
}

/// Constant-bank operand for scalar benchmark parameter `idx` (shifted past
/// the stride word).
pub fn scalar(idx: u16) -> Operand {
    Operand::Const(idx + 1)
}

/// Build the majority-vote kernel.
///
/// Benchmark-level parameters (after the stride word):
/// `0` — copy-0 base address of the buffer to vote, `1` — word count,
/// `2` — address of the vote-failure flag word.
///
/// Each thread votes one word across the three copies, writes the winner
/// back to all copies, and raises the flag when all three disagree.
pub fn vote_kernel() -> Kernel {
    let mut a = KernelBuilder::new("tmr_vote");
    let (gid, tmp) = (a.reg(), a.reg());
    let (a0, a1, a2) = (a.reg(), a.reg(), a.reg());
    let (v0, v1, v2, m) = (a.reg(), a.reg(), a.reg(), a.reg());
    let (p_in, p0, p1, p_fail) = (a.pred(), a.pred(), a.pred(), a.pred());
    a.linear_tid(gid, tmp);
    a.isetp(p_in, gid, scalar(1), CmpOp::Lt, true); // gid < words
    a.if_then(p_in, false, |a| {
        // a0 = base + 4*gid; a1/a2 at +stride/+2*stride (stride = c[0]).
        a.mov(a0, scalar(0));
        a.iscadd(a0, gid, Operand::Reg(a0), 2);
        a.mov(tmp, Operand::Const(0));
        a.iadd(a1, a0, Operand::Reg(tmp));
        a.iadd(a2, a1, Operand::Reg(tmp));
        a.ld(v0, MemSpace::Global, a0, 0);
        a.ld(v1, MemSpace::Global, a1, 0);
        a.ld(v2, MemSpace::Global, a2, 0);
        // p0 = (v0 == v1) | (v0 == v2): v0 is a majority value.
        a.isetp(p0, v0, Operand::Reg(v1), CmpOp::Eq, false);
        a.isetp(p1, v0, Operand::Reg(v2), CmpOp::Eq, false);
        a.psetp(p0, p0, p1, vgpu_arch::BoolOp::Or, false, false);
        // p1 = (v1 == v2): v1 is the majority when p0 fails.
        a.isetp(p1, v1, Operand::Reg(v2), CmpOp::Eq, false);
        // m = p1 ? v1 : v0; m = p0 ? v0 : m.
        a.sel(m, v1, Operand::Reg(v0), p1, false);
        a.sel(m, v0, Operand::Reg(m), p0, false);
        // All three differ: raise the flag (any lane may win the race —
        // they all write 1).
        a.psetp(p_fail, p0, p1, vgpu_arch::BoolOp::Or, false, false);
        a.predicated(p_fail, true, |a| {
            a.mov(tmp, scalar(2));
            let one = a.reg();
            a.mov(one, 1u32);
            a.st(MemSpace::Global, tmp, 0, one);
        });
        // Repair: write the voted value back to every copy.
        a.st(MemSpace::Global, a0, 0, m);
        a.st(MemSpace::Global, a1, 0, m);
        a.st(MemSpace::Global, a2, 0, m);
    });
    a.build().expect("vote kernel is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_kernel_builds() {
        let k = vote_kernel();
        assert_eq!(k.name, "tmr_vote");
        assert!(k.num_regs >= 9);
        assert_eq!(k.smem_bytes, 0);
    }

    #[test]
    fn prologue_uses_param_zero() {
        let mut a = KernelBuilder::new("t");
        let roff = prologue(&mut a);
        load_ptr(&mut a, Reg(5), roff, 0);
        let k = a.build().unwrap();
        // prologue: S2R + IMUL c[0]; load_ptr: MOV c[1] + IADD.
        assert!(k.disassemble().contains("c[0x0][0x0]"));
        assert!(k.disassemble().contains("c[0x0][0x4]"));
    }

    #[test]
    fn scalar_shifts_past_stride_word() {
        assert_eq!(scalar(0), Operand::Const(1));
        assert_eq!(scalar(7), Operand::Const(8));
    }
}
