//! The application harness: drives multi-kernel GPU applications through
//! golden and fault-injection runs, with optional thread-level TMR
//! hardening (Figure 6 of the paper).
//!
//! A [`Benchmark`] implementation expresses its host program against
//! [`RunCtl`]: it allocates device buffers once, initializes inputs, and
//! interleaves kernel launches with host-side glue. The same host program
//! then serves four purposes:
//!
//! * **golden** runs record per-launch statistics and the final output;
//! * **faulty** runs inject one fault into one chosen launch and classify
//!   the outcome against the golden output;
//! * **hardened** variants transparently triplicate buffers, launch with
//!   `grid_y == 3`, and majority-vote after every protected kernel;
//! * **profiling** runs collect the Figure-3 utilization metrics.

use std::cell::RefCell;
use std::sync::Arc;

use vgpu_arch::{Kernel, LaunchConfig};
use vgpu_sim::due::LaunchAbort;
use vgpu_sim::{
    ArenaPlanner, Budget, ConvergeWith, DeviceSnapshot, FaultPlan, Gpu, GpuConfig, Mode,
    SharedSink, SimSnapshot, Stats, SwFault, SwInjector, UarchFault, UarchInjector,
};

use crate::tmr;

thread_local! {
    /// Per-thread GPU scratch pool: `faulty_run` / `faulty_run_ff` park
    /// their `Gpu` here on exit and `RunCtl::alloc` revives it (zeroed in
    /// place) when the next trial on this thread wants an identical
    /// configuration and arena layout. Under rayon this makes the hot
    /// campaign loop reuse one arena per worker instead of reallocating
    /// megabytes per trial.
    static GPU_SCRATCH: RefCell<Option<Gpu>> = const { RefCell::new(None) };
}

/// Why an application run did not produce an output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppAbort {
    /// A kernel crashed or timed out.
    Launch(LaunchAbort),
    /// TMR majority voting found three mutually different copies
    /// (classified as DUE, per the paper's Figure 6 workflow).
    VoteFailed,
}

impl From<LaunchAbort> for AppAbort {
    fn from(l: LaunchAbort) -> Self {
        AppAbort::Launch(l)
    }
}

/// Fault-effect classification (Section II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    Masked,
    Sdc,
    Timeout,
    Due,
}

/// Result of one faulty application run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    pub outcome: Outcome,
    /// Total timed cycles (or functional instructions) of the run, used by
    /// the Figure-11 control-path proxy: a masked run whose cycle count
    /// differs from golden had its control path disturbed. Under
    /// fast-forward this still counts *architectural* cycles — skipped
    /// prefixes and spliced suffixes are credited at their golden cost —
    /// so it is bit-identical to the slow path's value.
    pub total_cost: u64,
    /// Cycles (or instructions) actually simulated: `total_cost` minus
    /// everything fast-forward skipped or spliced. Equal to `total_cost`
    /// on the slow path. A scheduling statistic only — anything that
    /// feeds classification (including the campaign watchdog's cycle
    /// budget) must use `total_cost`, which both paths agree on.
    pub simulated_cost: u64,
    /// Cycle the injected launch was resumed at, if fast-forward used a
    /// mid-launch snapshot.
    pub resumed_at: Option<u64>,
    /// Whether the disturbed machine provably re-converged to golden
    /// (in-launch splice or launch-boundary match) and the remaining
    /// execution was credited instead of simulated.
    pub converged: bool,
    /// Whether the planned fault was actually applied (a fault aimed at an
    /// empty structure or past the end of execution never fires).
    pub applied: bool,
    /// For SDC outcomes: how many output words differ from golden — the
    /// error-propagation magnitude (a single SIMT fault frequently fans
    /// out into many corrupted outputs, cf. the paper's introduction).
    pub corrupted_words: u32,
}

/// Record of one launch during a golden run.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Index into [`Benchmark::kernels`]. Vote launches carry the index of
    /// the kernel they protect.
    pub kernel_idx: usize,
    pub is_vote: bool,
    pub stats: Stats,
    /// Threads launched (all TMR copies included).
    pub threads: u64,
    /// CTAs launched.
    pub ctas: u64,
    /// Architectural registers per thread.
    pub num_regs: u8,
    /// Static shared memory per CTA in bytes.
    pub smem_bytes: u32,
}

/// Everything learned from a golden run.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    pub records: Vec<LaunchRecord>,
    /// Final output words (copy 0 for hardened apps).
    pub output: Vec<u32>,
    /// Total cycles (timed) or thread instructions (functional).
    pub total_cost: u64,
}

impl GoldenRun {
    /// Aggregate statistics over the launches attributed to `kernel_idx`.
    pub fn kernel_stats(&self, kernel_idx: usize) -> Stats {
        let mut s = Stats::default();
        for r in self.records.iter().filter(|r| r.kernel_idx == kernel_idx) {
            s.add(&r.stats);
        }
        s
    }

    /// Aggregate statistics over the whole application.
    pub fn app_stats(&self) -> Stats {
        let mut s = Stats::default();
        for r in &self.records {
            s.add(&r.stats);
        }
        s
    }
}

/// The fault to inject into one specific launch of the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedFault {
    Uarch(UarchFault),
    Sw(SwFault),
}

/// Golden-prefix snapshots of one application, captured by
/// [`golden_run_snapshots`] and shared (via `Arc`) across every
/// fast-forward trial of a campaign. Always timed and unhardened, to
/// match the microarchitectural campaigns that consume them.
#[derive(Debug, Clone)]
pub struct AppSnapshots {
    /// `boundaries[i]`: device state immediately after golden launch `i`
    /// retired (before any host glue that follows it).
    pub boundaries: Vec<DeviceSnapshot>,
    /// `mids[i]`: mid-launch snapshots of launch `i`, ascending by cycle;
    /// always includes cycle 0, so a resume point exists for every fault.
    pub mids: Vec<Vec<SimSnapshot>>,
    /// Total approximate heap footprint (for the `snapshot_bytes` gauge).
    pub bytes: u64,
}

impl AppSnapshots {
    /// Total number of snapshots held (mid-launch + boundary).
    pub fn count(&self) -> usize {
        self.boundaries.len() + self.mids.iter().map(Vec::len).sum::<usize>()
    }
}

/// Fast-forward state threaded through one faulty run.
struct FfCtx {
    snaps: Arc<AppSnapshots>,
    /// Golden per-launch statistics, indexed by launch ordinal (prefix
    /// credit + the splice reference of the convergence exit).
    golden_stats: Vec<Stats>,
    /// The machine has provably re-converged to golden; every remaining
    /// launch is credited instead of simulated.
    converged: bool,
    /// Cycle the injected launch resumed at.
    resumed_at: Option<u64>,
    /// Deferred boundary restore: the ordinal of the golden boundary the
    /// device should be in. Consecutive skipped launches only bump this;
    /// the (full-device, O(mem)) restore is materialized once, at the
    /// next real device access — simulation, host read/write, or output
    /// classification.
    pending_restore: Option<usize>,
}

/// What a [`RunCtl`] is doing.
enum CtlMode {
    Golden,
    /// Instrumented golden pass capturing [`AppSnapshots`]; asserts
    /// bit-identity with the reference golden run as it goes.
    Capture {
        /// Snapshots per launch (`~k`, evenly spaced over the launch).
        k: usize,
        /// Reference golden per-launch statistics.
        golden_stats: Vec<Stats>,
        boundaries: Vec<DeviceSnapshot>,
        mids: Vec<Vec<SimSnapshot>>,
        /// Test hook: `(ordinal, cycle)` — capture an extra snapshot of
        /// that launch at that cycle, immediately resume from it with no
        /// fault, and assert the suffix is reproduced bit-identically.
        probe: Option<(usize, u64)>,
    },
    Faulty {
        target_launch: usize,
        fault: PlannedFault,
        /// Per-launch budgets from the golden run (indexed by ordinal).
        budgets: Vec<Budget>,
        /// Whole-application budget backstop.
        app_budget: Budget,
        applied: bool,
        /// `Some` enables golden-prefix fast-forward + convergence exit.
        ff: Option<FfCtx>,
    },
}

/// Controller handed to [`Benchmark::run`]: owns the GPU, performs
/// (optionally triplicated) allocation and host access, launches kernels,
/// and injects the planned fault at the right launch.
pub struct RunCtl {
    pub cfg: GpuConfig,
    mode_sim: Mode,
    hardened: bool,
    gpu: Option<Gpu>,
    tmr_stride: u32,
    flag_addr: u32,
    vote_kernel: Kernel,
    launch_idx: usize,
    records: Vec<LaunchRecord>,
    ctl: CtlMode,
    total_cost: u64,
    /// Cycles/instructions actually simulated (excludes fast-forwarded
    /// prefixes and spliced suffixes); equals `total_cost` off the fast
    /// path.
    simulated_cost: u64,
    /// Try to revive the thread-local scratch [`Gpu`] in `alloc` instead
    /// of building a fresh one (campaign hot path only).
    use_scratch: bool,
    outputs: Vec<(u32, u32)>,
    /// Attach an ACE lifetime tracker at `alloc` time (golden runs only).
    ace: bool,
    /// Attach a probe sink at `alloc` time (traced golden runs only): the
    /// engine's access stream is mirrored into it, and host-side reads are
    /// recorded as `HostRead` probe events.
    trace: Option<SharedSink>,
    /// Cumulative tracker totals after the previous launch.
    ace_prev: [u64; 5],
    /// Per-launch ACE word-cycle deltas, aligned with `records`.
    ace_per_launch: Vec<[u64; 5]>,
}

impl RunCtl {
    fn new(cfg: GpuConfig, mode_sim: Mode, hardened: bool, ctl: CtlMode) -> Self {
        RunCtl {
            cfg,
            mode_sim,
            hardened,
            gpu: None,
            tmr_stride: 0,
            flag_addr: 0,
            vote_kernel: tmr::vote_kernel(),
            launch_idx: 0,
            records: Vec::new(),
            ctl,
            total_cost: 0,
            simulated_cost: 0,
            use_scratch: false,
            outputs: Vec::new(),
            ace: false,
            trace: None,
            ace_prev: [0; 5],
            ace_per_launch: Vec::new(),
        }
    }

    /// Allocate all device buffers the application needs, in one shot.
    /// Returns the copy-0 base address of each buffer. In hardened mode the
    /// whole set is triplicated at a uniform stride and a vote-flag word is
    /// appended.
    pub fn alloc(&mut self, sizes: &[u32]) -> Vec<u32> {
        assert!(
            self.gpu.is_none(),
            "alloc must be called exactly once, first"
        );
        let mut planner = ArenaPlanner::new();
        let addrs: Vec<u32> = sizes.iter().map(|&s| planner.alloc(s)).collect();
        if self.hardened {
            let base0 = addrs[0];
            // Copies 1 and 2: repeat the same allocation sequence; the
            // planner is deterministic, so internal offsets are identical.
            let first1 = planner.alloc(sizes[0]);
            for &s in &sizes[1..] {
                planner.alloc(s);
            }
            self.tmr_stride = first1 - base0;
            let first2 = planner.alloc(sizes[0]);
            for &s in &sizes[1..] {
                planner.alloc(s);
            }
            assert_eq!(first2 - first1, self.tmr_stride, "uniform TMR stride");
            self.flag_addr = planner.alloc(4);
        }
        let scratch = if self.use_scratch && !self.ace && self.trace.is_none() {
            GPU_SCRATCH.take().filter(|g| {
                g.mode() == self.mode_sim && g.cfg == self.cfg && planner.builds_layout_of(g.mem())
            })
        } else {
            None
        };
        let mut gpu = match scratch {
            Some(mut g) => {
                // Identical configuration and arena layout: zero in place
                // instead of reallocating (hot campaign loop).
                g.reset_in_place();
                g
            }
            None => Gpu::new(self.cfg.clone(), planner.build(), self.mode_sim),
        };
        if let Some(sink) = self.trace.take() {
            assert!(!self.ace, "trace recording and --ace are exclusive");
            gpu.attach_trace_sink(sink);
        } else if self.ace {
            gpu.attach_tracker();
        }
        self.gpu = Some(gpu);
        addrs
    }

    /// Park this run's `Gpu` in the thread-local scratch pool for the next
    /// trial on this thread.
    fn stash_scratch(&mut self) {
        if let Some(g) = self.gpu.take() {
            GPU_SCRATCH.set(Some(g));
        }
    }

    /// Materialize a deferred fast-forward boundary restore. Must run
    /// before anything observes device state — host reads and writes,
    /// real simulation, output classification.
    fn flush_ff(&mut self) {
        let CtlMode::Faulty { ff: Some(ffc), .. } = &mut self.ctl else {
            return;
        };
        if let Some(ord) = ffc.pending_restore.take() {
            let gpu = self
                .gpu
                .as_mut()
                .expect("alloc() must run before device access");
            gpu.restore_device(&ffc.snaps.boundaries[ord]);
        }
    }

    fn gpu_mut(&mut self) -> &mut Gpu {
        self.gpu
            .as_mut()
            .expect("alloc() must run before device access")
    }

    /// True when running the TMR-hardened variant.
    pub fn hardened(&self) -> bool {
        self.hardened
    }

    /// Region stride between TMR copies (0 when unhardened). Diagnostic.
    pub fn tmr_stride(&self) -> u32 {
        self.tmr_stride
    }

    /// Host write to a *single* copy, bypassing TMR replication — only for
    /// tests and diagnostics that need to desynchronise redundant copies.
    pub fn write_u32_single(&mut self, addr: u32, v: u32) {
        self.flush_ff();
        self.gpu_mut().host_write_u32(addr, v);
    }

    /// Host write, replicated to every TMR copy.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.flush_ff();
        let stride = self.tmr_stride;
        let copies = if self.hardened { 3 } else { 1 };
        let gpu = self.gpu_mut();
        for c in 0..copies {
            gpu.host_write_u32(addr + c * stride, v);
        }
    }

    pub fn write_f32(&mut self, addr: u32, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Host read (copy 0 — the voted copy in hardened mode).
    pub fn read_u32(&mut self, addr: u32) -> u32 {
        self.flush_ff();
        let gpu = self.gpu_mut();
        gpu.probe_host_read(addr);
        gpu.host_read_u32(addr)
    }

    pub fn read_f32(&mut self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Register the application's final output buffers (copy-0 address,
    /// word count). Must be called before `finish`.
    pub fn set_outputs(&mut self, outputs: &[(u32, u32)]) {
        self.outputs = outputs.to_vec();
    }

    /// Launch `kernel` as benchmark kernel `kernel_idx` with `grid_x` CTAs
    /// of `block_x` threads and the given (benchmark-level) parameters.
    ///
    /// The TMR stride is prepended as parameter word 0 — kernels built with
    /// [`tmr::prologue`] use it to rebase their buffer pointers per copy —
    /// and hardened launches run with `grid_y == 3`.
    pub fn launch(
        &mut self,
        kernel_idx: usize,
        kernel: &Kernel,
        grid_x: u32,
        block_x: u32,
        params: Vec<u32>,
    ) -> Result<(), AppAbort> {
        let mut full_params = Vec::with_capacity(params.len() + 1);
        full_params.push(self.tmr_stride);
        full_params.extend(params);
        let lc = LaunchConfig {
            grid_x,
            grid_y: if self.hardened { 3 } else { 1 },
            block_x,
            params: full_params,
        };
        self.do_launch(kernel_idx, false, kernel, lc)
    }

    /// In hardened mode, majority-vote (and repair) the listed buffers
    /// produced by `kernel_idx`; a vote with three mutually different
    /// copies aborts the application as [`AppAbort::VoteFailed`].
    /// No-op when unhardened.
    pub fn vote(&mut self, kernel_idx: usize, bufs: &[(u32, u32)]) -> Result<(), AppAbort> {
        if !self.hardened {
            return Ok(());
        }
        for &(addr, words) in bufs {
            let vk = self.vote_kernel.clone();
            let lc = LaunchConfig {
                grid_x: words.div_ceil(tmr::VOTE_BLOCK),
                grid_y: 1,
                block_x: tmr::VOTE_BLOCK,
                params: vec![self.tmr_stride, addr, words, self.flag_addr],
            };
            self.do_launch(kernel_idx, true, &vk, lc)?;
            if self.read_u32(self.flag_addr) != 0 {
                return Err(AppAbort::VoteFailed);
            }
        }
        Ok(())
    }

    fn do_launch(
        &mut self,
        kernel_idx: usize,
        is_vote: bool,
        kernel: &Kernel,
        lc: LaunchConfig,
    ) -> Result<(), AppAbort> {
        let ordinal = self.launch_idx;
        self.launch_idx += 1;
        match &mut self.ctl {
            CtlMode::Golden => {
                let gpu = self.gpu.as_mut().expect("alloc before launch");
                let stats = gpu.launch(kernel, &lc, FaultPlan::None, &Budget::unlimited())?;
                let cost = if gpu.mode() == Mode::Timed {
                    stats.cycles
                } else {
                    stats.thread_instrs
                };
                self.total_cost += cost;
                self.simulated_cost += cost;
                let ace_tot = gpu.tracker_totals();
                self.records.push(LaunchRecord {
                    kernel_idx,
                    is_vote,
                    stats,
                    threads: lc.num_threads(),
                    ctas: lc.num_ctas(),
                    num_regs: kernel.num_regs,
                    smem_bytes: kernel.smem_bytes,
                });
                if let Some(tot) = ace_tot {
                    let mut delta = [0u64; 5];
                    for (d, (now, prev)) in delta.iter_mut().zip(tot.iter().zip(&self.ace_prev)) {
                        *d = now - prev;
                    }
                    self.ace_prev = tot;
                    self.ace_per_launch.push(delta);
                }
                Ok(())
            }
            CtlMode::Capture {
                k,
                golden_stats,
                boundaries,
                mids,
                probe,
            } => {
                let gpu = self.gpu.as_mut().expect("alloc before launch");
                let expect = golden_stats.get(ordinal).copied().unwrap_or_else(|| {
                    panic!("capture pass launched more kernels than the golden run")
                });
                let mut capture_at = snapshot_cycles(expect.cycles, *k);
                let probe_cycle = match probe {
                    Some((po, pc)) if *po == ordinal => {
                        let pc = (*pc).min(expect.cycles.saturating_sub(1));
                        if let Err(i) = capture_at.binary_search(&pc) {
                            capture_at.insert(i, pc);
                        }
                        Some(pc)
                    }
                    _ => None,
                };
                let (stats, snaps) = gpu
                    .launch_instrumented(kernel, &lc, &Budget::unlimited(), &capture_at)
                    .unwrap_or_else(|e| panic!("instrumented golden pass aborted: {e:?}"));
                assert_eq!(
                    stats, expect,
                    "instrumented pass diverged from golden at launch {ordinal}"
                );
                let boundary = gpu.device_snapshot();
                if let Some(pc) = probe_cycle {
                    // Test hook: resume from the probe snapshot with no
                    // fault; the suffix must be reproduced bit-for-bit in
                    // statistics, cycle count, and device state.
                    let snap = snaps
                        .iter()
                        .find(|s| s.cycle() == pc)
                        .expect("probe snapshot captured");
                    let r = gpu
                        .resume_from(snap, kernel, &lc, None, &Budget::unlimited(), None)
                        .unwrap_or_else(|e| panic!("fault-free resume aborted: {e:?}"));
                    assert_eq!(r.stats, expect, "resume must reproduce golden stats");
                    assert_eq!(r.resumed_at, pc);
                    assert_eq!(r.simulated_cycles, expect.cycles - pc);
                    assert!(r.converged_at.is_none());
                    assert_eq!(
                        gpu.device_snapshot(),
                        boundary,
                        "resume must reproduce the post-launch device state verbatim"
                    );
                }
                self.total_cost += stats.cycles;
                self.simulated_cost += stats.cycles;
                mids.push(snaps);
                boundaries.push(boundary);
                Ok(())
            }
            CtlMode::Faulty {
                target_launch,
                fault,
                budgets,
                app_budget,
                applied,
                ff,
            } => {
                let mut budget = budgets.get(ordinal).copied().unwrap_or(Budget {
                    cycles: 1 << 22,
                    instrs: 1 << 26,
                });
                // Whole-app backstop: never exceed the remaining budget.
                budget.cycles = budget
                    .cycles
                    .min(app_budget.cycles.saturating_sub(self.total_cost));
                budget.instrs = budget
                    .instrs
                    .min(app_budget.instrs.saturating_sub(self.total_cost));
                if budget.cycles == 0 || budget.instrs == 0 {
                    return Err(AppAbort::Launch(LaunchAbort::Timeout));
                }
                let fault_here = ordinal == *target_launch;
                let gpu = self.gpu.as_mut().expect("alloc before launch");

                // Fast-forward: a launch before the fault, or after the
                // machine provably re-converged, executes bit-identically
                // to golden — defer a restore to its golden boundary state
                // and credit the golden cost instead of simulating. The
                // deferral makes a run of skipped launches cost one
                // restore instead of one per launch.
                if let Some(ffc) = ff.as_mut() {
                    if !fault_here && (ordinal < *target_launch || ffc.converged) {
                        if let Some(gstats) = ffc
                            .golden_stats
                            .get(ordinal)
                            .filter(|_| ordinal < ffc.snaps.boundaries.len())
                        {
                            // The slow path would simulate exactly the
                            // golden launch; it times out iff the golden
                            // cycle count exceeds the budget. Keep that
                            // equivalence exact.
                            if gstats.cycles > budget.cycles {
                                return Err(AppAbort::Launch(LaunchAbort::Timeout));
                            }
                            ffc.pending_restore = Some(ordinal);
                            self.total_cost += gstats.cycles;
                            return Ok(());
                        }
                        // Launch the golden pass never saw (impossible for
                        // a deterministic benchmark): simulate it.
                    }
                    // This launch simulates for real: materialize any
                    // boundary state a skipped predecessor left pending.
                    if let Some(ord) = ffc.pending_restore.take() {
                        gpu.restore_device(&ffc.snaps.boundaries[ord]);
                    }
                }

                let result = if fault_here {
                    match fault {
                        PlannedFault::Uarch(f) => {
                            let mut inj = UarchInjector::new(*f);
                            let ff_snap = ff.as_ref().map(|ffc| Arc::clone(&ffc.snaps));
                            let r = match ff_snap.as_ref().and_then(|s| s.mids.get(ordinal)) {
                                Some(mids) if !mids.is_empty() => {
                                    // Resume from the nearest golden
                                    // snapshot at-or-before the fault
                                    // cycle, with the convergence exit
                                    // armed against the remaining golden
                                    // snapshots of this launch.
                                    let snaps = ff_snap.as_ref().expect("mids imply snaps");
                                    let snap = mids
                                        .iter()
                                        .rev()
                                        .find(|s| s.cycle() <= f.cycle)
                                        .expect("cycle-0 snapshot always exists");
                                    let ffc = ff.as_mut().expect("ff_snap implies ff");
                                    let cv = ConvergeWith {
                                        snaps: mids,
                                        end: &snaps.boundaries[ordinal],
                                        end_stats: ffc.golden_stats[ordinal],
                                    };
                                    match gpu.resume_from(
                                        snap,
                                        kernel,
                                        &lc,
                                        Some(&mut inj),
                                        &budget,
                                        Some(cv),
                                    ) {
                                        Ok(out) => {
                                            ffc.resumed_at = Some(out.resumed_at);
                                            if out.converged_at.is_some() {
                                                ffc.converged = true;
                                            }
                                            // Skipped prefix + spliced
                                            // suffix are not simulated.
                                            self.simulated_cost += out.simulated_cycles;
                                            self.total_cost += out.stats.cycles;
                                            *applied = inj.applied && inj.population > 0;
                                            self.post_fault_converge_check(ordinal);
                                            return Ok(());
                                        }
                                        Err(e) => Err(e),
                                    }
                                }
                                _ => gpu.launch(kernel, &lc, FaultPlan::Uarch(&mut inj), &budget),
                            };
                            *applied = inj.applied && inj.population > 0;
                            r
                        }
                        PlannedFault::Sw(f) => {
                            let mut inj = SwInjector::new(*f);
                            let r = gpu.launch(kernel, &lc, FaultPlan::Sw(&mut inj), &budget);
                            *applied = inj.applied;
                            r
                        }
                    }
                } else {
                    gpu.launch(kernel, &lc, FaultPlan::None, &budget)
                };
                let stats = result?;
                let cost = if gpu.mode() == Mode::Timed {
                    stats.cycles
                } else {
                    stats.thread_instrs
                };
                self.total_cost += cost;
                self.simulated_cost += cost;
                // After the fault, a launch that retires with device state
                // identical to golden makes every later launch
                // bit-identical too — flag it so they are credited.
                if ordinal >= *target_launch {
                    self.post_fault_converge_check(ordinal);
                }
                Ok(())
            }
        }
    }

    /// Launch-boundary convergence check (fast-forward runs only): if the
    /// device state equals the golden post-launch snapshot, the rest of
    /// the application is provably bit-identical to golden.
    fn post_fault_converge_check(&mut self, ordinal: usize) {
        let CtlMode::Faulty { ff: Some(ffc), .. } = &mut self.ctl else {
            return;
        };
        if ffc.converged {
            return;
        }
        let gpu = self.gpu.as_ref().expect("alloc before launch");
        if let Some(b) = ffc.snaps.boundaries.get(ordinal) {
            if gpu.device_converged(b) {
                ffc.converged = true;
            }
        }
    }

    fn snapshot_outputs(&mut self) -> Vec<u32> {
        self.flush_ff();
        let outputs = self.outputs.clone();
        let gpu = self.gpu_mut();
        let mut out = Vec::new();
        for &(addr, words) in &outputs {
            for i in 0..words {
                gpu.probe_host_read(addr + i * 4);
            }
            out.extend(gpu.host_read_block(addr, words));
        }
        out
    }
}

/// A GPU application: the 11 benchmarks implement this.
pub trait Benchmark: Sync {
    /// Application name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Kernel display names, e.g. `["K1", "K2"]`.
    fn kernels(&self) -> &'static [&'static str];

    /// The whole host program: allocate, initialize, launch, glue.
    /// All device interaction must go through `ctl`. Host-side loops must
    /// be iteration-capped so corrupted device data cannot hang the host.
    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort>;
}

/// Execution variant selector for [`golden_run`] / [`faulty_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    pub mode: Mode,
    pub hardened: bool,
}

impl Variant {
    pub const TIMED: Variant = Variant {
        mode: Mode::Timed,
        hardened: false,
    };
    pub const FUNCTIONAL: Variant = Variant {
        mode: Mode::Functional,
        hardened: false,
    };
    pub const TIMED_TMR: Variant = Variant {
        mode: Mode::Timed,
        hardened: true,
    };
    pub const FUNCTIONAL_TMR: Variant = Variant {
        mode: Mode::Functional,
        hardened: true,
    };
}

/// Run `bench` fault-free, recording per-launch statistics and the output.
///
/// # Panics
/// Panics if the fault-free application aborts — that is a benchmark bug,
/// not a measurable outcome.
pub fn golden_run(bench: &dyn Benchmark, cfg: &GpuConfig, variant: Variant) -> GoldenRun {
    let mut ctl = RunCtl::new(cfg.clone(), variant.mode, variant.hardened, CtlMode::Golden);
    bench
        .run(&mut ctl)
        .unwrap_or_else(|e| panic!("golden run of {} aborted: {e:?}", bench.name()));
    assert!(
        !ctl.outputs.is_empty(),
        "{} registered no outputs",
        bench.name()
    );
    GoldenRun {
        output: ctl.snapshot_outputs(),
        records: ctl.records,
        total_cost: ctl.total_cost,
    }
}

/// A golden run instrumented with the ACE lifetime tracker
/// (`vgpu_sim::lifetime`). Always timed and unhardened, to match the
/// microarchitectural injection campaigns it screens for.
#[derive(Debug, Clone)]
pub struct AceGoldenRun {
    pub golden: GoldenRun,
    /// Per-launch ACE word-cycle deltas (`HwStructure::ALL` order), one
    /// entry per `golden.records` element. L2 intervals still open when a
    /// launch retires are only counted once closed — they surface either
    /// in a later launch's delta or in the final residual.
    pub per_launch: Vec<[u64; 5]>,
    /// Final per-structure ACE word-cycle totals, including every L2
    /// interval closed at end of application (dirty lines live, clean
    /// lines dead).
    pub totals: [u64; 5],
    /// Lifetime events recorded (tracker work volume, for `obs`).
    pub events: u64,
}

impl AceGoldenRun {
    /// L2 word-cycles closed only at end-of-application (not attributed
    /// to any single launch).
    pub fn l2_residual(&self) -> u64 {
        let attributed: u64 = self.per_launch.iter().map(|d| d[4]).sum();
        self.totals[4] - attributed
    }
}

/// Run `bench` fault-free on the timed engine with ACE lifetime tracking
/// attached, recording per-structure ACE word-cycle totals alongside the
/// usual golden statistics.
///
/// # Panics
/// Panics if the fault-free application aborts (a benchmark bug).
pub fn golden_run_ace(bench: &dyn Benchmark, cfg: &GpuConfig) -> AceGoldenRun {
    let mut ctl = RunCtl::new(cfg.clone(), Mode::Timed, false, CtlMode::Golden);
    ctl.ace = true;
    bench
        .run(&mut ctl)
        .unwrap_or_else(|e| panic!("ACE golden run of {} aborted: {e:?}", bench.name()));
    assert!(
        !ctl.outputs.is_empty(),
        "{} registered no outputs",
        bench.name()
    );
    let output = ctl.snapshot_outputs();
    let gpu = ctl.gpu.as_mut().expect("alloc ran");
    let events = gpu.tracker_events().unwrap_or(0);
    let totals = gpu.finish_tracker().expect("tracker attached in alloc");
    AceGoldenRun {
        golden: GoldenRun {
            output,
            records: ctl.records,
            total_cost: ctl.total_cost,
        },
        per_launch: ctl.ace_per_launch,
        totals,
        events,
    }
}

/// Run `bench` fault-free on the timed engine with a probe sink attached:
/// one traced golden pass whose full access stream (`vgpu_sim::probe`) is
/// mirrored into `sink` — the recording pass of the replay backend
/// (`crates/trace`). Asserts bit-identity with the reference `golden` run
/// as it goes: tracing must observe, never perturb. Timed, unhardened.
///
/// # Panics
/// Panics if the fault-free application aborts or diverges from `golden`.
pub fn golden_run_traced(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    golden: &GoldenRun,
    sink: SharedSink,
) {
    let mut ctl = RunCtl::new(cfg.clone(), Mode::Timed, false, CtlMode::Golden);
    ctl.trace = Some(sink);
    bench
        .run(&mut ctl)
        .unwrap_or_else(|e| panic!("traced golden run of {} aborted: {e:?}", bench.name()));
    assert_eq!(
        ctl.snapshot_outputs(),
        golden.output,
        "traced pass of {} diverged from golden output",
        bench.name()
    );
    assert_eq!(ctl.total_cost, golden.total_cost);
    assert_eq!(ctl.records.len(), golden.records.len());
    for (t, p) in ctl.records.iter().zip(&golden.records) {
        assert_eq!(
            t.stats,
            p.stats,
            "traced pass of {} diverged from golden stats",
            bench.name()
        );
    }
}

/// The `~k` capture cycles for a launch of `cycles` total: evenly spaced,
/// deduplicated, always including cycle 0 (so every fault cycle has a
/// snapshot at-or-before it) and never reaching the final cycle (which a
/// completing launch may never revisit).
fn snapshot_cycles(cycles: u64, k: usize) -> Vec<u64> {
    let k = k.max(1) as u64;
    let mut v: Vec<u64> = (0..k).map(|i| i * cycles / k).collect();
    v.dedup();
    v
}

fn capture_pass(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    golden: &GoldenRun,
    k: usize,
    probe: Option<(usize, u64)>,
) -> AppSnapshots {
    let mut ctl = RunCtl::new(
        cfg.clone(),
        Mode::Timed,
        false,
        CtlMode::Capture {
            k,
            golden_stats: golden.records.iter().map(|r| r.stats).collect(),
            boundaries: Vec::new(),
            mids: Vec::new(),
            probe,
        },
    );
    bench
        .run(&mut ctl)
        .unwrap_or_else(|e| panic!("capture pass of {} aborted: {e:?}", bench.name()));
    assert_eq!(
        ctl.snapshot_outputs(),
        golden.output,
        "capture pass of {} diverged from golden output",
        bench.name()
    );
    assert_eq!(ctl.total_cost, golden.total_cost);
    let CtlMode::Capture {
        boundaries, mids, ..
    } = ctl.ctl
    else {
        unreachable!()
    };
    assert_eq!(boundaries.len(), golden.records.len());
    let bytes = boundaries
        .iter()
        .map(DeviceSnapshot::byte_size)
        .sum::<u64>()
        + mids
            .iter()
            .flatten()
            .map(SimSnapshot::byte_size)
            .sum::<u64>();
    AppSnapshots {
        boundaries,
        mids,
        bytes,
    }
}

/// One instrumented golden pass over `bench`, capturing `~k` mid-launch
/// snapshots per launch plus a device snapshot at every launch boundary —
/// the golden-prefix material consumed by [`faulty_run_ff`]. Asserts
/// bit-identity with `golden` as it goes (the instrumented engine must
/// not perturb the run). Timed, unhardened.
pub fn golden_run_snapshots(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    golden: &GoldenRun,
    k: usize,
) -> AppSnapshots {
    capture_pass(bench, cfg, golden, k, None)
}

/// Test helper: capture an extra snapshot of launch `ordinal` at `cycle`
/// (clamped into the launch), resume from it with no fault, and assert
/// the golden suffix — statistics, cycle count, post-launch device state,
/// and final application output — is reproduced bit-identically.
///
/// # Panics
/// Panics (or fails an assertion) on any divergence.
pub fn verify_snapshot_resume(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    golden: &GoldenRun,
    ordinal: usize,
    cycle: u64,
) {
    assert!(ordinal < golden.records.len(), "probe ordinal out of range");
    capture_pass(bench, cfg, golden, 2, Some((ordinal, cycle)));
}

/// Derive per-launch and whole-app budgets from a golden run.
fn budgets_from(golden: &GoldenRun, cfg: &GpuConfig) -> (Vec<Budget>, Budget) {
    let per: Vec<Budget> = golden
        .records
        .iter()
        .map(|r| Budget {
            cycles: (r.stats.cycles * cfg.timeout_factor).max(cfg.min_timeout_cycles),
            instrs: (r.stats.thread_instrs * cfg.timeout_factor).max(1 << 20),
        })
        .collect();
    let app = Budget {
        cycles: (golden.total_cost * cfg.timeout_factor).max(cfg.min_timeout_cycles),
        instrs: (golden.total_cost * cfg.timeout_factor).max(1 << 20),
    };
    (per, app)
}

/// Run `bench` with one injected fault and classify the outcome against
/// `golden`.
pub fn faulty_run(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    variant: Variant,
    golden: &GoldenRun,
    target_launch: usize,
    fault: PlannedFault,
) -> RunResult {
    faulty_run_inner(bench, cfg, variant, golden, target_launch, fault, None)
}

/// [`faulty_run`] with golden-prefix fast-forward: the fault-free prefix
/// restores `snaps` instead of simulating, the injected launch resumes
/// from the nearest snapshot at-or-before the fault cycle, and execution
/// that provably re-converges to golden (in-launch or at a launch
/// boundary) is credited at its golden cost. The returned classification,
/// `total_cost`, `applied`, and `corrupted_words` are bit-identical to
/// [`faulty_run`]'s. Timed, unhardened, microarchitecture faults.
pub fn faulty_run_ff(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    golden: &GoldenRun,
    snaps: &Arc<AppSnapshots>,
    target_launch: usize,
    fault: PlannedFault,
) -> RunResult {
    assert!(
        matches!(fault, PlannedFault::Uarch(_)),
        "fast-forward applies to microarchitecture faults on the timed engine"
    );
    let ff = FfCtx {
        snaps: Arc::clone(snaps),
        golden_stats: golden.records.iter().map(|r| r.stats).collect(),
        converged: false,
        resumed_at: None,
        pending_restore: None,
    };
    faulty_run_inner(
        bench,
        cfg,
        Variant::TIMED,
        golden,
        target_launch,
        fault,
        Some(ff),
    )
}

fn faulty_run_inner(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    variant: Variant,
    golden: &GoldenRun,
    target_launch: usize,
    fault: PlannedFault,
    ff: Option<FfCtx>,
) -> RunResult {
    let (budgets, app_budget) = budgets_from(golden, cfg);
    let mut ctl = RunCtl::new(
        cfg.clone(),
        variant.mode,
        variant.hardened,
        CtlMode::Faulty {
            target_launch,
            fault,
            budgets,
            app_budget,
            applied: false,
            ff,
        },
    );
    ctl.use_scratch = true;
    let run = bench.run(&mut ctl);
    let (applied, resumed_at, converged) = match &ctl.ctl {
        CtlMode::Faulty { applied, ff, .. } => (
            *applied,
            ff.as_ref().and_then(|f| f.resumed_at),
            ff.as_ref().is_some_and(|f| f.converged),
        ),
        _ => unreachable!(),
    };
    let result = match run {
        Ok(()) => {
            let out = ctl.snapshot_outputs();
            let corrupted_words = out
                .iter()
                .zip(&golden.output)
                .filter(|(a, b)| a != b)
                .count() as u32;
            let outcome = if corrupted_words == 0 {
                Outcome::Masked
            } else {
                Outcome::Sdc
            };
            RunResult {
                outcome,
                total_cost: ctl.total_cost,
                simulated_cost: ctl.simulated_cost,
                resumed_at,
                converged,
                applied,
                corrupted_words,
            }
        }
        Err(AppAbort::Launch(LaunchAbort::Timeout)) => RunResult {
            outcome: Outcome::Timeout,
            total_cost: ctl.total_cost,
            simulated_cost: ctl.simulated_cost,
            resumed_at,
            converged,
            applied,
            corrupted_words: 0,
        },
        Err(AppAbort::Launch(LaunchAbort::Due(_))) | Err(AppAbort::VoteFailed) => RunResult {
            outcome: Outcome::Due,
            total_cost: ctl.total_cost,
            simulated_cost: ctl.simulated_cost,
            resumed_at,
            converged,
            applied,
            corrupted_words: 0,
        },
    };
    ctl.stash_scratch();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_and_abort_conversions() {
        let a: AppAbort = LaunchAbort::Timeout.into();
        assert_eq!(a, AppAbort::Launch(LaunchAbort::Timeout));
        assert_ne!(a, AppAbort::VoteFailed);
    }

    #[test]
    fn golden_run_aggregations() {
        let mk = |kernel_idx, cycles, instrs| LaunchRecord {
            kernel_idx,
            is_vote: false,
            stats: Stats {
                cycles,
                thread_instrs: instrs,
                ..Default::default()
            },
            threads: 64,
            ctas: 2,
            num_regs: 8,
            smem_bytes: 0,
        };
        let g = GoldenRun {
            records: vec![mk(0, 100, 1000), mk(1, 50, 700), mk(0, 200, 2000)],
            output: vec![],
            total_cost: 350,
        };
        assert_eq!(g.kernel_stats(0).cycles, 300);
        assert_eq!(g.kernel_stats(0).thread_instrs, 3000);
        assert_eq!(g.kernel_stats(1).cycles, 50);
        assert_eq!(g.app_stats().cycles, 350);
    }

    #[test]
    fn ace_golden_run_matches_plain_golden_and_tracks_lifetimes() {
        let cfg = GpuConfig::volta_scaled(2);
        let bench = crate::apps::va::Va;
        let plain = golden_run(&bench, &cfg, Variant::TIMED);
        let ace = golden_run_ace(&bench, &cfg);
        // Differential: tracking must not perturb the simulation.
        assert_eq!(ace.golden.output, plain.output);
        assert_eq!(ace.golden.total_cost, plain.total_cost);
        assert_eq!(ace.golden.records.len(), plain.records.len());
        for (a, p) in ace.golden.records.iter().zip(&plain.records) {
            assert_eq!(a.stats.cycles, p.stats.cycles);
            assert_eq!(a.stats.thread_instrs, p.stats.thread_instrs);
        }
        // And it must actually have measured something.
        assert_eq!(ace.per_launch.len(), ace.golden.records.len());
        assert!(ace.events > 0);
        assert!(ace.totals[0] > 0, "RF lifetimes expected: {:?}", ace.totals);
        let attributed: u64 = ace.per_launch.iter().map(|d| d[4]).sum();
        assert_eq!(ace.l2_residual(), ace.totals[4] - attributed);
    }

    #[test]
    fn variants_cover_the_grid() {
        assert_eq!(Variant::TIMED.mode, Mode::Timed);
        assert!(!Variant::TIMED.hardened);
        assert!(Variant::TIMED_TMR.hardened);
        assert_eq!(Variant::FUNCTIONAL.mode, Mode::Functional);
        assert!(Variant::FUNCTIONAL_TMR.hardened);
    }
}
