//! The application harness: drives multi-kernel GPU applications through
//! golden and fault-injection runs, with optional thread-level TMR
//! hardening (Figure 6 of the paper).
//!
//! A [`Benchmark`] implementation expresses its host program against
//! [`RunCtl`]: it allocates device buffers once, initializes inputs, and
//! interleaves kernel launches with host-side glue. The same host program
//! then serves four purposes:
//!
//! * **golden** runs record per-launch statistics and the final output;
//! * **faulty** runs inject one fault into one chosen launch and classify
//!   the outcome against the golden output;
//! * **hardened** variants transparently triplicate buffers, launch with
//!   `grid_y == 3`, and majority-vote after every protected kernel;
//! * **profiling** runs collect the Figure-3 utilization metrics.

use vgpu_arch::{Kernel, LaunchConfig};
use vgpu_sim::due::LaunchAbort;
use vgpu_sim::{
    ArenaPlanner, Budget, FaultPlan, Gpu, GpuConfig, Mode, Stats, SwFault, SwInjector, UarchFault,
    UarchInjector,
};

use crate::tmr;

/// Why an application run did not produce an output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppAbort {
    /// A kernel crashed or timed out.
    Launch(LaunchAbort),
    /// TMR majority voting found three mutually different copies
    /// (classified as DUE, per the paper's Figure 6 workflow).
    VoteFailed,
}

impl From<LaunchAbort> for AppAbort {
    fn from(l: LaunchAbort) -> Self {
        AppAbort::Launch(l)
    }
}

/// Fault-effect classification (Section II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    Masked,
    Sdc,
    Timeout,
    Due,
}

/// Result of one faulty application run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    pub outcome: Outcome,
    /// Total timed cycles (or functional instructions) of the run, used by
    /// the Figure-11 control-path proxy: a masked run whose cycle count
    /// differs from golden had its control path disturbed.
    pub total_cost: u64,
    /// Whether the planned fault was actually applied (a fault aimed at an
    /// empty structure or past the end of execution never fires).
    pub applied: bool,
    /// For SDC outcomes: how many output words differ from golden — the
    /// error-propagation magnitude (a single SIMT fault frequently fans
    /// out into many corrupted outputs, cf. the paper's introduction).
    pub corrupted_words: u32,
}

/// Record of one launch during a golden run.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Index into [`Benchmark::kernels`]. Vote launches carry the index of
    /// the kernel they protect.
    pub kernel_idx: usize,
    pub is_vote: bool,
    pub stats: Stats,
    /// Threads launched (all TMR copies included).
    pub threads: u64,
    /// CTAs launched.
    pub ctas: u64,
    /// Architectural registers per thread.
    pub num_regs: u8,
    /// Static shared memory per CTA in bytes.
    pub smem_bytes: u32,
}

/// Everything learned from a golden run.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    pub records: Vec<LaunchRecord>,
    /// Final output words (copy 0 for hardened apps).
    pub output: Vec<u32>,
    /// Total cycles (timed) or thread instructions (functional).
    pub total_cost: u64,
}

impl GoldenRun {
    /// Aggregate statistics over the launches attributed to `kernel_idx`.
    pub fn kernel_stats(&self, kernel_idx: usize) -> Stats {
        let mut s = Stats::default();
        for r in self.records.iter().filter(|r| r.kernel_idx == kernel_idx) {
            s.add(&r.stats);
        }
        s
    }

    /// Aggregate statistics over the whole application.
    pub fn app_stats(&self) -> Stats {
        let mut s = Stats::default();
        for r in &self.records {
            s.add(&r.stats);
        }
        s
    }
}

/// The fault to inject into one specific launch of the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedFault {
    Uarch(UarchFault),
    Sw(SwFault),
}

/// What a [`RunCtl`] is doing.
enum CtlMode {
    Golden,
    Faulty {
        target_launch: usize,
        fault: PlannedFault,
        /// Per-launch budgets from the golden run (indexed by ordinal).
        budgets: Vec<Budget>,
        /// Whole-application budget backstop.
        app_budget: Budget,
        applied: bool,
    },
}

/// Controller handed to [`Benchmark::run`]: owns the GPU, performs
/// (optionally triplicated) allocation and host access, launches kernels,
/// and injects the planned fault at the right launch.
pub struct RunCtl {
    pub cfg: GpuConfig,
    mode_sim: Mode,
    hardened: bool,
    gpu: Option<Gpu>,
    tmr_stride: u32,
    flag_addr: u32,
    vote_kernel: Kernel,
    launch_idx: usize,
    records: Vec<LaunchRecord>,
    ctl: CtlMode,
    total_cost: u64,
    outputs: Vec<(u32, u32)>,
    /// Attach an ACE lifetime tracker at `alloc` time (golden runs only).
    ace: bool,
    /// Cumulative tracker totals after the previous launch.
    ace_prev: [u64; 5],
    /// Per-launch ACE word-cycle deltas, aligned with `records`.
    ace_per_launch: Vec<[u64; 5]>,
}

impl RunCtl {
    fn new(cfg: GpuConfig, mode_sim: Mode, hardened: bool, ctl: CtlMode) -> Self {
        RunCtl {
            cfg,
            mode_sim,
            hardened,
            gpu: None,
            tmr_stride: 0,
            flag_addr: 0,
            vote_kernel: tmr::vote_kernel(),
            launch_idx: 0,
            records: Vec::new(),
            ctl,
            total_cost: 0,
            outputs: Vec::new(),
            ace: false,
            ace_prev: [0; 5],
            ace_per_launch: Vec::new(),
        }
    }

    /// Allocate all device buffers the application needs, in one shot.
    /// Returns the copy-0 base address of each buffer. In hardened mode the
    /// whole set is triplicated at a uniform stride and a vote-flag word is
    /// appended.
    pub fn alloc(&mut self, sizes: &[u32]) -> Vec<u32> {
        assert!(
            self.gpu.is_none(),
            "alloc must be called exactly once, first"
        );
        let mut planner = ArenaPlanner::new();
        let addrs: Vec<u32> = sizes.iter().map(|&s| planner.alloc(s)).collect();
        if self.hardened {
            let base0 = addrs[0];
            // Copies 1 and 2: repeat the same allocation sequence; the
            // planner is deterministic, so internal offsets are identical.
            let first1 = planner.alloc(sizes[0]);
            for &s in &sizes[1..] {
                planner.alloc(s);
            }
            self.tmr_stride = first1 - base0;
            let first2 = planner.alloc(sizes[0]);
            for &s in &sizes[1..] {
                planner.alloc(s);
            }
            assert_eq!(first2 - first1, self.tmr_stride, "uniform TMR stride");
            self.flag_addr = planner.alloc(4);
        }
        let mem = planner.build();
        let mut gpu = Gpu::new(self.cfg.clone(), mem, self.mode_sim);
        if self.ace {
            gpu.attach_tracker();
        }
        self.gpu = Some(gpu);
        addrs
    }

    fn gpu(&self) -> &Gpu {
        self.gpu
            .as_ref()
            .expect("alloc() must run before device access")
    }

    fn gpu_mut(&mut self) -> &mut Gpu {
        self.gpu
            .as_mut()
            .expect("alloc() must run before device access")
    }

    /// True when running the TMR-hardened variant.
    pub fn hardened(&self) -> bool {
        self.hardened
    }

    /// Region stride between TMR copies (0 when unhardened). Diagnostic.
    pub fn tmr_stride(&self) -> u32 {
        self.tmr_stride
    }

    /// Host write to a *single* copy, bypassing TMR replication — only for
    /// tests and diagnostics that need to desynchronise redundant copies.
    pub fn write_u32_single(&mut self, addr: u32, v: u32) {
        self.gpu_mut().host_write_u32(addr, v);
    }

    /// Host write, replicated to every TMR copy.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let stride = self.tmr_stride;
        let copies = if self.hardened { 3 } else { 1 };
        let gpu = self.gpu_mut();
        for c in 0..copies {
            gpu.host_write_u32(addr + c * stride, v);
        }
    }

    pub fn write_f32(&mut self, addr: u32, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Host read (copy 0 — the voted copy in hardened mode).
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.gpu().host_read_u32(addr)
    }

    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Register the application's final output buffers (copy-0 address,
    /// word count). Must be called before `finish`.
    pub fn set_outputs(&mut self, outputs: &[(u32, u32)]) {
        self.outputs = outputs.to_vec();
    }

    /// Launch `kernel` as benchmark kernel `kernel_idx` with `grid_x` CTAs
    /// of `block_x` threads and the given (benchmark-level) parameters.
    ///
    /// The TMR stride is prepended as parameter word 0 — kernels built with
    /// [`tmr::prologue`] use it to rebase their buffer pointers per copy —
    /// and hardened launches run with `grid_y == 3`.
    pub fn launch(
        &mut self,
        kernel_idx: usize,
        kernel: &Kernel,
        grid_x: u32,
        block_x: u32,
        params: Vec<u32>,
    ) -> Result<(), AppAbort> {
        let mut full_params = Vec::with_capacity(params.len() + 1);
        full_params.push(self.tmr_stride);
        full_params.extend(params);
        let lc = LaunchConfig {
            grid_x,
            grid_y: if self.hardened { 3 } else { 1 },
            block_x,
            params: full_params,
        };
        self.do_launch(kernel_idx, false, kernel, lc)
    }

    /// In hardened mode, majority-vote (and repair) the listed buffers
    /// produced by `kernel_idx`; a vote with three mutually different
    /// copies aborts the application as [`AppAbort::VoteFailed`].
    /// No-op when unhardened.
    pub fn vote(&mut self, kernel_idx: usize, bufs: &[(u32, u32)]) -> Result<(), AppAbort> {
        if !self.hardened {
            return Ok(());
        }
        for &(addr, words) in bufs {
            let vk = self.vote_kernel.clone();
            let lc = LaunchConfig {
                grid_x: words.div_ceil(tmr::VOTE_BLOCK),
                grid_y: 1,
                block_x: tmr::VOTE_BLOCK,
                params: vec![self.tmr_stride, addr, words, self.flag_addr],
            };
            self.do_launch(kernel_idx, true, &vk, lc)?;
            if self.read_u32(self.flag_addr) != 0 {
                return Err(AppAbort::VoteFailed);
            }
        }
        Ok(())
    }

    fn do_launch(
        &mut self,
        kernel_idx: usize,
        is_vote: bool,
        kernel: &Kernel,
        lc: LaunchConfig,
    ) -> Result<(), AppAbort> {
        let ordinal = self.launch_idx;
        self.launch_idx += 1;
        match &mut self.ctl {
            CtlMode::Golden => {
                let gpu = self.gpu.as_mut().expect("alloc before launch");
                let stats = gpu.launch(kernel, &lc, FaultPlan::None, &Budget::unlimited())?;
                self.total_cost += if gpu.mode() == Mode::Timed {
                    stats.cycles
                } else {
                    stats.thread_instrs
                };
                let ace_tot = gpu.tracker_totals();
                self.records.push(LaunchRecord {
                    kernel_idx,
                    is_vote,
                    stats,
                    threads: lc.num_threads(),
                    ctas: lc.num_ctas(),
                    num_regs: kernel.num_regs,
                    smem_bytes: kernel.smem_bytes,
                });
                if let Some(tot) = ace_tot {
                    let mut delta = [0u64; 5];
                    for (d, (now, prev)) in delta.iter_mut().zip(tot.iter().zip(&self.ace_prev)) {
                        *d = now - prev;
                    }
                    self.ace_prev = tot;
                    self.ace_per_launch.push(delta);
                }
                Ok(())
            }
            CtlMode::Faulty {
                target_launch,
                fault,
                budgets,
                app_budget,
                applied,
            } => {
                let mut budget = budgets.get(ordinal).copied().unwrap_or(Budget {
                    cycles: 1 << 22,
                    instrs: 1 << 26,
                });
                // Whole-app backstop: never exceed the remaining budget.
                budget.cycles = budget
                    .cycles
                    .min(app_budget.cycles.saturating_sub(self.total_cost));
                budget.instrs = budget
                    .instrs
                    .min(app_budget.instrs.saturating_sub(self.total_cost));
                if budget.cycles == 0 || budget.instrs == 0 {
                    return Err(AppAbort::Launch(LaunchAbort::Timeout));
                }
                let fault_here = ordinal == *target_launch;
                let gpu = self.gpu.as_mut().expect("alloc before launch");
                let result = if fault_here {
                    match fault {
                        PlannedFault::Uarch(f) => {
                            let mut inj = UarchInjector::new(*f);
                            let r = gpu.launch(kernel, &lc, FaultPlan::Uarch(&mut inj), &budget);
                            *applied = inj.applied && inj.population > 0;
                            r
                        }
                        PlannedFault::Sw(f) => {
                            let mut inj = SwInjector::new(*f);
                            let r = gpu.launch(kernel, &lc, FaultPlan::Sw(&mut inj), &budget);
                            *applied = inj.applied;
                            r
                        }
                    }
                } else {
                    gpu.launch(kernel, &lc, FaultPlan::None, &budget)
                };
                let stats = result?;
                self.total_cost += if gpu.mode() == Mode::Timed {
                    stats.cycles
                } else {
                    stats.thread_instrs
                };
                Ok(())
            }
        }
    }

    fn snapshot_outputs(&self) -> Vec<u32> {
        let gpu = self.gpu();
        let mut out = Vec::new();
        for &(addr, words) in &self.outputs {
            out.extend(gpu.host_read_block(addr, words));
        }
        out
    }
}

/// A GPU application: the 11 benchmarks implement this.
pub trait Benchmark: Sync {
    /// Application name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Kernel display names, e.g. `["K1", "K2"]`.
    fn kernels(&self) -> &'static [&'static str];

    /// The whole host program: allocate, initialize, launch, glue.
    /// All device interaction must go through `ctl`. Host-side loops must
    /// be iteration-capped so corrupted device data cannot hang the host.
    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort>;
}

/// Execution variant selector for [`golden_run`] / [`faulty_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    pub mode: Mode,
    pub hardened: bool,
}

impl Variant {
    pub const TIMED: Variant = Variant {
        mode: Mode::Timed,
        hardened: false,
    };
    pub const FUNCTIONAL: Variant = Variant {
        mode: Mode::Functional,
        hardened: false,
    };
    pub const TIMED_TMR: Variant = Variant {
        mode: Mode::Timed,
        hardened: true,
    };
    pub const FUNCTIONAL_TMR: Variant = Variant {
        mode: Mode::Functional,
        hardened: true,
    };
}

/// Run `bench` fault-free, recording per-launch statistics and the output.
///
/// # Panics
/// Panics if the fault-free application aborts — that is a benchmark bug,
/// not a measurable outcome.
pub fn golden_run(bench: &dyn Benchmark, cfg: &GpuConfig, variant: Variant) -> GoldenRun {
    let mut ctl = RunCtl::new(cfg.clone(), variant.mode, variant.hardened, CtlMode::Golden);
    bench
        .run(&mut ctl)
        .unwrap_or_else(|e| panic!("golden run of {} aborted: {e:?}", bench.name()));
    assert!(
        !ctl.outputs.is_empty(),
        "{} registered no outputs",
        bench.name()
    );
    GoldenRun {
        output: ctl.snapshot_outputs(),
        records: ctl.records,
        total_cost: ctl.total_cost,
    }
}

/// A golden run instrumented with the ACE lifetime tracker
/// (`vgpu_sim::lifetime`). Always timed and unhardened, to match the
/// microarchitectural injection campaigns it screens for.
#[derive(Debug, Clone)]
pub struct AceGoldenRun {
    pub golden: GoldenRun,
    /// Per-launch ACE word-cycle deltas (`HwStructure::ALL` order), one
    /// entry per `golden.records` element. L2 intervals still open when a
    /// launch retires are only counted once closed — they surface either
    /// in a later launch's delta or in the final residual.
    pub per_launch: Vec<[u64; 5]>,
    /// Final per-structure ACE word-cycle totals, including every L2
    /// interval closed at end of application (dirty lines live, clean
    /// lines dead).
    pub totals: [u64; 5],
    /// Lifetime events recorded (tracker work volume, for `obs`).
    pub events: u64,
}

impl AceGoldenRun {
    /// L2 word-cycles closed only at end-of-application (not attributed
    /// to any single launch).
    pub fn l2_residual(&self) -> u64 {
        let attributed: u64 = self.per_launch.iter().map(|d| d[4]).sum();
        self.totals[4] - attributed
    }
}

/// Run `bench` fault-free on the timed engine with ACE lifetime tracking
/// attached, recording per-structure ACE word-cycle totals alongside the
/// usual golden statistics.
///
/// # Panics
/// Panics if the fault-free application aborts (a benchmark bug).
pub fn golden_run_ace(bench: &dyn Benchmark, cfg: &GpuConfig) -> AceGoldenRun {
    let mut ctl = RunCtl::new(cfg.clone(), Mode::Timed, false, CtlMode::Golden);
    ctl.ace = true;
    bench
        .run(&mut ctl)
        .unwrap_or_else(|e| panic!("ACE golden run of {} aborted: {e:?}", bench.name()));
    assert!(
        !ctl.outputs.is_empty(),
        "{} registered no outputs",
        bench.name()
    );
    let output = ctl.snapshot_outputs();
    let gpu = ctl.gpu.as_mut().expect("alloc ran");
    let events = gpu.tracker_events().unwrap_or(0);
    let totals = gpu.finish_tracker().expect("tracker attached in alloc");
    AceGoldenRun {
        golden: GoldenRun {
            output,
            records: ctl.records,
            total_cost: ctl.total_cost,
        },
        per_launch: ctl.ace_per_launch,
        totals,
        events,
    }
}

/// Derive per-launch and whole-app budgets from a golden run.
fn budgets_from(golden: &GoldenRun, cfg: &GpuConfig) -> (Vec<Budget>, Budget) {
    let per: Vec<Budget> = golden
        .records
        .iter()
        .map(|r| Budget {
            cycles: (r.stats.cycles * cfg.timeout_factor).max(cfg.min_timeout_cycles),
            instrs: (r.stats.thread_instrs * cfg.timeout_factor).max(1 << 20),
        })
        .collect();
    let app = Budget {
        cycles: (golden.total_cost * cfg.timeout_factor).max(cfg.min_timeout_cycles),
        instrs: (golden.total_cost * cfg.timeout_factor).max(1 << 20),
    };
    (per, app)
}

/// Run `bench` with one injected fault and classify the outcome against
/// `golden`.
pub fn faulty_run(
    bench: &dyn Benchmark,
    cfg: &GpuConfig,
    variant: Variant,
    golden: &GoldenRun,
    target_launch: usize,
    fault: PlannedFault,
) -> RunResult {
    let (budgets, app_budget) = budgets_from(golden, cfg);
    let mut ctl = RunCtl::new(
        cfg.clone(),
        variant.mode,
        variant.hardened,
        CtlMode::Faulty {
            target_launch,
            fault,
            budgets,
            app_budget,
            applied: false,
        },
    );
    let run = bench.run(&mut ctl);
    let applied = match &ctl.ctl {
        CtlMode::Faulty { applied, .. } => *applied,
        CtlMode::Golden => unreachable!(),
    };
    match run {
        Ok(()) => {
            let out = ctl.snapshot_outputs();
            let corrupted_words = out
                .iter()
                .zip(&golden.output)
                .filter(|(a, b)| a != b)
                .count() as u32;
            let outcome = if corrupted_words == 0 {
                Outcome::Masked
            } else {
                Outcome::Sdc
            };
            RunResult {
                outcome,
                total_cost: ctl.total_cost,
                applied,
                corrupted_words,
            }
        }
        Err(AppAbort::Launch(LaunchAbort::Timeout)) => RunResult {
            outcome: Outcome::Timeout,
            total_cost: ctl.total_cost,
            applied,
            corrupted_words: 0,
        },
        Err(AppAbort::Launch(LaunchAbort::Due(_))) | Err(AppAbort::VoteFailed) => RunResult {
            outcome: Outcome::Due,
            total_cost: ctl.total_cost,
            applied,
            corrupted_words: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_and_abort_conversions() {
        let a: AppAbort = LaunchAbort::Timeout.into();
        assert_eq!(a, AppAbort::Launch(LaunchAbort::Timeout));
        assert_ne!(a, AppAbort::VoteFailed);
    }

    #[test]
    fn golden_run_aggregations() {
        let mk = |kernel_idx, cycles, instrs| LaunchRecord {
            kernel_idx,
            is_vote: false,
            stats: Stats {
                cycles,
                thread_instrs: instrs,
                ..Default::default()
            },
            threads: 64,
            ctas: 2,
            num_regs: 8,
            smem_bytes: 0,
        };
        let g = GoldenRun {
            records: vec![mk(0, 100, 1000), mk(1, 50, 700), mk(0, 200, 2000)],
            output: vec![],
            total_cost: 350,
        };
        assert_eq!(g.kernel_stats(0).cycles, 300);
        assert_eq!(g.kernel_stats(0).thread_instrs, 3000);
        assert_eq!(g.kernel_stats(1).cycles, 50);
        assert_eq!(g.app_stats().cycles, 350);
    }

    #[test]
    fn ace_golden_run_matches_plain_golden_and_tracks_lifetimes() {
        let cfg = GpuConfig::volta_scaled(2);
        let bench = crate::apps::va::Va;
        let plain = golden_run(&bench, &cfg, Variant::TIMED);
        let ace = golden_run_ace(&bench, &cfg);
        // Differential: tracking must not perturb the simulation.
        assert_eq!(ace.golden.output, plain.output);
        assert_eq!(ace.golden.total_cost, plain.total_cost);
        assert_eq!(ace.golden.records.len(), plain.records.len());
        for (a, p) in ace.golden.records.iter().zip(&plain.records) {
            assert_eq!(a.stats.cycles, p.stats.cycles);
            assert_eq!(a.stats.thread_instrs, p.stats.thread_instrs);
        }
        // And it must actually have measured something.
        assert_eq!(ace.per_launch.len(), ace.golden.records.len());
        assert!(ace.events > 0);
        assert!(ace.totals[0] > 0, "RF lifetimes expected: {:?}", ace.totals);
        let attributed: u64 = ace.per_launch.iter().map(|d| d[4]).sum();
        assert_eq!(ace.l2_residual(), ace.totals[4] - attributed);
    }

    #[test]
    fn variants_cover_the_grid() {
        assert_eq!(Variant::TIMED.mode, Mode::Timed);
        assert!(!Variant::TIMED.hardened);
        assert!(Variant::TIMED_TMR.hardened);
        assert_eq!(Variant::FUNCTIONAL.mode, Mode::Functional);
        assert!(Variant::FUNCTIONAL_TMR.hardened);
    }
}
