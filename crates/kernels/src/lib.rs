//! # kernels — the benchmark suite of the CLUSTER'24 reproduction
//!
//! Mini but faithful re-implementations of the paper's 11 applications /
//! 23 kernels from the CUDA SDK and Rodinia suites, written in the
//! [`vgpu_arch`] ISA and driven by a host harness that supports golden
//! runs, statistical fault injection, and thread-level TMR hardening:
//!
//! | App | Kernels | Origin | Domain |
//! |-----|---------|--------|--------|
//! | SRADv1 | 6 | Rodinia | image processing (speckle-reducing anisotropic diffusion) |
//! | SRADv2 | 2 | Rodinia | image processing (tiled variant) |
//! | K-Means | 2 | Rodinia | data mining |
//! | HotSpot | 1 | Rodinia | physics simulation (thermal stencil) |
//! | LUD | 3 | Rodinia | linear algebra (LU decomposition) |
//! | SCP | 1 | CUDA SDK | linear algebra (scalar products) |
//! | VA | 1 | CUDA SDK | vector add |
//! | NW | 2 | Rodinia | bioinformatics (Needleman-Wunsch) |
//! | PathFinder | 1 | Rodinia | grid dynamic programming |
//! | BackProp | 2 | Rodinia | machine learning |
//! | BFS | 2 | Rodinia | graph traversal |
//!
//! Inputs are scaled down (Section 2 of DESIGN.md) so that statistical
//! campaigns finish on one machine, while preserving each benchmark's
//! control/data-flow character and resource-utilization profile.

pub mod apps;
pub mod harness;
pub mod kutil;
pub mod tmr;

pub use harness::{
    faulty_run, faulty_run_ff, golden_run, golden_run_ace, golden_run_snapshots, golden_run_traced,
    verify_snapshot_resume, AceGoldenRun, AppAbort, AppSnapshots, Benchmark, GoldenRun,
    LaunchRecord, Outcome, PlannedFault, RunCtl, RunResult, Variant,
};

/// All 11 benchmarks in the paper's figure order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(apps::sradv1::SradV1),
        Box::new(apps::sradv2::SradV2),
        Box::new(apps::kmeans::KMeans),
        Box::new(apps::hotspot::HotSpot),
        Box::new(apps::lud::Lud),
        Box::new(apps::scp::Scp),
        Box::new(apps::va::Va),
        Box::new(apps::nw::Nw),
        Box::new(apps::pathfinder::PathFinder),
        Box::new(apps::backprop::BackProp),
        Box::new(apps::bfs::Bfs),
    ]
}

/// Total kernel count across the suite (the paper's 23).
pub fn total_kernels() -> usize {
    all_benchmarks().iter().map(|b| b.kernels().len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_inventory() {
        let benches = all_benchmarks();
        assert_eq!(benches.len(), 11, "11 applications");
        assert_eq!(total_kernels(), 23, "23 kernels");
        let names: Vec<_> = benches.iter().map(|b| b.name()).collect();
        for expect in [
            "SRADv1",
            "SRADv2",
            "K-Means",
            "HotSpot",
            "LUD",
            "SCP",
            "VA",
            "NW",
            "PathFinder",
            "BackProp",
            "BFS",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }
}
