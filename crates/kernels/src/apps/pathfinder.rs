//! PathFinder — grid dynamic programming (Rodinia `pathfinder`).
//!
//! One kernel, `dynproc_kernel`: each CTA advances `PYRAMID` rows of the
//! DP in shared memory with a ping-pong buffer and barriers; the computed
//! region shrinks by one column per side per step (the Rodinia halo
//! scheme), so CTAs overlap by `2*PYRAMID` columns. Integer data — output
//! comparisons are exact.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::hash_u32;
use crate::tmr;
use vgpu_arch::{BoolOp, CmpOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};

const BLOCK: u32 = 128;
/// DP steps per launch.
pub const PYRAMID: u32 = 4;
/// Valid (non-halo) columns each CTA produces.
const STRIDE: u32 = BLOCK - 2 * PYRAMID; // 120
/// Grid columns.
pub const COLS: u32 = 4 * STRIDE; // 480
/// Wall rows: 1 source row + ROWS-1 DP steps.
pub const ROWS: u32 = 1 + 2 * PYRAMID; // two launches
const SEED: u64 = 0x5046;

pub struct PathFinder;

/// Benchmark parameters: 0 = wall, 1 = src row, 2 = dst row,
/// 3 = first wall row of this launch (scalar).
pub fn kernel() -> Kernel {
    let mut a = KernelBuilder::new("pathfinder_k1_dynproc");
    let s_prev = a.alloc_smem(BLOCK * 4);
    let s_next = a.alloc_smem(BLOCK * 4);
    let roff = tmr::prologue(&mut a);
    let (tx, xidx, addr, v, l, r, u) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    let (p_in, p, q) = (a.pred(), a.pred(), a.pred());
    a.s2r(tx, SpecialReg::TidX);
    // xidx = ctaid*STRIDE + tx - PYRAMID (may be out of range at edges).
    a.s2r(xidx, SpecialReg::CtaIdX);
    a.imad(xidx, xidx, STRIDE, Operand::Reg(tx));
    a.isub(xidx, xidx, PYRAMID);
    // p_in: 0 <= xidx < COLS (signed compare handles the negative side).
    a.isetp(p_in, xidx, 0u32, CmpOp::Ge, true);
    a.isetp(p, xidx, COLS, CmpOp::Lt, true);
    a.psetp(p_in, p_in, p, BoolOp::And, false, false);
    // prev[tx] = src[xidx] where in range.
    a.predicated(p_in, false, |a| {
        tmr::load_ptr(a, addr, roff, 1);
        a.iscadd(addr, xidx, Operand::Reg(addr), 2);
        a.ld(v, MemSpace::Global, addr, 0);
        a.shl(addr, tx, 2u32);
        a.st(MemSpace::Shared, addr, s_prev as i32, v);
    });
    a.bar();
    for step in 0..PYRAMID {
        // computed := (tx >= step+1) && (tx <= BLOCK-2-step) && p_in
        a.isetp(p, tx, step + 1, CmpOp::Ge, true);
        a.isetp(q, tx, BLOCK - 2 - step, CmpOp::Le, true);
        a.psetp(p, p, q, BoolOp::And, false, false);
        a.psetp(p, p, p_in, BoolOp::And, false, false);
        a.predicated(p, false, |a| {
            // left = prev[xidx == 0 ? tx : tx-1]
            a.isub(l, tx, 1u32);
            a.isetp(q, xidx, 0u32, CmpOp::Eq, true);
            a.sel(l, tx, Operand::Reg(l), q, false);
            a.shl(l, l, 2u32);
            a.ld(l, MemSpace::Shared, l, s_prev as i32);
            // right = prev[xidx == COLS-1 ? tx : tx+1]
            a.iadd(r, tx, 1u32);
            a.isetp(q, xidx, COLS - 1, CmpOp::Eq, true);
            a.sel(r, tx, Operand::Reg(r), q, false);
            a.shl(r, r, 2u32);
            a.ld(r, MemSpace::Shared, r, s_prev as i32);
            // up = prev[tx]
            a.shl(u, tx, 2u32);
            a.ld(u, MemSpace::Shared, u, s_prev as i32);
            a.imin(u, u, Operand::Reg(l), true);
            a.imin(u, u, Operand::Reg(r), true);
            // wall value at row (first + step), col xidx.
            a.mov(v, tmr::scalar(3));
            a.iadd(v, v, step);
            a.imul(v, v, COLS);
            a.iadd(v, v, Operand::Reg(xidx));
            tmr::load_ptr(a, addr, roff, 0);
            a.iscadd(addr, v, Operand::Reg(addr), 2);
            a.ld(v, MemSpace::Global, addr, 0);
            a.iadd(v, v, Operand::Reg(u));
            a.shl(addr, tx, 2u32);
            a.st(MemSpace::Shared, addr, s_next as i32, v);
        });
        a.bar();
        // prev[tx] = next[tx] for the lanes that computed.
        a.predicated(p, false, |a| {
            a.shl(addr, tx, 2u32);
            a.ld(v, MemSpace::Shared, addr, s_next as i32);
            a.st(MemSpace::Shared, addr, s_prev as i32, v);
        });
        a.bar();
    }
    // Valid producers write out: tx in [PYRAMID, BLOCK-PYRAMID) && in range.
    a.isetp(p, tx, PYRAMID, CmpOp::Ge, true);
    a.isetp(q, tx, BLOCK - PYRAMID, CmpOp::Lt, true);
    a.psetp(p, p, q, BoolOp::And, false, false);
    a.psetp(p, p, p_in, BoolOp::And, false, false);
    a.predicated(p, false, |a| {
        a.shl(addr, tx, 2u32);
        a.ld(v, MemSpace::Shared, addr, s_prev as i32);
        tmr::load_ptr(a, addr, roff, 2);
        a.iscadd(addr, xidx, Operand::Reg(addr), 2);
        a.st(MemSpace::Global, addr, 0, v);
    });
    a.build().expect("dynproc kernel is well formed")
}

/// Wall cost at (row, col).
pub fn wall(row: u32, col: u32) -> u32 {
    hash_u32(SEED, (row * COLS + col) as u64, 10)
}

impl Benchmark for PathFinder {
    fn name(&self) -> &'static str {
        "PathFinder"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let bufs = ctl.alloc(&[ROWS * COLS * 4, COLS * 4, COLS * 4]);
        let (wall_buf, r0, r1) = (bufs[0], bufs[1], bufs[2]);
        for row in 0..ROWS {
            for col in 0..COLS {
                ctl.write_u32(wall_buf + (row * COLS + col) * 4, wall(row, col));
            }
        }
        // Source row = wall row 0.
        for col in 0..COLS {
            ctl.write_u32(r0 + col * 4, wall(0, col));
        }
        let k = kernel();
        let grid = COLS / STRIDE;
        let (mut src, mut dst) = (r0, r1);
        let mut row = 1;
        while row < ROWS {
            ctl.launch(0, &k, grid, BLOCK, vec![wall_buf, src, dst, row])?;
            ctl.vote(0, &[(dst, COLS)])?;
            std::mem::swap(&mut src, &mut dst);
            row += PYRAMID;
        }
        ctl.set_outputs(&[(src, COLS)]);
        Ok(())
    }
}

/// CPU reference: the plain DP with edge clamping.
pub fn cpu_reference() -> Vec<u32> {
    let mut prev: Vec<u32> = (0..COLS).map(|c| wall(0, c)).collect();
    for row in 1..ROWS {
        let mut next = vec![0u32; COLS as usize];
        for c in 0..COLS as i32 {
            let l = prev[c.max(1) as usize - 1];
            let u = prev[c as usize];
            let r = prev[(c + 1).min(COLS as i32 - 1) as usize];
            let best = (l as i32).min(u as i32).min(r as i32) as u32;
            next[c as usize] = wall(row, c as u32) + best;
        }
        prev = next;
    }
    prev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_exactly() {
        let g = golden_run(&PathFinder, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        assert_eq!(g.output.len(), COLS as usize);
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(got, want, "column {i}");
        }
    }

    #[test]
    fn timed_equals_functional() {
        let f = golden_run(&PathFinder, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&PathFinder, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&PathFinder, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&PathFinder, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
