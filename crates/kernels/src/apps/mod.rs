//! The 11 benchmark applications (23 kernels).

pub mod backprop;
pub mod bfs;
pub mod hotspot;
pub mod kmeans;
pub mod lud;
pub mod nw;
pub mod pathfinder;
pub mod scp;
pub mod sradv1;
pub mod sradv2;
pub mod va;
