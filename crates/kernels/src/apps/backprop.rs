//! BackProp — neural-network training step (Rodinia `backprop`).
//!
//! Two kernels, as in Rodinia:
//!
//! * **K1 `layerforward`** — each CTA handles a 16×16 slice of the
//!   input→hidden weight matrix: products go into a shared-memory matrix
//!   that is tree-reduced along the input dimension; per-CTA partial sums
//!   land in global memory and the host finishes the sums and applies the
//!   sigmoid.
//! * **K2 `adjust_weights`** — one thread per weight applies the delta
//!   rule with momentum (pure global-memory ALU work).

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::{elem_addr, gid_guard, hash_f32};
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};

/// Input-layer units.
pub const N_IN: u32 = 1024;
/// Hidden-layer units (one 16-wide group per CTA column).
pub const HID: u32 = 16;
const BLOCK: u32 = 256; // 16 input rows x 16 hidden cols
const GROUPS: u32 = N_IN / HID; // CTAs of K1
pub const ETA: f32 = 0.3;
pub const MOMENTUM: f32 = 0.3;
const SEED: u64 = 0x4250;

pub struct BackProp;

/// K1: benchmark parameters: 0 = input, 1 = weights, 2 = partial sums.
pub fn kernel_layerforward() -> Kernel {
    let mut a = KernelBuilder::new("backprop_k1_layerforward");
    let s_in = a.alloc_smem(HID * 4); // 16 input activations
    let s_mat = a.alloc_smem(BLOCK * 4); // 16x16 product matrix
    debug_assert_eq!(s_in, 0);
    let roff = tmr::prologue(&mut a);
    let (tid, row, col, gin, addr, v, w) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    let p = a.pred();
    a.s2r(tid, SpecialReg::TidX);
    a.shr(row, tid, HID.trailing_zeros()); // input row within group
    a.and(col, tid, HID - 1); // hidden unit
                              // gin = ctaid * 16 + row: the global input index this row covers.
    a.s2r(gin, SpecialReg::CtaIdX);
    a.shl(gin, gin, HID.trailing_zeros());
    a.iadd(gin, gin, Operand::Reg(row));
    // Threads in column 0 stage the input slice into shared memory.
    a.isetp(p, col, 0u32, CmpOp::Eq, true);
    a.predicated(p, false, |a| {
        elem_addr(a, addr, roff, 0, gin, 2);
        a.ld(v, MemSpace::Global, addr, 0);
        a.shl(addr, row, 2u32);
        a.st(MemSpace::Shared, addr, s_in as i32, v);
    });
    a.bar();
    // product = input[row] * w[gin*HID + col] into the matrix.
    a.shl(addr, row, 2u32);
    a.ld(v, MemSpace::Shared, addr, s_in as i32);
    a.shl(w, gin, HID.trailing_zeros());
    a.iadd(w, w, Operand::Reg(col));
    elem_addr(&mut a, addr, roff, 1, w, 2);
    a.ld(w, MemSpace::Global, addr, 0);
    a.fmul(v, v, Operand::Reg(w));
    a.shl(addr, tid, 2u32);
    a.st(MemSpace::Shared, addr, s_mat as i32, v);
    a.bar();
    // Tree reduction along rows: matrix[row][col] += matrix[row+s][col].
    let mut s = HID / 2;
    while s >= 1 {
        a.isetp(p, row, s, CmpOp::Lt, true);
        a.predicated(p, false, |a| {
            a.iadd(addr, row, s);
            a.shl(addr, addr, HID.trailing_zeros());
            a.iadd(addr, addr, Operand::Reg(col));
            a.shl(addr, addr, 2u32);
            a.ld(v, MemSpace::Shared, addr, s_mat as i32);
            a.shl(addr, tid, 2u32);
            a.ld(w, MemSpace::Shared, addr, s_mat as i32);
            a.fadd(w, w, Operand::Reg(v));
            a.st(MemSpace::Shared, addr, s_mat as i32, w);
        });
        a.bar();
        s /= 2;
    }
    // Row 0 publishes: partial[ctaid*HID + col] = matrix[0][col].
    a.isetp(p, row, 0u32, CmpOp::Eq, true);
    a.predicated(p, false, |a| {
        a.shl(addr, col, 2u32);
        a.ld(v, MemSpace::Shared, addr, s_mat as i32);
        a.s2r(w, SpecialReg::CtaIdX);
        a.shl(w, w, HID.trailing_zeros());
        a.iadd(w, w, Operand::Reg(col));
        elem_addr(a, addr, roff, 2, w, 2);
        a.st(MemSpace::Global, addr, 0, v);
    });
    a.build().expect("layerforward is well formed")
}

/// K2: benchmark parameters: 0 = weights, 1 = old deltas, 2 = input,
/// 3 = hidden deltas, 4 = n (number of weights).
pub fn kernel_adjust() -> Kernel {
    let mut a = KernelBuilder::new("backprop_k2_adjust_weights");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, w, ow, inp, dl) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 4);
    a.if_then(p, false, |a| {
        // i = gid / HID (input), j = gid % HID (hidden).
        a.shr(tmp, gid, HID.trailing_zeros());
        elem_addr(a, addr, roff, 2, tmp, 2);
        a.ld(inp, MemSpace::Global, addr, 0); // input[i]
        a.and(tmp, gid, HID - 1);
        elem_addr(a, addr, roff, 3, tmp, 2);
        a.ld(dl, MemSpace::Global, addr, 0); // delta[j]
        elem_addr(a, addr, roff, 1, gid, 2);
        a.ld(ow, MemSpace::Global, addr, 0); // oldw
                                             // new_dw = ETA*delta*input + MOMENTUM*oldw
        a.fmul(dl, dl, Operand::imm_f32(ETA));
        a.fmul(dl, dl, Operand::Reg(inp));
        a.ffma(dl, ow, Operand::imm_f32(MOMENTUM), Operand::Reg(dl));
        // w += new_dw; oldw = new_dw
        elem_addr(a, addr, roff, 0, gid, 2);
        a.ld(w, MemSpace::Global, addr, 0);
        a.fadd(w, w, Operand::Reg(dl));
        a.st(MemSpace::Global, addr, 0, w);
        elem_addr(a, addr, roff, 1, gid, 2);
        a.st(MemSpace::Global, addr, 0, dl);
    });
    a.build().expect("adjust_weights is well formed")
}

pub fn input_unit(i: u32) -> f32 {
    hash_f32(SEED, i as u64)
}

pub fn input_weight(i: u32) -> f32 {
    hash_f32(SEED ^ 0x77, i as u64) * 0.2 - 0.1
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Benchmark for BackProp {
    fn name(&self) -> &'static str {
        "BackProp"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1", "K2"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let nw = N_IN * HID;
        let bufs = ctl.alloc(&[
            N_IN * 4,         // input
            nw * 4,           // weights
            GROUPS * HID * 4, // partial sums
            nw * 4,           // old deltas
            HID * 4,          // hidden deltas (host-computed)
        ]);
        let (input, weights, partial, oldw, deltas) = (bufs[0], bufs[1], bufs[2], bufs[3], bufs[4]);
        for i in 0..N_IN {
            ctl.write_f32(input + i * 4, input_unit(i));
        }
        for i in 0..nw {
            ctl.write_f32(weights + i * 4, input_weight(i));
            ctl.write_f32(oldw + i * 4, 0.0);
        }
        let k1 = kernel_layerforward();
        let k2 = kernel_adjust();
        ctl.launch(0, &k1, GROUPS, BLOCK, vec![input, weights, partial])?;
        ctl.vote(0, &[(partial, GROUPS * HID)])?;
        // Host: fold partial sums per hidden unit, sigmoid, delta rule
        // against a constant target.
        for j in 0..HID {
            let mut sum = 0.0f32;
            for g in 0..GROUPS {
                sum += ctl.read_f32(partial + (g * HID + j) * 4);
            }
            let h = sigmoid(sum);
            let delta = (0.5 - h) * h * (1.0 - h);
            ctl.write_f32(deltas + j * 4, delta);
        }
        ctl.launch(
            1,
            &k2,
            nw / BLOCK,
            BLOCK,
            vec![weights, oldw, input, deltas, nw],
        )?;
        ctl.vote(1, &[(weights, nw), (oldw, nw)])?;
        ctl.set_outputs(&[(weights, nw), (oldw, nw)]);
        Ok(())
    }
}

/// CPU reference mirroring the GPU arithmetic order; returns
/// (weights, oldw).
pub fn cpu_reference() -> (Vec<f32>, Vec<f32>) {
    let nw = (N_IN * HID) as usize;
    let mut weights: Vec<f32> = (0..nw as u32).map(input_weight).collect();
    let mut oldw = vec![0.0f32; nw];
    // K1 + host fold: partial[g][j] = Σ_{r} in[g*16+r]*w[(g*16+r)*16+j],
    // reduced in tree order.
    let mut deltas = [0.0f32; HID as usize];
    for j in 0..HID {
        let mut sum = 0.0f32;
        for g in 0..GROUPS {
            let mut col = [0.0f32; HID as usize];
            for (r, val) in col.iter_mut().enumerate() {
                let gin = g * HID + r as u32;
                *val = input_unit(gin) * weights[(gin * HID + j) as usize];
            }
            let mut s = HID as usize / 2;
            while s >= 1 {
                for r in 0..s {
                    col[r] += col[r + s];
                }
                s /= 2;
            }
            sum += col[0];
        }
        let h = sigmoid(sum);
        deltas[j as usize] = (0.5 - h) * h * (1.0 - h);
    }
    for gid in 0..nw as u32 {
        let i = gid / HID;
        let j = gid % HID;
        let mut dl = deltas[j as usize] * ETA;
        dl *= input_unit(i);
        dl = oldw[gid as usize].mul_add(MOMENTUM, dl);
        weights[gid as usize] += dl;
        oldw[gid as usize] = dl;
    }
    (weights, oldw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_bit_exactly() {
        let g = golden_run(&BackProp, &GpuConfig::default(), Variant::FUNCTIONAL);
        let (want_w, want_o) = cpu_reference();
        let nw = (N_IN * HID) as usize;
        for i in 0..nw {
            assert_eq!(f32::from_bits(g.output[i]), want_w[i], "weight {i}");
            assert_eq!(f32::from_bits(g.output[nw + i]), want_o[i], "oldw {i}");
        }
    }

    #[test]
    fn timed_equals_functional() {
        let f = golden_run(&BackProp, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&BackProp, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        // Two kernels recorded under distinct indices.
        assert!(t.records.iter().any(|r| r.kernel_idx == 0));
        assert!(t.records.iter().any(|r| r.kernel_idx == 1));
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&BackProp, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&BackProp, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
