//! HotSpot — thermal simulation stencil (Rodinia `hotspot`).
//!
//! One kernel: a 4-point stencil over a 2D temperature grid with a power
//! term, tiled through shared memory with halo loads and a CTA barrier —
//! the high-resource-utilization workload of Figure 3a. Two ping-pong
//! iterations.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::hash_f32;
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, Reg, SpecialReg};

/// Grid side (power of two).
pub const W: u32 = 64;
/// Tile side; block = TILE*TILE threads.
pub const TILE: u32 = 8;
const BLOCK: u32 = TILE * TILE;
/// Ping-pong steps.
pub const STEPS: usize = 2;
const SEED: u64 = 0x484f54;

/// Stencil coefficients (scaled-down Rodinia constants).
pub const K_DIFF: f32 = 0.1;
pub const K_POWER: f32 = 0.05;
pub const K_AMB: f32 = 0.002;
pub const T_AMB: f32 = 80.0;

pub struct HotSpot;

/// `temp_in[row*W + col]` → `smem[(sr_base + r)*sh + sc_base + c]`.
#[allow(clippy::too_many_arguments)]
fn emit_halo_load(
    a: &mut KernelBuilder,
    roff: Reg,
    row: Reg,
    col: Reg,
    r: Reg,
    c: Reg,
    sr_add: u32,
    sc_add: u32,
    scratch: (Reg, Reg, Reg),
) {
    let sh = TILE + 2;
    let (addr, v, t) = scratch;
    a.shl(t, row, W.trailing_zeros());
    a.iadd(t, t, Operand::Reg(col));
    tmr::load_ptr(a, addr, roff, 0);
    a.iscadd(addr, t, Operand::Reg(addr), 2);
    a.ld(v, MemSpace::Global, addr, 0);
    a.imad(t, r, sh, Operand::Reg(c));
    a.iadd(t, t, sr_add * sh + sc_add);
    a.shl(t, t, 2u32);
    a.st(MemSpace::Shared, t, 0, v);
}

/// Benchmark parameters: 0 = temp_in, 1 = power, 2 = temp_out.
pub fn kernel() -> Kernel {
    let sh = TILE + 2; // halo'd tile side (10)
    let mut a = KernelBuilder::new("hotspot_k1");
    let smem = a.alloc_smem(sh * sh * 4);
    debug_assert_eq!(smem, 0);
    let roff = tmr::prologue(&mut a);
    let (tid, r, c, gr, gc, nb) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (addr, v, t0, t1) = (a.reg(), a.reg(), a.reg(), a.reg());
    let (idx, acc) = (a.reg(), a.reg());
    let scratch = (addr, v, idx);
    let p = a.pred();

    a.s2r(tid, SpecialReg::TidX);
    a.shr(r, tid, TILE.trailing_zeros());
    a.and(c, tid, TILE - 1);
    // Tile coordinates from the linear CTA id.
    a.s2r(gr, SpecialReg::CtaIdX);
    a.shr(gr, gr, (W / TILE).trailing_zeros()); // tile row
    a.shl(gr, gr, TILE.trailing_zeros());
    a.iadd(gr, gr, Operand::Reg(r)); // global row
    a.s2r(gc, SpecialReg::CtaIdX);
    a.and(gc, gc, W / TILE - 1);
    a.shl(gc, gc, TILE.trailing_zeros());
    a.iadd(gc, gc, Operand::Reg(c)); // global col

    // Center cell.
    emit_halo_load(&mut a, roff, gr, gc, r, c, 1, 1, scratch);
    // North halo (tile row 0): row = max(gr-1, 0); smem row 0.
    a.isetp(p, r, 0u32, CmpOp::Eq, true);
    a.if_then(p, false, |a| {
        a.isub(nb, gr, 1u32);
        a.imax(nb, nb, 0u32, true);
        emit_halo_load(a, roff, nb, gc, r, c, 0, 1, scratch);
    });
    // South halo (tile row TILE-1): row = min(gr+1, W-1); smem row TILE+1.
    a.isetp(p, r, TILE - 1, CmpOp::Eq, true);
    a.if_then(p, false, |a| {
        a.iadd(nb, gr, 1u32);
        a.imin(nb, nb, W - 1, true);
        emit_halo_load(a, roff, nb, gc, r, c, 2, 1, scratch);
    });
    // West halo.
    a.isetp(p, c, 0u32, CmpOp::Eq, true);
    a.if_then(p, false, |a| {
        a.isub(nb, gc, 1u32);
        a.imax(nb, nb, 0u32, true);
        emit_halo_load(a, roff, gr, nb, r, c, 1, 0, scratch);
    });
    // East halo.
    a.isetp(p, c, TILE - 1, CmpOp::Eq, true);
    a.if_then(p, false, |a| {
        a.iadd(nb, gc, 1u32);
        a.imin(nb, nb, W - 1, true);
        emit_halo_load(a, roff, gr, nb, r, c, 1, 2, scratch);
    });
    a.bar();

    // Stencil from shared memory; center index = (r+1)*sh + (c+1).
    a.imad(idx, r, sh, Operand::Reg(c));
    a.iadd(idx, idx, sh + 1);
    a.shl(idx, idx, 2u32);
    a.ld(t0, MemSpace::Shared, idx, 0); // center
    a.ld(v, MemSpace::Shared, idx, -((sh * 4) as i32)); // north
    a.ld(t1, MemSpace::Shared, idx, (sh * 4) as i32); // south
    a.fadd(acc, v, Operand::Reg(t1));
    a.ld(v, MemSpace::Shared, idx, -4); // west
    a.fadd(acc, acc, Operand::Reg(v));
    a.ld(v, MemSpace::Shared, idx, 4); // east
    a.fadd(acc, acc, Operand::Reg(v));
    a.ffma(acc, t0, Operand::imm_f32(-4.0), Operand::Reg(acc)); // Σneigh - 4t
                                                                // new = t + K_DIFF*acc + K_POWER*power[g] + K_AMB*(T_AMB - t)
    a.ffma(t1, acc, Operand::imm_f32(K_DIFF), Operand::Reg(t0));
    a.shl(idx, gr, W.trailing_zeros());
    a.iadd(idx, idx, Operand::Reg(gc));
    tmr::load_ptr(&mut a, addr, roff, 1);
    a.iscadd(addr, idx, Operand::Reg(addr), 2);
    a.ld(v, MemSpace::Global, addr, 0); // power
    a.ffma(t1, v, Operand::imm_f32(K_POWER), Operand::Reg(t1));
    // v = T_AMB - t0
    a.fmul(t0, t0, Operand::imm_f32(-1.0));
    a.mov(v, T_AMB);
    a.fadd(v, v, Operand::Reg(t0));
    a.ffma(t1, v, Operand::imm_f32(K_AMB), Operand::Reg(t1));
    // temp_out[g] = t1
    tmr::load_ptr(&mut a, addr, roff, 2);
    a.iscadd(addr, idx, Operand::Reg(addr), 2);
    a.st(MemSpace::Global, addr, 0, t1);
    a.build().expect("hotspot kernel is well formed")
}

pub fn input_temp(i: u32) -> f32 {
    70.0 + 20.0 * hash_f32(SEED, i as u64)
}

pub fn input_power(i: u32) -> f32 {
    hash_f32(SEED ^ 0x50, i as u64)
}

impl Benchmark for HotSpot {
    fn name(&self) -> &'static str {
        "HotSpot"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let n = W * W;
        let bufs = ctl.alloc(&[n * 4, n * 4, n * 4]);
        let (t0, power, t1) = (bufs[0], bufs[1], bufs[2]);
        for i in 0..n {
            ctl.write_f32(t0 + i * 4, input_temp(i));
            ctl.write_f32(power + i * 4, input_power(i));
        }
        let k = kernel();
        let grid = (W / TILE) * (W / TILE);
        let (mut src, mut dst) = (t0, t1);
        for _ in 0..STEPS {
            ctl.launch(0, &k, grid, BLOCK, vec![src, power, dst])?;
            ctl.vote(0, &[(dst, n)])?;
            std::mem::swap(&mut src, &mut dst);
        }
        ctl.set_outputs(&[(src, n)]);
        Ok(())
    }
}

/// CPU reference mirroring the GPU arithmetic order.
pub fn cpu_reference() -> Vec<f32> {
    let n = (W * W) as usize;
    let mut src: Vec<f32> = (0..n as u32).map(input_temp).collect();
    let power: Vec<f32> = (0..n as u32).map(input_power).collect();
    let mut dst = vec![0.0f32; n];
    let at = |g: &[f32], r: i32, c: i32| {
        let r = r.clamp(0, W as i32 - 1) as usize;
        let c = c.clamp(0, W as i32 - 1) as usize;
        g[r * W as usize + c]
    };
    for _ in 0..STEPS {
        for r in 0..W as i32 {
            for c in 0..W as i32 {
                let t = at(&src, r, c);
                let mut acc = at(&src, r - 1, c) + at(&src, r + 1, c);
                acc += at(&src, r, c - 1);
                acc += at(&src, r, c + 1);
                acc = t.mul_add(-4.0, acc);
                let i = (r * W as i32 + c) as usize;
                let mut new = acc.mul_add(K_DIFF, t);
                new = power[i].mul_add(K_POWER, new);
                let amb = T_AMB + -t;
                new = amb.mul_add(K_AMB, new);
                dst[i] = new;
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_bit_exactly() {
        let g = golden_run(&HotSpot, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(f32::from_bits(got), want, "cell {i}");
        }
    }

    #[test]
    fn timed_equals_functional_and_uses_smem_heavily() {
        let f = golden_run(&HotSpot, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&HotSpot, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        let s = t.app_stats();
        assert!(s.smem_instrs > s.store_instrs, "stencil is smem-heavy");
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&HotSpot, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&HotSpot, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
