//! SRADv2 — speckle-reducing anisotropic diffusion, v2 (Rodinia `srad_v2`).
//!
//! The tiled two-kernel variant: **K1** (`srad_cuda_1`) computes the four
//! directional derivatives and the diffusion coefficient from a
//! shared-memory image tile, **K2** (`srad_cuda_2`) applies the divergence
//! update from a shared-memory coefficient tile. The image statistic `q0²`
//! is recomputed on the host before each iteration, as in the original's
//! main loop.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::hash_f32;
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, Reg, SpecialReg};

/// Image side.
pub const W: u32 = 64;
pub const NE: u32 = W * W;
pub const ITERS: usize = 2;
pub const LAMBDA: f32 = 0.5;
/// Tile side (block = TILE² threads).
const TILE: u32 = 8;
const BLOCK: u32 = TILE * TILE;
const SEED: u64 = 0x5332;

pub struct SradV2;

/// Emit global/tile coordinates: `(r, c, gr, gc, lid)` from tid/ctaid.
fn coords(a: &mut KernelBuilder, tid: Reg, r: Reg, c: Reg, gr: Reg, gc: Reg) {
    a.s2r(tid, SpecialReg::TidX);
    a.shr(r, tid, TILE.trailing_zeros());
    a.and(c, tid, TILE - 1);
    a.s2r(gr, SpecialReg::CtaIdX);
    a.shr(gr, gr, (W / TILE).trailing_zeros());
    a.shl(gr, gr, TILE.trailing_zeros());
    a.iadd(gr, gr, Operand::Reg(r));
    a.s2r(gc, SpecialReg::CtaIdX);
    a.and(gc, gc, W / TILE - 1);
    a.shl(gc, gc, TILE.trailing_zeros());
    a.iadd(gc, gc, Operand::Reg(c));
}

/// Load a neighbour value: from the shared tile when it is interior to the
/// tile, from (clamped) global memory otherwise. `dir` as in sradv1.
#[allow(clippy::too_many_arguments)]
fn neighbour_value(
    a: &mut KernelBuilder,
    dst: Reg,
    roff: Reg,
    ptr_idx: u16,
    r: Reg,
    c: Reg,
    gr: Reg,
    gc: Reg,
    tid: Reg,
    tmp: Reg,
    addr: Reg,
    dir: u32,
) {
    let p = vgpu_arch::Pred(3); // dedicated scratch predicate
    let (interior_reg, boundary_at, smem_off): (Reg, u32, i32) = match dir {
        0 => (r, 0, -((TILE * 4) as i32)),
        1 => (r, TILE - 1, (TILE * 4) as i32),
        2 => (c, 0, -4),
        _ => (c, TILE - 1, 4),
    };
    a.isetp(p, interior_reg, boundary_at, CmpOp::Ne, true);
    // Interior: read the shared tile at tid +/- offset.
    a.predicated(p, false, |a| {
        a.shl(tmp, tid, 2u32);
        a.ld(dst, MemSpace::Shared, tmp, smem_off);
    });
    // Boundary: clamped global read.
    a.predicated(p, true, |a| {
        match dir {
            0 => {
                a.isub(tmp, gr, 1u32);
                a.imax(tmp, tmp, 0u32, true);
                a.shl(tmp, tmp, W.trailing_zeros());
                a.iadd(tmp, tmp, Operand::Reg(gc));
            }
            1 => {
                a.iadd(tmp, gr, 1u32);
                a.imin(tmp, tmp, W - 1, true);
                a.shl(tmp, tmp, W.trailing_zeros());
                a.iadd(tmp, tmp, Operand::Reg(gc));
            }
            2 => {
                a.isub(tmp, gc, 1u32);
                a.imax(tmp, tmp, 0u32, true);
                a.shl(dst, gr, W.trailing_zeros());
                a.iadd(tmp, tmp, Operand::Reg(dst));
            }
            _ => {
                a.iadd(tmp, gc, 1u32);
                a.imin(tmp, tmp, W - 1, true);
                a.shl(dst, gr, W.trailing_zeros());
                a.iadd(tmp, tmp, Operand::Reg(dst));
            }
        }
        tmr::load_ptr(a, addr, roff, ptr_idx);
        a.iscadd(addr, tmp, Operand::Reg(addr), 2);
        a.ld(dst, MemSpace::Global, addr, 0);
    });
}

/// K1: params: 0 = image, 1 = dN, 2 = dS, 3 = dW, 4 = dE, 5 = c,
/// 6 = q0sqr (f32 bits).
pub fn kernel1() -> Kernel {
    let mut a = KernelBuilder::new("sradv2_k1");
    let s_tile = a.alloc_smem(BLOCK * 4);
    debug_assert_eq!(s_tile, 0);
    let roff = tmr::prologue(&mut a);
    let (tid, r, c, gr, gc) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (tmp, addr, jc, g2, l) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (dn, ds, dw, de, num, den, q, gidx) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    coords(&mut a, tid, r, c, gr, gc);
    // Stage the tile: smem[tid] = I[gr*W + gc].
    a.shl(gidx, gr, W.trailing_zeros());
    a.iadd(gidx, gidx, Operand::Reg(gc));
    tmr::load_ptr(&mut a, addr, roff, 0);
    a.iscadd(addr, gidx, Operand::Reg(addr), 2);
    a.ld(jc, MemSpace::Global, addr, 0);
    a.shl(tmp, tid, 2u32);
    a.st(MemSpace::Shared, tmp, 0, jc);
    a.bar();
    // Directional derivatives.
    let deriv = |a: &mut KernelBuilder, d: Reg, dir: u32| {
        neighbour_value(a, d, roff, 0, r, c, gr, gc, tid, tmp, addr, dir);
        a.ffma(d, jc, Operand::imm_f32(-1.0), Operand::Reg(d));
    };
    deriv(&mut a, dn, 0);
    deriv(&mut a, ds, 1);
    deriv(&mut a, dw, 2);
    deriv(&mut a, de, 3);
    // Same diffusion-coefficient arithmetic as SRADv1 K4.
    a.fmul(g2, dn, Operand::Reg(dn));
    a.ffma(g2, ds, Operand::Reg(ds), Operand::Reg(g2));
    a.ffma(g2, dw, Operand::Reg(dw), Operand::Reg(g2));
    a.ffma(g2, de, Operand::Reg(de), Operand::Reg(g2));
    a.fmul(tmp, jc, Operand::Reg(jc));
    a.frcp(tmp, tmp);
    a.fmul(g2, g2, Operand::Reg(tmp));
    a.fadd(l, dn, Operand::Reg(ds));
    a.fadd(l, l, Operand::Reg(dw));
    a.fadd(l, l, Operand::Reg(de));
    a.frcp(tmp, jc);
    a.fmul(l, l, Operand::Reg(tmp));
    a.fmul(num, g2, Operand::imm_f32(0.5));
    a.fmul(tmp, l, Operand::Reg(l));
    a.ffma(num, tmp, Operand::imm_f32(-1.0 / 16.0), Operand::Reg(num));
    a.mov(den, 1.0f32);
    a.ffma(den, l, Operand::imm_f32(0.25), Operand::Reg(den));
    a.fmul(den, den, Operand::Reg(den));
    a.frcp(den, den);
    a.fmul(q, num, Operand::Reg(den));
    a.mov(tmp, tmr::scalar(6));
    a.ffma(q, tmp, Operand::imm_f32(-1.0), Operand::Reg(q));
    a.mov(den, 1.0f32);
    a.fadd(den, den, Operand::Reg(tmp));
    a.fmul(den, den, Operand::Reg(tmp));
    a.frcp(den, den);
    a.fmul(q, q, Operand::Reg(den));
    a.mov(den, 1.0f32);
    a.fadd(q, q, Operand::Reg(den));
    a.frcp(q, q);
    a.fmax(q, q, Operand::imm_f32(0.0));
    a.fmin(q, q, Operand::imm_f32(1.0));
    for (i, reg) in [(1u16, dn), (2, ds), (3, dw), (4, de), (5, q)] {
        tmr::load_ptr(&mut a, addr, roff, i);
        a.iscadd(addr, gidx, Operand::Reg(addr), 2);
        a.st(MemSpace::Global, addr, 0, reg);
    }
    a.build().expect("sradv2 k1 is well formed")
}

/// K2: params: 0 = image, 1 = dN, 2 = dS, 3 = dW, 4 = dE, 5 = c.
pub fn kernel2() -> Kernel {
    let mut a = KernelBuilder::new("sradv2_k2");
    let s_tile = a.alloc_smem(BLOCK * 4);
    debug_assert_eq!(s_tile, 0);
    let roff = tmr::prologue(&mut a);
    let (tid, r, c, gr, gc) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (tmp, addr, cn, cs, ce) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (d, acc, gidx) = (a.reg(), a.reg(), a.reg());
    coords(&mut a, tid, r, c, gr, gc);
    // Stage the coefficient tile.
    a.shl(gidx, gr, W.trailing_zeros());
    a.iadd(gidx, gidx, Operand::Reg(gc));
    tmr::load_ptr(&mut a, addr, roff, 5);
    a.iscadd(addr, gidx, Operand::Reg(addr), 2);
    a.ld(cn, MemSpace::Global, addr, 0); // cN = cW = c[gid]
    a.shl(tmp, tid, 2u32);
    a.st(MemSpace::Shared, tmp, 0, cn);
    a.bar();
    neighbour_value(&mut a, cs, roff, 5, r, c, gr, gc, tid, tmp, addr, 1);
    neighbour_value(&mut a, ce, roff, 5, r, c, gr, gc, tid, tmp, addr, 3);
    // D = cN*dN + cS*dS + cN*dW + cE*dE; I += 0.25*lambda*D.
    tmr::load_ptr(&mut a, addr, roff, 1);
    a.iscadd(addr, gidx, Operand::Reg(addr), 2);
    a.ld(d, MemSpace::Global, addr, 0);
    a.fmul(acc, cn, Operand::Reg(d));
    tmr::load_ptr(&mut a, addr, roff, 2);
    a.iscadd(addr, gidx, Operand::Reg(addr), 2);
    a.ld(d, MemSpace::Global, addr, 0);
    a.ffma(acc, cs, Operand::Reg(d), Operand::Reg(acc));
    tmr::load_ptr(&mut a, addr, roff, 3);
    a.iscadd(addr, gidx, Operand::Reg(addr), 2);
    a.ld(d, MemSpace::Global, addr, 0);
    a.ffma(acc, cn, Operand::Reg(d), Operand::Reg(acc));
    tmr::load_ptr(&mut a, addr, roff, 4);
    a.iscadd(addr, gidx, Operand::Reg(addr), 2);
    a.ld(d, MemSpace::Global, addr, 0);
    a.ffma(acc, ce, Operand::Reg(d), Operand::Reg(acc));
    tmr::load_ptr(&mut a, addr, roff, 0);
    a.iscadd(addr, gidx, Operand::Reg(addr), 2);
    a.ld(d, MemSpace::Global, addr, 0);
    a.ffma(d, acc, Operand::imm_f32(0.25 * LAMBDA), Operand::Reg(d));
    a.st(MemSpace::Global, addr, 0, d);
    a.build().expect("sradv2 k2 is well formed")
}

pub fn input_pixel(i: u32) -> f32 {
    0.2 + 0.8 * hash_f32(SEED, i as u64)
}

impl Benchmark for SradV2 {
    fn name(&self) -> &'static str {
        "SRADv2"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1", "K2"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let bufs = ctl.alloc(&[NE * 4; 6]);
        let (img, dn, ds, dw, de, c) = (bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], bufs[5]);
        for i in 0..NE {
            ctl.write_f32(img + i * 4, input_pixel(i));
        }
        let k1 = kernel1();
        let k2 = kernel2();
        let grid = (W / TILE) * (W / TILE);
        for _ in 0..ITERS {
            // Host-side statistics, as in the original's main loop.
            let mut total = 0.0f32;
            let mut total2 = 0.0f32;
            for i in 0..NE {
                let v = ctl.read_f32(img + i * 4);
                total += v;
                total2 += v * v;
            }
            let mean = total / NE as f32;
            let var = total2 / NE as f32 - mean * mean;
            let q0sqr = var / (mean * mean);
            ctl.launch(
                0,
                &k1,
                grid,
                BLOCK,
                vec![img, dn, ds, dw, de, c, q0sqr.to_bits()],
            )?;
            ctl.vote(0, &[(dn, NE), (ds, NE), (dw, NE), (de, NE), (c, NE)])?;
            ctl.launch(1, &k2, grid, BLOCK, vec![img, dn, ds, dw, de, c])?;
            ctl.vote(1, &[(img, NE)])?;
        }
        ctl.set_outputs(&[(img, NE)]);
        Ok(())
    }
}

/// CPU reference mirroring the GPU arithmetic order.
pub fn cpu_reference() -> Vec<f32> {
    let ne = NE as usize;
    let w = W as usize;
    let mut img: Vec<f32> = (0..NE).map(input_pixel).collect();
    for _ in 0..ITERS {
        let mut total = 0.0f32;
        let mut total2 = 0.0f32;
        for &v in &img {
            total += v;
            total2 += v * v;
        }
        let mean = total / NE as f32;
        let var = total2 / NE as f32 - mean * mean;
        let q0 = var / (mean * mean);
        let mut dn = vec![0.0f32; ne];
        let mut ds = vec![0.0f32; ne];
        let mut dwv = vec![0.0f32; ne];
        let mut de = vec![0.0f32; ne];
        let mut cc = vec![0.0f32; ne];
        for g in 0..ne {
            let (r, c) = (g / w, g % w);
            let jc = img[g];
            let nb = |rr: i32, ccc: i32| {
                img[(rr.clamp(0, w as i32 - 1) as usize) * w + ccc.clamp(0, w as i32 - 1) as usize]
            };
            let d_n = jc.mul_add(-1.0, nb(r as i32 - 1, c as i32));
            let d_s = jc.mul_add(-1.0, nb(r as i32 + 1, c as i32));
            let d_w = jc.mul_add(-1.0, nb(r as i32, c as i32 - 1));
            let d_e = jc.mul_add(-1.0, nb(r as i32, c as i32 + 1));
            let mut g2 = d_n * d_n;
            g2 = d_s.mul_add(d_s, g2);
            g2 = d_w.mul_add(d_w, g2);
            g2 = d_e.mul_add(d_e, g2);
            g2 *= 1.0 / (jc * jc);
            let mut l = d_n + d_s;
            l += d_w;
            l += d_e;
            l *= 1.0 / jc;
            let mut num = g2 * 0.5;
            num = (l * l).mul_add(-1.0 / 16.0, num);
            let mut den = l.mul_add(0.25, 1.0);
            den *= den;
            let mut q = num * (1.0 / den);
            q = q0.mul_add(-1.0, q);
            let den2 = (1.0 + q0) * q0;
            q *= 1.0 / den2;
            q += 1.0;
            dn[g] = d_n;
            ds[g] = d_s;
            dwv[g] = d_w;
            de[g] = d_e;
            cc[g] = (1.0 / q).clamp(0.0, 1.0);
        }
        for g in 0..ne {
            let (r, c) = (g / w, g % w);
            let cs = cc[(r + 1).min(w - 1) * w + c];
            let ce = cc[r * w + (c + 1).min(w - 1)];
            let mut acc = cc[g] * dn[g];
            acc = cs.mul_add(ds[g], acc);
            acc = cc[g].mul_add(dwv[g], acc);
            acc = ce.mul_add(de[g], acc);
            img[g] = acc.mul_add(0.25 * LAMBDA, img[g]);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_bit_exactly() {
        let g = golden_run(&SradV2, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(f32::from_bits(got), want, "pixel {i}");
        }
    }

    #[test]
    fn timed_equals_functional() {
        let f = golden_run(&SradV2, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&SradV2, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        assert!(t.app_stats().smem_instrs > 0);
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&SradV2, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&SradV2, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
