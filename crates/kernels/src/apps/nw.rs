//! NW — Needleman-Wunsch sequence alignment (Rodinia `needle`).
//!
//! Two kernels sweep 16×16 tiles of the DP matrix along anti-diagonals:
//! **K1** (`needle_cuda_shared_1`) covers the upper-left triangle of tile
//! diagonals, **K2** (`needle_cuda_shared_2`) the lower-right. Inside a
//! tile, 16 threads perform the classic shared-memory wavefront with a
//! barrier per wave. Integer data — output comparisons are exact.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::hash_u32;
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, Reg, SpecialReg};

/// Sequence length; the DP matrix is (N+1)².
pub const N: u32 = 64;
/// Tile side and threads per CTA.
pub const B: u32 = 16;
const NB: u32 = N / B;
const COLS: u32 = N + 1;
/// Gap penalty.
pub const PENALTY: i32 = 3;
const SEED: u64 = 0x4e57;

pub struct Nw;

/// Substitution score for DP cell (i, j), i, j >= 1.
pub fn reference(i: u32, j: u32) -> i32 {
    hash_u32(SEED, (i * COLS + j) as u64, 10) as i32 - 2
}

/// Shared tile-processing body. `coords` emits code computing the tile
/// coordinates (b_index_x, b_index_y) from `ctaid.x` and the diagonal
/// parameter into the given registers.
fn tile_kernel(name: &str, coords: impl FnOnce(&mut KernelBuilder, Reg, Reg, Reg)) -> Kernel {
    let mut a = KernelBuilder::new(name);
    let s_temp = a.alloc_smem((B + 1) * (B + 1) * 4);
    let s_ref = a.alloc_smem(B * B * 4);
    debug_assert_eq!(s_temp, 0);
    let roff = tmr::prologue(&mut a);
    let (tx, bxx, byy, base, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (t0, t1, txx, tyy, tmp) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    a.s2r(tx, SpecialReg::TidX);
    coords(&mut a, bxx, byy, tmp);
    // base = (byy*B)*COLS + bxx*B — the halo corner of the tile.
    a.imul(base, byy, B * COLS);
    a.shl(tmp, bxx, B.trailing_zeros());
    a.iadd(base, base, Operand::Reg(tmp));

    // Left halo column: temp[(tx+1)*(B+1)] = items[base + (tx+1)*COLS].
    a.iadd(tmp, tx, 1u32);
    a.imul(v, tmp, COLS);
    a.iadd(v, v, Operand::Reg(base));
    tmr::load_ptr(&mut a, addr, roff, 1);
    a.iscadd(addr, v, Operand::Reg(addr), 2);
    a.ld(t0, MemSpace::Global, addr, 0);
    a.imul(v, tmp, B + 1);
    a.shl(v, v, 2u32);
    a.st(MemSpace::Shared, v, s_temp as i32, t0);
    // Top halo row: temp[tx+1] = items[base + tx + 1].
    a.iadd(v, base, Operand::Reg(tmp));
    tmr::load_ptr(&mut a, addr, roff, 1);
    a.iscadd(addr, v, Operand::Reg(addr), 2);
    a.ld(t0, MemSpace::Global, addr, 0);
    a.shl(v, tmp, 2u32);
    a.st(MemSpace::Shared, v, s_temp as i32, t0);
    // Corner: temp[0][0] = items[base] (thread 0).
    a.isetp(p, tx, 0u32, CmpOp::Eq, true);
    a.predicated(p, false, |a| {
        tmr::load_ptr(a, addr, roff, 1);
        a.iscadd(addr, base, Operand::Reg(addr), 2);
        a.ld(t0, MemSpace::Global, addr, 0);
        a.mov(v, 0u32);
        a.st(MemSpace::Shared, v, s_temp as i32, t0);
    });
    // Substitution tile: ref_s[ty*B + tx] = reference[base + (ty+1)*COLS + tx+1].
    for ty in 0..B {
        a.mov(v, (ty + 1) * COLS + 1);
        a.iadd(v, v, Operand::Reg(base));
        a.iadd(v, v, Operand::Reg(tx));
        tmr::load_ptr(&mut a, addr, roff, 0);
        a.iscadd(addr, v, Operand::Reg(addr), 2);
        a.ld(t0, MemSpace::Global, addr, 0);
        a.iadd(v, tx, ty * B);
        a.shl(v, v, 2u32);
        a.st(MemSpace::Shared, v, s_ref as i32, t0);
    }
    a.bar();

    // One wavefront step at thread-cell (txx, tyy), both in 1..=B:
    // temp[tyy][txx] = max(temp[tyy-1][txx-1] + ref[tyy-1][txx-1],
    //                      temp[tyy][txx-1] - P, temp[tyy-1][txx] - P).
    let wave = |a: &mut KernelBuilder, m: u32, forward: bool| {
        a.isetp(p, tx, m, CmpOp::Le, true);
        a.predicated(p, false, |a| {
            if forward {
                a.iadd(txx, tx, 1u32);
                a.mov(tyy, m + 1);
                a.isub(tyy, tyy, Operand::Reg(tx)); // m - tx + 1
            } else {
                a.iadd(txx, tx, B - m);
                a.mov(tyy, B);
                a.isub(tyy, tyy, Operand::Reg(tx));
            }
            // v = ((tyy-1)*(B+1) + txx) * 4
            a.isub(tmp, tyy, 1u32);
            a.imul(v, tmp, B + 1);
            a.iadd(v, v, Operand::Reg(txx));
            a.shl(v, v, 2u32);
            a.ld(t0, MemSpace::Shared, v, s_temp as i32 - 4); // temp[tyy-1][txx-1]
            a.ld(t1, MemSpace::Shared, v, s_temp as i32); // temp[tyy-1][txx]
            a.shl(tmp, tmp, B.trailing_zeros());
            a.iadd(tmp, tmp, Operand::Reg(txx));
            a.shl(tmp, tmp, 2u32);
            a.ld(tmp, MemSpace::Shared, tmp, s_ref as i32 - 4); // ref[tyy-1][txx-1]
            a.iadd(t0, t0, Operand::Reg(tmp)); // diagonal + score
            a.isub(t1, t1, PENALTY as u32); // up - P
            a.imax(t0, t0, Operand::Reg(t1), true);
            // left: temp[tyy*(B+1) + txx - 1] - P
            a.imul(v, tyy, B + 1);
            a.iadd(v, v, Operand::Reg(txx));
            a.shl(v, v, 2u32);
            a.ld(t1, MemSpace::Shared, v, s_temp as i32 - 4);
            a.isub(t1, t1, PENALTY as u32);
            a.imax(t0, t0, Operand::Reg(t1), true);
            a.st(MemSpace::Shared, v, s_temp as i32, t0);
        });
        a.bar();
    };
    for m in 0..B {
        wave(&mut a, m, true);
    }
    for m in (0..B - 1).rev() {
        wave(&mut a, m, false);
    }

    // Write back: items[base + (ty+1)*COLS + tx+1] = temp[ty+1][tx+1].
    for ty in 0..B {
        a.mov(v, (ty + 1) * (B + 1) + 1);
        a.iadd(v, v, Operand::Reg(tx));
        a.shl(v, v, 2u32);
        a.ld(t0, MemSpace::Shared, v, s_temp as i32);
        a.mov(v, (ty + 1) * COLS + 1);
        a.iadd(v, v, Operand::Reg(base));
        a.iadd(v, v, Operand::Reg(tx));
        tmr::load_ptr(&mut a, addr, roff, 1);
        a.iscadd(addr, v, Operand::Reg(addr), 2);
        a.st(MemSpace::Global, addr, 0, t0);
    }
    a.build().expect("nw tile kernel is well formed")
}

/// K1: upper-left diagonals. Benchmark parameters: 0 = reference,
/// 1 = itemsets, 2 = diagonal index i (1..=NB); grid = i CTAs.
pub fn kernel1() -> Kernel {
    tile_kernel("nw_k1", |a, bxx, byy, _tmp| {
        // b_index_x = bx; b_index_y = i - 1 - bx.
        a.s2r(bxx, SpecialReg::CtaIdX);
        a.mov(byy, tmr::scalar(2));
        a.isub(byy, byy, 1u32);
        a.isub(byy, byy, Operand::Reg(bxx));
    })
}

/// K2: lower-right diagonals. Benchmark parameters as K1 but i counts
/// down (NB-1..=1); grid = i CTAs.
pub fn kernel2() -> Kernel {
    tile_kernel("nw_k2", |a, bxx, byy, tmp| {
        // b_index_x = bx + NB - i; b_index_y = NB - bx - 1.
        a.s2r(bxx, SpecialReg::CtaIdX);
        a.mov(tmp, NB);
        a.isub(tmp, tmp, tmr::scalar(2));
        a.iadd(bxx, bxx, Operand::Reg(tmp));
        a.s2r(tmp, SpecialReg::CtaIdX);
        a.mov(byy, NB - 1);
        a.isub(byy, byy, Operand::Reg(tmp));
    })
}

impl Benchmark for Nw {
    fn name(&self) -> &'static str {
        "NW"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1", "K2"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let words = COLS * COLS;
        let bufs = ctl.alloc(&[words * 4, words * 4]);
        let (refs, items) = (bufs[0], bufs[1]);
        for i in 0..COLS {
            for j in 0..COLS {
                let r = if i >= 1 && j >= 1 { reference(i, j) } else { 0 };
                ctl.write_u32(refs + (i * COLS + j) * 4, r as u32);
            }
        }
        for i in 0..COLS {
            for j in 0..COLS {
                let v: i32 = if i == 0 {
                    -(j as i32) * PENALTY
                } else if j == 0 {
                    -(i as i32) * PENALTY
                } else {
                    0
                };
                ctl.write_u32(items + (i * COLS + j) * 4, v as u32);
            }
        }
        let k1 = kernel1();
        let k2 = kernel2();
        for i in 1..=NB {
            ctl.launch(0, &k1, i, B, vec![refs, items, i])?;
            ctl.vote(0, &[(items, words)])?;
        }
        for i in (1..NB).rev() {
            ctl.launch(1, &k2, i, B, vec![refs, items, i])?;
            ctl.vote(1, &[(items, words)])?;
        }
        ctl.set_outputs(&[(items, words)]);
        Ok(())
    }
}

/// CPU reference: the plain quadratic DP.
pub fn cpu_reference() -> Vec<i32> {
    let cols = COLS as usize;
    let mut m = vec![0i32; cols * cols];
    for (j, v) in m.iter_mut().take(cols).enumerate() {
        *v = -(j as i32) * PENALTY;
    }
    for i in 0..cols {
        m[i * cols] = -(i as i32) * PENALTY;
    }
    for i in 1..cols {
        for j in 1..cols {
            let diag = m[(i - 1) * cols + j - 1] + reference(i as u32, j as u32);
            let up = m[(i - 1) * cols + j] - PENALTY;
            let left = m[i * cols + j - 1] - PENALTY;
            m[i * cols + j] = diag.max(up).max(left);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_exactly() {
        let g = golden_run(&Nw, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                got as i32,
                want,
                "cell {i} (r{} c{})",
                i / COLS as usize,
                i % COLS as usize
            );
        }
    }

    #[test]
    fn timed_equals_functional() {
        let f = golden_run(&Nw, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&Nw, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        // K1 runs NB diagonals, K2 NB-1.
        let k1 = t
            .records
            .iter()
            .filter(|r| r.kernel_idx == 0 && !r.is_vote)
            .count();
        let k2 = t
            .records
            .iter()
            .filter(|r| r.kernel_idx == 1 && !r.is_vote)
            .count();
        assert_eq!((k1, k2), (NB as usize, NB as usize - 1));
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&Nw, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&Nw, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
