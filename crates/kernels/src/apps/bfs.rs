//! BFS — breadth-first search (Rodinia `bfs`).
//!
//! Two kernels and a host iteration loop, as in Rodinia:
//!
//! * **K1** — every frontier node visits its neighbours (a data-dependent
//!   divergent loop over the adjacency list) and tentatively labels
//!   unvisited ones.
//! * **K2** — folds the tentative labels into the frontier for the next
//!   level and raises the `over` flag if anything changed.
//!
//! The host relaunches both kernels until the flag stays low (iteration
//! capped so corrupted flags cannot hang the run). Integer data — output
//! comparisons are exact.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::{elem_addr, gid_guard, hash_u32};
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand};

pub const NODES: u32 = 1024;
const BLOCK: u32 = 128;
/// Maximum BFS levels the host will run (well above the true diameter).
const MAX_LEVELS: usize = 24;
const SEED: u64 = 0x424653;

pub struct Bfs;

/// Degree of node `i` (2..=5).
fn degree(i: u32) -> u32 {
    2 + hash_u32(SEED ^ 0xdeed, i as u64, 4)
}

/// Build the CSR adjacency (starts, edges).
pub fn graph() -> (Vec<u32>, Vec<u32>) {
    let mut starts = Vec::with_capacity(NODES as usize + 1);
    let mut edges = Vec::new();
    let mut cursor = 0u32;
    for i in 0..NODES {
        starts.push(cursor);
        let d = degree(i);
        for e in 0..d {
            // Mix of local and long-range edges keeps the diameter small
            // but the neighbour loop divergent.
            let tgt = if e % 2 == 0 {
                (i + 1 + hash_u32(SEED, (i * 8 + e) as u64, 4)) % NODES
            } else {
                hash_u32(SEED ^ 0x1234, (i * 8 + e) as u64, NODES)
            };
            edges.push(tgt);
            cursor += 1;
        }
    }
    starts.push(cursor);
    (starts, edges)
}

/// K1: benchmark parameters: 0 = starts, 1 = edges, 2 = mask, 3 = updating,
/// 4 = visited, 5 = cost, 6 = nodes.
pub fn kernel_expand() -> Kernel {
    let mut a = KernelBuilder::new("bfs_k1_expand");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, j, end, nb, cost) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    let (p, q, r) = (a.pred(), a.pred(), a.pred());
    gid_guard(&mut a, gid, tmp, p, 6);
    a.if_then(p, false, |a| {
        // q = mask[gid] != 0
        elem_addr(a, addr, roff, 2, gid, 2);
        a.ld(tmp, MemSpace::Global, addr, 0);
        a.isetp(q, tmp, 0u32, CmpOp::Ne, true);
        a.if_then(q, false, |a| {
            // mask[gid] = 0
            a.mov(tmp, 0u32);
            a.st(MemSpace::Global, addr, 0, tmp);
            // my cost
            elem_addr(a, addr, roff, 5, gid, 2);
            a.ld(cost, MemSpace::Global, addr, 0);
            a.iadd(cost, cost, 1u32);
            // j = starts[gid], end = starts[gid+1]
            elem_addr(a, addr, roff, 0, gid, 2);
            a.ld(j, MemSpace::Global, addr, 0);
            a.ld(end, MemSpace::Global, addr, 4);
            // Guard against zero-trip (cannot happen fault-free: deg >= 2).
            a.isetp(r, j, Operand::Reg(end), CmpOp::Lt, true);
            a.if_then(r, false, |a| {
                a.loop_while(|a| {
                    // nb = edges[j]
                    elem_addr(a, addr, roff, 1, j, 2);
                    a.ld(nb, MemSpace::Global, addr, 0);
                    // if !visited[nb]: cost[nb] = cost; updating[nb] = 1
                    elem_addr(a, addr, roff, 4, nb, 2);
                    a.ld(tmp, MemSpace::Global, addr, 0);
                    a.isetp(r, tmp, 0u32, CmpOp::Eq, true);
                    a.predicated(r, false, |a| {
                        elem_addr(a, addr, roff, 5, nb, 2);
                        a.st(MemSpace::Global, addr, 0, cost);
                        a.mov(tmp, 1u32);
                        elem_addr(a, addr, roff, 3, nb, 2);
                        a.st(MemSpace::Global, addr, 0, tmp);
                    });
                    a.iadd(j, j, 1u32);
                    a.isetp(r, j, Operand::Reg(end), CmpOp::Lt, true);
                    (r, false)
                });
            });
        });
    });
    a.build().expect("bfs expand is well formed")
}

/// K2: benchmark parameters: 0 = mask, 1 = updating, 2 = visited,
/// 3 = over flag, 4 = nodes.
pub fn kernel_fold() -> Kernel {
    let mut a = KernelBuilder::new("bfs_k2_fold");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, one) = (a.reg(), a.reg(), a.reg(), a.reg());
    let (p, q) = (a.pred(), a.pred());
    gid_guard(&mut a, gid, tmp, p, 4);
    a.if_then(p, false, |a| {
        elem_addr(a, addr, roff, 1, gid, 2);
        a.ld(tmp, MemSpace::Global, addr, 0);
        a.isetp(q, tmp, 0u32, CmpOp::Ne, true);
        a.if_then(q, false, |a| {
            a.mov(one, 1u32);
            // mask[gid] = visited[gid] = 1; updating[gid] = 0; over = 1.
            elem_addr(a, addr, roff, 0, gid, 2);
            a.st(MemSpace::Global, addr, 0, one);
            elem_addr(a, addr, roff, 2, gid, 2);
            a.st(MemSpace::Global, addr, 0, one);
            a.mov(tmp, 0u32);
            elem_addr(a, addr, roff, 1, gid, 2);
            a.st(MemSpace::Global, addr, 0, tmp);
            tmr::load_ptr(a, addr, roff, 3);
            a.st(MemSpace::Global, addr, 0, one);
        });
    });
    a.build().expect("bfs fold is well formed")
}

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1", "K2"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let (starts, edges) = graph();
        let ne = edges.len() as u32;
        let bufs = ctl.alloc(&[
            (NODES + 1) * 4, // starts
            ne * 4,          // edges
            NODES * 4,       // mask
            NODES * 4,       // updating
            NODES * 4,       // visited
            NODES * 4,       // cost
            4,               // over flag
        ]);
        let (b_starts, b_edges, mask, upd, visited, cost, over) = (
            bufs[0], bufs[1], bufs[2], bufs[3], bufs[4], bufs[5], bufs[6],
        );
        for (i, &s) in starts.iter().enumerate() {
            ctl.write_u32(b_starts + i as u32 * 4, s);
        }
        for (i, &e) in edges.iter().enumerate() {
            ctl.write_u32(b_edges + i as u32 * 4, e);
        }
        for i in 0..NODES {
            ctl.write_u32(mask + i * 4, (i == 0) as u32);
            ctl.write_u32(upd + i * 4, 0);
            ctl.write_u32(visited + i * 4, (i == 0) as u32);
            ctl.write_u32(cost + i * 4, if i == 0 { 0 } else { u32::MAX });
        }
        let k1 = kernel_expand();
        let k2 = kernel_fold();
        let grid = NODES / BLOCK;
        for _ in 0..MAX_LEVELS {
            ctl.write_u32(over, 0);
            ctl.launch(
                0,
                &k1,
                grid,
                BLOCK,
                vec![b_starts, b_edges, mask, upd, visited, cost, NODES],
            )?;
            ctl.vote(0, &[(cost, NODES), (upd, NODES), (mask, NODES)])?;
            ctl.launch(1, &k2, grid, BLOCK, vec![mask, upd, visited, over, NODES])?;
            ctl.vote(
                1,
                &[(mask, NODES), (visited, NODES), (upd, NODES), (over, 1)],
            )?;
            if ctl.read_u32(over) == 0 {
                break;
            }
        }
        ctl.set_outputs(&[(cost, NODES)]);
        Ok(())
    }
}

/// CPU reference: BFS levels from node 0; unreachable stays `u32::MAX`.
pub fn cpu_reference() -> Vec<u32> {
    let (starts, edges) = graph();
    let mut cost = vec![u32::MAX; NODES as usize];
    cost[0] = 0;
    let mut frontier = vec![0u32];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for e in starts[u as usize]..starts[u as usize + 1] {
                let v = edges[e as usize] as usize;
                if cost[v] == u32::MAX {
                    cost[v] = cost[u as usize] + 1;
                    next.push(v as u32);
                }
            }
        }
        frontier = next;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn graph_is_connectedish_and_deterministic() {
        let (s1, e1) = graph();
        let (s2, e2) = graph();
        assert_eq!(s1, s2);
        assert_eq!(e1, e2);
        let cost = cpu_reference();
        let reached = cost.iter().filter(|&&c| c != u32::MAX).count();
        assert!(
            reached > NODES as usize / 2,
            "graph too disconnected: {reached}"
        );
    }

    #[test]
    fn matches_cpu_reference_exactly() {
        let g = golden_run(&Bfs, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(got, want, "cost of node {i}");
        }
    }

    #[test]
    fn timed_equals_functional() {
        let f = golden_run(&Bfs, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&Bfs, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&Bfs, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&Bfs, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
