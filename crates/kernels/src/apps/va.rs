//! VA — vector addition (CUDA SDK `vectorAdd`).
//!
//! The canonical one-kernel streaming workload: `c[i] = a[i] + b[i]`.
//! Minimal register pressure, no shared memory, one load pair and one store
//! per thread — the low-utilization end of the suite's spectrum.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::{elem_addr, gid_guard, hash_f32};
use crate::tmr;
use vgpu_arch::{Kernel, KernelBuilder, MemSpace, Operand};

/// Elements per vector.
pub const N: u32 = 4096;
const BLOCK: u32 = 128;
const SEED: u64 = 0x5641; // "VA"

pub struct Va;

/// Benchmark parameters: 0 = a, 1 = b, 2 = c, 3 = n.
pub fn kernel() -> Kernel {
    let mut a = KernelBuilder::new("va_k1");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, x, y) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 3);
    a.if_then(p, false, |a| {
        elem_addr(a, addr, roff, 0, gid, 2);
        a.ld(x, MemSpace::Global, addr, 0);
        elem_addr(a, addr, roff, 1, gid, 2);
        a.ld(y, MemSpace::Global, addr, 0);
        a.fadd(x, x, Operand::Reg(y));
        elem_addr(a, addr, roff, 2, gid, 2);
        a.st(MemSpace::Global, addr, 0, x);
    });
    a.build().expect("va kernel is well formed")
}

/// Input vector element `i` of `a` (shared with tests).
pub fn input_a(i: u32) -> f32 {
    hash_f32(SEED, i as u64)
}

pub fn input_b(i: u32) -> f32 {
    hash_f32(SEED ^ 0xffff, i as u64)
}

impl Benchmark for Va {
    fn name(&self) -> &'static str {
        "VA"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let bufs = ctl.alloc(&[N * 4, N * 4, N * 4]);
        let (a, b, c) = (bufs[0], bufs[1], bufs[2]);
        for i in 0..N {
            ctl.write_f32(a + i * 4, input_a(i));
            ctl.write_f32(b + i * 4, input_b(i));
        }
        ctl.set_outputs(&[(c, N)]);
        let k = kernel();
        ctl.launch(0, &k, N / BLOCK, BLOCK, vec![a, b, c, N])?;
        ctl.vote(0, &[(c, N)])?;
        Ok(())
    }
}

/// CPU reference.
pub fn cpu_reference() -> Vec<f32> {
    (0..N).map(|i| input_a(i) + input_b(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let g = golden_run(&Va, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        assert_eq!(g.output.len(), N as usize);
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(f32::from_bits(got), want, "element {i}");
        }
    }

    #[test]
    fn timed_equals_functional() {
        let f = golden_run(&Va, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&Va, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        assert!(t.records[0].stats.cycles > 0);
    }

    #[test]
    fn hardened_output_matches_unhardened() {
        let plain = golden_run(&Va, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&Va, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
        // Hardened app runs vote launches too.
        assert!(tmr.records.iter().any(|r| r.is_vote));
        // Triplication costs roughly 3x the work.
        let pi = plain.app_stats().thread_instrs;
        let ti: u64 = tmr
            .records
            .iter()
            .filter(|r| !r.is_vote)
            .map(|r| r.stats.thread_instrs)
            .sum();
        assert!(ti >= 3 * pi, "tripled kernel work: {ti} vs {pi}");
    }
}
