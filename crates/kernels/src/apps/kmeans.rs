//! K-Means — clustering (Rodinia `kmeans`).
//!
//! Two kernels, as in Rodinia's CUDA port:
//!
//! * **K1 `invert_mapping`** — transposes the point-major feature matrix
//!   into feature-major layout (pure streaming memory work).
//! * **K2 `kmeansPoint`** — assigns each point to its nearest cluster.
//!   Feature reads go through the **texture path** (Rodinia binds
//!   `t_features` to a texture), making K-Means the suite's main L1T
//!   exerciser.
//!
//! Host glue recomputes centroids between iterations, exactly like the
//! benchmark's CPU side.

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::{elem_addr, gid_guard, hash_f32};
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand};

pub const NPOINTS: u32 = 2048;
pub const NFEAT: u32 = 8;
pub const NCLUST: u32 = 5;
pub const ITERS: usize = 2;
const BLOCK: u32 = 128;
const SEED: u64 = 0x4b4d;

pub struct KMeans;

/// K1: `features[f*NPOINTS + gid] = flipped[gid*NFEAT + f]` for all f.
/// Benchmark parameters: 0 = flipped, 1 = features, 2 = npoints.
pub fn kernel_invert() -> Kernel {
    let mut a = KernelBuilder::new("kmeans_k1_invert_mapping");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, src, dst, v) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 2);
    a.if_then(p, false, |a| {
        for f in 0..NFEAT {
            // src = flipped + 4*(gid*NFEAT + f)
            a.shl(tmp, gid, NFEAT.trailing_zeros());
            a.iadd(tmp, tmp, f);
            elem_addr(a, src, roff, 0, tmp, 2);
            // re-derive the element index for the transposed store
            a.ld(v, MemSpace::Global, src, 0);
            a.mov(tmp, f * NPOINTS);
            a.iadd(tmp, tmp, Operand::Reg(gid));
            elem_addr(a, dst, roff, 1, tmp, 2);
            a.st(MemSpace::Global, dst, 0, v);
        }
    });
    a.build().expect("invert_mapping is well formed")
}

/// K2: nearest-cluster assignment.
/// Benchmark parameters: 0 = features (feature-major, read via texture),
/// 1 = clusters, 2 = membership, 3 = npoints.
pub fn kernel_point() -> Kernel {
    let mut a = KernelBuilder::new("kmeans_k2_kmeansPoint");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, fv, cv, d) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (dist, best, besti) = (a.reg(), a.reg(), a.reg());
    let p = a.pred();
    let q = a.pred();
    gid_guard(&mut a, gid, tmp, p, 3);
    a.if_then(p, false, |a| {
        a.mov(best, f32::MAX);
        a.mov(besti, 0u32);
        for c in 0..NCLUST {
            a.mov(dist, 0.0f32);
            for f in 0..NFEAT {
                // fv = tex features[f*NPOINTS + gid]
                a.mov(tmp, f * NPOINTS);
                a.iadd(tmp, tmp, Operand::Reg(gid));
                tmr::load_ptr(a, addr, roff, 0);
                a.iscadd(addr, tmp, Operand::Reg(addr), 2);
                a.ld(fv, MemSpace::Tex, addr, 0);
                // cv = clusters[c*NFEAT + f]
                a.mov(tmp, c * NFEAT + f);
                elem_addr(a, addr, roff, 1, tmp, 2);
                a.ld(cv, MemSpace::Global, addr, 0);
                // dist += (fv - cv)^2
                a.fmul(cv, cv, Operand::imm_f32(-1.0));
                a.fadd(d, fv, Operand::Reg(cv));
                a.ffma(dist, d, Operand::Reg(d), Operand::Reg(dist));
            }
            // if dist < best { best = dist; besti = c }
            a.fsetp(q, dist, Operand::Reg(best), CmpOp::Lt);
            a.predicated(q, false, |a| {
                a.mov(best, Operand::Reg(dist));
                a.mov(besti, c);
            });
        }
        elem_addr(a, addr, roff, 2, gid, 2);
        a.st(MemSpace::Global, addr, 0, besti);
    });
    a.build().expect("kmeansPoint is well formed")
}

/// Point-major input features.
pub fn input_feature(point: u32, f: u32) -> f32 {
    // Clustered blobs so the assignment is meaningful.
    let blob = point % NCLUST;
    blob as f32 + 0.3 * hash_f32(SEED + f as u64, point as u64)
}

fn initial_cluster(c: u32, f: u32) -> f32 {
    // Initial centers = the first NCLUST points (Rodinia's choice).
    input_feature(c, f)
}

impl Benchmark for KMeans {
    fn name(&self) -> &'static str {
        "K-Means"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1", "K2"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let nf = NPOINTS * NFEAT;
        let bufs = ctl.alloc(&[nf * 4, nf * 4, NCLUST * NFEAT * 4, NPOINTS * 4]);
        let (flipped, features, clusters, membership) = (bufs[0], bufs[1], bufs[2], bufs[3]);
        for pnt in 0..NPOINTS {
            for f in 0..NFEAT {
                ctl.write_f32(flipped + (pnt * NFEAT + f) * 4, input_feature(pnt, f));
            }
        }
        for c in 0..NCLUST {
            for f in 0..NFEAT {
                ctl.write_f32(clusters + (c * NFEAT + f) * 4, initial_cluster(c, f));
            }
        }
        let k1 = kernel_invert();
        let k2 = kernel_point();
        let grid = NPOINTS / BLOCK;
        ctl.launch(0, &k1, grid, BLOCK, vec![flipped, features, NPOINTS])?;
        ctl.vote(0, &[(features, nf)])?;
        for _ in 0..ITERS {
            ctl.launch(
                1,
                &k2,
                grid,
                BLOCK,
                vec![features, clusters, membership, NPOINTS],
            )?;
            ctl.vote(1, &[(membership, NPOINTS)])?;
            // Host: recompute centroids (guarded against corrupted indices).
            let mut sums = vec![0.0f32; (NCLUST * NFEAT) as usize];
            let mut counts = vec![0u32; NCLUST as usize];
            for pnt in 0..NPOINTS {
                let m = ctl.read_u32(membership + pnt * 4) % NCLUST;
                counts[m as usize] += 1;
                for f in 0..NFEAT {
                    sums[(m * NFEAT + f) as usize] += ctl.read_f32(flipped + (pnt * NFEAT + f) * 4);
                }
            }
            for c in 0..NCLUST {
                if counts[c as usize] > 0 {
                    for f in 0..NFEAT {
                        let mean = sums[(c * NFEAT + f) as usize] / counts[c as usize] as f32;
                        ctl.write_f32(clusters + (c * NFEAT + f) * 4, mean);
                    }
                }
            }
        }
        ctl.set_outputs(&[(membership, NPOINTS), (clusters, NCLUST * NFEAT)]);
        Ok(())
    }
}

/// CPU reference mirroring the GPU arithmetic order; returns
/// (membership, clusters).
pub fn cpu_reference() -> (Vec<u32>, Vec<f32>) {
    let mut clusters: Vec<f32> = (0..NCLUST)
        .flat_map(|c| (0..NFEAT).map(move |f| initial_cluster(c, f)))
        .collect();
    let mut membership = vec![0u32; NPOINTS as usize];
    for _ in 0..ITERS {
        for pnt in 0..NPOINTS {
            let mut best = f32::MAX;
            let mut besti = 0u32;
            for c in 0..NCLUST {
                let mut dist = 0.0f32;
                for f in 0..NFEAT {
                    let d = input_feature(pnt, f) + -clusters[(c * NFEAT + f) as usize];
                    dist = d.mul_add(d, dist);
                }
                if dist < best {
                    best = dist;
                    besti = c;
                }
            }
            membership[pnt as usize] = besti;
        }
        let mut sums = vec![0.0f32; (NCLUST * NFEAT) as usize];
        let mut counts = vec![0u32; NCLUST as usize];
        for pnt in 0..NPOINTS {
            let m = membership[pnt as usize];
            counts[m as usize] += 1;
            for f in 0..NFEAT {
                sums[(m * NFEAT + f) as usize] += input_feature(pnt, f);
            }
        }
        for c in 0..NCLUST {
            if counts[c as usize] > 0 {
                for f in 0..NFEAT {
                    clusters[(c * NFEAT + f) as usize] =
                        sums[(c * NFEAT + f) as usize] / counts[c as usize] as f32;
                }
            }
        }
    }
    (membership, clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let g = golden_run(&KMeans, &GpuConfig::default(), Variant::FUNCTIONAL);
        let (want_m, want_c) = cpu_reference();
        let got_m = &g.output[..NPOINTS as usize];
        for (i, (&got, &want)) in got_m.iter().zip(want_m.iter()).enumerate() {
            assert_eq!(got, want, "membership of point {i}");
        }
        let got_c = &g.output[NPOINTS as usize..];
        for (i, (&got, &want)) in got_c.iter().zip(want_c.iter()).enumerate() {
            assert_eq!(f32::from_bits(got), want, "cluster word {i}");
        }
    }

    #[test]
    fn timed_equals_functional_and_uses_texture() {
        let f = golden_run(&KMeans, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&KMeans, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        assert!(
            t.app_stats().l1t.accesses > 0,
            "K2 reads features via texture"
        );
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&KMeans, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&KMeans, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
