//! SRADv1 — speckle-reducing anisotropic diffusion, v1 (Rodinia `srad_v1`).
//!
//! The six-kernel pipeline of the original:
//!
//! * **K1 `extract`** — `I = exp(I/255)`.
//! * **K2 `prepare`** — stage `sums = I`, `sums2 = I²` for the reduction.
//! * **K3 `reduce`** — per-CTA shared-memory tree reduction of both
//!   arrays; the host folds the per-CTA partials into the image statistics
//!   (mean, variance, `q0²`).
//! * **K4 `srad`** — per-pixel directional derivatives and the diffusion
//!   coefficient.
//! * **K5 `srad2`** — divergence and image update.
//! * **K6 `compress`** — `I = ln(I)·255`.
//!
//! K2–K5 run once per diffusion iteration (2 iterations here).

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::{elem_addr, gid_guard, hash_f32};
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};

/// Image side (power of two).
pub const W: u32 = 64;
/// Pixels.
pub const NE: u32 = W * W;
/// Diffusion iterations.
pub const ITERS: usize = 2;
pub const LAMBDA: f32 = 0.5;
const BLOCK: u32 = 128;
const RBLOCKS: u32 = NE / BLOCK;
const SEED: u64 = 0x5352;

pub struct SradV1;

/// K1: params: 0 = image, 1 = Ne.
pub fn kernel_extract() -> Kernel {
    let mut a = KernelBuilder::new("sradv1_k1_extract");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 1);
    a.if_then(p, false, |a| {
        elem_addr(a, addr, roff, 0, gid, 2);
        a.ld(v, MemSpace::Global, addr, 0);
        a.fmul(v, v, Operand::imm_f32(1.0 / 255.0));
        a.fexp(v, v);
        a.st(MemSpace::Global, addr, 0, v);
    });
    a.build().expect("extract is well formed")
}

/// K2: params: 0 = image, 1 = sums, 2 = sums2, 3 = Ne.
pub fn kernel_prepare() -> Kernel {
    let mut a = KernelBuilder::new("sradv1_k2_prepare");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, v, v2) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 3);
    a.if_then(p, false, |a| {
        elem_addr(a, addr, roff, 0, gid, 2);
        a.ld(v, MemSpace::Global, addr, 0);
        elem_addr(a, addr, roff, 1, gid, 2);
        a.st(MemSpace::Global, addr, 0, v);
        a.fmul(v2, v, Operand::Reg(v));
        elem_addr(a, addr, roff, 2, gid, 2);
        a.st(MemSpace::Global, addr, 0, v2);
    });
    a.build().expect("prepare is well formed")
}

/// K3: params: 0 = sums, 1 = sums2, 2 = partial1, 3 = partial2.
/// Tree-reduces both arrays per CTA.
pub fn kernel_reduce() -> Kernel {
    let mut a = KernelBuilder::new("sradv1_k3_reduce");
    let s1 = a.alloc_smem(BLOCK * 4);
    let s2 = a.alloc_smem(BLOCK * 4);
    debug_assert_eq!(s1, 0);
    let roff = tmr::prologue(&mut a);
    let (tid, gid, tmp, addr, v, w) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    a.s2r(tid, SpecialReg::TidX);
    a.linear_tid(gid, tmp);
    elem_addr(&mut a, addr, roff, 0, gid, 2);
    a.ld(v, MemSpace::Global, addr, 0);
    a.shl(tmp, tid, 2u32);
    a.st(MemSpace::Shared, tmp, s1 as i32, v);
    elem_addr(&mut a, addr, roff, 1, gid, 2);
    a.ld(v, MemSpace::Global, addr, 0);
    a.st(MemSpace::Shared, tmp, s2 as i32, v);
    a.bar();
    let mut s = BLOCK / 2;
    while s >= 1 {
        a.isetp(p, tid, s, CmpOp::Lt, true);
        a.predicated(p, false, |a| {
            for off in [s1, s2] {
                a.iadd(tmp, tid, s);
                a.shl(tmp, tmp, 2u32);
                a.ld(v, MemSpace::Shared, tmp, off as i32);
                a.shl(tmp, tid, 2u32);
                a.ld(w, MemSpace::Shared, tmp, off as i32);
                a.fadd(w, w, Operand::Reg(v));
                a.st(MemSpace::Shared, tmp, off as i32, w);
            }
        });
        a.bar();
        s /= 2;
    }
    a.isetp(p, tid, 0u32, CmpOp::Eq, true);
    a.predicated(p, false, |a| {
        a.s2r(gid, SpecialReg::CtaIdX);
        a.mov(tmp, 0u32);
        a.ld(v, MemSpace::Shared, tmp, s1 as i32);
        elem_addr(a, addr, roff, 2, gid, 2);
        a.st(MemSpace::Global, addr, 0, v);
        a.ld(v, MemSpace::Shared, tmp, s2 as i32);
        elem_addr(a, addr, roff, 3, gid, 2);
        a.st(MemSpace::Global, addr, 0, v);
    });
    a.build().expect("reduce is well formed")
}

/// Emit `nbr = clamped neighbour pixel index` for a direction.
/// `dir`: 0 = N, 1 = S, 2 = W, 3 = E. Uses `row`/`col` and clobbers `tmp`.
fn neighbour_index(
    a: &mut KernelBuilder,
    nbr: vgpu_arch::Reg,
    row: vgpu_arch::Reg,
    col: vgpu_arch::Reg,
    tmp: vgpu_arch::Reg,
    dir: u32,
) {
    match dir {
        0 => {
            a.isub(tmp, row, 1u32);
            a.imax(tmp, tmp, 0u32, true);
            a.shl(tmp, tmp, W.trailing_zeros());
            a.iadd(nbr, tmp, Operand::Reg(col));
        }
        1 => {
            a.iadd(tmp, row, 1u32);
            a.imin(tmp, tmp, W - 1, true);
            a.shl(tmp, tmp, W.trailing_zeros());
            a.iadd(nbr, tmp, Operand::Reg(col));
        }
        2 => {
            a.isub(tmp, col, 1u32);
            a.imax(tmp, tmp, 0u32, true);
            a.shl(nbr, row, W.trailing_zeros());
            a.iadd(nbr, nbr, Operand::Reg(tmp));
        }
        _ => {
            a.iadd(tmp, col, 1u32);
            a.imin(tmp, tmp, W - 1, true);
            a.shl(nbr, row, W.trailing_zeros());
            a.iadd(nbr, nbr, Operand::Reg(tmp));
        }
    }
}

/// K4: params: 0 = image, 1 = dN, 2 = dS, 3 = dW, 4 = dE, 5 = c,
/// 6 = q0sqr (f32 bits), 7 = Ne.
pub fn kernel_srad() -> Kernel {
    let mut a = KernelBuilder::new("sradv1_k4_srad");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, row, col, jc) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (dn, ds, dw, de, g2, l) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (num, den, q) = (a.reg(), a.reg(), a.reg());
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 7);
    a.if_then(p, false, |a| {
        a.shr(row, gid, W.trailing_zeros());
        a.and(col, gid, W - 1);
        elem_addr(a, addr, roff, 0, gid, 2);
        a.ld(jc, MemSpace::Global, addr, 0);
        // Directional derivatives d· = I[neighbour] - Jc.
        let deriv = |a: &mut KernelBuilder, d: vgpu_arch::Reg, dir: u32| {
            neighbour_index(a, num, row, col, tmp, dir);
            elem_addr(a, addr, roff, 0, num, 2);
            a.ld(d, MemSpace::Global, addr, 0);
            a.ffma(d, jc, Operand::imm_f32(-1.0), Operand::Reg(d));
        };
        deriv(a, dn, 0);
        deriv(a, ds, 1);
        deriv(a, dw, 2);
        deriv(a, de, 3);
        // G2 = (dN²+dS²+dW²+dE²) / Jc².
        a.fmul(g2, dn, Operand::Reg(dn));
        a.ffma(g2, ds, Operand::Reg(ds), Operand::Reg(g2));
        a.ffma(g2, dw, Operand::Reg(dw), Operand::Reg(g2));
        a.ffma(g2, de, Operand::Reg(de), Operand::Reg(g2));
        a.fmul(tmp, jc, Operand::Reg(jc));
        a.frcp(tmp, tmp);
        a.fmul(g2, g2, Operand::Reg(tmp));
        // L = (dN+dS+dW+dE) / Jc.
        a.fadd(l, dn, Operand::Reg(ds));
        a.fadd(l, l, Operand::Reg(dw));
        a.fadd(l, l, Operand::Reg(de));
        a.frcp(tmp, jc);
        a.fmul(l, l, Operand::Reg(tmp));
        // num = 0.5*G2 - (1/16)*L²; den = 1 + 0.25*L; q = num/den².
        a.fmul(num, g2, Operand::imm_f32(0.5));
        a.fmul(tmp, l, Operand::Reg(l));
        a.ffma(num, tmp, Operand::imm_f32(-1.0 / 16.0), Operand::Reg(num));
        a.mov(den, 1.0f32);
        a.ffma(den, l, Operand::imm_f32(0.25), Operand::Reg(den));
        a.fmul(den, den, Operand::Reg(den));
        a.frcp(den, den);
        a.fmul(q, num, Operand::Reg(den));
        // c = 1 / (1 + (q - q0)/(q0*(1+q0))), clamped to [0,1].
        a.mov(tmp, tmr::scalar(6)); // q0sqr
        a.ffma(q, tmp, Operand::imm_f32(-1.0), Operand::Reg(q)); // q - q0
        a.mov(den, 1.0f32);
        a.fadd(den, den, Operand::Reg(tmp));
        a.fmul(den, den, Operand::Reg(tmp)); // q0*(1+q0)
        a.frcp(den, den);
        a.fmul(q, q, Operand::Reg(den));
        a.mov(den, 1.0f32);
        a.fadd(q, q, Operand::Reg(den));
        a.frcp(q, q);
        a.fmax(q, q, Operand::imm_f32(0.0));
        a.fmin(q, q, Operand::imm_f32(1.0));
        // Store derivatives and coefficient.
        for (i, r) in [(1u16, dn), (2, ds), (3, dw), (4, de), (5, q)] {
            elem_addr(a, addr, roff, i, gid, 2);
            a.st(MemSpace::Global, addr, 0, r);
        }
    });
    a.build().expect("srad is well formed")
}

/// K5: params: 0 = image, 1 = dN, 2 = dS, 3 = dW, 4 = dE, 5 = c, 6 = Ne.
pub fn kernel_srad2() -> Kernel {
    let mut a = KernelBuilder::new("sradv1_k5_srad2");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, row, col, nbr) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let (cn, cs, cw, ce, d, acc) = (a.reg(), a.reg(), a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 6);
    a.if_then(p, false, |a| {
        a.shr(row, gid, W.trailing_zeros());
        a.and(col, gid, W - 1);
        // cN = cW = c[gid]; cS = c[south]; cE = c[east] (Rodinia scheme).
        elem_addr(a, addr, roff, 5, gid, 2);
        a.ld(cn, MemSpace::Global, addr, 0);
        a.mov(cw, Operand::Reg(cn));
        neighbour_index(a, nbr, row, col, tmp, 1);
        elem_addr(a, addr, roff, 5, nbr, 2);
        a.ld(cs, MemSpace::Global, addr, 0);
        neighbour_index(a, nbr, row, col, tmp, 3);
        elem_addr(a, addr, roff, 5, nbr, 2);
        a.ld(ce, MemSpace::Global, addr, 0);
        // D = cN*dN + cS*dS + cW*dW + cE*dE.
        elem_addr(a, addr, roff, 1, gid, 2);
        a.ld(d, MemSpace::Global, addr, 0);
        a.fmul(acc, cn, Operand::Reg(d));
        elem_addr(a, addr, roff, 2, gid, 2);
        a.ld(d, MemSpace::Global, addr, 0);
        a.ffma(acc, cs, Operand::Reg(d), Operand::Reg(acc));
        elem_addr(a, addr, roff, 3, gid, 2);
        a.ld(d, MemSpace::Global, addr, 0);
        a.ffma(acc, cw, Operand::Reg(d), Operand::Reg(acc));
        elem_addr(a, addr, roff, 4, gid, 2);
        a.ld(d, MemSpace::Global, addr, 0);
        a.ffma(acc, ce, Operand::Reg(d), Operand::Reg(acc));
        // I += 0.25*lambda*D.
        elem_addr(a, addr, roff, 0, gid, 2);
        a.ld(d, MemSpace::Global, addr, 0);
        a.ffma(d, acc, Operand::imm_f32(0.25 * LAMBDA), Operand::Reg(d));
        a.st(MemSpace::Global, addr, 0, d);
    });
    a.build().expect("srad2 is well formed")
}

/// K6: params: 0 = image, 1 = Ne.
pub fn kernel_compress() -> Kernel {
    let mut a = KernelBuilder::new("sradv1_k6_compress");
    let roff = tmr::prologue(&mut a);
    let (gid, tmp, addr, v) = (a.reg(), a.reg(), a.reg(), a.reg());
    let p = a.pred();
    gid_guard(&mut a, gid, tmp, p, 1);
    a.if_then(p, false, |a| {
        elem_addr(a, addr, roff, 0, gid, 2);
        a.ld(v, MemSpace::Global, addr, 0);
        a.flog(v, v);
        a.fmul(v, v, Operand::imm_f32(255.0));
        a.st(MemSpace::Global, addr, 0, v);
    });
    a.build().expect("compress is well formed")
}

pub fn input_pixel(i: u32) -> f32 {
    30.0 + 80.0 * hash_f32(SEED, i as u64)
}

impl Benchmark for SradV1 {
    fn name(&self) -> &'static str {
        "SRADv1"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1", "K2", "K3", "K4", "K5", "K6"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let bufs = ctl.alloc(&[
            NE * 4,      // image
            NE * 4,      // sums
            NE * 4,      // sums2
            RBLOCKS * 4, // partial1
            RBLOCKS * 4, // partial2
            NE * 4,      // dN
            NE * 4,      // dS
            NE * 4,      // dW
            NE * 4,      // dE
            NE * 4,      // c
        ]);
        let (img, sums, sums2, p1, p2) = (bufs[0], bufs[1], bufs[2], bufs[3], bufs[4]);
        let (dn, ds, dw, de, c) = (bufs[5], bufs[6], bufs[7], bufs[8], bufs[9]);
        for i in 0..NE {
            ctl.write_f32(img + i * 4, input_pixel(i));
        }
        let grid = NE / BLOCK;
        let (k1, k2, k3) = (kernel_extract(), kernel_prepare(), kernel_reduce());
        let (k4, k5, k6) = (kernel_srad(), kernel_srad2(), kernel_compress());
        ctl.launch(0, &k1, grid, BLOCK, vec![img, NE])?;
        ctl.vote(0, &[(img, NE)])?;
        for _ in 0..ITERS {
            ctl.launch(1, &k2, grid, BLOCK, vec![img, sums, sums2, NE])?;
            ctl.vote(1, &[(sums, NE), (sums2, NE)])?;
            ctl.launch(2, &k3, RBLOCKS, BLOCK, vec![sums, sums2, p1, p2])?;
            ctl.vote(2, &[(p1, RBLOCKS), (p2, RBLOCKS)])?;
            // Host: fold partials into the image statistics.
            let mut total = 0.0f32;
            let mut total2 = 0.0f32;
            for b in 0..RBLOCKS {
                total += ctl.read_f32(p1 + b * 4);
                total2 += ctl.read_f32(p2 + b * 4);
            }
            let mean = total / NE as f32;
            let var = total2 / NE as f32 - mean * mean;
            let q0sqr = var / (mean * mean);
            ctl.launch(
                3,
                &k4,
                grid,
                BLOCK,
                vec![img, dn, ds, dw, de, c, q0sqr.to_bits(), NE],
            )?;
            ctl.vote(3, &[(dn, NE), (ds, NE), (dw, NE), (de, NE), (c, NE)])?;
            ctl.launch(4, &k5, grid, BLOCK, vec![img, dn, ds, dw, de, c, NE])?;
            ctl.vote(4, &[(img, NE)])?;
        }
        ctl.launch(5, &k6, grid, BLOCK, vec![img, NE])?;
        ctl.vote(5, &[(img, NE)])?;
        ctl.set_outputs(&[(img, NE)]);
        Ok(())
    }
}

/// CPU reference mirroring the GPU arithmetic order.
pub fn cpu_reference() -> Vec<f32> {
    let ne = NE as usize;
    let w = W as usize;
    let mut img: Vec<f32> = (0..NE).map(input_pixel).collect();
    for v in img.iter_mut() {
        *v = (*v * (1.0 / 255.0)).exp();
    }
    for _ in 0..ITERS {
        // Reduction in the GPU's tree order.
        let mut total = 0.0f32;
        let mut total2 = 0.0f32;
        for b in 0..RBLOCKS as usize {
            let base = b * BLOCK as usize;
            let mut t1: Vec<f32> = (0..BLOCK as usize).map(|t| img[base + t]).collect();
            let mut t2: Vec<f32> = (0..BLOCK as usize)
                .map(|t| img[base + t] * img[base + t])
                .collect();
            let mut s = BLOCK as usize / 2;
            while s >= 1 {
                for t in 0..s {
                    t1[t] += t1[t + s];
                    t2[t] += t2[t + s];
                }
                s /= 2;
            }
            total += t1[0];
            total2 += t2[0];
        }
        let mean = total / NE as f32;
        let var = total2 / NE as f32 - mean * mean;
        let q0 = var / (mean * mean);
        // K4.
        let mut dn = vec![0.0f32; ne];
        let mut ds = vec![0.0f32; ne];
        let mut dwv = vec![0.0f32; ne];
        let mut de = vec![0.0f32; ne];
        let mut cc = vec![0.0f32; ne];
        for g in 0..ne {
            let (r, c) = (g / w, g % w);
            let jc = img[g];
            let nb = |rr: i32, ccc: i32| {
                img[(rr.clamp(0, w as i32 - 1) as usize) * w + ccc.clamp(0, w as i32 - 1) as usize]
            };
            let d_n = jc.mul_add(-1.0, nb(r as i32 - 1, c as i32));
            let d_s = jc.mul_add(-1.0, nb(r as i32 + 1, c as i32));
            let d_w = jc.mul_add(-1.0, nb(r as i32, c as i32 - 1));
            let d_e = jc.mul_add(-1.0, nb(r as i32, c as i32 + 1));
            let mut g2 = d_n * d_n;
            g2 = d_s.mul_add(d_s, g2);
            g2 = d_w.mul_add(d_w, g2);
            g2 = d_e.mul_add(d_e, g2);
            g2 *= 1.0 / (jc * jc);
            let mut l = d_n + d_s;
            l += d_w;
            l += d_e;
            l *= 1.0 / jc;
            let mut num = g2 * 0.5;
            num = (l * l).mul_add(-1.0 / 16.0, num);
            let mut den = l.mul_add(0.25, 1.0);
            den *= den;
            let mut q = num * (1.0 / den);
            q = q0.mul_add(-1.0, q);
            let den2 = (1.0 + q0) * q0;
            q *= 1.0 / den2;
            q += 1.0;
            let cv = (1.0 / q).clamp(0.0, 1.0);
            dn[g] = d_n;
            ds[g] = d_s;
            dwv[g] = d_w;
            de[g] = d_e;
            cc[g] = cv;
        }
        // K5.
        let snapshot = img.clone();
        let _ = snapshot;
        for g in 0..ne {
            let (r, c) = (g / w, g % w);
            let cs = cc[(r + 1).min(w - 1) * w + c];
            let ce = cc[r * w + (c + 1).min(w - 1)];
            let mut acc = cc[g] * dn[g];
            acc = cs.mul_add(ds[g], acc);
            acc = cc[g].mul_add(dwv[g], acc);
            acc = ce.mul_add(de[g], acc);
            img[g] = acc.mul_add(0.25 * LAMBDA, img[g]);
        }
    }
    for v in img.iter_mut() {
        *v = v.ln() * 255.0;
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_bit_exactly() {
        let g = golden_run(&SradV1, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(f32::from_bits(got), want, "pixel {i}");
        }
    }

    #[test]
    fn timed_equals_functional_with_six_kernels() {
        let f = golden_run(&SradV1, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&SradV1, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        for idx in 0..6 {
            assert!(
                t.records.iter().any(|r| r.kernel_idx == idx && !r.is_vote),
                "kernel {idx} never launched"
            );
        }
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&SradV1, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&SradV1, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
