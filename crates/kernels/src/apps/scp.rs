//! SCP — scalar products (CUDA SDK `scalarProd`).
//!
//! Computes the dot product of `VECS` vector pairs; one CTA per pair, with
//! strided per-thread accumulation followed by a shared-memory tree
//! reduction — the classic reduction idiom (heavy SMEM + barrier use).

use crate::harness::{AppAbort, Benchmark, RunCtl};
use crate::kutil::hash_f32;
use crate::tmr;
use vgpu_arch::{CmpOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};

/// Vector pairs (one CTA each).
pub const VECS: u32 = 32;
/// Elements per vector (power of two).
pub const ELEM: u32 = 256;
const BLOCK: u32 = 128;
const SEED: u64 = 0x0053_4350;

pub struct Scp;

/// Benchmark parameters: 0 = A, 1 = B, 2 = C (results).
pub fn kernel() -> Kernel {
    let mut a = KernelBuilder::new("scp_k1");
    let smem = a.alloc_smem(BLOCK * 4);
    debug_assert_eq!(smem, 0);
    let roff = tmr::prologue(&mut a);
    let (tid, acc, i, idx, pa, va, vb) = (
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
        a.reg(),
    );
    let p = a.pred();
    a.s2r(tid, SpecialReg::TidX);
    a.mov(acc, 0.0f32);
    a.mov(i, Operand::Reg(tid));
    // Strided accumulation: for (i = tid; i < ELEM; i += BLOCK).
    a.loop_while(|a| {
        // idx = ctaid.x * ELEM + i
        a.s2r(idx, SpecialReg::CtaIdX);
        a.shl(idx, idx, ELEM.trailing_zeros());
        a.iadd(idx, idx, Operand::Reg(i));
        tmr::load_ptr(a, pa, roff, 0);
        a.iscadd(pa, idx, Operand::Reg(pa), 2);
        a.ld(va, MemSpace::Global, pa, 0);
        tmr::load_ptr(a, pa, roff, 1);
        a.iscadd(pa, idx, Operand::Reg(pa), 2);
        a.ld(vb, MemSpace::Global, pa, 0);
        a.ffma(acc, va, Operand::Reg(vb), Operand::Reg(acc));
        a.iadd(i, i, BLOCK);
        a.isetp(p, i, ELEM, CmpOp::Lt, true);
        (p, false)
    });
    // smem[tid] = acc
    a.shl(idx, tid, 2u32);
    a.st(MemSpace::Shared, idx, 0, acc);
    a.bar();
    // Tree reduction (predicated so every thread reaches each barrier).
    let mut s = BLOCK / 2;
    while s >= 1 {
        a.isetp(p, tid, s, CmpOp::Lt, true);
        a.predicated(p, false, |a| {
            a.iadd(idx, tid, s);
            a.shl(idx, idx, 2u32);
            a.ld(va, MemSpace::Shared, idx, 0);
            a.shl(idx, tid, 2u32);
            a.ld(vb, MemSpace::Shared, idx, 0);
            a.fadd(vb, vb, Operand::Reg(va));
            a.st(MemSpace::Shared, idx, 0, vb);
        });
        a.bar();
        s /= 2;
    }
    // Thread 0 publishes the result.
    a.isetp(p, tid, 0u32, CmpOp::Eq, true);
    a.predicated(p, false, |a| {
        a.mov(idx, 0u32);
        a.ld(va, MemSpace::Shared, idx, 0);
        a.s2r(idx, SpecialReg::CtaIdX);
        tmr::load_ptr(a, pa, roff, 2);
        a.iscadd(pa, idx, Operand::Reg(pa), 2);
        a.st(MemSpace::Global, pa, 0, va);
    });
    a.build().expect("scp kernel is well formed")
}

pub fn input_a(i: u32) -> f32 {
    hash_f32(SEED, i as u64) * 2.0 - 1.0
}

pub fn input_b(i: u32) -> f32 {
    hash_f32(SEED ^ 0xabcd, i as u64) * 2.0 - 1.0
}

impl Benchmark for Scp {
    fn name(&self) -> &'static str {
        "SCP"
    }

    fn kernels(&self) -> &'static [&'static str] {
        &["K1"]
    }

    fn run(&self, ctl: &mut RunCtl) -> Result<(), AppAbort> {
        let n = VECS * ELEM;
        let bufs = ctl.alloc(&[n * 4, n * 4, VECS * 4]);
        let (a, b, c) = (bufs[0], bufs[1], bufs[2]);
        for i in 0..n {
            ctl.write_f32(a + i * 4, input_a(i));
            ctl.write_f32(b + i * 4, input_b(i));
        }
        ctl.set_outputs(&[(c, VECS)]);
        let k = kernel();
        ctl.launch(0, &k, VECS, BLOCK, vec![a, b, c])?;
        ctl.vote(0, &[(c, VECS)])?;
        Ok(())
    }
}

/// CPU reference replicating the GPU accumulation order bit-exactly.
pub fn cpu_reference() -> Vec<f32> {
    (0..VECS)
        .map(|v| {
            let base = v * ELEM;
            let mut partial = [0.0f32; BLOCK as usize];
            for (t, acc) in partial.iter_mut().enumerate() {
                let mut i = t as u32;
                while i < ELEM {
                    let idx = base + i;
                    *acc = input_a(idx).mul_add(input_b(idx), *acc);
                    i += BLOCK;
                }
            }
            let mut s = BLOCK as usize / 2;
            while s >= 1 {
                for t in 0..s {
                    partial[t] += partial[t + s];
                }
                s /= 2;
            }
            partial[0]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{golden_run, Variant};
    use vgpu_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference_bit_exactly() {
        let g = golden_run(&Scp, &GpuConfig::default(), Variant::FUNCTIONAL);
        let want = cpu_reference();
        for (i, (&got, &want)) in g.output.iter().zip(want.iter()).enumerate() {
            assert_eq!(f32::from_bits(got), want, "pair {i}");
        }
    }

    #[test]
    fn timed_equals_functional_and_uses_smem() {
        let f = golden_run(&Scp, &GpuConfig::default(), Variant::FUNCTIONAL);
        let t = golden_run(&Scp, &GpuConfig::default(), Variant::TIMED);
        assert_eq!(f.output, t.output);
        let s = t.app_stats();
        assert!(s.smem_instrs > 0, "reduction uses shared memory");
        assert!(s.cycles > 0);
    }

    #[test]
    fn hardened_matches() {
        let plain = golden_run(&Scp, &GpuConfig::default(), Variant::TIMED);
        let tmr = golden_run(&Scp, &GpuConfig::default(), Variant::TIMED_TMR);
        assert_eq!(plain.output, tmr.output);
    }
}
